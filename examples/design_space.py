#!/usr/bin/env python3
"""Tour the design space around the paper in one table.

For one workload and pressure, compares everything the library can
build: the paper's five architectures, the migration extension, MESI,
home-placement variants, a bigger RAC and a more associative L1 --
showing which design levers actually move the result and which do not.

Usage:
    python examples/design_space.py [app] [pressure] [scale]
"""

import sys

from repro.harness import format_table
from repro.harness.experiment import scaled_policy
from repro.sim.config import SystemConfig
from repro.sim.engine import simulate
from repro.workloads import generate_workload


def main() -> None:
    app = sys.argv[1] if len(sys.argv) > 1 else "em3d"
    pressure = float(sys.argv[2]) if len(sys.argv) > 2 else 0.7
    scale = float(sys.argv[3]) if len(sys.argv) > 3 else 0.5
    workload = generate_workload(app, scale=scale)

    def cfg(**kw):
        return SystemConfig(n_nodes=workload.n_nodes,
                            memory_pressure=pressure, **kw)

    variants = [
        ("CC-NUMA (baseline)", "CCNUMA", cfg()),
        ("pure S-COMA", "SCOMA", cfg()),
        ("R-NUMA", "RNUMA", cfg()),
        ("VC-NUMA", "VCNUMA", cfg()),
        ("AS-COMA", "ASCOMA", cfg()),
        ("CC-NUMA + migration", "CCNUMAMIG", cfg()),
        ("AS-COMA + MESI", "ASCOMA", cfg(protocol="mesi")),
        ("AS-COMA + 4-way L1", "ASCOMA", cfg(l1_ways=4)),
        ("CC-NUMA + 16-chunk RAC", "CCNUMA", cfg(rac_entries=16)),
        ("CC-NUMA, random placement", "CCNUMA",
         cfg(home_placement="random")),
    ]

    print(f"Design space on {app} at {pressure:.0%} memory pressure"
          f" ({workload.total_refs():,} refs)\n")
    baseline = None
    rows = []
    for label, arch, config in variants:
        agg = simulate(workload, scaled_policy(arch), config).aggregate()
        total = agg.total_cycles()
        if baseline is None:
            baseline = total
        rows.append([
            label,
            f"{total / baseline:.2f}",
            f"{agg.K_OVERHD / total:.1%}",
            f"{agg.remote_misses():,}",
            agg.relocations + agg.migrations,
        ])
        print(f"  done: {label}")
    print()
    print(format_table(
        ["Variant", "Rel. time", "Kernel ovhd", "Remote misses",
         "Remaps/migrations"],
        rows, title="Relative execution time (CC-NUMA baseline = 1.00)"))


if __name__ == "__main__":
    main()
