#!/usr/bin/env python3
"""Quickstart: simulate one workload on all five architectures.

Runs the paper's em3d workload at a memory pressure of your choice on
CC-NUMA, pure S-COMA, R-NUMA, VC-NUMA and AS-COMA, and prints each
architecture's execution time relative to CC-NUMA plus the execution-time
breakdown -- a single column of the paper's Figure 2.

Usage:
    python examples/quickstart.py [pressure]      # default 0.7
"""

import sys

from repro import SystemConfig, simulate
from repro.harness import format_table, scaled_policy
from repro.sim.stats import TIME_BUCKETS
from repro.workloads import generate_workload


def main() -> None:
    pressure = float(sys.argv[1]) if len(sys.argv) > 1 else 0.7
    print(f"Generating em3d workload (memory pressure {pressure:.0%})...")
    workload = generate_workload("em3d", scale=0.5)
    config = SystemConfig(n_nodes=workload.n_nodes, memory_pressure=pressure)

    results = {}
    for arch in ("CCNUMA", "SCOMA", "RNUMA", "VCNUMA", "ASCOMA"):
        results[arch] = simulate(workload, scaled_policy(arch), config)
        print(f"  {arch}: done")

    baseline = results["CCNUMA"].aggregate().total_cycles()
    rows = []
    for arch, result in results.items():
        agg = result.aggregate()
        total = agg.total_cycles()
        rows.append([
            arch,
            f"{total / baseline:.2f}",
            f"{agg.K_OVERHD / total:.1%}",
            agg.relocations,
            agg.evictions,
            f"{agg.SCOMA:,}",
            f"{agg.COLD + agg.CONF_CAPC:,}",
        ])
    print()
    print(format_table(
        ["Architecture", "Rel. time", "Kernel ovhd", "Relocations",
         "Evictions", "Page-cache hits", "Remote misses"],
        rows,
        title=f"em3d at {pressure:.0%} memory pressure"
              " (execution time relative to CC-NUMA)"))

    print("\nAS-COMA time breakdown (cycles):")
    agg = results["ASCOMA"].aggregate()
    for bucket in TIME_BUCKETS:
        print(f"  {bucket:9s} {getattr(agg, bucket):>14,}")


if __name__ == "__main__":
    main()
