#!/usr/bin/env python3
"""Memory-pressure sweep: reproduce one whole chart of Figures 2-3.

Sweeps an application across memory pressures for every architecture and
renders the paper's two stacked-bar chart families (relative execution
time by component, and where misses were satisfied) as ASCII bars.

This is the paper's central experiment: watch S-COMA collapse as
pressure rises, R-NUMA/VC-NUMA thrash past ~70%, and AS-COMA converge to
CC-NUMA instead.

Usage:
    python examples/memory_pressure_sweep.py [app] [scale]
    # app in {barnes, em3d, fft, lu, ocean, radix}, default em3d
"""

import sys

from repro.harness import render_figure
from repro.harness.experiment import APP_PRESSURES


def main() -> None:
    app = sys.argv[1] if len(sys.argv) > 1 else "em3d"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.5
    if app not in APP_PRESSURES:
        raise SystemExit(f"unknown app {app!r}; choose from"
                         f" {sorted(APP_PRESSURES)}")
    pressures = ", ".join(f"{p:.0%}" for p in APP_PRESSURES[app])
    print(f"Sweeping {app} across pressures {pressures}"
          f" on 5 architectures (scale {scale})...\n")
    print(render_figure(app, scale=scale))


if __name__ == "__main__":
    main()
