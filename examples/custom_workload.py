#!/usr/bin/env python3
"""Build a custom workload and find its architecture crossover point.

Shows the library's workload API: construct a synthetic workload with a
precisely-controlled working set, compute its *ideal memory pressure*
analytically (Table 5's formula, H / (H + R)), then sweep pressure to
locate where pure S-COMA stops beating CC-NUMA and check that AS-COMA
never falls far behind either of them.

This is the experiment to run first when evaluating a new workload's
fit for a hybrid memory architecture.
"""

from repro import SystemConfig, simulate
from repro.harness import format_table
from repro.harness.experiment import scaled_policy
from repro.workloads.base import SyntheticGenerator, WorkloadSpec


def main() -> None:
    spec = WorkloadSpec(
        name="custom-graph",
        n_nodes=8,
        home_pages_per_node=48,
        remote_pages_per_node=72,     # ideal pressure = 48/120 = 40%
        hot_fraction=0.85,
        sweeps=10,
        lines_per_visit=8,
        write_fraction=0.15,
        compute_per_ref=6.0,
        scatter_lines=True,           # pointer-chasing: RAC-hostile
        seed=1234,
    )
    print(f"Custom workload: H={spec.home_pages_per_node} pages/node,"
          f" R={spec.remote_pages_per_node} remote pages/node")
    print(f"Analytic ideal pressure: {spec.ideal_pressure():.0%}\n")

    workload = SyntheticGenerator(spec).generate()

    rows = []
    for pressure in (0.1, 0.3, 0.5, 0.7, 0.9):
        config = SystemConfig(n_nodes=spec.n_nodes, memory_pressure=pressure)
        baseline = simulate(workload, scaled_policy("CCNUMA"),
                            config).aggregate().total_cycles()
        row = [f"{pressure:.0%}"]
        for arch in ("SCOMA", "ASCOMA"):
            total = simulate(workload, scaled_policy(arch),
                             config).aggregate().total_cycles()
            row.append(f"{total / baseline:.2f}")
        rows.append(row)

    print(format_table(
        ["Pressure", "S-COMA rel.", "AS-COMA rel."], rows,
        title="Relative execution time vs CC-NUMA (1.00)"))
    print("\nBelow the ideal pressure S-COMA and AS-COMA match; above it"
          "\nS-COMA degrades while AS-COMA's backoff holds it near CC-NUMA.")


if __name__ == "__main__":
    main()
