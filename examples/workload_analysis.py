#!/usr/bin/env python3
"""Characterise a workload before simulating it.

Uses :mod:`repro.sim.tracestats` to print, for any of the paper's
workloads (or your own), the properties that decide which memory
architecture will win:

* home/remote working-set sizes and the analytic ideal pressure;
* the sharing profile (private / pairwise / widely-shared pages) --
  pairwise pages are migration candidates, widely-shared ones need the
  S-COMA page cache;
* the page reuse-distance distribution -- mass below the page-cache
  size is locality S-COMA can capture;
* the per-window working-set curve -- phases (lu) vs a stable set (em3d).

Usage:
    python examples/workload_analysis.py [app] [scale]
"""

import sys

from repro.harness import format_table
from repro.sim.config import SystemConfig
from repro.sim.tracestats import analyze, working_set_curve
from repro.workloads import generate_workload


def main() -> None:
    app = sys.argv[1] if len(sys.argv) > 1 else "lu"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.5
    workload = generate_workload(app, scale=scale)
    lpp = SystemConfig(n_nodes=workload.n_nodes).address_map().lines_per_page

    report = analyze(workload, lpp)
    print(f"Workload: {report['name']}  ({report['n_nodes']} nodes,"
          f" {workload.total_refs():,} shared references)")
    print(f"  home pages/node    : {report['home_pages_per_node']}")
    print(f"  max remote pages   : {report['max_remote_pages']}")
    print(f"  ideal pressure     : {report['ideal_pressure']:.0%}"
          "   (S-COMA never evicts below this)")

    print("\nSharing profile (pages by number of touching nodes):")
    for touchers, pages in report["sharing"].items():
        kind = {1: "private", 2: "pairwise (migration candidates)"}.get(
            touchers, "widely shared (page-cache territory)")
        print(f"  {touchers} node(s): {pages:5d} pages  -- {kind}")

    print("\nPer-node summary:")
    rows = [[s["node"], s["shared_refs"], s["remote_pages"],
             s["remote_refs"], f"{s['median_reuse_distance']:.0f}",
             f"{s['p90_reuse_distance']:.0f}"]
            for s in report["nodes"]]
    print(format_table(
        ["Node", "Refs", "Remote pages", "Remote refs",
         "Median reuse dist", "p90 reuse dist"], rows))

    print("\nWorking-set curve, node 0 (distinct pages per window):")
    curve = working_set_curve(workload.traces[0], lpp, n_windows=18)
    sizes = [size for _, size in curve]
    peak = max(sizes) if sizes else 1
    for i, size in enumerate(sizes):
        bar = "#" * int(40 * size / peak)
        print(f"  w{i:02d} |{bar} {size}")
    print("\nA sawtooth/step curve = phases (a small page cache suffices);"
          "\na flat curve at the remote-set size = stable hot set.")


if __name__ == "__main__":
    main()
