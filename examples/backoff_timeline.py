#!/usr/bin/env python3
"""Trace AS-COMA's adaptive state over time (paper Section 3 in motion).

Attaches a time-series sampler to two runs and renders ASCII sparklines
of the per-node backoff state:

* em3d at 90% pressure -- sustained thrashing: the relocation threshold
  climbs, the daemon interval stretches, relocation eventually stops;
* lu at 90% pressure -- phased working sets: the threshold climbs during
  a phase and *recovers* at phase changes when the daemon finds the dead
  phase's pages cold again.

Usage:
    python examples/backoff_timeline.py [app] [pressure]
"""

import sys

from repro.harness.experiment import scaled_policy
from repro.sim.config import SystemConfig
from repro.sim.engine import Engine
from repro.sim.timeseries import TimeSeriesSampler
from repro.workloads import generate_workload


def timeline(app: str, pressure: float) -> None:
    workload = generate_workload(app, scale=0.5)
    config = SystemConfig(n_nodes=workload.n_nodes, memory_pressure=pressure)
    sampler = TimeSeriesSampler()
    engine = Engine(workload, scaled_policy("ASCOMA"), config,
                    sampler=sampler)
    result = engine.run()

    print(f"\n{app} at {pressure:.0%} pressure, AS-COMA "
          f"({len(sampler.times(0))} barrier samples); low->high glyphs"
          " ' .:-=+*#%@'\n")
    for field, label in (
        ("threshold", "relocation threshold"),
        ("daemon_interval", "pageout daemon interval"),
        ("free_frames", "free page-cache frames"),
        ("relocations", "cumulative relocations"),
        ("evictions", "cumulative evictions"),
    ):
        line = sampler.sparkline(0, field)
        values = sampler.series(0, field)
        print(f"  {label:26s} |{line}| {min(values)} -> {max(values)}")

    agg = result.aggregate()
    print(f"\n  final: {agg.relocations} relocations,"
          f" {agg.daemon_thrash} thrash signals,"
          f" kernel overhead {agg.K_OVERHD / agg.total_cycles():.1%}")


def main() -> None:
    if len(sys.argv) > 1:
        timeline(sys.argv[1],
                 float(sys.argv[2]) if len(sys.argv) > 2 else 0.9)
    else:
        timeline("em3d", 0.9)   # sustained thrash: backoff and hold
        timeline("lu", 0.9)     # phase changes: backoff and recovery


if __name__ == "__main__":
    main()
