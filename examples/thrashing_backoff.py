#!/usr/bin/env python3
"""Watch AS-COMA's thrashing backoff at work (paper Section 3).

Runs em3d at 90% memory pressure under three policies:

* R-NUMA            -- no backoff: relocations and forced evictions churn;
* AS-COMA, fixed    -- S-COMA-first allocation but no adaptation;
* AS-COMA, adaptive -- the full design: the pageout daemon detects
  thrashing, the relocation threshold climbs, the daemon slows down, and
  relocation is eventually disabled.

Prints the per-node backoff state after the run: threshold reached,
whether relocation ended up disabled, and the page-management tallies.
"""

from repro import SystemConfig
from repro.harness import format_table
from repro.harness.experiment import scaled_policy
from repro.sim.engine import Engine
from repro.workloads import generate_workload


def run(policy, workload, config):
    engine = Engine(workload, policy, config)
    result = engine.run()
    return engine, result


def main() -> None:
    workload = generate_workload("em3d", scale=0.5)
    config = SystemConfig(n_nodes=workload.n_nodes, memory_pressure=0.9)
    print("em3d at 90% memory pressure -- the thrashing regime.\n")

    variants = [
        ("R-NUMA (no backoff)", scaled_policy("RNUMA")),
        ("AS-COMA (adaptive off)", scaled_policy("ASCOMA", adaptive=False)),
        ("AS-COMA (full)", scaled_policy("ASCOMA")),
    ]

    rows = []
    ascoma_engine = None
    for label, policy in variants:
        engine, result = run(policy, workload, config)
        agg = result.aggregate()
        rows.append([
            label,
            f"{agg.total_cycles():,}",
            f"{agg.K_OVERHD / agg.total_cycles():.1%}",
            agg.relocations,
            agg.forced_evictions,
            agg.daemon_thrash,
        ])
        if label == "AS-COMA (full)":
            ascoma_engine = engine

    print(format_table(
        ["Policy", "Total cycles", "Kernel ovhd", "Relocations",
         "Forced evictions", "Thrash signals"],
        rows))

    print("\nPer-node AS-COMA backoff state after the run:")
    for node in ascoma_engine.machine.nodes:
        backoff = node.policy_state.backoff
        print(f"  node {node.id}: threshold {backoff.threshold:4d}"
              f" (base {backoff.base_threshold}),"
              f" relocation {'DISABLED' if not backoff.enabled else 'enabled'},"
              f" backoffs {backoff.backoffs}, recoveries {backoff.recoveries},"
              f" daemon interval {node.daemon.interval:,} cycles")


if __name__ == "__main__":
    main()
