"""Extension bench E2: home-page placement policies (paper Section 4.1).

The paper's machines use a balanced first-touch home allocation; the
CC-NUMA literature it cites also considered locality-blind round-robin
and random placement.  This bench quantifies the choice on two fronts:

* plain CC-NUMA lives or dies by placement (first-touch keeps each
  node's own data local);
* AS-COMA's advantage over CC-NUMA *survives* bad placement, but the
  page cache does not repair it: the extra cold fetches and the write
  traffic to scattered "own" data are placement-driven costs no amount
  of read caching removes.  Good placement and a hybrid architecture
  are complements, not substitutes.
"""

from repro.harness.experiment import DEFAULT_SCALE, get_workload, scaled_policy
from repro.sim.config import SystemConfig
from repro.sim.engine import simulate

PLACEMENTS = ("first-touch", "round-robin", "random")


def sweep(arch, pressure):
    wl = get_workload("em3d", DEFAULT_SCALE)
    out = {}
    for placement in PLACEMENTS:
        cfg = SystemConfig(n_nodes=wl.n_nodes, memory_pressure=pressure,
                           home_placement=placement)
        out[placement] = simulate(wl, scaled_policy(arch), cfg).aggregate()
    return out


def test_placement_on_ccnuma(benchmark, emit):
    results = benchmark.pedantic(sweep, args=("CCNUMA", 0.5), rounds=1,
                                 iterations=1)
    ft = results["first-touch"].total_cycles()
    lines = ["E2 home placement, CC-NUMA on em3d (relative to first-touch):"]
    for placement, agg in results.items():
        lines.append(f"  {placement:12s} rel {agg.total_cycles() / ft:.2f},"
                     f" HOME misses {agg.HOME:,},"
                     f" remote misses {agg.remote_misses():,}")
    emit("\n".join(lines), "ext_placement_ccnuma")

    # First-touch keeps the majority of misses home-local; the blind
    # policies scatter them and pay >20% more time.
    assert results["round-robin"].total_cycles() > 1.15 * ft
    assert results["random"].total_cycles() > 1.15 * ft
    assert results["first-touch"].HOME > 3 * results["random"].HOME


def test_placement_and_hybrid_are_complements(benchmark, emit):
    def run():
        return (sweep("ASCOMA", 0.1), sweep("CCNUMA", 0.1))

    ascoma, ccnuma = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["E2 home placement at 10% pressure"
             " (AS-COMA's page cache vs placement):"]
    for placement in PLACEMENTS:
        cc_pen = (ccnuma[placement].total_cycles()
                  / ccnuma["first-touch"].total_cycles())
        asc_pen = (ascoma[placement].total_cycles()
                   / ascoma["first-touch"].total_cycles())
        cross = (ascoma[placement].total_cycles()
                 / ccnuma[placement].total_cycles())
        lines.append(f"  {placement:12s} CC-NUMA penalty {cc_pen:.2f},"
                     f" AS-COMA penalty {asc_pen:.2f},"
                     f" AS-COMA vs CC-NUMA {cross:.2f}")
    emit("\n".join(lines), "ext_placement_ascoma")

    # Finding: AS-COMA keeps beating CC-NUMA by ~30% under *any*
    # placement, but its own placement penalty is just as large -- the
    # page cache caches reads, it does not relocate homes.  Placement
    # quality and hybrid caching are complementary.
    for placement in PLACEMENTS:
        cross = (ascoma[placement].total_cycles()
                 / ccnuma[placement].total_cycles())
        assert cross < 0.8, (placement, cross)
    asc_pen = (ascoma["random"].total_cycles()
               / ascoma["first-touch"].total_cycles())
    assert asc_pen > 1.1  # the penalty is NOT repaired
