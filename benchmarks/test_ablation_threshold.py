"""Ablation A3: relocation-threshold sensitivity (paper Section 2.4).

"If the refetch threshold is too low, remappings occur too frequently,
which leads to thrashing.  If it is too high, remappings that could be
usefully made will be delayed."  Sweeps R-NUMA's fixed threshold (the
policy whose relocation is gated purely by the threshold) at moderate
pressure and checks both arms: relocation churn falls monotonically as
the threshold rises, while remote conflict misses rise (promotion is
delayed).
"""

from repro.harness.experiment import DEFAULT_SCALE, get_workload
from repro.core import RNUMAPolicy
from repro.sim.config import SystemConfig
from repro.sim.engine import simulate

THRESHOLDS = (4, 8, 16, 32, 64)


def sweep():
    wl = get_workload("em3d", DEFAULT_SCALE)
    cfg = SystemConfig(n_nodes=wl.n_nodes, memory_pressure=0.7)
    rows = []
    for threshold in THRESHOLDS:
        agg = simulate(wl, RNUMAPolicy(threshold=threshold), cfg).aggregate()
        rows.append({
            "threshold": threshold,
            "cycles": agg.total_cycles(),
            "relocations": agg.relocations,
            "k_overhead": agg.K_OVERHD,
            "conf_capc": agg.CONF_CAPC,
        })
    return rows


def test_threshold_sensitivity(benchmark, emit):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = ["A3 threshold sensitivity (R-NUMA, em3d, 70% pressure):",
             "  thr | cycles        | relocations | K_OVERHD     | CONF/CAPC"]
    for r in rows:
        lines.append(f"  {r['threshold']:3d} | {r['cycles']:13,} |"
                     f" {r['relocations']:11d} | {r['k_overhead']:12,} |"
                     f" {r['conf_capc']}")
    emit("\n".join(lines), "ablation_threshold")

    relocs = [r["relocations"] for r in rows]
    conf = [r["conf_capc"] for r in rows]
    # Relocation churn falls as the bar rises...
    assert relocs[0] > relocs[-1]
    assert all(a >= b for a, b in zip(relocs, relocs[1:]))
    # ...while remote conflict misses rise (slower convergence to S-COMA).
    assert conf[-1] > conf[0]
