"""Benches F2/F3 (right charts): where shared-data misses were satisfied.

Asserts the paper's claims about the miss-class composition:

* CC-NUMA satisfies no misses from a page cache; S-COMA sends no
  conflict misses remote;
* on em3d at 90% pressure R-NUMA has *fewer* remote conflict misses than
  AS-COMA yet runs slower -- the paper's key observation that reducing
  CONF/CAPC at any cost backfires (kernel overhead + induced cold);
* fft's RAC satisfies more remote-page traffic than goes remote;
* ocean satisfies the overwhelming majority of misses locally even at
  high pressure.
"""

import pytest

from repro.harness import figure_series
from repro.harness.experiment import DEFAULT_SCALE, run_app


@pytest.fixture(scope="module")
def em3d_series():
    return figure_series("em3d", scale=DEFAULT_SCALE)


def test_em3d_miss_composition(benchmark, emit, em3d_series):
    misses = benchmark.pedantic(lambda: em3d_series["misses"], rounds=1,
                                iterations=1)
    lines = ["em3d: miss composition (counts)"]
    for label, parts in misses.items():
        lines.append(f"  {label:14s} " + " ".join(
            f"{k}={v}" for k, v in parts.items()))
    emit("\n".join(lines), "figure_em3d_misses")

    ccnuma = misses["CCNUMA"]
    assert ccnuma["SCOMA"] == 0

    scoma_low = misses["SCOMA(10%)"]
    assert scoma_low["CONF_CAPC"] == 0 and scoma_low["RAC"] == 0
    assert scoma_low["SCOMA"] > 0

    # The paper's R-NUMA paradox at 90%: fewer remote conflict misses
    # than AS-COMA, more total time (checked in the exectime bench).
    rnuma = misses["RNUMA(90%)"]
    ascoma = misses["ASCOMA(90%)"]
    assert rnuma["CONF_CAPC"] < ascoma["CONF_CAPC"]
    # ...but R-NUMA pays more induced cold misses.
    assert rnuma["COLD"] > ascoma["COLD"]


def test_scoma_cold_inflation_under_thrashing(benchmark, emit):
    """S-COMA's 90% bar shows COLD swelling with remap-induced misses."""

    def run():
        low = run_app("em3d", "SCOMA", 0.1, scale=DEFAULT_SCALE).aggregate()
        high = run_app("em3d", "SCOMA", 0.9, scale=DEFAULT_SCALE).aggregate()
        return low, high

    low, high = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("em3d S-COMA cold misses: "
         f"10% pressure: {low.COLD} (induced {low.induced_cold}); "
         f"90% pressure: {high.COLD} (induced {high.induced_cold})",
         "figure_scoma_cold")
    assert high.COLD > 2 * low.COLD
    assert high.induced_cold > low.induced_cold


def test_fft_rac_dominates_remote_traffic(benchmark, emit):
    def run():
        return run_app("fft", "CCNUMA", 0.5, scale=DEFAULT_SCALE).aggregate()

    agg = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(f"fft CC-NUMA: RAC hits {agg.RAC} vs remote misses "
         f"{agg.COLD + agg.CONF_CAPC}", "figure_fft_rac")
    assert agg.RAC > agg.CONF_CAPC


def test_ocean_misses_mostly_local(benchmark, emit):
    def run():
        return run_app("ocean", "ASCOMA", 0.9, scale=DEFAULT_SCALE).aggregate()

    agg = benchmark.pedantic(run, rounds=1, iterations=1)
    local = agg.HOME + agg.SCOMA + agg.RAC
    remote = agg.COLD + agg.CONF_CAPC
    emit(f"ocean AS-COMA(90%): local {local} vs remote {remote} misses",
         "figure_ocean_local")
    assert local > 5 * remote
