"""Extension bench E1: dynamic page migration vs the hybrids.

The paper (Section 2.2) dismisses CC-NUMA page migration as "only
successful for read-only or non-shared pages".  This bench quantifies
exactly that: on a producer->consumer workload (every page has one
remote consumer) migration matches the hybrids *and keeps its win at
90% memory pressure* because it consumes no page-cache frames; on em3d
(widely shared pages) the non-shared gate vetoes nearly everything and
migration degenerates to plain CC-NUMA -- which is why the hybrid
approach won this design space.
"""

import pytest

from repro.core import make_policy
from repro.harness.experiment import DEFAULT_SCALE, get_workload
from repro.sim.config import SystemConfig
from repro.sim.engine import simulate
from repro.workloads import migratory


def run_migratory():
    wl = migratory.generate(scale=DEFAULT_SCALE)
    rows = {}
    for pressure in (0.1, 0.9):
        cfg = SystemConfig(n_nodes=wl.n_nodes, memory_pressure=pressure)
        base = simulate(wl, make_policy("ccnuma"), cfg).aggregate()
        mig = simulate(wl, make_policy("ccnuma-mig", threshold=16),
                       cfg).aggregate()
        asc = simulate(wl, make_policy("ascoma", threshold=16, increment=8),
                       cfg).aggregate()
        bt = base.total_cycles()
        rows[pressure] = {
            "mig_rel": mig.total_cycles() / bt,
            "asc_rel": asc.total_cycles() / bt,
            "migrations": mig.migrations,
            "skipped": mig.skipped_migrations,
        }
    return rows


def test_migration_on_producer_consumer(benchmark, emit):
    rows = benchmark.pedantic(run_migratory, rounds=1, iterations=1)
    lines = ["E1 page migration, producer->consumer workload"
             " (relative to CC-NUMA = 1.00):"]
    for pressure, r in rows.items():
        lines.append(f"  {pressure:.0%}: CCNUMA-MIG {r['mig_rel']:.2f}"
                     f" ({r['migrations']} migrations,"
                     f" {r['skipped']} vetoed), AS-COMA {r['asc_rel']:.2f}")
    emit("\n".join(lines), "ext_migration_producer_consumer")

    # Migration wins at any pressure and every page migrates exactly once.
    for r in rows.values():
        assert r["mig_rel"] < 0.85
        assert r["skipped"] == 0
    # Pressure-insensitive: same relative time at 10% and 90%.
    assert rows[0.1]["mig_rel"] == pytest.approx(rows[0.9]["mig_rel"],
                                                 rel=0.05)
    # At low pressure AS-COMA's page cache is the better tool; at high
    # pressure migration keeps winning while AS-COMA converges to CC-NUMA.
    assert rows[0.1]["asc_rel"] < rows[0.1]["mig_rel"]
    assert rows[0.9]["mig_rel"] < rows[0.9]["asc_rel"]


def test_migration_vetoed_on_shared_workload(benchmark, emit):
    def run():
        wl = get_workload("em3d", DEFAULT_SCALE)
        cfg = SystemConfig(n_nodes=wl.n_nodes, memory_pressure=0.5)
        base = simulate(wl, make_policy("ccnuma"), cfg).aggregate()
        mig = simulate(wl, make_policy("ccnuma-mig", threshold=16),
                       cfg).aggregate()
        return base, mig

    base, mig = benchmark.pedantic(run, rounds=1, iterations=1)
    rel = mig.total_cycles() / base.total_cycles()
    emit(f"E1 page migration on em3d (shared pages): rel {rel:.2f},"
         f" {mig.migrations} migrations vs {mig.skipped_migrations} vetoed",
         "ext_migration_shared")
    assert mig.skipped_migrations > mig.migrations
    assert 0.9 < rel < 1.15  # essentially CC-NUMA
