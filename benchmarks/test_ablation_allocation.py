"""Ablation A1: the S-COMA-first allocation policy (paper Section 5.1).

Compares full AS-COMA against AS-COMA with ``scoma_first=False`` (pages
start in CC-NUMA mode and must earn promotion) at 10% memory pressure.
The paper isolates this effect the same way: at 10% pressure no page
remappings beyond the initial ones occur, so any difference is the
allocation policy.  Expected: a clear win on radix (the paper's ~17%
over R-NUMA/VC-NUMA case), little effect on fft/ocean.
"""

import pytest

from repro.harness.experiment import DEFAULT_SCALE, get_workload, scaled_policy
from repro.sim.config import SystemConfig
from repro.sim.engine import simulate


def run_pair(app):
    wl = get_workload(app, DEFAULT_SCALE)
    cfg = SystemConfig(n_nodes=wl.n_nodes, memory_pressure=0.1)
    full = simulate(wl, scaled_policy("ASCOMA"), cfg)
    no_first = simulate(wl, scaled_policy("ASCOMA", scoma_first=False), cfg)
    return (full.aggregate().total_cycles(),
            no_first.aggregate().total_cycles())


@pytest.mark.parametrize("app", ["radix", "em3d"])
def test_scoma_first_wins_at_low_pressure(app, benchmark, emit):
    full, no_first = benchmark.pedantic(run_pair, args=(app,), rounds=1,
                                        iterations=1)
    gain = (no_first - full) / no_first
    emit(f"A1 allocation ablation ({app}, 10% pressure):\n"
         f"  AS-COMA (S-COMA-first) : {full:,} cycles\n"
         f"  AS-COMA (CC-NUMA-first): {no_first:,} cycles\n"
         f"  S-COMA-first gain      : {100 * gain:.1f}%",
         f"ablation_allocation_{app}")
    assert full < no_first, "S-COMA-first allocation must win at 10% pressure"
    assert gain > 0.05


def test_scoma_first_negligible_on_fft(benchmark, emit):
    """fft relocates almost nothing, so the initial policy barely matters
    (paper: 'the impact of initially mapping pages in S-COMA mode is
    negligible' for fft/ocean)."""
    full, no_first = benchmark.pedantic(run_pair, args=("fft",), rounds=1,
                                        iterations=1)
    gain = abs(no_first - full) / no_first
    emit(f"A1 allocation ablation (fft, 10% pressure): gain {100 * gain:.1f}%",
         "ablation_allocation_fft")
    assert gain < 0.15
