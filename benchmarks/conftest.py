"""Shared benchmark fixtures.

Every bench both *times* its experiment (pytest-benchmark) and *emits*
the regenerated paper artifact: printed to stdout and written under
``results/`` so `pytest benchmarks/ --benchmark-only | tee ...` captures
everything needed for EXPERIMENTS.md.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def emit(results_dir, request):
    """Callable writing an artifact to results/<bench-name>.txt and stdout."""

    def _emit(text: str, name: str | None = None) -> None:
        stem = name or request.node.name.replace("/", "_")
        path = results_dir / f"{stem}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[written to {path}]")

    return _emit
