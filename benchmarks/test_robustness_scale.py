"""Robustness bench: conclusions must hold across workload scales.

Our workloads are scaled-down substitutes for the paper's SPLASH-2
runs; the conclusions should be properties of the *shape* (working set
vs page cache, hotness, locality), not of the absolute trace size.
Runs the em3d headline at scales 0.25x / 0.5x / 1.0x and checks the
ordering and AS-COMA's CC-NUMA convergence at every scale.
"""

from repro.harness.experiment import scaled_policy
from repro.sim.config import SystemConfig
from repro.sim.engine import simulate
from repro.workloads import em3d

SCALES = (0.25, 0.5, 1.0)


def sweep():
    rows = []
    for scale in SCALES:
        wl = em3d.generate(scale=scale)
        cfg = SystemConfig(n_nodes=wl.n_nodes, memory_pressure=0.9)
        base = simulate(wl, scaled_policy("CCNUMA"),
                        cfg).aggregate().total_cycles()
        scoma = simulate(wl, scaled_policy("SCOMA"),
                         cfg).aggregate().total_cycles() / base
        rnuma = simulate(wl, scaled_policy("RNUMA"),
                         cfg).aggregate().total_cycles() / base
        ascoma = simulate(wl, scaled_policy("ASCOMA"),
                          cfg).aggregate().total_cycles() / base
        rows.append((scale, wl.total_refs(), scoma, rnuma, ascoma))
    return rows


def test_scale_robustness(benchmark, emit):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = ["R2 scale robustness (em3d, 90% pressure, rel to CC-NUMA):",
             "  scale | refs      | S-COMA | R-NUMA | AS-COMA"]
    for scale, refs, scoma, rnuma, ascoma in rows:
        lines.append(f"  {scale:5.2f} | {refs:9,} | {scoma:6.2f} |"
                     f" {rnuma:6.2f} | {ascoma:.2f}")
    emit("\n".join(lines), "robustness_scale")

    for scale, _, scoma, rnuma, ascoma in rows:
        assert scoma > 2.0, (scale, scoma)        # S-COMA collapses
        assert rnuma > 1.2, (scale, rnuma)        # R-NUMA thrashes
        assert ascoma < 1.1, (scale, ascoma)      # AS-COMA converges
        assert ascoma < rnuma < scoma, scale      # full ordering
