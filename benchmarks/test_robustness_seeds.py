"""Robustness bench: conclusions must not depend on the trace seed.

The workload generators are stochastic (page placement, visit order,
write draws); the paper's conclusions should hold for *any* draw.  Runs
the headline comparison (em3d at 90%: AS-COMA vs R-NUMA vs CC-NUMA)
across three generator seeds and checks that every seed reproduces the
ordering and that the relative times are stable to within a few
percent.
"""

import statistics

from repro.harness.experiment import scaled_policy
from repro.sim.config import SystemConfig
from repro.sim.engine import simulate
from repro.workloads import em3d

SEEDS = (7, 1001, 424242)


def sweep():
    rows = []
    for seed in SEEDS:
        wl = em3d.generate(scale=0.5, seed=seed)
        cfg = SystemConfig(n_nodes=wl.n_nodes, memory_pressure=0.9)
        base = simulate(wl, scaled_policy("CCNUMA"),
                        cfg).aggregate().total_cycles()
        rnuma = simulate(wl, scaled_policy("RNUMA"),
                         cfg).aggregate().total_cycles() / base
        ascoma = simulate(wl, scaled_policy("ASCOMA"),
                          cfg).aggregate().total_cycles() / base
        rows.append((seed, rnuma, ascoma))
    return rows


def test_seed_robustness(benchmark, emit):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = ["R1 seed robustness (em3d, 90% pressure, rel to CC-NUMA):",
             "  seed   | R-NUMA | AS-COMA"]
    for seed, rnuma, ascoma in rows:
        lines.append(f"  {seed:6d} | {rnuma:6.2f} | {ascoma:.2f}")
    ascomas = [r[2] for r in rows]
    rnumas = [r[1] for r in rows]
    lines.append(f"  stdev  | {statistics.pstdev(rnumas):6.3f} |"
                 f" {statistics.pstdev(ascomas):.3f}")
    emit("\n".join(lines), "robustness_seeds")

    for seed, rnuma, ascoma in rows:
        assert ascoma < 1.1, (seed, ascoma)       # AS-COMA ~ CC-NUMA
        assert rnuma > 1.2, (seed, rnuma)         # R-NUMA thrashes
        assert ascoma < rnuma, seed               # ordering holds
    assert statistics.pstdev(ascomas) < 0.05
