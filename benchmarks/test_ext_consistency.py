"""Extension bench E5: sequential vs release consistency.

The paper's machine is sequentially consistent, so every write to a
shared chunk stalls for the slowest invalidation acknowledgement.
Release consistency overlaps those acks with execution.  This bench
quantifies what the SC choice costs per application and confirms it is
orthogonal to the memory-architecture result: write-stall time is a
small, architecture-independent slice, so AS-COMA's margin over CC-NUMA
is the same under either model.
"""

import pytest

from repro.harness.experiment import DEFAULT_SCALE, get_workload, scaled_policy
from repro.sim.config import SystemConfig
from repro.sim.engine import simulate


def sweep():
    rows = []
    for app in ("ocean", "em3d"):
        wl = get_workload(app, DEFAULT_SCALE)
        row = {"app": app}
        for cons in ("sc", "rc"):
            cfg = SystemConfig(n_nodes=wl.n_nodes, memory_pressure=0.5,
                               consistency=cons)
            cc = simulate(wl, scaled_policy("CCNUMA"), cfg).aggregate()
            asc = simulate(wl, scaled_policy("ASCOMA"), cfg).aggregate()
            row[cons] = {
                "ccnuma": cc.total_cycles(),
                "ascoma_rel": asc.total_cycles() / cc.total_cycles(),
            }
        rows.append(row)
    return rows


def test_sc_vs_rc(benchmark, emit):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = ["E5 consistency-model study (50% pressure):",
             "  app    | CC-NUMA SC cycles | RC speedup | AS-COMA rel"
             " (SC) | (RC)"]
    for row in rows:
        speedup = row["sc"]["ccnuma"] / row["rc"]["ccnuma"]
        lines.append(f"  {row['app']:6s} | {row['sc']['ccnuma']:17,} |"
                     f" {speedup:10.3f} | {row['sc']['ascoma_rel']:16.2f} |"
                     f" {row['rc']['ascoma_rel']:.2f}")
    emit("\n".join(lines), "ext_consistency")

    for row in rows:
        # RC is a (small) strict improvement for the baseline...
        assert row["rc"]["ccnuma"] <= row["sc"]["ccnuma"]
        # ...and the architecture comparison is consistency-independent.
        assert row["rc"]["ascoma_rel"] == pytest.approx(
            row["sc"]["ascoma_rel"], abs=0.05)
