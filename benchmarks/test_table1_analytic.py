"""Bench T1/T2: regenerate the paper's analytic Tables 1 and 2.

Also cross-validates the Table 1 formulas against a real simulation:
the analytic model evaluated on the simulator's own miss counts must
track the simulator's measured shared-memory stall time.
"""

from repro.core import MissCounts, RemoteOverheadModel
from repro.harness import render_table1, render_table2
from repro.harness.tables import table4


def test_table1_and_2_render(benchmark, emit):
    out = benchmark(lambda: render_table1() + "\n\n" + render_table2())
    emit(out, "table1_table2")


def test_table1_formula_tracks_simulation(benchmark, emit):
    """Evaluate the hybrid formula on measured counts for AS-COMA/em3d."""

    def run():
        # Contention off: Table 1 is a minimum-latency cost model, and
        # the paper notes average latencies exceed the minimum because
        # of (modelled) contention.
        from repro.harness.experiment import get_workload, scaled_policy
        from repro.sim.config import SystemConfig
        from repro.sim.engine import simulate

        wl = get_workload("em3d", 0.35)
        cfg = SystemConfig(n_nodes=wl.n_nodes, memory_pressure=0.7,
                           model_contention=False)
        result = simulate(wl, scaled_policy("ASCOMA"), cfg)
        agg = result.aggregate()
        lat = table4()
        model = RemoteOverheadModel(t_pagecache=int(lat["Local Memory"]),
                                    t_remote=int(lat["Remote Memory"]))
        counts = MissCounts(n_pagecache=agg.SCOMA,
                            n_remote=agg.CONF_CAPC,
                            n_cold=agg.COLD,
                            t_overhead=agg.K_OVERHD)
        predicted = model.hybrid(counts)
        # Measured stall excludes HOME/RAC service, which the Table 1
        # formula does not model; compare against the remote+pagecache
        # component of U_SH_MEM.
        measured = (agg.U_SH_MEM + agg.K_OVERHD
                    - agg.HOME * int(lat["Local Memory"])
                    - agg.RAC * int(lat["RAC"]))
        return predicted, measured

    predicted, measured = benchmark.pedantic(run, rounds=1, iterations=1)
    ratio = predicted / measured
    emit("Table 1 cross-validation (AS-COMA, em3d, 70% pressure):\n"
         f"  analytic remote overhead : {predicted:,} cycles\n"
         f"  simulated remote overhead: {measured:,} cycles\n"
         f"  ratio                    : {ratio:.2f}",
         "table1_crossvalidation")
    assert 0.5 < ratio < 2.0, "analytic model diverged from simulation"
