"""Bench T4b: average observed latency vs Table 4 minimums.

Paper, Section 4.1: "The average latency in our simulation is
considerably higher than this minimum because of contention for various
resources (bus, memory banks, networks, etc.), which we accurately
model."  This bench measures per-class average stall under a real
workload and checks both directions: averages sit *above* the minimums
under load, and collapse back *to* the minimums when contention
modelling is disabled.
"""

import pytest

from repro.harness.experiment import DEFAULT_SCALE, get_workload, scaled_policy
from repro.sim.config import SystemConfig
from repro.sim.engine import simulate


def run(contention: bool):
    wl = get_workload("em3d", DEFAULT_SCALE)
    cfg = SystemConfig(n_nodes=wl.n_nodes, memory_pressure=0.5,
                       model_contention=contention)
    return simulate(wl, scaled_policy("CCNUMA"), cfg).aggregate()


def test_average_vs_minimum_latency(benchmark, emit):
    loaded, quiet = benchmark.pedantic(
        lambda: (run(True), run(False)), rounds=1, iterations=1)
    minimums = {"HOME": 50, "RAC": 36, "COLD": 180, "CONF_CAPC": 180}
    lines = ["T4b average observed latency (em3d, CC-NUMA, 50% pressure):",
             "  class     | minimum | avg (contention) | avg (no contention)"]
    for cls, minimum in minimums.items():
        lines.append(f"  {cls:9s} | {minimum:7d} |"
                     f" {loaded.average_latency(cls):16.1f} |"
                     f" {quiet.average_latency(cls):.1f}")
    emit("\n".join(lines), "table4_average")

    for cls, minimum in minimums.items():
        avg_loaded = loaded.average_latency(cls)
        avg_quiet = quiet.average_latency(cls)
        # Under load, averages exceed the minimum (the paper's point)...
        assert avg_loaded >= minimum - 0.5, (cls, avg_loaded)
        # ...and with contention off they return to within a few cycles
        # of it (residual: kernel-adjacent bus/dsm bookkeeping).
        assert avg_quiet == pytest.approx(minimum, abs=8), (cls, avg_quiet)
    # Remote classes show the largest contention inflation.
    assert loaded.average_latency("COLD") > 1.1 * 180
