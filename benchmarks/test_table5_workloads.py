"""Bench T5: regenerate Table 5 (programs and problem sizes).

Checks the paper's structural facts: lu runs on 4 nodes, radix has the
lowest ideal pressure (every node touches every page), fft and ocean the
highest.
"""

from repro.harness import render_table5
from repro.harness.tables import table5


def test_table5(benchmark, emit):
    rows = benchmark.pedantic(table5, rounds=1, iterations=1)
    emit(render_table5(), "table5")
    byname = {r["program"]: r for r in rows}
    assert set(byname) == {"barnes", "em3d", "fft", "lu", "ocean", "radix"}
    assert byname["lu"]["nodes"] == 4
    assert all(r["nodes"] == 8 for n, r in byname.items() if n != "lu")
    ideal = {n: r["ideal_pressure"] for n, r in byname.items()}
    assert min(ideal, key=ideal.get) == "radix"
    assert ideal["fft"] > 0.6 and ideal["ocean"] > 0.6
    assert 0.25 < ideal["barnes"] < 0.45      # paper: ~33%
    assert 0.45 < ideal["em3d"] < 0.65        # paper: ~53%
    assert 0.4 < ideal["lu"] < 0.6            # paper: ~45-50%
