"""Bench T3: regenerate Table 3 (cache and network characteristics)."""

from repro.harness import render_table3
from repro.sim.config import SystemConfig


def test_table3_render(benchmark, emit):
    out = benchmark(render_table3)
    emit(out, "table3")


def test_table3_values_are_papers(benchmark):
    cfg = benchmark(SystemConfig)
    desc = cfg.describe()
    assert "8 KiB" in desc["L1 Cache"]
    assert "32-byte" in desc["L1 Cache"]
    assert "128-byte" in desc["RAC"]
    assert "4x4 switch" in desc["Network"]
    assert desc["Clock"] == "120 MHz"
