"""Bench T6: regenerate Table 6 (remote pages vs relocation-eligible).

Paper shape: a broad range -- under a few percent for fft, around a
quarter for ocean, the large majority for barnes/em3d, and essentially
everything for lu and radix.
"""

from repro.harness import render_table6
from repro.harness.tables import table6


def test_table6(benchmark, emit):
    rows = benchmark.pedantic(table6, rounds=1, iterations=1)
    emit(render_table6(), "table6")
    pct = {r["program"]: r["pct_relocated"] for r in rows}
    # Paper's broad range: "from under 1% in fft to over 90% in lu and
    # radix" -- exact digits are unreadable, the ordering is the claim.
    assert pct["fft"] < 25
    assert pct["ocean"] < 25
    assert pct["barnes"] > 60
    assert pct["em3d"] > 60
    assert pct["lu"] > 90
    assert pct["radix"] > 90
    for r in rows:
        assert 0 <= r["pct_relocated"] <= 100
        assert r["relocated_pages"] <= r["total_remote_pages"]
