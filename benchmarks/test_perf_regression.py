"""Continuous-benchmark regression gate against the committed baseline.

Compares fresh runs of the headline benchmarks -- ``matrix_micro``
(default-dispatch replay throughput, vector-auto since PR 9),
``vector:matrix_micro`` (the vectorized SoA loop pinned explicitly)
and ``matrix_e2e`` (the full 90-cell parallel matrix) -- against the
numbers committed in ``BENCH_pr9.json`` at the repo root, and fails on
a >20% events/sec drop.  Hardware differences between the committing
machine and the test machine are real, so the gate is deliberately
loose -- it exists to catch order-of-magnitude regressions (an
accidentally disabled fast path, a per-event allocation creeping back
in, the trace cache silently missing), not single-digit noise.

Hardware-independent self-checks back it up, all measured as
same-process ratios: the fast path must outrun the reference loop, the
vector path must beat the fast path by >=3x when the compiled kernel
is available, a default-constructed engine must actually dispatch into
the kernel (the PR-9 vector-auto claim -- a silent eligibility
regression would otherwise keep every gate green while the matrix
quietly runs scalar), a trace-cache hit must beat regeneration,
``--obs`` telemetry must stay within its budget, and a warm-server
round-trip must beat a cold CLI invocation by >=5x.  Two artifact
checks pin the committed payload itself: the embedded baseline must be
the PR-8 payload and its recorded ``matrix_e2e`` speedup must hold the
>=2x acceptance claim, and a fresh ``matrix_e2e`` must clear an
absolute throughput floor chosen to sit between scalar-default PR-8
throughput and the vector-default number on the same hardware class.

Opt-in: wall-clock assertions are inherently flaky on loaded CI
runners, so these tests skip unless ``REPRO_PERF=1`` is set::

    REPRO_PERF=1 PYTHONPATH=src python -m pytest benchmarks/test_perf_regression.py -v

They are additionally marked ``perf`` for selection via ``-m perf``.
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.perf import bench_matrix_micro, load_bench_json

BENCH_JSON = pathlib.Path(__file__).resolve().parent.parent / "BENCH_pr9.json"

#: Fail below this fraction of the committed throughput.
FLOOR = 0.8

#: Minimum fast->vector speedup on the matrix micro slice, enforced
#: whenever the compiled SoA kernel is available on this host.
VECTOR_FLOOR = 3.0

#: Minimum committed matrix_e2e speedup over the embedded PR-8
#: baseline -- the PR-9 acceptance claim, checked against the artifact
#: (both payloads were measured on the same machine and session, so
#: the ratio is hardware-comparable in a way fresh-vs-committed never
#: is).
E2E_CLAIM = 2.0

#: Absolute matrix_e2e throughput floor (events/sec) on a fresh run.
#: Calibrated to split the substrates on commodity hardware: the PR-8
#: scalar-default matrix ran at ~0.78M ev/s on a 1-core host and the
#: PR-9 vector-default matrix at ~2.2M ev/s on the same host, so 1.0M
#: passes vector-auto with >2x margin while an accidental whole-matrix
#: fallback to the scalar path lands below it.
E2E_ABS_FLOOR = 1_000_000

#: ``--obs`` overhead budget on the matrix micro slice.  The absolute
#: telemetry cost (spans + kind-filtered backoff rows + JSONL sink,
#: ~10ms on the slice) has not moved since the 1.02x era, but the
#: vector-default replay base under it is ~4x faster, so the same
#: work is a larger *fraction*; 1.10x keeps gating the failure mode
#: that matters (an unfiltered observer disabling kernel eligibility
#: costs 3-4x, not 10%).
OBS_BUDGET = 1.10

pytestmark = [
    pytest.mark.perf,
    pytest.mark.skipif(os.environ.get("REPRO_PERF", "") != "1",
                       reason="perf regression gate runs only with REPRO_PERF=1"),
]


@pytest.fixture(scope="module")
def payload() -> dict:
    if not BENCH_JSON.exists():
        pytest.skip(f"no committed benchmark file at {BENCH_JSON}")
    return load_bench_json(BENCH_JSON)


@pytest.fixture(scope="module")
def committed(payload) -> dict:
    return {r["name"]: r for r in payload["results"]}


def test_matrix_micro_throughput(committed):
    base = committed.get("matrix_micro")
    assert base, f"{BENCH_JSON.name} has no matrix_micro entry"
    fresh = bench_matrix_micro(repeats=3)
    # Same benchmark definition, or the comparison is meaningless.
    assert fresh.events == base["events"], (
        f"matrix_micro workload changed; regenerate {BENCH_JSON.name}")
    floor = FLOOR * base["events_per_sec"]
    assert fresh.events_per_sec >= floor, (
        f"matrix_micro regressed: {fresh.events_per_sec:,.0f} ev/s is below "
        f"{FLOOR:.0%} of the committed {base['events_per_sec']:,.0f} ev/s")


def test_vector_matrix_micro_throughput(committed):
    """Absolute gate on the vectorized loop against the committed
    baseline, mirroring the scalar matrix_micro gate.  Skipped when
    the compiled kernel is unavailable -- a degraded vector run would
    measure the fast path and fail spuriously."""
    from repro.perf import bench_vector_matrix_micro
    from repro.sim.soatrace import vector_available

    if not vector_available():
        pytest.skip("compiled SoA kernel unavailable on this host")
    base = committed.get("vector:matrix_micro")
    assert base, f"{BENCH_JSON.name} has no vector:matrix_micro entry"
    fresh = bench_vector_matrix_micro(repeats=3)
    assert fresh.events == base["events"], (
        f"vector:matrix_micro workload changed; regenerate {BENCH_JSON.name}")
    floor = FLOOR * base["events_per_sec"]
    assert fresh.events_per_sec >= floor, (
        f"vector:matrix_micro regressed: {fresh.events_per_sec:,.0f} ev/s is "
        f"below {FLOOR:.0%} of the committed {base['events_per_sec']:,.0f} "
        f"ev/s")


def test_matrix_e2e_throughput(committed):
    """End-to-end gate: trace cache + dispatch + engine, all at once,
    plus the absolute floor backing the PR-9 vector-default claim on
    this hardware class (see ``E2E_ABS_FLOOR``)."""
    from repro.perf import bench_matrix_e2e

    base = committed.get("matrix_e2e")
    assert base, f"{BENCH_JSON.name} has no matrix_e2e entry"
    fresh = bench_matrix_e2e(repeats=2)
    assert fresh.events == base["events"], (
        f"matrix_e2e cell set changed; regenerate {BENCH_JSON.name}")
    floor = FLOOR * base["events_per_sec"]
    assert fresh.events_per_sec >= floor, (
        f"matrix_e2e regressed: {fresh.events_per_sec:,.0f} ev/s is below "
        f"{FLOOR:.0%} of the committed {base['events_per_sec']:,.0f} ev/s")
    assert fresh.events_per_sec >= E2E_ABS_FLOOR, (
        f"matrix_e2e at {fresh.events_per_sec:,.0f} ev/s is below the "
        f"absolute {E2E_ABS_FLOOR:,} ev/s floor -- throughput in the "
        f"scalar-default range suggests the matrix is no longer replaying "
        f"through the vector kernel")


def test_committed_e2e_speedup_claim(payload):
    """Artifact check on the committed payload itself: the embedded
    baseline is the PR-8 payload and the recorded ``matrix_e2e``
    speedup holds the >=2x acceptance claim.  Both sides of that ratio
    were measured on the committing machine in one session, so unlike
    every fresh-vs-committed comparison above it does not loosen for
    hardware differences."""
    baseline = payload.get("baseline")
    assert baseline, f"{BENCH_JSON.name} embeds no baseline payload"
    base_e2e = {r["name"]: r for r in baseline["results"]}.get("matrix_e2e")
    assert base_e2e, f"{BENCH_JSON.name}'s embedded baseline has no matrix_e2e"
    speedup = payload["speedup_vs_baseline"].get("matrix_e2e")
    assert speedup is not None, (
        f"{BENCH_JSON.name} records no matrix_e2e speedup_vs_baseline")
    assert speedup >= E2E_CLAIM, (
        f"committed matrix_e2e speedup {speedup:.2f}x over the embedded "
        f"baseline ({base_e2e['wall_s']:.1f}s) is below the {E2E_CLAIM:.0f}x "
        f"claim; regenerate {BENCH_JSON.name} on a quiet machine or fix the "
        f"regression")


def test_vector_default_engages_kernel(monkeypatch):
    """Same-process self-check of the vector-auto default: a
    default-constructed :class:`Engine` (no flags, no environment
    overrides) must dispatch into the compiled kernel and complete
    without falling back.  The parity suites prove the kernel is
    *correct* when selected; only this test proves it is *selected* --
    an eligibility regression (or a dispatch typo) would otherwise
    degrade every default run to the scalar path silently, and the
    relative gates above would only notice after a committed-baseline
    refresh."""
    from repro.harness.experiment import get_workload, scaled_policy
    from repro.sim import soatrace
    from repro.sim.config import SystemConfig
    from repro.sim.engine import Engine, default_vector_mode

    monkeypatch.delenv("REPRO_VECTOR_PATH", raising=False)
    monkeypatch.delenv("REPRO_SLOW_PATH", raising=False)
    assert default_vector_mode() == "auto", (
        "a clean environment must dispatch in vector-auto mode")
    if not soatrace.vector_available():
        pytest.skip("compiled SoA kernel unavailable on this host")

    outcomes = []
    real_run_vector = soatrace.run_vector

    def probe(engine):
        result = real_run_vector(engine)
        outcomes.append(result)
        return result

    # Engine._run_vector imports run_vector lazily from the module, so
    # patching the module attribute intercepts the dispatch.
    monkeypatch.setattr(soatrace, "run_vector", probe)
    wl = get_workload("fft", 0.05)
    cfg = SystemConfig(n_nodes=wl.n_nodes, memory_pressure=0.7)
    Engine(wl, scaled_policy("ASCOMA"), config=cfg).run()
    assert outcomes, "default-constructed Engine never reached run_vector"
    assert outcomes[0] is not None, (
        "run_vector fell back to the scalar path on a plain matrix cell; "
        "kernel eligibility has regressed")


def test_trace_cache_beats_regeneration():
    """Hardware-independent self-check of the tracegen_cached claim: a
    cache hit must be cheaper than regenerating the workload, measured
    in the same process (the cold wall is recorded in the bench's own
    meta)."""
    from repro.perf import bench_trace_generation_cached

    result = bench_trace_generation_cached("em3d", repeats=3)
    assert result.meta["speedup_x"] > 1.0, (
        f"trace-cache hit ({result.wall_s:.4f}s) is not faster than cold "
        f"generation ({result.meta['cold_wall_s']:.4f}s)")


def test_obs_overhead_within_budget():
    """The ``--obs`` budget from docs/observability.md: full telemetry
    (cell/simulate spans, kind-filtered backoff time series, JSONL
    sink) must stay within ``OBS_BUDGET`` wall-clock on the matrix
    micro slice.  Measured as a same-process ratio, so the gate is
    hardware independent; a failure means an instrumentation site
    leaked onto the hot path (most likely by subscribing an unfiltered
    observer, which disqualifies the run from the vector kernel and
    the scalar fast path both)."""
    from repro.perf import bench_obs_overhead

    result = bench_obs_overhead(repeats=3)
    assert result.meta["overhead_x"] <= OBS_BUDGET, (
        f"--obs overhead {result.meta['overhead_x']:.3f}x exceeds the "
        f"{OBS_BUDGET:.2f}x budget (observed {result.wall_s:.4f}s vs plain "
        f"{result.meta['plain_wall_s']:.4f}s)")


def test_serve_warm_beats_cold_cli():
    """The serve layer's acceptance claim: a warm-server submit->result
    round-trip for a cached cell must be at least 5x faster than a cold
    ``repro run`` process invocation of the same cached cell.  Measured
    as a same-machine ratio (both sides pay this host's disk and CPU),
    so the gate is hardware independent; a failure means the server is
    paying per-job costs it exists to amortise (imports, trace/store
    setup, pool spin-up) on every submit."""
    from repro.perf import bench_serve_warm

    result = bench_serve_warm(repeats=2)
    assert result.meta["speedup_x"] >= 5.0, (
        f"warm serve round-trip ({result.meta['roundtrip_s']:.4f}s) is only "
        f"{result.meta['speedup_x']:.1f}x faster than a cold CLI run "
        f"({result.meta['cold_cli_s']:.4f}s); the gate requires >=5x")


def test_fast_path_beats_reference(committed):
    """The whole point of the fast path: it must outrun the reference
    loop on the same cells, in the same process, on this machine --
    a hardware-independent self-check of the committed speedup claim."""
    from repro.harness.experiment import get_workload, scaled_policy
    from repro.perf import MATRIX_CELLS, MICRO_SCALE, run_bench
    from repro.sim.config import SystemConfig
    from repro.sim.engine import Engine

    wls = {app: get_workload(app, MICRO_SCALE) for app, _, _ in MATRIX_CELLS}

    def once(slow):
        for app, arch, pr in MATRIX_CELLS:
            wl = wls[app]
            cfg = SystemConfig(n_nodes=wl.n_nodes, memory_pressure=pr)
            # vector_path=False pins the scalar loop: under the
            # vector-auto default the non-slow leg would otherwise
            # measure the kernel, not the fast path this test names.
            kwargs = {"slow_path": True} if slow else {"vector_path": False}
            Engine(wl, scaled_policy(arch), config=cfg, **kwargs).run()

    fast = run_bench("fast", lambda: once(False), 1, repeats=2)
    slow = run_bench("slow", lambda: once(True), 1, repeats=2)
    assert fast.wall_s < slow.wall_s, (
        f"fast path ({fast.wall_s:.3f}s) is not faster than the reference "
        f"loop ({slow.wall_s:.3f}s)")


def test_vector_path_beats_fast_by_3x():
    """The vectorized loop's acceptance claim: >=3x over the scalar
    fast path on the matrix micro slice, measured in the same process
    on this machine so the gate is hardware independent.  A failure
    means either the kernel fell back to scalar replay mid-matrix
    (an eligibility regression) or per-slice Python overhead crept
    into the drive loop.  Skipped without a working C compiler, where
    the vector engine intentionally degrades to the fast path."""
    from repro.perf import bench_vector_matrix_micro
    from repro.sim.soatrace import vector_available

    if not vector_available():
        pytest.skip("compiled SoA kernel unavailable on this host")
    result = bench_vector_matrix_micro(repeats=3)
    assert result.meta["speedup_x"] >= VECTOR_FLOOR, (
        f"vector path ({result.wall_s:.3f}s) is only "
        f"{result.meta['speedup_x']:.2f}x faster than the scalar fast path "
        f"({result.meta['fast_wall_s']:.3f}s); the gate requires "
        f">={VECTOR_FLOOR:.0f}x")
