"""Continuous-benchmark regression gate against the committed baseline.

Compares fresh runs of the headline benchmarks -- ``matrix_micro``
(scalar replay throughput), ``vector:matrix_micro`` (the vectorized
SoA loop on the same cells) and ``matrix_e2e`` (the full 90-cell
parallel matrix) -- against the numbers committed in ``BENCH_pr8.json``
at the repo root, and fails on a >20% events/sec drop.  Hardware
differences between the committing machine and the test machine are
real, so the gate is deliberately loose -- it exists to catch
order-of-magnitude regressions (an accidentally disabled fast path, a
per-event allocation creeping back in, the trace cache silently
missing), not single-digit noise.  Five hardware-independent
self-checks back it up, all measured as same-machine ratios: the fast
path must outrun the reference loop, the vector path must beat the
fast path by >=3x when the compiled kernel is available, a trace-cache
hit must beat regeneration, ``--obs`` telemetry must stay within its
2% budget, and a warm-server round-trip must beat a cold CLI
invocation by >=5x.

Opt-in: wall-clock assertions are inherently flaky on loaded CI
runners, so these tests skip unless ``REPRO_PERF=1`` is set::

    REPRO_PERF=1 PYTHONPATH=src python -m pytest benchmarks/test_perf_regression.py -v

They are additionally marked ``perf`` for selection via ``-m perf``.
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.perf import bench_matrix_micro, load_bench_json

BENCH_JSON = pathlib.Path(__file__).resolve().parent.parent / "BENCH_pr8.json"

#: Fail below this fraction of the committed throughput.
FLOOR = 0.8

#: Minimum fast->vector speedup on the matrix micro slice, enforced
#: whenever the compiled SoA kernel is available on this host.
VECTOR_FLOOR = 3.0

pytestmark = [
    pytest.mark.perf,
    pytest.mark.skipif(os.environ.get("REPRO_PERF", "") != "1",
                       reason="perf regression gate runs only with REPRO_PERF=1"),
]


@pytest.fixture(scope="module")
def committed() -> dict:
    if not BENCH_JSON.exists():
        pytest.skip(f"no committed benchmark file at {BENCH_JSON}")
    payload = load_bench_json(BENCH_JSON)
    return {r["name"]: r for r in payload["results"]}


def test_matrix_micro_throughput(committed):
    base = committed.get("matrix_micro")
    assert base, f"{BENCH_JSON.name} has no matrix_micro entry"
    fresh = bench_matrix_micro(repeats=3)
    # Same benchmark definition, or the comparison is meaningless.
    assert fresh.events == base["events"], (
        f"matrix_micro workload changed; regenerate {BENCH_JSON.name}")
    floor = FLOOR * base["events_per_sec"]
    assert fresh.events_per_sec >= floor, (
        f"matrix_micro regressed: {fresh.events_per_sec:,.0f} ev/s is below "
        f"{FLOOR:.0%} of the committed {base['events_per_sec']:,.0f} ev/s")


def test_vector_matrix_micro_throughput(committed):
    """Absolute gate on the vectorized loop against the committed
    baseline, mirroring the scalar matrix_micro gate.  Skipped when
    the compiled kernel is unavailable -- a degraded vector run would
    measure the fast path and fail spuriously."""
    from repro.perf import bench_vector_matrix_micro
    from repro.sim.soatrace import vector_available

    if not vector_available():
        pytest.skip("compiled SoA kernel unavailable on this host")
    base = committed.get("vector:matrix_micro")
    assert base, f"{BENCH_JSON.name} has no vector:matrix_micro entry"
    fresh = bench_vector_matrix_micro(repeats=3)
    assert fresh.events == base["events"], (
        f"vector:matrix_micro workload changed; regenerate {BENCH_JSON.name}")
    floor = FLOOR * base["events_per_sec"]
    assert fresh.events_per_sec >= floor, (
        f"vector:matrix_micro regressed: {fresh.events_per_sec:,.0f} ev/s is "
        f"below {FLOOR:.0%} of the committed {base['events_per_sec']:,.0f} "
        f"ev/s")


def test_matrix_e2e_throughput(committed):
    """End-to-end gate: trace cache + dispatch + engine, all at once."""
    from repro.perf import bench_matrix_e2e

    base = committed.get("matrix_e2e")
    assert base, f"{BENCH_JSON.name} has no matrix_e2e entry"
    fresh = bench_matrix_e2e(repeats=2)
    assert fresh.events == base["events"], (
        f"matrix_e2e cell set changed; regenerate {BENCH_JSON.name}")
    floor = FLOOR * base["events_per_sec"]
    assert fresh.events_per_sec >= floor, (
        f"matrix_e2e regressed: {fresh.events_per_sec:,.0f} ev/s is below "
        f"{FLOOR:.0%} of the committed {base['events_per_sec']:,.0f} ev/s")


def test_trace_cache_beats_regeneration():
    """Hardware-independent self-check of the tracegen_cached claim: a
    cache hit must be cheaper than regenerating the workload, measured
    in the same process (the cold wall is recorded in the bench's own
    meta)."""
    from repro.perf import bench_trace_generation_cached

    result = bench_trace_generation_cached("em3d", repeats=3)
    assert result.meta["speedup_x"] > 1.0, (
        f"trace-cache hit ({result.wall_s:.4f}s) is not faster than cold "
        f"generation ({result.meta['cold_wall_s']:.4f}s)")


def test_obs_overhead_within_budget():
    """The ``--obs`` budget from docs/observability.md: full telemetry
    (cell/simulate spans, kind-filtered backoff time series, JSONL
    sink) must cost at most 2% wall-clock on the matrix micro slice.
    Measured as a same-process ratio, so the gate is hardware
    independent; a failure means an instrumentation site leaked onto
    the hot path (most likely by subscribing an unfiltered observer,
    which turns off the replay fast path)."""
    from repro.perf import bench_obs_overhead

    result = bench_obs_overhead(repeats=3)
    assert result.meta["overhead_x"] <= 1.02, (
        f"--obs overhead {result.meta['overhead_x']:.3f}x exceeds the 1.02x "
        f"budget (observed {result.wall_s:.4f}s vs plain "
        f"{result.meta['plain_wall_s']:.4f}s)")


def test_serve_warm_beats_cold_cli():
    """The serve layer's acceptance claim: a warm-server submit->result
    round-trip for a cached cell must be at least 5x faster than a cold
    ``repro run`` process invocation of the same cached cell.  Measured
    as a same-machine ratio (both sides pay this host's disk and CPU),
    so the gate is hardware independent; a failure means the server is
    paying per-job costs it exists to amortise (imports, trace/store
    setup, pool spin-up) on every submit."""
    from repro.perf import bench_serve_warm

    result = bench_serve_warm(repeats=2)
    assert result.meta["speedup_x"] >= 5.0, (
        f"warm serve round-trip ({result.meta['roundtrip_s']:.4f}s) is only "
        f"{result.meta['speedup_x']:.1f}x faster than a cold CLI run "
        f"({result.meta['cold_cli_s']:.4f}s); the gate requires >=5x")


def test_fast_path_beats_reference(committed):
    """The whole point of the fast path: it must outrun the reference
    loop on the same cells, in the same process, on this machine --
    a hardware-independent self-check of the committed speedup claim."""
    from repro.harness.experiment import get_workload, scaled_policy
    from repro.perf import MATRIX_CELLS, MICRO_SCALE, run_bench
    from repro.sim.config import SystemConfig
    from repro.sim.engine import Engine

    wls = {app: get_workload(app, MICRO_SCALE) for app, _, _ in MATRIX_CELLS}

    def once(slow):
        for app, arch, pr in MATRIX_CELLS:
            wl = wls[app]
            cfg = SystemConfig(n_nodes=wl.n_nodes, memory_pressure=pr)
            Engine(wl, scaled_policy(arch), config=cfg, slow_path=slow).run()

    fast = run_bench("fast", lambda: once(False), 1, repeats=2)
    slow = run_bench("slow", lambda: once(True), 1, repeats=2)
    assert fast.wall_s < slow.wall_s, (
        f"fast path ({fast.wall_s:.3f}s) is not faster than the reference "
        f"loop ({slow.wall_s:.3f}s)")


def test_vector_path_beats_fast_by_3x():
    """The vectorized loop's acceptance claim: >=3x over the scalar
    fast path on the matrix micro slice, measured in the same process
    on this machine so the gate is hardware independent.  A failure
    means either the kernel fell back to scalar replay mid-matrix
    (an eligibility regression) or per-slice Python overhead crept
    into the drive loop.  Skipped without a working C compiler, where
    the vector engine intentionally degrades to the fast path."""
    from repro.perf import bench_vector_matrix_micro
    from repro.sim.soatrace import vector_available

    if not vector_available():
        pytest.skip("compiled SoA kernel unavailable on this host")
    result = bench_vector_matrix_micro(repeats=3)
    assert result.meta["speedup_x"] >= VECTOR_FLOOR, (
        f"vector path ({result.wall_s:.3f}s) is only "
        f"{result.meta['speedup_x']:.2f}x faster than the scalar fast path "
        f"({result.meta['fast_wall_s']:.3f}s); the gate requires "
        f">={VECTOR_FLOOR:.0f}x")
