"""Robustness bench: conclusions must hold across machine sizes.

The paper runs 8 nodes (4 for lu).  Larger machines raise the
remote:local traffic ratio (more of the address space is remote per
node), which should *amplify* the architecture differences, not change
their direction.  Runs em3d at 4/8/16 nodes.
"""

from repro.harness.experiment import scaled_policy
from repro.sim.config import SystemConfig
from repro.sim.engine import simulate
from repro.workloads import em3d

NODE_COUNTS = (4, 8, 16)


def sweep():
    rows = []
    for n in NODE_COUNTS:
        wl = em3d.generate(n_nodes=n, scale=0.35)
        cfg = SystemConfig(n_nodes=n, memory_pressure=0.9)
        base = simulate(wl, scaled_policy("CCNUMA"),
                        cfg).aggregate().total_cycles()
        rnuma = simulate(wl, scaled_policy("RNUMA"),
                         cfg).aggregate().total_cycles() / base
        ascoma = simulate(wl, scaled_policy("ASCOMA"),
                          cfg).aggregate().total_cycles() / base
        rows.append((n, rnuma, ascoma))
    return rows


def test_node_count_robustness(benchmark, emit):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = ["R3 machine-size robustness (em3d, 90% pressure,"
             " rel to CC-NUMA):",
             "  nodes | R-NUMA | AS-COMA"]
    for n, rnuma, ascoma in rows:
        lines.append(f"  {n:5d} | {rnuma:6.2f} | {ascoma:.2f}")
    emit("\n".join(lines), "robustness_nodes")

    for n, rnuma, ascoma in rows:
        assert ascoma < 1.1, (n, ascoma)
        assert rnuma > 1.2, (n, rnuma)
        assert ascoma < rnuma, n
