"""Extension bench E3: MSI vs MESI coherence protocol.

The paper's machines run a plain write-invalidate (MSI-class) protocol.
Adding the Exclusive state -- an only-reader may write without an
upgrade transaction -- is the classic protocol optimisation; this bench
quantifies it per application and confirms it is orthogonal to the
memory-architecture story (AS-COMA's win over CC-NUMA survives either
protocol, because upgrades are write-path traffic while the hybrids
fight read-path conflict misses).
"""

import pytest

from repro.harness.experiment import DEFAULT_SCALE, get_workload, scaled_policy
from repro.sim.config import SystemConfig
from repro.sim.engine import simulate


def sweep():
    rows = []
    for app in ("ocean", "em3d", "radix"):
        wl = get_workload(app, DEFAULT_SCALE)
        row = {"app": app}
        for proto in ("msi", "mesi"):
            cfg = SystemConfig(n_nodes=wl.n_nodes, memory_pressure=0.5,
                               protocol=proto)
            cc = simulate(wl, scaled_policy("CCNUMA"), cfg).aggregate()
            asc = simulate(wl, scaled_policy("ASCOMA"), cfg).aggregate()
            row[proto] = {
                "upgrades": cc.upgrades,
                "ccnuma_cycles": cc.total_cycles(),
                "ascoma_rel": asc.total_cycles() / cc.total_cycles(),
            }
        rows.append(row)
    return rows


def test_mesi_vs_msi(benchmark, emit):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = ["E3 protocol study (50% pressure):",
             "  app    | MSI upgrades | MESI upgrades | MSI AS-COMA rel"
             " | MESI AS-COMA rel"]
    for row in rows:
        lines.append(
            f"  {row['app']:6s} | {row['msi']['upgrades']:12,} |"
            f" {row['mesi']['upgrades']:13,} |"
            f" {row['msi']['ascoma_rel']:15.2f} |"
            f" {row['mesi']['ascoma_rel']:.2f}")
    emit("\n".join(lines), "ext_protocol")

    for row in rows:
        # The E state removes the bulk of the upgrade traffic...
        assert row["mesi"]["upgrades"] < row["msi"]["upgrades"]
        # ...and never slows CC-NUMA down.
        assert row["mesi"]["ccnuma_cycles"] <= \
            row["msi"]["ccnuma_cycles"] * 1.01
        # The memory-architecture conclusion is protocol-independent.
        assert row["mesi"]["ascoma_rel"] == pytest.approx(
            row["msi"]["ascoma_rel"], abs=0.06)
