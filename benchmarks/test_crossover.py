"""Bench: crossover pressures vs Table 5's ideal pressures.

Connects the paper's two halves quantitatively: S-COMA's measured
crossover (where it stops beating CC-NUMA) must sit at or above its
analytic ideal pressure, and AS-COMA must have no crossover below 90%
on the applications where the paper says it wins or breaks even.
"""

from repro.harness.crossover import crossover_report
from repro.harness.experiment import DEFAULT_SCALE
from repro.harness.report import format_table


def test_crossover_pressures(benchmark, emit):
    rows = benchmark.pedantic(
        crossover_report,
        kwargs=dict(apps=("em3d", "radix"), archs=("SCOMA", "ASCOMA"),
                    scale=DEFAULT_SCALE),
        rounds=1, iterations=1)
    emit(format_table(
        ["App", "Arch", "Ideal pressure", "Crossover pressure"],
        [[r["app"], r["arch"], r["ideal_pressure"],
          r["crossover_pressure"] if r["crossover_pressure"] is not None
          else "never (wins through 95%)"] for r in rows],
        title="Crossover pressure (arch stops beating CC-NUMA)"
              " vs Table 5 ideal pressure"), "crossover")

    by = {(r["app"], r["arch"]): r for r in rows}
    # S-COMA keeps winning until (at least) its ideal pressure...
    for app in ("em3d", "radix"):
        r = by[(app, "SCOMA")]
        assert r["crossover_pressure"] is not None
        assert r["crossover_pressure"] >= r["ideal_pressure"] - 0.03
        # ...but collapses not long after: crossover within ~35 points.
        assert r["crossover_pressure"] <= r["ideal_pressure"] + 0.35
    # AS-COMA's crossover, when it exists, is far above S-COMA's.
    for app in ("em3d", "radix"):
        asc = by[(app, "ASCOMA")]["crossover_pressure"]
        sc = by[(app, "SCOMA")]["crossover_pressure"]
        assert asc is None or asc > sc + 0.2
