"""Sensitivity benches: how robust are the paper's conclusions?

Four parameter studies around the headline result (em3d, AS-COMA vs
R-NUMA vs CC-NUMA):

* **RAC size** -- the paper's single-chunk RAC had "a larger impact than
  anticipated"; growing it narrows the CC-NUMA/S-COMA gap.
* **Network speed** -- the paper notes high-end interconnects push the
  remote:local ratio toward ~3; a slower network (bigger ratio) magnifies
  every architecture difference, a faster one shrinks them.
* **Kernel cost** -- the paper's core argument is that software overhead
  decides the hybrids' fate: doubling the remap cost must hurt R-NUMA
  (which remaps constantly at high pressure) far more than AS-COMA.
* **L1 associativity** -- conflict misses drive refetches; a more
  associative cache removes part of the problem the hybrids solve.
"""

import pytest

from repro.harness.experiment import DEFAULT_SCALE, get_workload, scaled_policy
from repro.kernel.costs import KernelCosts
from repro.sim.config import SystemConfig
from repro.sim.engine import simulate


def em3d():
    return get_workload("em3d", DEFAULT_SCALE)


def run(cfg, arch="ASCOMA"):
    return simulate(em3d(), scaled_policy(arch), cfg).aggregate()


def test_rac_size_sensitivity(benchmark, emit):
    def sweep():
        rows = []
        for entries in (1, 4, 16):
            cfg = SystemConfig(n_nodes=8, memory_pressure=0.5,
                               rac_entries=entries)
            base = run(cfg, "CCNUMA")
            asc = run(cfg, "ASCOMA")
            rows.append((entries, base.RAC, base.total_cycles(),
                         asc.total_cycles() / base.total_cycles()))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = ["S1 RAC size sensitivity (em3d, 50% pressure):",
             "  entries | CC-NUMA RAC hits | CC-NUMA cycles | AS-COMA rel"]
    for entries, hits, cycles, rel in rows:
        lines.append(f"  {entries:7d} | {hits:16,} | {cycles:14,} | {rel:.2f}")
    emit("\n".join(lines), "sensitivity_rac")

    hits = [r[1] for r in rows]
    ccnuma_cycles = [r[2] for r in rows]
    rel = [r[3] for r in rows]
    assert hits[0] < hits[-1]              # bigger RAC catches more
    assert ccnuma_cycles[0] > ccnuma_cycles[-1]  # and CC-NUMA speeds up
    assert rel[0] < rel[-1]                # narrowing AS-COMA's win


def test_network_ratio_sensitivity(benchmark, emit):
    def sweep():
        rows = []
        for dsm in (20, 59, 150):
            cfg = SystemConfig(n_nodes=8, memory_pressure=0.5,
                               dsm_processing_cycles=dsm)
            ratio = cfg.remote_to_local_ratio()
            base = run(cfg, "CCNUMA")
            asc = run(cfg, "ASCOMA")
            rows.append((ratio, asc.total_cycles() / base.total_cycles()))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = ["S2 network speed sensitivity (em3d, 50% pressure):",
             "  remote:local ratio | AS-COMA rel to CC-NUMA"]
    for ratio, rel in rows:
        lines.append(f"  {ratio:18.2f} | {rel:.2f}")
    emit("\n".join(lines), "sensitivity_network")

    rels = [rel for _, rel in rows]
    # The slower the network, the bigger AS-COMA's win (smaller rel).
    assert rels[0] > rels[1] > rels[2]
    assert all(rel < 1.0 for rel in rels)  # it wins at every ratio


def test_kernel_cost_sensitivity(benchmark, emit):
    def sweep():
        rows = []
        for factor in (1, 4):
            kernel = KernelCosts(
                page_remap=4000 * factor,
                relocation_interrupt=1000 * factor,
            )
            cfg = SystemConfig(n_nodes=8, memory_pressure=0.9, kernel=kernel)
            base = run(cfg, "CCNUMA").total_cycles()
            rows.append((factor,
                         run(cfg, "RNUMA").total_cycles() / base,
                         run(cfg, "ASCOMA").total_cycles() / base))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = ["S3 kernel remap-cost sensitivity (em3d, 90% pressure):",
             "  cost x | R-NUMA rel | AS-COMA rel"]
    for factor, rnuma, ascoma in rows:
        lines.append(f"  {factor:6d} | {rnuma:10.2f} | {ascoma:.2f}")
    emit("\n".join(lines), "sensitivity_kernel")

    # Pricier remaps hurt R-NUMA (it keeps remapping) much more than
    # AS-COMA (which stopped) -- the paper's software-overhead thesis.
    rnuma_growth = rows[1][1] - rows[0][1]
    ascoma_growth = rows[1][2] - rows[0][2]
    assert rnuma_growth > 4 * max(ascoma_growth, 0.005)
    assert rows[1][2] < 1.15  # AS-COMA stays near CC-NUMA regardless


def test_l1_associativity_sensitivity(benchmark, emit):
    def sweep():
        rows = []
        for ways in (1, 4):
            cfg = SystemConfig(n_nodes=8, memory_pressure=0.5, l1_ways=ways)
            base = run(cfg, "CCNUMA")
            asc = run(cfg, "ASCOMA")
            rows.append((ways, base.CONF_CAPC,
                         asc.total_cycles() / base.total_cycles()))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = ["S4 L1 associativity sensitivity (em3d, 50% pressure):",
             "  ways | CC-NUMA CONF/CAPC | AS-COMA rel"]
    for ways, conf, rel in rows:
        lines.append(f"  {ways:4d} | {conf:17,} | {rel:.2f}")
    emit("\n".join(lines), "sensitivity_associativity")

    # Finding: with a remote working set ~20x the L1, these "conflict"
    # misses are really capacity misses -- 4-way associativity moves
    # CONF/CAPC by under 5% and leaves the hybrid benefit intact.  A
    # bigger cache, not a smarter one, is what the page cache provides.
    assert abs(rows[1][1] - rows[0][1]) / rows[0][1] < 0.05
    assert rows[1][2] < 1.0
    assert rows[1][2] == pytest.approx(rows[0][2], abs=0.05)


def test_quantum_robustness(benchmark, emit):
    """Simulation-validity check: the scheduling quantum must not change
    conclusions.  Relative AS-COMA/CC-NUMA time must agree within a few
    percent across a 16x quantum range."""

    def sweep():
        rels = []
        for quantum in (500, 2000, 8000):
            cfg = SystemConfig(n_nodes=8, memory_pressure=0.7)
            base = simulate(em3d(), scaled_policy("CCNUMA"), cfg,
                            quantum=quantum).aggregate().total_cycles()
            asc = simulate(em3d(), scaled_policy("ASCOMA"), cfg,
                           quantum=quantum).aggregate().total_cycles()
            rels.append(asc / base)
        return rels

    rels = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit("S5 scheduling-quantum robustness (em3d, 70% pressure):\n  "
         + "  ".join(f"q={q}: rel={rel:.3f}"
                     for q, rel in zip((500, 2000, 8000), rels)),
         "sensitivity_quantum")
    assert max(rels) - min(rels) < 0.05
