"""Bench T4: measure the minimum access latencies of Table 4.

Paper values: L1 = 1 cycle, local memory ~= 50, RAC ~= 36, remote
~= 180, remote:local ratio ~= 3.6.  The measurement drives the real
engine over a contention-free microbenchmark (see harness.tables).
"""

import pytest

from repro.harness import render_table4
from repro.harness.tables import table4


def test_table4_measured(benchmark, emit):
    data = benchmark.pedantic(table4, rounds=1, iterations=1)
    emit(render_table4(), "table4")
    assert data["L1 Cache"] == 1.0
    assert data["Local Memory"] == pytest.approx(50, abs=2)
    assert data["RAC"] == pytest.approx(36, abs=2)
    assert data["Remote Memory"] == pytest.approx(180, abs=6)
    assert data["remote_to_local_ratio"] == pytest.approx(3.6, abs=0.2)
