"""Benches F2/F3 (left charts): relative execution time per application.

For each of the six applications, runs the full architecture x pressure
matrix of Figures 2-3, renders the stacked time-breakdown bars, and
asserts the paper's per-application claims about *relative execution
time* (normalised to CC-NUMA = 1.0):

* barnes/em3d/radix -- the thrashing group: S-COMA collapses, R-NUMA
  degrades past ~70% pressure, AS-COMA converges to CC-NUMA or better;
* fft/ocean/lu -- the benign group: all hybrids behave, lu's hybrids
  beat CC-NUMA outright at every pressure.
"""

import pytest

from repro.harness import figure_series, render_figure, run_pressure_sweep
from repro.harness.experiment import DEFAULT_SCALE


def series_for(app):
    results = run_pressure_sweep(app, scale=DEFAULT_SCALE)
    return figure_series(app, scale=DEFAULT_SCALE, results=results)


def check_barnes(rel):
    assert rel["SCOMA(10%)"] < 0.7
    assert rel["ASCOMA(10%)"] == pytest.approx(rel["SCOMA(10%)"], rel=0.05)
    assert rel["SCOMA(50%)"] > rel["SCOMA(10%)"] * 1.5
    assert rel["ASCOMA(70%)"] <= rel["VCNUMA(70%)"] + 0.02
    assert rel["VCNUMA(70%)"] <= rel["RNUMA(70%)"] + 0.02
    assert rel["ASCOMA(70%)"] < 1.1


def check_em3d(rel):
    assert rel["SCOMA(10%)"] < 0.75
    assert rel["SCOMA(90%)"] > 2.0
    assert rel["RNUMA(90%)"] > 1.05
    assert rel["ASCOMA(90%)"] < 1.08
    assert rel["ASCOMA(90%)"] < rel["VCNUMA(90%)"] < rel["RNUMA(90%)"]
    assert rel["ASCOMA(70%)"] < 1.0


def check_fft(rel):
    for label, value in rel.items():
        if label.startswith(("RNUMA", "VCNUMA", "ASCOMA")):
            assert 0.8 < value < 1.1, (label, value)
    assert rel["SCOMA(90%)"] > 1.5
    assert rel["SCOMA(10%)"] < 1.0


def check_lu(rel):
    # Paper: *every* architecture beats CC-NUMA on lu at every pressure,
    # including pure S-COMA at 90% (the phase-local working set always
    # fits the page cache).
    for label, value in rel.items():
        if label != "CCNUMA":
            assert value < 1.0, (label, value)
    assert rel["ASCOMA(10%)"] < 0.7
    assert rel["SCOMA(90%)"] < 1.0


def check_ocean(rel):
    for label, value in rel.items():
        if label.startswith(("RNUMA", "VCNUMA", "ASCOMA")):
            assert 0.85 < value < 1.1, (label, value)
    assert rel["SCOMA(90%)"] > 1.2


def check_radix(rel):
    assert rel["ASCOMA(10%)"] < rel["RNUMA(10%)"] * 0.9  # S-COMA-first win
    assert rel["SCOMA(30%)"] > 2.0
    assert rel["RNUMA(90%)"] > 1.05
    assert rel["ASCOMA(90%)"] < 1.08
    assert rel["ASCOMA(90%)"] <= rel["VCNUMA(90%)"] + 0.02


CHECKS = {
    "barnes": check_barnes,
    "em3d": check_em3d,
    "fft": check_fft,
    "lu": check_lu,
    "ocean": check_ocean,
    "radix": check_radix,
}


@pytest.mark.parametrize("app", sorted(CHECKS))
def test_figure_exectime(app, benchmark, emit, results_dir):
    series = benchmark.pedantic(series_for, args=(app,), rounds=1,
                                iterations=1)
    emit(render_figure(app, scale=DEFAULT_SCALE), f"figure_{app}")
    # Machine-readable + plottable artifacts next to the text bars.
    from repro.harness import export_csv, figure_svg
    export_csv(app, str(results_dir / f"figure_{app}.csv"),
               scale=DEFAULT_SCALE)
    figure_svg(app, str(results_dir / f"figure_{app}.svg"),
               scale=DEFAULT_SCALE)
    rel = series["relative_total"]
    assert rel["CCNUMA"] == pytest.approx(1.0)
    CHECKS[app](rel)
