"""Ablation A2: the adaptive remapping backoff (paper Section 5.2).

Compares full AS-COMA against AS-COMA with ``adaptive=False`` (the
threshold never rises, the daemon never slows, relocation is never
disabled) at high memory pressure.  This isolates the paper's second
improvement: without the backoff, the page cache keeps being fine-tuned
(hot pages replacing hot pages) and the kernel overhead climbs.
"""

import pytest

from repro.harness.experiment import DEFAULT_SCALE, get_workload, scaled_policy
from repro.sim.config import SystemConfig
from repro.sim.engine import simulate

HIGH_PRESSURE = {"em3d": 0.9, "radix": 0.9, "barnes": 0.7}


def run_pair(app):
    wl = get_workload(app, DEFAULT_SCALE)
    cfg = SystemConfig(n_nodes=wl.n_nodes,
                       memory_pressure=HIGH_PRESSURE[app])
    full = simulate(wl, scaled_policy("ASCOMA"), cfg)
    fixed = simulate(wl, scaled_policy("ASCOMA", adaptive=False), cfg)
    return full, fixed


@pytest.mark.parametrize("app", sorted(HIGH_PRESSURE))
def test_backoff_reduces_kernel_overhead(app, benchmark, emit):
    full, fixed = benchmark.pedantic(run_pair, args=(app,), rounds=1,
                                     iterations=1)
    f, x = full.aggregate(), fixed.aggregate()
    emit(f"A2 backoff ablation ({app}, {HIGH_PRESSURE[app]:.0%} pressure):\n"
         f"  adaptive : {f.total_cycles():,} cycles, K_OVERHD "
         f"{100 * f.K_OVERHD / f.total_cycles():.1f}%, "
         f"relocations {f.relocations}\n"
         f"  fixed    : {x.total_cycles():,} cycles, K_OVERHD "
         f"{100 * x.K_OVERHD / x.total_cycles():.1f}%, "
         f"relocations {x.relocations}",
         f"ablation_backoff_{app}")
    # The backoff must cut relocation churn; time should not get worse
    # by more than noise.
    assert f.relocations <= x.relocations
    assert f.total_cycles() <= x.total_cycles() * 1.02


def test_backoff_does_not_hurt_at_low_pressure(benchmark, emit):
    """With no thrashing the backoff never engages: both variants match."""

    def run():
        wl = get_workload("em3d", DEFAULT_SCALE)
        cfg = SystemConfig(n_nodes=wl.n_nodes, memory_pressure=0.1)
        full = simulate(wl, scaled_policy("ASCOMA"), cfg)
        fixed = simulate(wl, scaled_policy("ASCOMA", adaptive=False), cfg)
        return (full.aggregate().total_cycles(),
                fixed.aggregate().total_cycles())

    a, b = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(f"A2 backoff ablation (em3d, 10% pressure): adaptive {a:,} vs "
         f"fixed {b:,} cycles", "ablation_backoff_lowpressure")
    assert a == pytest.approx(b, rel=0.02)
