"""Extension bench E4: isolating VC-NUMA's victim cache.

The paper could not evaluate VC-NUMA's victim cache ("we did not
simulate VC-NUMA's victim-cache behavior ... thus the results reported
for VC-NUMA are only relevant for evaluating its relocation strategy").
This bench performs the isolation the paper calls for, by switching the
RAC fill policy:

* **fetch-fill** (the paper's machine): a remote fetch deposits the
  whole 128-byte chunk -- streaming accesses (fft) hit the other three
  lines;
* **victim-fill** (VC-NUMA's hardware): the RAC fills from L1 evictions
  of remote lines instead.

Measured isolation result: at remote-access reuse distances far beyond
the victim cache's reach (the scatter-heavy workloads where hybrids
matter), victim filling is *strictly worse* than fetch filling -- fft
loses nearly all its RAC hits, and even an 8 KiB victim cache only
breaks even on barnes.  VC-NUMA's edge over R-NUMA in this design space
therefore comes from its thrashing detection, not its victim cache --
justifying the paper's methodology after the fact.
"""

from repro.harness.experiment import DEFAULT_SCALE, get_workload, scaled_policy
from repro.sim.config import SystemConfig
from repro.sim.engine import simulate


def run(app, mode, entries):
    wl = get_workload(app, DEFAULT_SCALE)
    cfg = SystemConfig(n_nodes=wl.n_nodes, memory_pressure=0.5,
                       rac_fill_policy=mode, rac_entries=entries)
    return simulate(wl, scaled_policy("CCNUMA"), cfg).aggregate()


def test_victim_vs_fetch_rac(benchmark, emit):
    def sweep():
        rows = []
        for app in ("fft", "barnes"):
            fetch = run(app, "fetch", 1)
            victim_small = run(app, "victim", 4)    # same 128-byte budget
            victim_big = run(app, "victim", 256)    # 8 KiB victim cache
            rows.append((app, fetch, victim_small, victim_big))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = ["E4 victim-fill vs fetch-fill RAC (CC-NUMA, 50% pressure):",
             "  app    | fill    | size    | RAC hits | remote misses"
             " | cycles"]
    for app, fetch, small, big in rows:
        for label, agg in (("fetch", fetch), ("victim-128B", small),
                           ("victim-8KiB", big)):
            size = {"fetch": "128 B", "victim-128B": "128 B",
                    "victim-8KiB": "8 KiB"}[label]
            lines.append(f"  {app:6s} | {label.split('-')[0]:7s} | {size:7s} |"
                         f" {agg.RAC:8,} | {agg.remote_misses():13,} |"
                         f" {agg.total_cycles():,}")
    emit("\n".join(lines), "ext_victim_rac")

    for app, fetch, small, big in rows:
        # Equal-budget victim filling loses badly...
        assert small.RAC < fetch.RAC / 2, app
        assert small.total_cycles() >= fetch.total_cycles() * 0.99, app
        # ...and even a 64x larger victim cache only about breaks even.
        assert big.total_cycles() > fetch.total_cycles() * 0.9, app


def test_fft_streaming_needs_fetch_fill(benchmark, emit):
    def pair():
        return run("fft", "fetch", 1), run("fft", "victim", 4)

    fetch, victim = benchmark.pedantic(pair, rounds=1, iterations=1)
    emit(f"E4 fft streaming: fetch-fill RAC hits {fetch.RAC:,} vs"
         f" victim-fill {victim.RAC:,}; remote misses"
         f" {fetch.remote_misses():,} vs {victim.remote_misses():,}",
         "ext_victim_fft")
    # The paper's fft observation depends on fetch filling: victim
    # filling forfeits the 3-of-4-lines streaming benefit.
    assert victim.remote_misses() > 1.5 * fetch.remote_misses()
