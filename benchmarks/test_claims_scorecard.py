"""Bench: the machine-checked paper-claim scorecard.

Runs the full evaluation matrix once and grades every quantitative
claim extracted from the paper (see repro.harness.claims).  The printed
scorecard is the one-page summary of the whole reproduction.
"""

from repro.harness.claims import render_scorecard, validate_all
from repro.harness.experiment import DEFAULT_SCALE


def test_paper_claims(benchmark, emit):
    claims = benchmark.pedantic(validate_all, args=(DEFAULT_SCALE,),
                                rounds=1, iterations=1)
    emit(render_scorecard(claims), "claims_scorecard")
    failed = [c for c in claims if not c.passed]
    assert not failed, "unreproduced claims: " + "; ".join(
        f"{c.claim} ({c.measured})" for c in failed)
