"""Hot-page report: which pages drove a run's page management.

After a simulation, the directory and the nodes hold enough state to
answer the questions an operator of such a machine would ask: which
pages accumulated relocation evidence, which ones ended up in whose
page cache, and which homes serve the most pages after migration.  The
CLI exposes this as ``python -m repro hotpages <app> <arch>``.
"""

from __future__ import annotations

from ..kernel.vm import PageMode
from ..sim.engine import Engine
from .report import format_table

__all__ = ["hot_page_report", "render_hot_pages"]


def hot_page_report(engine: Engine, top: int = 10) -> dict:
    """Summarise page-management state after ``engine.run()``."""
    machine = engine.machine
    directory = machine.directory

    # Accumulated (and not-yet-consumed) refetch evidence per page.
    evidence: dict[int, int] = {}
    for (page, _node), count in directory.refetch_count.items():
        evidence[page] = evidence.get(page, 0) + count
    hottest = sorted(evidence.items(), key=lambda kv: -kv[1])[:top]

    cached = {
        node.id: sorted(node.page_table.scoma_clock)
        for node in machine.nodes
    }
    modes: dict[str, int] = {"HOME": 0, "SCOMA": 0, "CCNUMA": 0}
    for node in machine.nodes:
        for mode in node.page_table.mode.values():
            modes[PageMode(mode).name] += 1

    return {
        "hottest_pages": hottest,
        "cached_pages_per_node": {n: len(p) for n, p in cached.items()},
        "mapping_mode_totals": modes,
        "relocation_hints": directory.relocation_hints,
        "total_refetches": directory.total_refetches,
        "home_counts": list(machine.allocator.count),
        "home_imbalance": machine.allocator.imbalance(),
    }


def render_hot_pages(engine: Engine, top: int = 10) -> str:
    report = hot_page_report(engine, top)
    lines = [format_table(
        ["Page", "Pending refetch evidence"],
        [[page, count] for page, count in report["hottest_pages"]],
        title="Hottest pages (unconsumed refetch counts)")]
    lines.append("")
    lines.append(format_table(
        ["Node", "S-COMA pages cached", "Home pages"],
        [[n, report["cached_pages_per_node"][n], report["home_counts"][n]]
         for n in sorted(report["cached_pages_per_node"])],
        title="Per-node page-cache / home occupancy"))
    modes = report["mapping_mode_totals"]
    lines.append(
        f"\nmappings: HOME {modes['HOME']}, SCOMA {modes['SCOMA']},"
        f" CCNUMA {modes['CCNUMA']};"
        f" hints {report['relocation_hints']},"
        f" refetches {report['total_refetches']},"
        f" home imbalance {report['home_imbalance']}")
    return "\n".join(lines)
