"""Crossover-pressure analysis: where does an architecture stop winning?

Ties Table 5 to Figures 2-3: the paper's *ideal pressure* (H/(H+Rmax))
is the analytic point below which S-COMA never evicts; the *crossover
pressure* found here is the measured point where an architecture's
execution time crosses CC-NUMA's.  For pure S-COMA the crossover must
sit at or above the ideal pressure (it keeps winning until the page
cache stops covering the working set, then collapses); for AS-COMA
there should be no crossover at all on most applications.

``find_crossover`` runs a bisection over memory pressure, exploiting
that relative time is monotone in pressure for the cache-dependent
architectures.
"""

from __future__ import annotations

from .experiment import DEFAULT_SCALE, get_workload, run_app

__all__ = ["relative_time_at", "find_crossover", "crossover_report"]


def relative_time_at(app: str, arch: str, pressure: float,
                     scale: float = DEFAULT_SCALE,
                     _baseline_cache: dict = {}) -> float:
    """Execution time of (app, arch, pressure) relative to CC-NUMA."""
    key = (app, scale)
    if key not in _baseline_cache:
        _baseline_cache[key] = run_app(app, "CCNUMA", 0.5,
                                       scale).aggregate().total_cycles()
    total = run_app(app, arch, pressure, scale).aggregate().total_cycles()
    return total / _baseline_cache[key]


def find_crossover(app: str, arch: str, lo: float = 0.05, hi: float = 0.95,
                   tol: float = 0.02, scale: float = DEFAULT_SCALE,
                   threshold: float = 1.0) -> float | None:
    """Bisect for the lowest pressure where *arch* stops beating CC-NUMA.

    Returns None when the architecture never crosses in [lo, hi] --
    either it always wins (AS-COMA on lu) or never does.
    """
    rel_lo = relative_time_at(app, arch, lo, scale)
    rel_hi = relative_time_at(app, arch, hi, scale)
    if rel_lo >= threshold:
        return lo if rel_hi >= threshold else None
    if rel_hi < threshold:
        return None
    while hi - lo > tol:
        mid = (lo + hi) / 2
        if relative_time_at(app, arch, mid, scale) >= threshold:
            hi = mid
        else:
            lo = mid
    return (lo + hi) / 2


def crossover_report(apps=("em3d", "radix", "fft"),
                     archs=("SCOMA", "RNUMA", "ASCOMA"),
                     scale: float = DEFAULT_SCALE) -> list[dict]:
    """Crossover pressure vs ideal pressure for a set of apps."""
    rows = []
    for app in apps:
        workload = get_workload(app, scale)
        ideal = workload.params["spec"]["ideal_pressure"]
        for arch in archs:
            crossover = find_crossover(app, arch, scale=scale)
            rows.append({
                "app": app,
                "arch": arch,
                "ideal_pressure": round(ideal, 2),
                "crossover_pressure": (round(crossover, 2)
                                       if crossover is not None else None),
            })
    return rows
