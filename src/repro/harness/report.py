"""Plain-text rendering of tables and chart series.

The paper's artifacts are tables and stacked-bar charts; in a terminal
we render both as aligned text tables.  These helpers are deliberately
dependency-free (no matplotlib in the environment) and are shared by
the bench harness and the examples.
"""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["format_table", "format_stacked_bars", "pct"]


def pct(x: float) -> str:
    return f"{100 * x:.1f}%"


def format_table(headers: Sequence[str], rows: Iterable[Sequence],
                 title: str | None = None) -> str:
    """Render rows as an aligned monospace table."""
    rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_stacked_bars(series: dict[str, dict[str, float]],
                        order: Sequence[str], width: int = 50,
                        title: str | None = None) -> str:
    """ASCII rendition of the paper's stacked bar charts.

    *series* maps bar label -> {component: value}; bars are scaled so
    the largest total spans *width* characters.  Each component is drawn
    with its own fill character, mirroring the chart legends of
    Figures 2-3.
    """
    fills = {
        "U_SH_MEM": "#", "K_BASE": "K", "K_OVERHD": "!", "U_INSTR": "i",
        "U_LC_MEM": ".", "SYNC": "s",
        "HOME": "h", "SCOMA": "S", "RAC": "r", "COLD": "c", "CONF_CAPC": "X",
    }
    totals = {label: sum(parts.values()) for label, parts in series.items()}
    biggest = max(totals.values()) if totals else 1.0
    label_w = max(len(label) for label in series) if series else 0
    lines = []
    if title:
        lines.append(title)
    for label, parts in series.items():
        bar = ""
        for comp in order:
            value = parts.get(comp, 0.0)
            n = int(round(width * value / biggest)) if biggest else 0
            bar += fills.get(comp, "?") * n
        lines.append(f"{label.ljust(label_w)} |{bar} ({totals[label]:.2f})")
    legend = "  ".join(f"{fills.get(c, '?')}={c}" for c in order)
    lines.append(f"legend: {legend}")
    return "\n".join(lines)
