"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``table N``            regenerate paper Table N (1-6)
``figure APP``         regenerate the Figure 2/3 charts for one app
``run APP ARCH``       one simulation, summary printed
``sweep APP``          pressure sweep for one app across architectures
``claims``             run the paper-claim scorecard
``hotpages APP ARCH``  hot-page report after one run
``analyze APP``        workload characterisation (tracestats)

Every command accepts ``--scale`` (workload scale, default 0.5).
"""

from __future__ import annotations

import argparse
import sys

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="AS-COMA reproduction: tables, figures and simulations")
    parser.add_argument("--scale", type=float, default=0.5,
                        help="workload scale factor (default 0.5)")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("table", help="regenerate a paper table")
    p.add_argument("number", type=int, choices=range(1, 7))

    p = sub.add_parser("figure", help="regenerate one app's Figure 2/3 charts")
    p.add_argument("app")

    p = sub.add_parser("run", help="run one simulation")
    p.add_argument("app")
    p.add_argument("arch")
    p.add_argument("--pressure", type=float, default=0.7)

    p = sub.add_parser("sweep", help="pressure sweep for one app")
    p.add_argument("app")

    sub.add_parser("claims", help="paper-claim scorecard")

    p = sub.add_parser("hotpages", help="hot-page report after one run")
    p.add_argument("app")
    p.add_argument("arch")
    p.add_argument("--pressure", type=float, default=0.7)

    p = sub.add_parser("analyze", help="characterise a workload")
    p.add_argument("app")
    return parser


def _cmd_table(args) -> str:
    from . import (render_table1, render_table2, render_table3,
                   render_table4, render_table5, render_table6)
    renderers = {1: render_table1, 2: render_table2, 3: render_table3,
                 4: render_table4}
    if args.number in renderers:
        return renderers[args.number]()
    if args.number == 5:
        return render_table5(args.scale)
    return render_table6(args.scale)


def _cmd_figure(args) -> str:
    from .figures import render_figure
    return render_figure(args.app, scale=args.scale)


def _cmd_run(args) -> str:
    from .experiment import run_app
    result = run_app(args.app, args.arch, args.pressure, scale=args.scale)
    agg = result.aggregate()
    lines = [f"{args.app} / {result.architecture} at "
             f"{args.pressure:.0%} memory pressure:",
             f"  execution time : {result.execution_time():,} cycles",
             f"  time breakdown : " + "  ".join(
                 f"{k}={v:,}" for k, v in agg.time_breakdown().items()),
             f"  misses         : " + "  ".join(
                 f"{k}={v:,}" for k, v in agg.miss_breakdown().items()),
             f"  page mgmt      : {agg.relocations} relocations,"
             f" {agg.evictions} evictions, {agg.migrations} migrations,"
             f" {agg.daemon_runs} daemon runs"]
    return "\n".join(lines)


def _cmd_sweep(args) -> str:
    from .experiment import APP_PRESSURES, ARCHITECTURES, run_app
    from .report import format_table
    pressures = APP_PRESSURES.get(args.app, (0.1, 0.5, 0.9))
    baseline = run_app(args.app, "CCNUMA", pressures[0],
                       scale=args.scale).aggregate().total_cycles()
    rows = []
    for arch in ARCHITECTURES:
        row = [arch]
        for pressure in pressures:
            total = run_app(args.app, arch, pressure,
                            scale=args.scale).aggregate().total_cycles()
            row.append(f"{total / baseline:.2f}")
        rows.append(row)
    headers = ["Architecture"] + [f"{p:.0%}" for p in pressures]
    return format_table(headers, rows,
                        title=f"{args.app}: execution time relative to"
                              " CC-NUMA at the lowest pressure")


def _cmd_claims(args) -> str:
    from .claims import render_scorecard, validate_all
    return render_scorecard(validate_all(scale=args.scale))


def _cmd_hotpages(args) -> str:
    from ..sim.config import SystemConfig
    from ..sim.engine import Engine
    from ..workloads import generate_workload
    from .experiment import scaled_policy
    from .pagereport import render_hot_pages
    wl = generate_workload(args.app, scale=args.scale)
    cfg = SystemConfig(n_nodes=wl.n_nodes, memory_pressure=args.pressure)
    engine = Engine(wl, scaled_policy(args.arch), cfg)
    engine.run()
    return render_hot_pages(engine)


def _cmd_analyze(args) -> str:
    from ..sim.config import SystemConfig
    from ..sim.tracestats import analyze
    from ..workloads import generate_workload
    wl = generate_workload(args.app, scale=args.scale)
    lpp = SystemConfig(n_nodes=wl.n_nodes).address_map().lines_per_page
    report = analyze(wl, lpp)
    lines = [f"{report['name']}: {report['n_nodes']} nodes,"
             f" H={report['home_pages_per_node']},"
             f" Rmax={report['max_remote_pages']},"
             f" ideal pressure {report['ideal_pressure']:.0%}",
             "sharing profile: " + ", ".join(
                 f"{k} nodes: {v} pages" for k, v in report["sharing"].items())]
    for s in report["nodes"]:
        lines.append(f"  node {s['node']}: {s['shared_refs']:,} refs,"
                     f" {s['remote_pages']} remote pages,"
                     f" median reuse {s['median_reuse_distance']:.0f}")
    return "\n".join(lines)


_COMMANDS = {
    "table": _cmd_table,
    "figure": _cmd_figure,
    "run": _cmd_run,
    "sweep": _cmd_sweep,
    "claims": _cmd_claims,
    "hotpages": _cmd_hotpages,
    "analyze": _cmd_analyze,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        output = _COMMANDS[args.command](args)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(output)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
