"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``table N``            regenerate paper Table N (1-6)
``figure APP``         regenerate the Figure 2/3 charts for one app
``run APP ARCH``       one simulation, summary printed
``sweep APP``          pressure sweep for one app across architectures
``matrix``             the whole evaluation matrix, parallel + resumable
``claims``             run the paper-claim scorecard
``bench``              run the repro.perf microbenchmark suite
``check APP ARCH``     one run under the online invariant checker
``hotpages APP ARCH``  hot-page report after one run
``analyze APP``        workload characterisation (tracestats)
``store ACTION``       inspect/clear the result and trace stores
                       (info|list|clear|trace-info|trace-list|trace-clear)
``obs ACTION``         inspect recorded run telemetry
                       (summary|timeline|export)
``serve``              run the persistent async job server
``submit APP ARCH``    submit one run to a running server
``jobs``               list a running server's jobs
``ingest PATH``        register an external trace file as a workload
``sample-report``      sampled-vs-full error analysis (committed configs)

Every command accepts ``--scale`` (workload scale, default 0.5).

Sampling & external traces
--------------------------
``run``/``matrix`` accept ``--sample-rate K`` (keep every K-th barrier
epoch; ``--sample-unit visit|ref`` for barrier-poor traces),
``--sample-pages F`` (keep a hash-selected page fraction) and
``--sample-seed``.  Sampling parameters are part of the spec hash, so
sampled and full runs never share store entries; summaries report the
raw sampled metrics plus scale-up estimates (see ``docs/sampling.md``).
``repro ingest FILE`` converts an external trace (CSV
``time,node,addr,op`` or a Cydonia-style block trace) into a
store-backed workload and prints the ``ext/<name>@<hash>`` app id that
``run`` then accepts in place of a generated app name.

Serving
-------
``repro serve`` keeps traces, the result store and a warm worker pool
resident and accepts jobs over a Unix socket (default
``results/serve.sock``, or ``$REPRO_SERVE_SOCKET``/``--socket``;
``--tcp HOST:PORT`` for TCP).  ``repro submit``/``repro jobs`` are thin
clients, and ``run``/``matrix`` accept ``--server PATH`` to route
through a running server — falling back to in-process execution when
none is listening.  See ``docs/serving.md`` for the protocol.

Caching
-------
Simulation-backed commands go through the runtime layer
(:mod:`repro.runtime`): results are cached content-addressed under
``--store-dir`` (default ``results/store``, or ``$REPRO_STORE_DIR``),
so re-rendering a table or figure is a disk read, not a re-simulation.
``--no-cache`` disables the store for one invocation; ``--refresh``
re-simulates and overwrites cached cells.  ``repro store clear`` wipes
the cache; see ``docs/runtime.md`` for the invalidation rules.

Generated workload traces are cached the same way under
``--trace-dir`` (default ``results/traces``, or ``$REPRO_TRACE_DIR``),
so a fresh invocation loads each workload from disk instead of
regenerating it and warm pool workers share one copy per process.
``--no-trace-cache`` disables the trace store for one invocation;
``repro store trace-clear`` wipes it.  Trace entries invalidate
automatically on :data:`~repro.sim.trace.TRACE_FORMAT_VERSION` bumps.

Telemetry
---------
``--obs`` on ``run``/``matrix`` (or ``REPRO_OBS=1``; ``--no-obs``
overrides the env var) records one JSONL telemetry run — executor
spans plus the adaptive-backoff time series — under ``--obs-dir``
(default ``results/obs``, or ``$REPRO_OBS_DIR``).  ``repro obs
summary|timeline|export`` inspect the recorded runs; see
``docs/observability.md``.
"""

from __future__ import annotations

import argparse
import os
import sys

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="AS-COMA reproduction: tables, figures and simulations")
    parser.add_argument("--scale", type=float, default=0.5,
                        help="workload scale factor (default 0.5)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the on-disk result store")
    vector = parser.add_mutually_exclusive_group()
    vector.add_argument("--vector", action="store_true",
                        help="force the vectorized SoA loop (sets"
                             " REPRO_VECTOR_PATH=1 for this invocation"
                             " and its pool workers; falls back to the"
                             " scalar fast path where the compiled"
                             " kernel is unavailable)")
    vector.add_argument("--no-vector", action="store_true",
                        help="pin the scalar fast path even if"
                             " REPRO_VECTOR_PATH is set in the"
                             " environment")
    vector.add_argument("--vector-mode", choices=("auto", "on", "off"),
                        help="explicit three-state dispatch: 'auto'"
                             " (the default with no flag and no"
                             " REPRO_VECTOR_PATH) uses the kernel"
                             " whenever the run is eligible, 'on' and"
                             " 'off' match --vector/--no-vector")
    parser.add_argument("--refresh", action="store_true",
                        help="re-simulate cached cells (and re-store them)")
    parser.add_argument("--store-dir",
                        default=os.environ.get("REPRO_STORE_DIR",
                                               "results/store"),
                        help="result store directory"
                             " (default results/store or $REPRO_STORE_DIR)")
    parser.add_argument("--no-trace-cache", action="store_true",
                        help="disable the on-disk workload trace cache")
    parser.add_argument("--trace-dir",
                        default=os.environ.get("REPRO_TRACE_DIR",
                                               "results/traces"),
                        help="workload trace cache directory"
                             " (default results/traces or $REPRO_TRACE_DIR)")
    parser.add_argument("--obs-dir", default=None,
                        help="run-telemetry directory"
                             " (default results/obs or $REPRO_OBS_DIR)")
    sub = parser.add_subparsers(dest="command", required=True)

    def add_obs_flags(p) -> None:
        p.add_argument("--obs", action="store_true",
                       help="record run telemetry (executor spans + backoff"
                            " time series) under --obs-dir")
        p.add_argument("--no-obs", action="store_true",
                       help="disable telemetry even if REPRO_OBS=1")

    p = sub.add_parser("table", help="regenerate a paper table")
    p.add_argument("number", type=int, choices=range(1, 7))

    p = sub.add_parser("figure", help="regenerate one app's Figure 2/3 charts")
    p.add_argument("app")

    def add_server_flag(p, default=None) -> None:
        p.add_argument("--server", default=default, metavar="SOCKET",
                       help="route through a running job server at this"
                            " Unix socket (falls back to in-process"
                            " execution when none is listening)")

    def add_sample_flags(p) -> None:
        p.add_argument("--sample-rate", type=int, default=1, metavar="K",
                       help="keep every K-th sampling unit of the trace"
                            " (default 1 = full trace; part of the spec"
                            " hash)")
        p.add_argument("--sample-pages", type=float, default=1.0,
                       metavar="F",
                       help="keep references to a hash-selected fraction"
                            " F of the shared pages, rescaling page pools"
                            " to match (default 1.0)")
        p.add_argument("--sample-seed", type=int, default=0,
                       help="seed for the sampling phase/page hashes"
                            " (default 0)")
        p.add_argument("--sample-unit", choices=("sweep", "visit", "ref"),
                       default="sweep",
                       help="rate-sampling granularity: barrier epochs"
                            " (default; regime-preserving), page visits,"
                            " or raw references (see docs/sampling.md)")

    p = sub.add_parser("run", help="run one simulation")
    p.add_argument("app")
    p.add_argument("arch")
    p.add_argument("--pressure", type=float, default=0.7)
    p.add_argument("--quantum", type=int, default=None,
                   help="scheduling quantum in cycles (default: engine"
                        " default; part of the result-store key)")
    p.add_argument("--check", action="store_true",
                   help="attach the online invariant checker"
                        " (bypasses the result store)")
    add_sample_flags(p)
    add_server_flag(p)
    add_obs_flags(p)

    p = sub.add_parser("sweep", help="pressure sweep for one app")
    p.add_argument("app")

    p = sub.add_parser("matrix",
                       help="run the full evaluation matrix (resumable)")
    p.add_argument("--apps", help="comma-separated app subset (default: all)")
    p.add_argument("--serial", action="store_true",
                   help="run inline instead of over a process pool")
    p.add_argument("--workers", type=int, default=None,
                   help="process-pool size (default: one per cell, capped"
                        " at the CPU count)")
    p.add_argument("--retries", type=int, default=0,
                   help="per-cell retry attempts on failure")
    p.add_argument("--quantum", type=int, default=None,
                   help="scheduling quantum for every cell (default:"
                        " engine default; part of the result-store key)")
    p.add_argument("--check", action="store_true",
                   help="attach the online invariant checker to every"
                        " cell (bypasses the result store)")
    add_sample_flags(p)
    add_server_flag(p)
    add_obs_flags(p)

    p = sub.add_parser("ingest",
                       help="register an external trace file as a"
                            " store-backed workload")
    p.add_argument("path", help="trace file to ingest")
    p.add_argument("--format", choices=("csv", "cydonia"), default="csv",
                   help="input layout: 'csv' is time,node,addr,op[,size];"
                        " 'cydonia' is a Cydonia-style block trace"
                        " (ts,lba,op,size) sharded over --nodes by page"
                        " hash (default csv)")
    p.add_argument("--name", default=None,
                   help="workload name (default: the file stem);"
                        " registered as ext/<name>@<content-hash>")
    p.add_argument("--nodes", type=int, default=None,
                   help="node count for formats without a node column"
                        " (cydonia; default 8)")
    p.add_argument("--barriers", type=int, default=1,
                   help="global barriers to insert at time quantiles"
                        " (default 1, i.e. one epoch)")
    p.add_argument("--cycles-per-time", type=float, default=0.0,
                   help="convert inter-reference time gaps into COMPUTE"
                        " cycles at this rate (default 0 = no compute)")
    p.add_argument("--block-bytes", type=int, default=512,
                   help="LBA block size for cydonia traces (default 512)")
    p.add_argument("--seed", type=int, default=0,
                   help="seed for the cydonia node-sharding hash")

    p = sub.add_parser("sample-report",
                       help="measure sampled-vs-full estimator error on"
                            " the committed analysis configs")
    p.add_argument("--app", default=None,
                   help="measure one ad-hoc cell instead of the"
                        " committed configs (requires --arch)")
    p.add_argument("--arch", default=None)
    p.add_argument("--pressure", type=float, default=0.9)
    p.add_argument("--rate", type=int, default=4)
    p.add_argument("--pages", type=float, default=1.0)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--unit", choices=("sweep", "visit", "ref"),
                   default="sweep")

    sub.add_parser("claims", help="paper-claim scorecard")

    p = sub.add_parser("bench",
                       help="run the repro.perf microbenchmark suite")
    p.add_argument("--repeats", type=int, default=3,
                   help="repeats per benchmark, best-of reported"
                        " (default 3)")
    p.add_argument("--only", default=None,
                   help="run only benchmarks whose name contains this"
                        " substring")
    p.add_argument("--out", default=None, metavar="JSON",
                   help="write the results as JSON (e.g. BENCH_pr3.json)")
    p.add_argument("--baseline", default=None, metavar="JSON",
                   help="previous BENCH_*.json: embed it and report"
                        " speedups against it")

    p = sub.add_parser("check",
                       help="run one simulation under the online invariant"
                            " checker; nonzero exit on violations")
    p.add_argument("app")
    p.add_argument("arch")
    p.add_argument("--pressure", type=float, default=0.7)
    p.add_argument("--granularity", choices=("event", "barrier"),
                   default="event",
                   help="structural-sweep cadence (default: event, the"
                        " precise-but-slow mode)")
    p.add_argument("--bundle-dir", default=None,
                   help="write a failure-replay bundle here on violation")
    p.add_argument("--minimise", action="store_true",
                   help="delta-debug the failing trace to a minimal one"
                        " (requires --bundle-dir)")
    p.add_argument("--inject-skip-invalidate", type=int, default=-1,
                   metavar="NODE",
                   help="deliberately drop invalidations to NODE (checker"
                        " self-test; see SystemConfig.debug_skip_invalidate_node)")

    p = sub.add_parser("hotpages", help="hot-page report after one run")
    p.add_argument("app")
    p.add_argument("arch")
    p.add_argument("--pressure", type=float, default=0.7)

    p = sub.add_parser("analyze", help="characterise a workload")
    p.add_argument("app")

    p = sub.add_parser("store",
                       help="inspect or clear the result / trace stores")
    p.add_argument("action", choices=("info", "list", "clear", "trace-info",
                                      "trace-list", "trace-clear"))

    p = sub.add_parser("obs", help="inspect recorded run telemetry")
    p.add_argument("action", choices=("summary", "timeline", "export"))
    p.add_argument("--run", default=None, metavar="ID",
                   help="telemetry run id or JSONL path (default: latest"
                        " run under --obs-dir)")
    p.add_argument("--cell", default=None, metavar="LABEL",
                   help="timeline: restrict to one cell (spec label"
                        " substring; default: busiest cell)")
    p.add_argument("--node", type=int, default=None,
                   help="timeline: restrict to one node's daemon rows")
    p.add_argument("--format", choices=("json", "csv"), default="json",
                   help="export format (default json)")
    p.add_argument("--out", default=None, metavar="FILE",
                   help="export: write here instead of stdout")

    p = sub.add_parser("serve",
                       help="run the persistent async job server")
    p.add_argument("--socket", default=None, metavar="PATH",
                   help="Unix socket to listen on (default"
                        " results/serve.sock or $REPRO_SERVE_SOCKET)")
    p.add_argument("--tcp", default=None, metavar="HOST:PORT",
                   help="listen on TCP instead of a Unix socket")
    p.add_argument("--workers", type=int, default=None,
                   help="simulation worker count (default: CPU count)")
    p.add_argument("--inline", action="store_true",
                   help="simulate on threads in the server process"
                        " instead of a worker pool (lowest submit"
                        " latency; best for store-hit-heavy traffic)")
    p.add_argument("--max-queued", type=int, default=32,
                   help="live-job bound before submits are rejected"
                        " with backpressure (default 32)")
    p.add_argument("--keep-jobs", type=int, default=256,
                   help="terminal jobs retained for status/result"
                        " queries (default 256)")
    add_obs_flags(p)

    p = sub.add_parser("submit",
                       help="submit one run to a running job server")
    p.add_argument("app")
    p.add_argument("arch")
    p.add_argument("--pressure", type=float, default=0.7)
    p.add_argument("--quantum", type=int, default=None)
    p.add_argument("--detach", action="store_true",
                   help="return the job id immediately instead of"
                        " streaming progress and waiting")
    add_server_flag(p)

    p = sub.add_parser("jobs", help="list a running server's jobs")
    add_server_flag(p)
    return parser


def _cmd_table(args) -> str:
    from . import (render_table1, render_table2, render_table3,
                   render_table4, render_table5, render_table6)
    renderers = {1: render_table1, 2: render_table2, 3: render_table3,
                 4: render_table4}
    if args.number in renderers:
        return renderers[args.number]()
    if args.number == 5:
        return render_table5(args.scale)
    return render_table6(args.scale)


def _cmd_figure(args) -> str:
    from .figures import render_figure
    return render_figure(args.app, scale=args.scale)


def _run_summary(app: str, pressure: float, result) -> str:
    agg = result.aggregate()
    lines = [f"{app} / {result.architecture} at "
             f"{pressure:.0%} memory pressure:",
             f"  execution time : {result.execution_time():,} cycles",
             "  time breakdown : " + "  ".join(
                 f"{k}={v:,}" for k, v in agg.time_breakdown().items()),
             "  misses         : " + "  ".join(
                 f"{k}={v:,}" for k, v in agg.miss_breakdown().items()),
             f"  page mgmt      : {agg.relocations} relocations,"
             f" {agg.evictions} evictions, {agg.migrations} migrations,"
             f" {agg.daemon_runs} daemon runs"]
    if result.invariant_violations is not None:
        lines.append(f"  invariants     : {result.invariant_violations}"
                     " violation(s)")
    return "\n".join(lines)


def _server_client(args):
    """A connected ``ServeClient`` for ``--server``, or ``None``.

    ``None`` means "fall back to in-process execution" — either no
    ``--server`` was given or nothing answers at the socket (a note
    goes to stderr so the fallback is never silent).
    """
    server = getattr(args, "server", None)
    if not server:
        return None
    from ..serve import ServeClient, server_available
    if not server_available(server):
        print(f"no job server at {server}; running in-process",
              file=sys.stderr)
        return None
    return ServeClient(server)


def _print_cell_events(event: dict, stream=None) -> None:
    """Progress printer for streamed server events (log_progress style)."""
    if event.get("ev") != "cell":
        return
    tag = {"hit": "cached", "run": "ran", "fail": "FAILED",
           "attach": "attach", "store-fail": "!store"}.get(
        event.get("name"), event.get("name"))
    line = f"[{tag:>6}] {event.get('spec')}"
    if event.get("error"):
        line += f" ({event['error']})"
    print(line, file=stream or sys.stderr)


def _sample_from_args(args):
    """The :class:`SampleSpec` described by ``--sample-*``, or ``None``."""
    from ..workloads.sample import SampleSpec
    return SampleSpec.from_any(SampleSpec(
        rate=args.sample_rate, pages=args.sample_pages,
        seed=args.sample_seed, unit=args.sample_unit))


def _sampled_summary(args, sample, result) -> str:
    """Run summary plus the scale-up estimates for a sampled cell."""
    from ..runtime.tracecache import fetch_traces
    from ..workloads.sample import estimated_metrics, sample_scale_factor
    text = _run_summary(args.app, args.pressure, result)
    factor = sample_scale_factor(
        fetch_traces(args.app, args.scale, sample=sample))
    est = estimated_metrics(result, sample, factor=factor)
    return text + (f"\n  sampled        : {sample.label() or 'full'}"
                   f" (scale-up x{factor:.2f}) -> estimated full trace:"
                   f" {est['cycles']:,.0f} cycles,"
                   f" Toverhead {est['toverhead']:,.0f},"
                   f" {est['remaps']:,.0f} remap(s)")


def _cmd_run(args) -> str:
    from .experiment import run_app
    sample = _sample_from_args(args)
    if not args.check:
        client = _server_client(args)
        if client is not None:
            from ..runtime import RunFailure, RunSpec
            with client:
                spec = RunSpec.make(args.app, args.arch, args.pressure,
                                    args.scale, quantum=args.quantum,
                                    sample=sample)
                job = client.submit([spec], stream=True,
                                    on_event=_print_cell_events)
                outcome = client.outcomes(job["id"]).get(spec)
            if outcome is None or isinstance(outcome, RunFailure):
                raise ValueError(outcome.label() if outcome is not None
                                 else f"job {job['id']} returned no result")
            if sample is not None:
                return _sampled_summary(args, sample, outcome)
            return _run_summary(args.app, args.pressure, outcome)
    result = run_app(args.app, args.arch, args.pressure, scale=args.scale,
                     check=args.check, quantum=args.quantum, sample=sample)
    if sample is not None:
        return _sampled_summary(args, sample, result)
    return _run_summary(args.app, args.pressure, result)


def _cmd_sweep(args) -> str:
    from .experiment import APP_PRESSURES, ARCHITECTURES, run_pressure_sweep
    from .report import format_table
    pressures = APP_PRESSURES.get(args.app, (0.1, 0.5, 0.9))
    # One sweep call: CC-NUMA (pressure-insensitive) is simulated once
    # for the baseline, not re-run at every pressure point.
    results = run_pressure_sweep(args.app, pressures=pressures,
                                 scale=args.scale)
    baseline = results[("CCNUMA", None)].aggregate().total_cycles()
    rows = []
    for arch in ARCHITECTURES:
        row = [arch]
        for pressure in pressures:
            result = (results[("CCNUMA", None)] if arch == "CCNUMA"
                      else results[(arch, pressure)])
            row.append(f"{result.aggregate().total_cycles() / baseline:.2f}")
        rows.append(row)
    headers = ["Architecture"] + [f"{p:.0%}" for p in pressures]
    return format_table(headers, rows,
                        title=f"{args.app}: execution time relative to"
                              " CC-NUMA at the lowest pressure")


def _cmd_matrix(args):
    from ..runtime import RunFailure, execute, log_progress
    from .experiment import APP_PRESSURES
    from .parallel import matrix_specs
    from .report import format_table
    apps = tuple(a for a in args.apps.split(",") if a) if args.apps else None
    for app in apps or ():
        if app not in APP_PRESSURES:
            raise ValueError(f"unknown app {app!r};"
                             f" choose from {sorted(APP_PRESSURES)}")
    specs = matrix_specs(apps, args.scale, quantum=args.quantum,
                         sample=_sample_from_args(args))
    client = None if args.check else _server_client(args)
    if client is not None:
        with client:
            job = client.submit(specs, stream=True, retries=args.retries,
                                on_event=_print_cell_events)
            outcomes = client.outcomes(job["id"])
    else:
        outcomes = execute(specs, parallel=not args.serial,
                           max_workers=args.workers, retries=args.retries,
                           progress=log_progress, check=args.check)
    failures = [o for o in outcomes.values() if isinstance(o, RunFailure)]
    violations = 0
    per_app: dict = {}
    for spec, outcome in outcomes.items():
        ok, bad = per_app.setdefault(spec.app, [0, 0])
        per_app[spec.app] = ([ok, bad + 1] if isinstance(outcome, RunFailure)
                             else [ok + 1, bad])
        if not isinstance(outcome, RunFailure):
            violations += outcome.invariant_violations or 0
    rows = [[app, ok, bad] for app, (ok, bad) in sorted(per_app.items())]
    text = format_table(["App", "Completed", "Failed"], rows,
                        title=f"Evaluation matrix at scale {args.scale:g}:"
                              f" {len(specs) - len(failures)}/{len(specs)}"
                              " cells completed")
    if args.check:
        text += (f"\n\ninvariant checking: {violations} violation(s) across"
                 f" {len(specs) - len(failures)} checked cell(s)")
    if failures:
        text += "\n\nfailed cells (re-run to resume just these):"
        for failure in failures:
            text += f"\n  {failure.label()}"
    return text, (1 if failures or violations else 0)


def _cmd_ingest(args) -> str:
    from ..runtime import get_default_trace_store
    from ..workloads.ingest import ingest_file, register_external
    store = get_default_trace_store()
    if store is None:
        raise ValueError("ingest needs the trace store;"
                         " drop --no-trace-cache")
    traces = ingest_file(args.path, fmt=args.format, name=args.name,
                         nodes=args.nodes, barriers=args.barriers,
                         cycles_per_time=args.cycles_per_time,
                         block_bytes=args.block_bytes, seed=args.seed)
    app_id = register_external(traces, store=store)
    events = sum(len(t) for t in traces.traces)
    refs = sum(t.shared_refs() for t in traces.traces)
    return (f"ingested {args.path} ({args.format}):"
            f" {traces.n_nodes} nodes, {events:,} events,"
            f" {refs:,} shared refs,"
            f" {traces.total_shared_pages} pages\n"
            f"registered as: {app_id}\n"
            f"run it with:   repro run '{app_id}' ASCOMA")


def _cmd_sample_report(args) -> str:
    from ..workloads.sample import (ERROR_BOUNDS, sampling_error,
                                    sampling_error_report)
    from .report import format_table
    if args.app:
        if not args.arch:
            raise ValueError("--app needs --arch")
        reports = [sampling_error(args.app, args.arch, args.pressure,
                                  args.scale, rate=args.rate,
                                  pages=args.pages, seed=args.seed,
                                  unit=args.unit)]
        title = "ad-hoc sampling error analysis"
    else:
        reports = sampling_error_report()
        title = ("committed sampling error analysis"
                 " (bounds: " + ", ".join(f"{k} {v:.0%}"
                                          for k, v in ERROR_BOUNDS.items())
                 + ")")
    rows = []
    exceeded = 0
    for r in reports:
        s = r["sample"]
        label = f"1/{s['rate']}{'' if s['unit'] == 'sweep' else s['unit'][0]}"
        if s["pages"] < 1:
            label += f" p{s['pages']:g}"
        ok = all(r["errors"][k] <= ERROR_BOUNDS[k] for k in ERROR_BOUNDS)
        exceeded += 0 if ok else 1
        rows.append([f"{r['app']}/{r['arch']}@{r['pressure']:.0%}"
                     f"(x{r['scale']:g})", label,
                     f"{r['scale_factor']:.2f}",
                     f"{r['errors']['cycles']:.1%}",
                     f"{r['errors']['toverhead']:.1%}",
                     f"{r['errors']['remaps']:.1%}",
                     "ok" if ok else "EXCEEDED"])
    text = format_table(
        ["Cell", "Sample", "Factor", "Cycles err", "Toverhead err",
         "Remaps err", "Bounds"], rows, title=title)
    return text, (1 if exceeded else 0)


def _cmd_check(args):
    from ..check import InvariantChecker, ReproBundle, shrink_bundle
    from ..sim.config import SystemConfig
    from ..sim.engine import Engine
    from ..workloads import generate_workload
    from .experiment import SCALED_POLICY_KWARGS, scaled_policy
    from ..runtime import canonical_arch
    wl = generate_workload(args.app, scale=args.scale)
    cfg = SystemConfig(
        n_nodes=wl.n_nodes, memory_pressure=args.pressure,
        debug_skip_invalidate_node=args.inject_skip_invalidate)
    engine = Engine(wl, scaled_policy(args.arch), cfg)
    checker = InvariantChecker.attach(engine, granularity=args.granularity)
    engine.run()
    lines = [f"{args.app} / {engine.policy.name} at"
             f" {args.pressure:.0%} memory pressure"
             f" ({args.granularity} granularity,"
             f" {checker.events_seen:,} events,"
             f" {checker.sweeps_run:,} sweeps):",
             checker.report()]
    if checker.violations and args.bundle_dir:
        arch_key = canonical_arch(args.arch)
        bundle = ReproBundle.capture(
            engine, checker, architecture=arch_key,
            policy_kwargs=SCALED_POLICY_KWARGS.get(arch_key, {}))
        bundle.save(args.bundle_dir)
        lines.append(f"replay bundle written to {args.bundle_dir}")
        if args.minimise:
            shrunk_wl = shrink_bundle(bundle)
            n_events = sum(len(t.kinds) for t in shrunk_wl.traces)
            shrunk_dir = os.path.join(args.bundle_dir, "minimised")
            ReproBundle(shrunk_wl, bundle.config, bundle.architecture,
                        bundle.policy_kwargs, violations=bundle.violations,
                        quantum=bundle.quantum,
                        granularity="event").save(shrunk_dir)
            lines.append(f"minimised to {n_events} event(s): {shrunk_dir}")
    elif args.minimise:
        lines.append("nothing to minimise"
                     + ("" if args.bundle_dir
                        else " (--minimise requires --bundle-dir)"))
    return "\n".join(lines), (1 if checker.violations else 0)


def _cmd_claims(args) -> str:
    from .claims import render_scorecard, validate_all
    return render_scorecard(validate_all(scale=args.scale))


def _cmd_bench(args) -> str:
    import json as _json
    from ..perf import bench_payload, load_bench_json, run_suite
    results = run_suite(repeats=args.repeats, only=args.only)
    if not results:
        raise ValueError(f"no benchmark matches {args.only!r}")
    baseline = load_bench_json(args.baseline) if args.baseline else None
    payload = bench_payload(results, baseline=baseline)
    lines = [r.summary() for r in results]
    for name, speedup in payload.get("speedup_vs_baseline", {}).items():
        lines.append(f"{name}: {speedup:.2f}x vs baseline")
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            _json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        lines.append(f"wrote {args.out}")
    return "\n".join(lines)


def _cmd_hotpages(args) -> str:
    from ..sim.config import SystemConfig
    from ..sim.engine import Engine
    from ..workloads import generate_workload
    from .experiment import scaled_policy
    from .pagereport import render_hot_pages
    wl = generate_workload(args.app, scale=args.scale)
    cfg = SystemConfig(n_nodes=wl.n_nodes, memory_pressure=args.pressure)
    engine = Engine(wl, scaled_policy(args.arch), cfg)
    engine.run()
    return render_hot_pages(engine)


def _cmd_analyze(args) -> str:
    from ..sim.config import SystemConfig
    from ..sim.tracestats import analyze
    from ..workloads import generate_workload
    wl = generate_workload(args.app, scale=args.scale)
    lpp = SystemConfig(n_nodes=wl.n_nodes).address_map().lines_per_page
    report = analyze(wl, lpp)
    lines = [f"{report['name']}: {report['n_nodes']} nodes,"
             f" H={report['home_pages_per_node']},"
             f" Rmax={report['max_remote_pages']},"
             f" ideal pressure {report['ideal_pressure']:.0%}",
             "sharing profile: " + ", ".join(
                 f"{k} nodes: {v} pages" for k, v in report["sharing"].items())]
    for s in report["nodes"]:
        lines.append(f"  node {s['node']}: {s['shared_refs']:,} refs,"
                     f" {s['remote_pages']} remote pages,"
                     f" median reuse {s['median_reuse_distance']:.0f}")
    return "\n".join(lines)


def _cmd_store(args) -> str:
    from ..runtime import RunStore, get_default_store
    if args.action.startswith("trace-"):
        return _cmd_trace_store(args)
    store = get_default_store() or RunStore(args.store_dir)
    if args.action == "clear":
        removed = store.clear()
        return f"removed {removed} artifact(s) from {store.root}"
    if args.action == "list":
        entries = store.entries()
        if not entries:
            return f"store at {store.root} is empty"
        lines = [f"store at {store.root}: {len(entries)} artifact(s)"]
        for entry in entries:
            spec = entry["spec"]
            lines.append(f"  {entry['spec_hash']}  {spec.get('app')}"
                         f"/{spec.get('arch')}@{spec.get('pressure')}"
                         f" x{spec.get('scale')}")
        return "\n".join(lines)
    info = store.describe()
    session = info.pop("session")
    lines = [f"{key}: {value}" for key, value in info.items()]
    lines.append("session: " + ", ".join(f"{k}={v}"
                                         for k, v in session.items()))
    return "\n".join(lines)


def _cmd_trace_store(args) -> str:
    from ..runtime import TraceStore, get_default_trace_store
    store = get_default_trace_store() or TraceStore(args.trace_dir)
    if args.action == "trace-clear":
        removed = store.clear()
        return f"removed {removed} trace artifact(s) from {store.root}"
    if args.action == "trace-list":
        entries = store.entries()
        if not entries:
            return f"trace store at {store.root} is empty"
        lines = [f"trace store at {store.root}: {len(entries)} artifact(s)"]
        for entry in entries:
            lines.append(f"  {entry['file']}  {entry['name']}"
                         f" ({entry['n_nodes']} nodes,"
                         f" {entry['events']:,} events,"
                         f" {entry['bytes']:,} bytes,"
                         f" hash {entry['content_hash']})")
        return "\n".join(lines)
    info = store.describe()
    session = info.pop("session")
    lines = [f"{key}: {value}" for key, value in info.items()]
    lines.append("session: " + ", ".join(f"{k}={v}"
                                         for k, v in session.items()))
    return "\n".join(lines)


def _cmd_obs(args) -> str:
    from ..obs import (backoff_specs, export_records, read_records,
                       render_summary, render_timeline, resolve_run_path)
    path = resolve_run_path(args.run, args.obs_dir)
    records = read_records(path)
    if args.action == "summary":
        return render_summary(records, run_name=path.stem)
    if args.action == "timeline":
        spec = None
        if args.cell:
            matches = [s for s in backoff_specs(records) if args.cell in s]
            if not matches:
                raise ValueError(
                    f"no backoff telemetry for a cell matching"
                    f" {args.cell!r} in {path.name}")
            spec = matches[0]
        return render_timeline(records, spec=spec, node=args.node)
    text = export_records(records, fmt=args.format)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(text)
            if not text.endswith("\n"):
                fh.write("\n")
        return f"exported {len(records)} record(s) to {args.out}"
    return text


def _cmd_serve(args) -> str:
    import asyncio

    from ..obs import get_default_obs
    from ..runtime import get_default_store, get_default_trace_store
    from ..serve import JobServer, default_socket_path

    host = port = None
    socket_path = args.socket
    if args.tcp:
        host, _, port_s = args.tcp.rpartition(":")
        if not host or not port_s.isdigit():
            raise ValueError(f"--tcp wants HOST:PORT, got {args.tcp!r}")
        port, socket_path = int(port_s), None
    elif socket_path is None:
        socket_path = default_socket_path()
    server = JobServer(
        socket_path, host=host, port=port,
        store=get_default_store(), trace_store=get_default_trace_store(),
        obs=get_default_obs(),
        backend="inline" if args.inline else "process",
        workers=args.workers, max_queued=args.max_queued,
        keep_jobs=args.keep_jobs)
    print(f"serving on {server.address}"
          f" ({server.backend} backend, {server.workers} workers,"
          f" queue bound {server.max_queued})", file=sys.stderr)
    try:
        asyncio.run(server.serve())
    except KeyboardInterrupt:
        pass
    stats = server.stats
    return (f"server stopped: {stats['submitted']} job(s),"
            f" {stats['simulated']} simulated, {stats['hits']} store"
            f" hit(s), {stats['attached']} deduped attach(es),"
            f" {stats['rejected']} rejected")


def _cmd_submit(args) -> str:
    from ..runtime import RunFailure, RunSpec
    from ..serve import ServeClient, default_socket_path
    spec = RunSpec(args.app, args.arch, args.pressure, args.scale,
                   quantum=args.quantum)
    with ServeClient(args.server or default_socket_path()) as client:
        if args.detach:
            job = client.submit([spec])
            return (f"job {job['id']} queued"
                    f" ({job['cells']} cell(s));"
                    f" poll with: repro jobs")
        job = client.submit([spec], stream=True,
                            on_event=_print_cell_events)
        outcome = client.outcomes(job["id"]).get(spec)
    if outcome is None or isinstance(outcome, RunFailure):
        raise ValueError(outcome.label() if outcome is not None
                         else f"job {job['id']} returned no result")
    return _run_summary(args.app, args.pressure, outcome)


def _cmd_jobs(args) -> str:
    from ..serve import ServeClient, default_socket_path
    from .report import format_table
    with ServeClient(args.server or default_socket_path()) as client:
        info = client.ping()
        jobs = client.jobs()
    if not jobs:
        return f"server at {client.socket_path}: no jobs"
    rows = []
    for job in jobs:
        counts = job.get("counts", {})
        rows.append([job["id"], job["state"],
                     f"{job['completed']}/{job['cells']}",
                     counts.get("hit", 0), counts.get("attach", 0),
                     job["failed"],
                     f"{job.get('wall_s', 0.0):.2f}s"
                     if "wall_s" in job else "-"])
    title = (f"{len(jobs)} job(s) on {client.socket_path}"
             f" ({info['backend']} backend,"
             f" {info['stats']['simulated']} cell(s) simulated)")
    return format_table(["Job", "State", "Cells", "Hits", "Attached",
                         "Failed", "Wall"], rows, title=title)


_COMMANDS = {
    "table": _cmd_table,
    "figure": _cmd_figure,
    "run": _cmd_run,
    "sweep": _cmd_sweep,
    "matrix": _cmd_matrix,
    "ingest": _cmd_ingest,
    "sample-report": _cmd_sample_report,
    "claims": _cmd_claims,
    "bench": _cmd_bench,
    "check": _cmd_check,
    "hotpages": _cmd_hotpages,
    "analyze": _cmd_analyze,
    "store": _cmd_store,
    "obs": _cmd_obs,
    "serve": _cmd_serve,
    "submit": _cmd_submit,
    "jobs": _cmd_jobs,
}


def _make_recorder(args):
    """The per-invocation telemetry recorder, or ``None`` when off.

    ``--obs`` turns telemetry on for commands that grew the flag
    (``run``/``matrix``); ``REPRO_OBS=1`` does the same without editing
    scripts, and ``--no-obs`` wins over the environment.
    """
    if not hasattr(args, "obs"):  # command has no telemetry surface
        return None
    obs_on = args.obs or os.environ.get("REPRO_OBS") == "1"
    if args.no_obs or not obs_on:
        return None
    from ..obs import ObsSink, SpanRecorder
    recorder = SpanRecorder(ObsSink(args.obs_dir))
    recorder.emit("meta", command=args.command, scale=args.scale)
    return recorder


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    # Loop selection travels via the environment (never the spec hash),
    # so executor pool workers inherit it with zero plumbing -- the
    # same contract as REPRO_SLOW_PATH.
    if args.vector:
        os.environ["REPRO_VECTOR_PATH"] = "1"
    elif args.no_vector:
        os.environ["REPRO_VECTOR_PATH"] = "0"
    elif args.vector_mode:
        os.environ["REPRO_VECTOR_PATH"] = args.vector_mode
    from ..obs import use_obs
    from ..runtime import RunStore, TraceStore, use_store, use_trace_store
    store = None if args.no_cache else RunStore(args.store_dir)
    trace_store = (None if args.no_trace_cache
                   else TraceStore(args.trace_dir))
    recorder = _make_recorder(args)
    try:
        with use_store(store, refresh=args.refresh), \
                use_trace_store(trace_store), use_obs(recorder):
            output = _COMMANDS[args.command](args)
    except (ValueError, OSError, LookupError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        if recorder is not None:
            sink = recorder.sink
            sink.close()
            print(f"telemetry: {sink.path}"
                  f" ({sink.records_written} records)", file=sys.stderr)
    code = 0
    if isinstance(output, tuple):
        output, code = output
    print(output)
    return code


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
