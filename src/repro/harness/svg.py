"""Dependency-free SVG rendering of the paper's stacked-bar charts.

The environment has no plotting library, so this module writes the
Figure 2/3 charts as standalone SVG by hand: horizontal stacked bars,
one per (architecture, pressure) label, with the paper's six time
components (or five miss classes) as coloured segments and a legend.
``python -m repro`` does not expose it directly; use::

    from repro.harness.svg import figure_svg
    figure_svg("em3d", "results/figure_em3d.svg")
"""

from __future__ import annotations

from html import escape

from ..sim.stats import MISS_CLASSES, TIME_BUCKETS
from .experiment import DEFAULT_SCALE
from .figures import figure_series

__all__ = ["render_stacked_svg", "figure_svg"]

#: Colour-blind-safe palette (Okabe-Ito), keyed per component.
PALETTE = {
    "U_SH_MEM": "#0072B2", "K_BASE": "#999999", "K_OVERHD": "#D55E00",
    "U_INSTR": "#009E73", "U_LC_MEM": "#F0E442", "SYNC": "#CC79A7",
    "HOME": "#0072B2", "SCOMA": "#009E73", "RAC": "#F0E442",
    "COLD": "#999999", "CONF_CAPC": "#D55E00",
}

BAR_H = 18
GAP = 6
LABEL_W = 130
CHART_W = 520
LEGEND_H = 28
PAD = 10


def render_stacked_svg(series: dict[str, dict[str, float]],
                       order: list[str], title: str) -> str:
    """Render {label: {component: value}} as an SVG stacked-bar chart."""
    labels = list(series)
    totals = {label: sum(parts.values()) for label, parts in series.items()}
    biggest = max(totals.values()) if totals else 1.0
    height = (PAD + 22 + len(labels) * (BAR_H + GAP) + LEGEND_H + PAD)
    width = PAD + LABEL_W + CHART_W + 90 + PAD

    parts = [f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}"'
             f' height="{height}" font-family="monospace" font-size="11">',
             f'<text x="{PAD}" y="{PAD + 10}" font-size="13"'
             f' font-weight="bold">{escape(title)}</text>']

    y = PAD + 22
    for label in labels:
        parts.append(f'<text x="{PAD}" y="{y + BAR_H - 5}">'
                     f'{escape(label)}</text>')
        x = PAD + LABEL_W
        for comp in order:
            value = series[label].get(comp, 0.0)
            w = CHART_W * value / biggest if biggest else 0
            if w > 0:
                parts.append(
                    f'<rect x="{x:.1f}" y="{y}" width="{w:.1f}"'
                    f' height="{BAR_H}" fill="{PALETTE.get(comp, "#000")}">'
                    f'<title>{escape(comp)}: {value:.3g}</title></rect>')
                x += w
        parts.append(f'<text x="{x + 4:.1f}" y="{y + BAR_H - 5}">'
                     f'{totals[label]:.2f}</text>')
        y += BAR_H + GAP

    lx = PAD + LABEL_W
    for comp in order:
        parts.append(f'<rect x="{lx}" y="{y + 4}" width="10" height="10"'
                     f' fill="{PALETTE.get(comp, "#000")}"/>')
        parts.append(f'<text x="{lx + 13}" y="{y + 13}">'
                     f'{escape(comp)}</text>')
        lx += 13 + 7 * len(comp) + 18
    parts.append("</svg>")
    return "\n".join(parts)


def figure_svg(app: str, path: str, scale: float = DEFAULT_SCALE,
               results: dict | None = None, chart: str = "time") -> None:
    """Write one application's Figure 2/3 chart as an SVG file.

    ``chart`` selects the left ("time") or right ("misses") chart.
    """
    series = figure_series(app, scale, results)
    if chart == "time":
        data = series["time"]
        order = list(TIME_BUCKETS)
        title = f"{app}: execution time relative to CC-NUMA"
    elif chart == "misses":
        data = {label: {k: float(v) for k, v in parts.items()}
                for label, parts in series["misses"].items()}
        order = list(MISS_CLASSES)
        title = f"{app}: where shared-data misses were satisfied"
    else:
        raise ValueError('chart must be "time" or "misses"')
    with open(path, "w") as fh:
        fh.write(render_stacked_svg(data, order, title))
