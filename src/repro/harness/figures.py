"""Regenerators for the paper's Figures 2 and 3.

Each application gets two chart families (Section 5):

* **left charts** -- execution time relative to CC-NUMA, broken into
  U-SH-MEM / K-BASE / K-OVERHD / U-INSTR / U-LC-MEM / SYNC;
* **right charts** -- where cache misses to shared data were satisfied:
  HOME / SCOMA / RAC / COLD / CONF-CAPC.

``figure_series`` produces the numeric series; ``render_figure``
renders both charts as ASCII stacked bars with the paper's bar labels
("ASCOMA(70%)" etc.).
"""

from __future__ import annotations

from ..sim.stats import MISS_CLASSES, TIME_BUCKETS
from .experiment import (APP_PRESSURES, ARCHITECTURES, DEFAULT_SCALE,
                         run_pressure_sweep)
from .report import format_stacked_bars

__all__ = ["figure_series", "render_figure", "export_csv", "FIGURE_APPS"]

#: Figure 2 shows barnes/em3d/fft; Figure 3 shows lu/ocean/radix.
FIGURE_APPS = {
    "figure2": ("barnes", "em3d", "fft"),
    "figure3": ("lu", "ocean", "radix"),
}


def _bar_label(arch: str, pressure: float | None) -> str:
    if pressure is None:
        return arch
    return f"{arch}({int(round(pressure * 100))}%)"


def figure_series(app: str, scale: float = DEFAULT_SCALE,
                  results: dict | None = None) -> dict:
    """Numeric chart series for one application.

    Returns ``{"time": {label: {bucket: rel_value}},
               "misses": {label: {class: count}},
               "relative_total": {label: float}}``
    where time values are normalised to CC-NUMA's aggregate total, as
    the paper's left charts are.
    """
    results = results or run_pressure_sweep(app, scale=scale)
    baseline_total = results[("CCNUMA", None)].aggregate().total_cycles()

    time_series: dict = {}
    miss_series: dict = {}
    rel_total: dict = {}
    order = [("CCNUMA", None)] + [
        (arch, p) for arch in ARCHITECTURES if arch != "CCNUMA"
        for p in APP_PRESSURES[app] if (arch, p) in results
    ]
    for key in order:
        arch, pressure = key
        result = results[key]
        label = _bar_label(arch, pressure)
        agg = result.aggregate()
        time_series[label] = {b: getattr(agg, b) / baseline_total
                              for b in TIME_BUCKETS}
        miss_series[label] = {m: getattr(agg, m) for m in MISS_CLASSES}
        rel_total[label] = agg.total_cycles() / baseline_total
    return {"time": time_series, "misses": miss_series,
            "relative_total": rel_total}


def render_figure(app: str, scale: float = DEFAULT_SCALE,
                  results: dict | None = None) -> str:
    """Both charts for one application as ASCII stacked bars."""
    series = figure_series(app, scale, results)
    left = format_stacked_bars(
        series["time"], order=list(TIME_BUCKETS), width=60,
        title=f"{app.upper()}: execution time relative to CC-NUMA"
              " (components of Figures 2-3, left)")
    right = format_stacked_bars(
        {k: {m: float(v) for m, v in parts.items()}
         for k, parts in series["misses"].items()},
        order=list(MISS_CLASSES), width=60,
        title=f"{app.upper()}: where shared-data misses were satisfied"
              " (Figures 2-3, right)")
    return left + "\n\n" + right


def export_csv(app: str, path: str, scale: float = DEFAULT_SCALE,
               results: dict | None = None) -> None:
    """Write one application's figure series as CSV.

    Columns: bar label, relative total, the six time components
    (normalised to CC-NUMA) and the five miss-class counts -- everything
    needed to re-plot Figures 2-3 in any external tool.
    """
    series = figure_series(app, scale, results)
    with open(path, "w") as fh:
        header = (["label", "relative_total"]
                  + [f"time_{b}" for b in TIME_BUCKETS]
                  + [f"miss_{m}" for m in MISS_CLASSES])
        fh.write(",".join(header) + "\n")
        for label, rel in series["relative_total"].items():
            time_parts = series["time"][label]
            miss_parts = series["misses"][label]
            row = ([label, f"{rel:.6f}"]
                   + [f"{time_parts[b]:.6f}" for b in TIME_BUCKETS]
                   + [str(miss_parts[m]) for m in MISS_CLASSES])
            fh.write(",".join(row) + "\n")
