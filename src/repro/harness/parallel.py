"""Parallel execution of the evaluation matrix.

The full Figure 2/3 matrix is ~100 independent simulations; this module
fans them out over a process pool via the runtime executor
(:mod:`repro.runtime.executor`).  Cells are canonical
:class:`~repro.runtime.spec.RunSpec` values — the legacy
``(app, arch, pressure, scale)`` tuple API is kept as a thin adapter —
and workers resolve workloads through the trace cache
(:mod:`repro.runtime.tracecache`): forked workers inherit the parent's
pre-warmed traces, spawn workers hit the on-disk store, and only a
cold cache pays for deterministic regeneration (shipping traces
through pickle would cost more than either).

Executor guarantees inherited here: duplicate cells are simulated once
and fanned back out; a failing cell comes back as a
:class:`~repro.runtime.spec.RunFailure` naming its spec instead of
killing the pool; with a store attached, already-computed cells resume
from disk.

Used by the CLI's ``sweep``/``matrix`` paths and available as a library
call for large parameter studies::

    from repro.harness.parallel import run_cells
    results = run_cells([("em3d", "ASCOMA", p, 0.5)
                         for p in (0.1, 0.3, 0.5, 0.7, 0.9)])
"""

from __future__ import annotations

from ..runtime import RunFailure, RunSpec, execute
from ..sim.stats import RunResult

__all__ = ["run_cell", "run_cells", "run_matrix_parallel", "matrix_specs"]


def run_cell(cell: tuple) -> RunResult:
    """One (app, arch, pressure, scale) simulation; exceptions propagate."""
    return RunSpec.from_cell(cell).execute()


def run_cells(cells: list[tuple], max_workers: int | None = None,
              parallel: bool = True, *, store=None,
              refresh: bool | None = None, retries: int = 0,
              progress=None) -> dict[tuple, RunResult | RunFailure]:
    """Run many matrix cells, in parallel by default.

    Returns ``{cell: RunResult | RunFailure}`` with one entry per input
    cell — duplicates are simulated once and fanned back out.
    ``parallel=False`` runs inline (deterministic single-process path
    for tests and debugging); *store*/*refresh*/*retries*/*progress*
    pass straight through to :func:`repro.runtime.execute`.
    """
    cells = list(cells)
    specs = [RunSpec.from_cell(cell) for cell in cells]
    outcomes = execute(specs, store=store, refresh=refresh,
                       parallel=parallel, max_workers=max_workers,
                       retries=retries, progress=progress)
    return {cell: outcomes[spec] for cell, spec in zip(cells, specs)}


def matrix_specs(apps=None, scale: float = 0.5,
                 quantum: int | None = None, sample=None) -> list[RunSpec]:
    """Every spec of the paper's evaluation matrix.

    CC-NUMA appears once per app (pressure-insensitive, simulated at
    the app's lowest pressure), the other architectures once per
    (app, pressure) point.  A non-default *quantum* applies to every
    cell and keys distinct store entries (quantum changes event
    interleaving, so cached results must not be shared across quanta).
    *sample* (SampleSpec/dict/None) likewise applies to every cell:
    sampled matrices replay reduced traces and occupy their own store
    entries (see :mod:`repro.workloads.sample`).
    """
    from .experiment import APP_PRESSURES, ARCHITECTURES
    apps = apps or tuple(APP_PRESSURES)
    specs = []
    for app in apps:
        pressures = APP_PRESSURES[app]
        specs.append(RunSpec.make(app, "CCNUMA", pressures[0], scale,
                                  quantum=quantum, sample=sample))
        for arch in ARCHITECTURES:
            if arch == "CCNUMA":
                continue
            for pressure in pressures:
                specs.append(RunSpec.make(app, arch, pressure, scale,
                                          quantum=quantum, sample=sample))
    return specs


def run_matrix_parallel(apps=None, scale: float = 0.5,
                        max_workers: int | None = None, *, store=None,
                        refresh: bool | None = None, retries: int = 0,
                        progress=None, strict: bool = True,
                        quantum: int | None = None, sample=None) -> dict:
    """The paper's whole matrix, fanned out: {app: {(arch, p): result}}.

    CC-NUMA runs once per app (pressure-insensitive) under the key
    ``("CCNUMA", None)``, as in
    :func:`repro.harness.experiment.run_pressure_sweep`.  A non-default
    *quantum* reaches every cell (the CLI's ``--quantum``).  With
    ``strict=True`` (default) any failed cell raises a RuntimeError
    naming the failing specs; ``strict=False`` instead includes the
    :class:`RunFailure` objects in the mapping for the caller to
    inspect.
    """
    from .experiment import APP_PRESSURES
    apps = apps or tuple(APP_PRESSURES)
    specs = matrix_specs(apps, scale, quantum=quantum, sample=sample)
    outcomes = execute(specs, store=store, refresh=refresh,
                       max_workers=max_workers, retries=retries,
                       progress=progress)
    failures = [o for o in outcomes.values() if isinstance(o, RunFailure)]
    if failures and strict:
        names = ", ".join(f.label() for f in failures)
        raise RuntimeError(f"{len(failures)} matrix cell(s) failed: {names}")
    out: dict = {app: {} for app in apps}
    for spec, outcome in outcomes.items():
        key = (("CCNUMA", None) if spec.arch == "CCNUMA"
               else (spec.arch, spec.pressure))
        out[spec.app][key] = outcome
    return out
