"""Parallel execution of the evaluation matrix.

The full Figure 2/3 matrix is ~100 independent simulations; this module
fans them out over a process pool.  Runs are identified by
``(app, arch, pressure, scale)`` tuples so workers regenerate workloads
locally (traces are deterministic; shipping them through pickle would
cost more than regenerating).  Results come back as
:class:`~repro.sim.stats.RunResult` objects, which pickle cleanly.

Used by the CLI's ``sweep --parallel`` path and available as a library
call for large parameter studies::

    from repro.harness.parallel import run_cells
    results = run_cells([("em3d", "ASCOMA", p, 0.5)
                         for p in (0.1, 0.3, 0.5, 0.7, 0.9)])
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor

from ..sim.stats import RunResult

__all__ = ["run_cell", "run_cells", "run_matrix_parallel"]


def run_cell(cell: tuple) -> RunResult:
    """Worker entry: one (app, arch, pressure, scale) simulation.

    Module-level so it pickles for the process pool; imports stay inside
    so workers only pay for what they use.
    """
    app, arch, pressure, scale = cell
    from .experiment import run_app
    return run_app(app, arch, pressure, scale=scale)


def run_cells(cells: list[tuple], max_workers: int | None = None,
              parallel: bool = True) -> dict[tuple, RunResult]:
    """Run many matrix cells, in parallel by default.

    Returns ``{cell: RunResult}``.  ``parallel=False`` runs inline
    (deterministic single-process path for tests and debugging).
    """
    cells = list(cells)
    if not parallel or len(cells) <= 1:
        return {cell: run_cell(cell) for cell in cells}
    workers = max_workers or min(len(cells), os.cpu_count() or 2)
    with ProcessPoolExecutor(max_workers=workers) as pool:
        results = pool.map(run_cell, cells)
        return dict(zip(cells, results))


def run_matrix_parallel(apps=None, scale: float = 0.5,
                        max_workers: int | None = None) -> dict:
    """The paper's whole matrix, fanned out: {app: {(arch, p): result}}.

    CC-NUMA runs once per app (pressure-insensitive) under the key
    ``(\"CCNUMA\", None)``, as in
    :func:`repro.harness.experiment.run_pressure_sweep`.
    """
    from .experiment import APP_PRESSURES, ARCHITECTURES
    apps = apps or tuple(APP_PRESSURES)
    cells = []
    for app in apps:
        pressures = APP_PRESSURES[app]
        cells.append((app, "CCNUMA", pressures[0], scale))
        for arch in ARCHITECTURES:
            if arch == "CCNUMA":
                continue
            for pressure in pressures:
                cells.append((app, arch, pressure, scale))
    flat = run_cells(cells, max_workers=max_workers)
    out: dict = {app: {} for app in apps}
    for (app, arch, pressure, _), result in flat.items():
        key = ("CCNUMA", None) if arch == "CCNUMA" else (arch, pressure)
        out[app][key] = result
    return out
