"""Config and result serialization: reproducible experiment records.

``config_to_dict`` / ``config_from_dict`` round-trip a
:class:`~repro.sim.config.SystemConfig` (including the nested kernel
cost model) through plain JSON-compatible dicts, so an experiment's
exact machine parameters can be stored next to its results.
``result_to_dict`` flattens a :class:`~repro.sim.stats.RunResult` the
same way (delegating to ``RunResult.to_dict``/``from_dict``, which the
runtime result store shares); ``save_results`` / ``load_results``
persist a whole matrix as one JSON file under ``results/``.
"""

from __future__ import annotations

import dataclasses
import json

from ..kernel.costs import KernelCosts
from ..sim.config import SystemConfig
from ..sim.stats import RunResult

__all__ = ["config_to_dict", "config_from_dict", "result_to_dict",
           "result_from_dict", "save_results", "load_results"]


def config_to_dict(config: SystemConfig) -> dict:
    data = dataclasses.asdict(config)
    data["kernel"] = dataclasses.asdict(config.kernel)
    return data


def config_from_dict(data: dict) -> SystemConfig:
    data = dict(data)
    kernel = data.pop("kernel", None)
    if kernel is not None:
        data["kernel"] = KernelCosts(**kernel)
    return SystemConfig(**data)


def result_to_dict(result: RunResult) -> dict:
    """Canonical result serialisation (delegates to ``RunResult.to_dict``)."""
    return result.to_dict()


def result_from_dict(data: dict) -> RunResult:
    return RunResult.from_dict(data)


def save_results(path: str, results: dict[tuple, RunResult],
                 config: SystemConfig | None = None) -> None:
    """Persist a results dict keyed by (arch, pressure)-style tuples."""
    payload = {
        "config": config_to_dict(config) if config is not None else None,
        "results": [
            {"key": list(key), "result": result_to_dict(result)}
            for key, result in results.items()
        ],
    }
    with open(path, "w") as fh:
        json.dump(payload, fh)


def load_results(path: str) -> tuple[SystemConfig | None, dict]:
    with open(path) as fh:
        payload = json.load(fh)
    config = (config_from_dict(payload["config"])
              if payload.get("config") else None)
    results = {tuple(entry["key"]): result_from_dict(entry["result"])
               for entry in payload["results"]}
    return config, results
