"""Programmatic validation of the paper's quantitative claims.

Turns the reproduction's acceptance criteria into data: each
:class:`Claim` names a sentence from the paper, how we operationalise
it, and the measurement; :func:`validate_all` runs the evaluation
matrix once and grades every claim.  The CLI (``python -m repro
claims``) and the claims bench both print the resulting scorecard,
which is the machine-checked version of EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass

from .experiment import APP_PRESSURES, DEFAULT_SCALE, run_app
from .figures import figure_series
from .report import format_table

__all__ = ["Claim", "validate_all", "render_scorecard"]


@dataclass
class Claim:
    claim: str
    source: str
    expected: str
    measured: str
    passed: bool


def _rel(series: dict, label: str) -> float:
    return series["relative_total"][label]


def validate_all(scale: float = DEFAULT_SCALE) -> list[Claim]:
    """Run the matrix and grade every claim.  Returns the scorecard."""
    series = {app: figure_series(app, scale=scale)
              for app in APP_PRESSURES}
    claims: list[Claim] = []

    def add(claim, source, expected, measured, passed):
        claims.append(Claim(claim, source, expected, measured, passed))

    # 1. CC-NUMA is pressure-insensitive.
    lo = run_app("em3d", "CCNUMA", 0.1, scale).aggregate().total_cycles()
    hi = run_app("em3d", "CCNUMA", 0.9, scale).aggregate().total_cycles()
    drift = abs(lo - hi) / lo
    add("CC-NUMA is not affected by memory pressure", "Section 5",
        "drift < 1%", f"drift {drift:.2%}", drift < 0.01)

    # 2. AS-COMA == S-COMA at low pressure.
    for app in ("em3d", "radix", "barnes", "lu"):
        p0 = APP_PRESSURES[app][0]
        a = _rel(series[app], f"ASCOMA({int(p0*100)}%)")
        s = _rel(series[app], f"SCOMA({int(p0*100)}%)")
        add(f"AS-COMA performs like pure S-COMA at low pressure ({app})",
            "Section 3", "within 5%", f"AS-COMA {a:.2f} vs S-COMA {s:.2f}",
            abs(a - s) / s < 0.05)

    # 3. S-COMA and AS-COMA beat CC-NUMA at low pressure by ~30-62%.
    for app in ("em3d", "radix", "barnes", "lu"):
        p0 = APP_PRESSURES[app][0]
        a = _rel(series[app], f"ASCOMA({int(p0*100)}%)")
        add(f"AS-COMA outperforms CC-NUMA by 30-62% at low pressure ({app})",
            "Section 5.1", "rel < 0.80", f"rel {a:.2f}", a < 0.80)

    # 4. Pure S-COMA degrades dramatically at high pressure.
    for app, pressure in (("em3d", 0.9), ("radix", 0.3)):
        v = _rel(series[app], f"SCOMA({int(pressure*100)}%)")
        add(f"pure S-COMA collapses under pressure ({app} at"
            f" {pressure:.0%})", "Section 5.2", "rel > 2.0", f"rel {v:.2f}",
            v > 2.0)

    # 5. R-NUMA drops below CC-NUMA at high pressure on thrashy apps.
    for app in ("em3d", "radix"):
        p = max(APP_PRESSURES[app])
        v = _rel(series[app], f"RNUMA({int(p*100)}%)")
        add(f"R-NUMA falls behind CC-NUMA when thrashing ({app} at"
            f" {p:.0%})", "Section 5.2", "rel > 1.05", f"rel {v:.2f}",
            v > 1.05)

    # 6. AS-COMA converges to CC-NUMA at extreme pressure.
    worst = 0.0
    for app in APP_PRESSURES:
        p = max(APP_PRESSURES[app])
        worst = max(worst, _rel(series[app], f"ASCOMA({int(p*100)}%)"))
    add("AS-COMA at worst underperforms CC-NUMA by a few percent",
        "Abstract / Section 6", "worst rel < 1.08", f"worst rel {worst:.2f}",
        worst < 1.08)

    # 7. AS-COMA beats the other hybrids at high pressure.
    for app in ("em3d", "radix", "barnes"):
        p = max(APP_PRESSURES[app])
        a = _rel(series[app], f"ASCOMA({int(p*100)}%)")
        r = _rel(series[app], f"RNUMA({int(p*100)}%)")
        v = _rel(series[app], f"VCNUMA({int(p*100)}%)")
        add(f"AS-COMA <= VC-NUMA <= R-NUMA at high pressure ({app})",
            "Section 5.2", "ordering holds",
            f"AS {a:.2f} <= VC {v:.2f} <= R {r:.2f}",
            a <= v + 0.02 and v <= r + 0.02)

    # 8. The S-COMA-first allocation win on radix.
    a = _rel(series["radix"], "ASCOMA(10%)")
    r = _rel(series["radix"], "RNUMA(10%)")
    add("AS-COMA outperforms R-NUMA/VC-NUMA at 10% pressure on radix"
        " (paper: ~17%)", "Section 5.1", "gap > 10%",
        f"gap {(r - a) / r:.0%}", (r - a) / r > 0.10)

    # 9. lu: every architecture beats CC-NUMA at every pressure.
    lu_ok = all(v < 1.0 for label, v in
                series["lu"]["relative_total"].items() if label != "CCNUMA")
    add("lu: all architectures (even pure S-COMA at 90%) beat CC-NUMA",
        "Section 5.2", "all rel < 1.0",
        f"max rel {max(v for lab, v in series['lu']['relative_total'].items() if lab != 'CCNUMA'):.2f}",
        lu_ok)

    # 10. fft/ocean: hybrids within a few percent of CC-NUMA.
    for app in ("fft", "ocean"):
        vals = [v for label, v in series[app]["relative_total"].items()
                if label.startswith(("RNUMA", "VCNUMA", "ASCOMA"))]
        add(f"{app}: hybrids within a few % of CC-NUMA at all pressures",
            "Section 5.2", "all in [0.85, 1.10]",
            f"range [{min(vals):.2f}, {max(vals):.2f}]",
            min(vals) > 0.85 and max(vals) < 1.10)

    return claims


def render_scorecard(claims: list[Claim]) -> str:
    rows = [[("PASS" if c.passed else "FAIL"), c.claim, c.expected,
             c.measured] for c in claims]
    passed = sum(c.passed for c in claims)
    table = format_table(["", "Claim (paper source in EXPERIMENTS.md)",
                          "Expected", "Measured"], rows,
                         title="Paper-claim scorecard")
    return table + f"\n\n{passed}/{len(claims)} claims reproduced"
