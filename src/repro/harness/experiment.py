"""Canonical experiment definitions and the run matrix.

The paper simulates 5 architectures x 6 applications x memory pressures
10-90% (Section 5, Figures 2-3).  This module pins down the exact runs
our benches regenerate and the *scaled* policy parameters they use.

Parameter scaling
-----------------
The paper's workloads execute hundreds of millions of references; ours
are scaled down ~100x so a full matrix runs in minutes.  The relocation
machinery must scale with them: a hot page in our traces receives ~10x
fewer refetches per sweep than in the paper's, so the experiments use a
threshold of 16 (vs the paper's 64), an increment of 8 (vs 32), and a
break-even of 8 (vs 32), preserving the *ratios* between the constants.
The paper-faithful values remain the policy-class defaults; DESIGN.md
discusses the substitution.
"""

from __future__ import annotations

from functools import lru_cache

from ..core import make_policy
from ..runtime import RunSpec, execute_spec
from ..sim.stats import RunResult
from ..sim.trace import WorkloadTraces
from ..workloads import generate_workload

__all__ = [
    "ARCHITECTURES", "APP_PRESSURES", "SCALED_POLICY_KWARGS", "DEFAULT_SCALE",
    "scaled_policy", "get_workload", "run_app", "run_pressure_sweep",
    "run_full_matrix",
]

#: Evaluation order used throughout the paper's charts.
ARCHITECTURES = ("CCNUMA", "SCOMA", "RNUMA", "VCNUMA", "ASCOMA")

#: Default workload scale for experiments (see module docstring).
DEFAULT_SCALE = 0.5

#: Memory pressures simulated per application, following the paper's
#: figures: barnes is not run above 70% (Section 5.2 footnote: too few
#: free pages for meaningful statistics), radix includes the low-side
#: 30% point where pure S-COMA already collapses.
APP_PRESSURES = {
    "barnes": (0.1, 0.3, 0.5, 0.7),
    "em3d": (0.1, 0.5, 0.7, 0.9),
    "fft": (0.1, 0.7, 0.9),
    "lu": (0.1, 0.7, 0.9),
    "ocean": (0.1, 0.7, 0.9),
    "radix": (0.1, 0.3, 0.7, 0.9),
}

#: Scaled relocation parameters (paper values / 4, see module docstring).
SCALED_POLICY_KWARGS = {
    "CCNUMA": {},
    "CCNUMAMIG": {"threshold": 16},
    "SCOMA": {},
    "RNUMA": {"threshold": 16},
    "VCNUMA": {"threshold": 16, "break_even": 8, "increment": 8},
    "ASCOMA": {"threshold": 16, "increment": 8},
}


def scaled_policy(arch: str, **overrides):
    """Policy instance with the experiment-scaled parameters."""
    key = arch.upper().replace("-", "").replace("_", "")
    kwargs = dict(SCALED_POLICY_KWARGS.get(key, {}))
    kwargs.update(overrides)
    return make_policy(arch, **kwargs)  # unknown names rejected here


@lru_cache(maxsize=16)
def get_workload(app: str, scale: float = DEFAULT_SCALE) -> WorkloadTraces:
    """Generate (and cache) one of the paper's workloads."""
    return generate_workload(app, scale=scale)


def run_app(app: str, arch: str, pressure: float,
            scale: float = DEFAULT_SCALE, check: bool = False,
            quantum: int | None = None, sample=None,
            **policy_overrides) -> RunResult:
    """One cell of the evaluation matrix.

    Goes through the runtime layer: with an ambient
    :class:`~repro.runtime.store.RunStore` installed (the CLI installs
    one by default), repeated cells are served from disk instead of
    re-simulated.  Without one (the library/test default) this is a
    plain simulation, as before.  ``check=True`` attaches the online
    invariant checker and bypasses the store (see ``docs/invariants.md``).
    ``quantum`` overrides the engine's scheduling quantum; it is part
    of the spec, so distinct quanta occupy distinct store entries.
    ``sample`` (a :class:`~repro.workloads.sample.SampleSpec`, dict or
    ``None``) replays the deterministically sampled workload instead of
    the full trace; like *quantum* it is part of the spec, so sampled
    and full cells never share a store entry.
    """
    spec = RunSpec.make(app, arch, pressure, scale,
                        policy_overrides=policy_overrides, quantum=quantum,
                        sample=sample)
    return execute_spec(spec, check=check)


def run_pressure_sweep(app: str, archs=ARCHITECTURES, pressures=None,
                       scale: float = DEFAULT_SCALE) -> dict:
    """All (arch, pressure) runs for one application.

    Returns ``{(arch, pressure): RunResult}`` plus the CC-NUMA baseline
    under key ``("CCNUMA", None)`` -- CC-NUMA is pressure-insensitive,
    so the paper plots a single bar for it.
    """
    pressures = pressures or APP_PRESSURES.get(app)
    if pressures is None:
        raise ValueError(f"unknown application {app!r};"
                         f" choose from {sorted(APP_PRESSURES)}")
    results: dict = {}
    baseline = run_app(app, "CCNUMA", pressures[0], scale)
    results[("CCNUMA", None)] = baseline
    for arch in archs:
        if arch == "CCNUMA":
            continue
        for pressure in pressures:
            results[(arch, pressure)] = run_app(app, arch, pressure, scale)
    return results


def run_full_matrix(apps=None, scale: float = DEFAULT_SCALE) -> dict:
    """The paper's whole evaluation: ``{app: pressure-sweep results}``."""
    apps = apps or tuple(APP_PRESSURES)
    return {app: run_pressure_sweep(app, scale=scale) for app in apps}
