"""Regenerators for the paper's Tables 1-6.

Tables 1-3 are analytic/configuration artifacts; Tables 4-6 are
*measured* from the simulator, exactly as the paper measured them from
Paint.  Every function returns structured rows; ``render_*`` helpers
produce the text form printed by the benches.
"""

from __future__ import annotations

from ..core import TABLE1_ROWS, TABLE2_ROWS, make_policy
from ..sim.config import SystemConfig
from ..sim.engine import Engine
from ..sim.trace import TraceBuilder, WorkloadTraces
from .experiment import APP_PRESSURES, DEFAULT_SCALE, get_workload, run_app
from .report import format_table

__all__ = [
    "table1", "table2", "table3", "table4", "table5", "table6",
    "render_table1", "render_table2", "render_table3", "render_table4",
    "render_table5", "render_table6",
]


# ---------------------------------------------------------------------------
# Tables 1-3: analytic / configuration.
# ---------------------------------------------------------------------------

def table1() -> list[dict]:
    """Remote memory overhead of the various models (paper Table 1)."""
    return list(TABLE1_ROWS)


def table2() -> list[dict]:
    """Cost and complexity of the various models (paper Table 2)."""
    return list(TABLE2_ROWS)


def table3(config: SystemConfig | None = None) -> dict:
    """Cache and network characteristics (paper Table 3)."""
    return (config or SystemConfig()).describe()


# ---------------------------------------------------------------------------
# Table 4: minimum access latencies, measured through the engine.
# ---------------------------------------------------------------------------

def _micro_workload(lines_per_chunk: int, lines_per_page: int,
                    rac_lines: int) -> WorkloadTraces:
    """Two-node microbenchmark: node 0 homes one page and streams it;
    node 1 fetches it remotely, touching *rac_lines* extra lines per
    chunk (0 = pure remote misses, >0 = RAC hits too)."""
    b0 = TraceBuilder()
    b0.read(0)                       # first touch: page 0 homes at node 0
    for line in range(lines_per_page):
        b0.read(line)                # local-memory misses
    b0.barrier(0)
    b0.barrier(1)

    b1 = TraceBuilder()
    b1.compute(10)
    b1.barrier(0)
    step = lines_per_chunk
    for first in range(0, lines_per_page, step):
        for offset in range(1 + rac_lines):
            b1.read(first + offset)  # 1 remote fetch + rac_lines RAC hits
    b1.barrier(1)
    return WorkloadTraces("micro", [b0.build(), b1.build()],
                          home_pages_per_node=1, total_shared_pages=2)


def table4(config: SystemConfig | None = None) -> dict:
    """Minimum access latency per level (paper Table 4), measured.

    Runs two microbenchmarks with contention disabled and solves for the
    per-class service latencies from the engine's own accounting.
    """
    base = config or SystemConfig()
    cfg = SystemConfig(**{**base.__dict__, "n_nodes": 2,
                          "model_contention": False,
                          "memory_pressure": 0.5})
    amap = cfg.address_map()

    def run(rac_lines: int):
        wl = _micro_workload(amap.lines_per_chunk, amap.lines_per_page,
                             rac_lines)
        engine = Engine(wl, make_policy("ccnuma"), cfg)
        result = engine.run()
        return result.node_stats

    # Pure-remote run: every node-1 miss is a remote fetch.
    stats = run(rac_lines=0)
    n_remote = stats[1].COLD + stats[1].CONF_CAPC
    remote = stats[1].U_SH_MEM / max(1, n_remote)
    local = stats[0].U_SH_MEM / max(1, stats[0].HOME)

    # Mixed run: solve for the RAC hit latency.
    stats = run(rac_lines=1)
    n_remote2 = stats[1].COLD + stats[1].CONF_CAPC
    n_rac = stats[1].RAC
    rac = (stats[1].U_SH_MEM - n_remote2 * remote) / max(1, n_rac)

    return {
        "L1 Cache": float(cfg.l1_hit_cycles),
        "Local Memory": round(local, 1),
        "RAC": round(rac, 1),
        "Remote Memory": round(remote, 1),
        "remote_to_local_ratio": round(remote / local, 2),
    }


# ---------------------------------------------------------------------------
# Table 5: programs and problem sizes.
# ---------------------------------------------------------------------------

def table5(scale: float = DEFAULT_SCALE) -> list[dict]:
    """Home pages, max remote pages and ideal pressure per app (Table 5)."""
    rows = []
    for app in APP_PRESSURES:
        wl = get_workload(app, scale)
        lpp = SystemConfig(n_nodes=wl.n_nodes).address_map().lines_per_page
        h = wl.home_pages_per_node
        home_of = {p: p // h for p in range(wl.total_shared_pages)}
        max_remote = wl.max_remote_pages(lpp, home_of)
        rows.append({
            "program": app,
            "nodes": wl.n_nodes,
            "home_pages_per_node": h,
            "max_remote_pages": max_remote,
            "ideal_pressure": round(h / (h + max_remote), 2),
            "total_refs": wl.total_refs(),
        })
    return rows


# ---------------------------------------------------------------------------
# Table 6: remote pages ever accessed vs relocation-eligible pages.
# ---------------------------------------------------------------------------

def table6(scale: float = DEFAULT_SCALE, pressure: float = 0.1) -> list[dict]:
    """Total vs relocated remote pages at low pressure (paper Table 6).

    Reproduced the way the paper did: run R-NUMA at 10% memory pressure
    (every relocation request can be satisfied) and count, per node, the
    remote pages that crossed the refetch threshold.
    """
    rows = []
    for app in APP_PRESSURES:
        wl = get_workload(app, scale)
        lpp = SystemConfig(n_nodes=wl.n_nodes).address_map().lines_per_page
        h = wl.home_pages_per_node
        home_of = {p: p // h for p in range(wl.total_shared_pages)}
        total_remote = sum(
            sum(1 for p in t.pages_touched(lpp) if home_of[p] != node)
            for node, t in enumerate(wl.traces))
        result = run_app(app, "RNUMA", pressure, scale)
        relocated = result.aggregate().relocations
        rows.append({
            "program": app,
            "total_remote_pages": total_remote,
            "relocated_pages": relocated,
            "pct_relocated": round(100 * relocated / max(1, total_remote), 1),
        })
    return rows


# ---------------------------------------------------------------------------
# Text renderers.
# ---------------------------------------------------------------------------

def render_table1() -> str:
    return format_table(
        ["Model", "Remote Overhead", "Performance Factors"],
        [[r["model"], r["remote_overhead"], ", ".join(r["performance_factors"])]
         for r in table1()],
        title="Table 1: Remote Memory Overhead of Various Models")


def render_table2() -> str:
    return format_table(
        ["Model", "Storage Cost", "Complexity"],
        [[r["model"], r["storage_cost"], r["complexity"]] for r in table2()],
        title="Table 2: Cost and Complexity of Various Models")


def render_table3(config: SystemConfig | None = None) -> str:
    return format_table(
        ["Component", "Characteristics"],
        list(table3(config).items()),
        title="Table 3: Cache and Network Characteristics")


def render_table4(config: SystemConfig | None = None) -> str:
    data = table4(config)
    ratio = data.pop("remote_to_local_ratio")
    out = format_table(["Data Location", "Latency (cycles)"],
                       list(data.items()),
                       title="Table 4: Minimum Access Latency (measured)")
    return out + f"\nremote:local ratio = {ratio}"


def render_table5(scale: float = DEFAULT_SCALE) -> str:
    return format_table(
        ["Program", "Nodes", "Home pages/node", "Max remote pages",
         "Ideal pressure", "Shared refs"],
        [[r["program"], r["nodes"], r["home_pages_per_node"],
          r["max_remote_pages"], r["ideal_pressure"], r["total_refs"]]
         for r in table5(scale)],
        title="Table 5: Programs and Problem Sizes Used in Experiments")


def render_table6(scale: float = DEFAULT_SCALE) -> str:
    return format_table(
        ["Program", "Total Remote Pages", "Relocated Pages", "% Relocated"],
        [[r["program"], r["total_remote_pages"], r["relocated_pages"],
          f'{r["pct_relocated"]}%'] for r in table6(scale)],
        title="Table 6: Remote Pages Ever Accessed vs Conflicted Frequently")
