"""Experiment harness: the paper's evaluation matrix, tables and figures."""

from .experiment import (APP_PRESSURES, ARCHITECTURES, DEFAULT_SCALE,
                         SCALED_POLICY_KWARGS, get_workload, run_app,
                         run_full_matrix, run_pressure_sweep, scaled_policy)
from .claims import Claim, render_scorecard, validate_all
from .crossover import crossover_report, find_crossover, relative_time_at
from .figures import FIGURE_APPS, export_csv, figure_series, render_figure
from .pagereport import hot_page_report, render_hot_pages
from .parallel import matrix_specs, run_cells, run_matrix_parallel
from .svg import figure_svg, render_stacked_svg
from .serialize import (config_from_dict, config_to_dict, load_results,
                        result_from_dict, result_to_dict, save_results)
from .report import format_stacked_bars, format_table
from .tables import (render_table1, render_table2, render_table3,
                     render_table4, render_table5, render_table6, table1,
                     table2, table3, table4, table5, table6)

__all__ = [
    "APP_PRESSURES",
    "Claim",
    "crossover_report",
    "find_crossover",
    "relative_time_at",
    "ARCHITECTURES",
    "DEFAULT_SCALE",
    "FIGURE_APPS",
    "export_csv",
    "figure_svg",
    "render_stacked_svg",
    "SCALED_POLICY_KWARGS",
    "figure_series",
    "format_stacked_bars",
    "format_table",
    "get_workload",
    "render_figure",
    "render_table1",
    "render_table2",
    "render_table3",
    "render_table4",
    "render_table5",
    "render_table6",
    "render_scorecard",
    "hot_page_report",
    "matrix_specs",
    "render_hot_pages",
    "result_from_dict",
    "result_to_dict",
    "run_app",
    "run_cells",
    "run_full_matrix",
    "run_matrix_parallel",
    "run_pressure_sweep",
    "save_results",
    "load_results",
    "config_from_dict",
    "config_to_dict",
    "validate_all",
    "scaled_policy",
    "table1",
    "table2",
    "table3",
    "table4",
    "table5",
    "table6",
]
