"""Deterministic failure-replay bundles.

When the online checker reports a violation, everything needed to
reproduce it deterministically is a directory with two files:

* ``traces.bin``   -- the :class:`~repro.sim.trace.WorkloadTraces` in
  the simulator's native binary format;
* ``bundle.json``  -- the :class:`~repro.sim.config.SystemConfig`, the
  architecture name + policy constructor kwargs, the engine quantum,
  and the violations that triggered the capture.

The simulator is fully deterministic given (workload, policy, config,
quantum), so :meth:`ReproBundle.replay` re-runs the exact failure, and
the trace shrinker (:mod:`repro.check.shrink`) can minimise it.
"""

from __future__ import annotations

import dataclasses
import json
import os

from ..kernel.costs import KernelCosts
from ..sim.config import SystemConfig
from ..sim.engine import DEFAULT_QUANTUM, Engine
from ..sim.trace import WorkloadTraces
from .checker import InvariantChecker
from .invariants import Violation

__all__ = ["ReproBundle", "config_to_dict", "config_from_dict"]

_FORMAT = "repro-check-bundle-v1"
_TRACES_FILE = "traces.bin"
_META_FILE = "bundle.json"


def config_to_dict(config: SystemConfig) -> dict:
    """JSON-safe dict round-trippable through :func:`config_from_dict`."""
    return dataclasses.asdict(config)


def config_from_dict(data: dict) -> SystemConfig:
    fields = dict(data)
    kernel = fields.pop("kernel", None)
    if kernel is not None:
        fields["kernel"] = KernelCosts(**kernel)
    return SystemConfig(**fields)


class ReproBundle:
    """One reproducible failing run."""

    def __init__(self, workload: WorkloadTraces, config: SystemConfig,
                 architecture: str, policy_kwargs: dict | None = None,
                 violations: list[Violation] | None = None,
                 quantum: int = DEFAULT_QUANTUM,
                 granularity: str = "event") -> None:
        self.workload = workload
        self.config = config
        self.architecture = architecture
        self.policy_kwargs = dict(policy_kwargs or {})
        self.violations = list(violations or [])
        self.quantum = quantum
        self.granularity = granularity

    # ------------------------------------------------------------------
    @classmethod
    def capture(cls, engine, checker: InvariantChecker,
                architecture: str | None = None,
                policy_kwargs: dict | None = None) -> "ReproBundle":
        """Bundle a finished engine run and its checker's findings."""
        return cls(engine.workload, engine.config,
                   architecture or engine.policy.name, policy_kwargs,
                   violations=checker.violations, quantum=engine.quantum,
                   granularity=checker.granularity)

    # -- persistence ----------------------------------------------------
    def save(self, directory: str) -> str:
        os.makedirs(directory, exist_ok=True)
        self.workload.save(os.path.join(directory, _TRACES_FILE))
        meta = {
            "format": _FORMAT,
            "architecture": self.architecture,
            "policy_kwargs": self.policy_kwargs,
            "config": config_to_dict(self.config),
            "quantum": self.quantum,
            "granularity": self.granularity,
            "violations": [v.as_dict() for v in self.violations],
        }
        with open(os.path.join(directory, _META_FILE), "w") as fh:
            json.dump(meta, fh, indent=2, sort_keys=True)
            fh.write("\n")
        return directory

    @classmethod
    def load(cls, directory: str) -> "ReproBundle":
        with open(os.path.join(directory, _META_FILE)) as fh:
            meta = json.load(fh)
        if meta.get("format") != _FORMAT:
            raise ValueError(
                f"{directory} is not a {_FORMAT} bundle"
                f" (format={meta.get('format')!r})")
        workload = WorkloadTraces.load(os.path.join(directory, _TRACES_FILE))
        return cls(workload, config_from_dict(meta["config"]),
                   meta["architecture"], meta.get("policy_kwargs"),
                   violations=[Violation.from_dict(v)
                               for v in meta.get("violations", [])],
                   quantum=meta.get("quantum", DEFAULT_QUANTUM),
                   granularity=meta.get("granularity", "event"))

    # -- replay ---------------------------------------------------------
    def make_policy(self):
        from ..core import make_policy
        return make_policy(self.architecture, **self.policy_kwargs)

    def replay(self, workload: WorkloadTraces | None = None,
               granularity: str | None = None):
        """Re-run the bundled failure.

        Returns ``(result, checker)``; ``checker.violations`` holds what
        the re-run found.  An optional *workload* substitutes a shrunk
        trace for the bundled one.
        """
        engine = Engine(workload or self.workload, self.make_policy(),
                        config=self.config, quantum=self.quantum)
        checker = InvariantChecker.attach(
            engine, granularity=granularity or self.granularity)
        result = engine.run()
        return result, checker
