"""Online invariant checking and deterministic failure replay.

Off by default and always available: attach an
:class:`InvariantChecker` to any :class:`~repro.sim.engine.Engine` to
validate coherence/page-management invariants while the simulation
runs, capture violations into a :class:`ReproBundle`, replay them
deterministically, and minimise the failing trace with
:class:`TraceShrinker`.  See ``docs/invariants.md``.
"""

from .audit import audit_machine, collect_audit_violations
from .bundle import ReproBundle, config_from_dict, config_to_dict
from .checker import GRANULARITIES, InvariantChecker
from .invariants import (STRUCTURAL_CHECKS, Violation, check_cache_reachability,
                         check_directory_swmr, check_frame_accounting,
                         check_page_table, check_rac_exclusivity)
from .shrink import TraceShrinker, shrink_bundle

__all__ = [
    "GRANULARITIES",
    "InvariantChecker",
    "ReproBundle",
    "STRUCTURAL_CHECKS",
    "TraceShrinker",
    "Violation",
    "audit_machine",
    "check_cache_reachability",
    "check_directory_swmr",
    "check_frame_accounting",
    "check_page_table",
    "check_rac_exclusivity",
    "collect_audit_violations",
    "config_from_dict",
    "config_to_dict",
    "shrink_bundle",
]
