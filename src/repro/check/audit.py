"""Post-run machine audit: every cached copy is invalidation-reachable.

Historically this lived in ``tests/test_coherence_model.py``; it is now
a thin assertion wrapper over the structural reachability sweep so both
the test suite and the online checker share one implementation.
"""

from __future__ import annotations

from .invariants import Violation, check_cache_reachability

__all__ = ["audit_machine", "collect_audit_violations"]


def collect_audit_violations(machine) -> list[Violation]:
    """Reachability violations of *machine*'s current state."""
    return check_cache_reachability(machine)


def audit_machine(engine) -> None:
    """Assert that every cached copy is reachable by invalidations.

    Accepts an :class:`~repro.sim.engine.Engine` (the historical test
    helper signature) or a bare :class:`~repro.sim.machine.Machine`.
    """
    machine = getattr(engine, "machine", engine)
    violations = collect_audit_violations(machine)
    if violations:
        raise AssertionError(
            "machine audit failed:\n"
            + "\n".join(f"  {v}" for v in violations))
