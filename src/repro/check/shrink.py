"""Delta-debugging trace shrinker.

A violation bundle (:class:`~repro.check.bundle.ReproBundle`) replays a
failure deterministically but the trace may hold millions of events;
the shrinker produces the smallest trace it can that still triggers the
*same invariant*.  Three passes, coarse to fine:

1. **Phase removal** -- a barrier-delimited phase is removed from every
   node at once (the engine requires equal barrier counts per node), so
   whole program phases unrelated to the failure drop in a few runs.
2. **ddmin** -- Zeller's minimising delta debugging over the remaining
   non-barrier events, removing exponentially shrinking complements.
3. **Greedy pass** -- one attempt to delete each surviving non-barrier
   event individually, catching stragglers ddmin's partitioning missed.

Barriers themselves are only removed with their phase, keeping the
per-node barrier structure consistent; a run that raises instead of
reporting the target violation counts as *not* reproducing (the goal
is the same failure, not any failure).
"""

from __future__ import annotations

import math

import numpy as np

from ..sim.engine import Engine
from ..sim.trace import EV_BARRIER, Trace, WorkloadTraces
from .bundle import ReproBundle
from .checker import InvariantChecker

__all__ = ["TraceShrinker", "shrink_bundle"]

#: One node's trace as a mutable list of (kind, arg) pairs.
EventLists = "list[list[tuple[int, int]]]"


def _to_lists(workload: WorkloadTraces) -> list[list[tuple[int, int]]]:
    return [[(int(k), int(a)) for k, a in zip(t.kinds.tolist(),
                                              t.args.tolist())]
            for t in workload.traces]


def _to_workload(lists: list[list[tuple[int, int]]],
                 template: WorkloadTraces) -> WorkloadTraces:
    traces = []
    for events in lists:
        kinds = np.array([k for k, _ in events], dtype=np.uint8)
        args = np.array([a for _, a in events], dtype=np.int64)
        traces.append(Trace(kinds, args))
    return WorkloadTraces(template.name + "-shrunk", traces,
                          template.home_pages_per_node,
                          template.total_shared_pages,
                          params=dict(template.params))


def _event_count(lists: list[list[tuple[int, int]]]) -> int:
    return sum(len(events) for events in lists)


class TraceShrinker:
    """Minimise a bundle's workload while preserving its violation."""

    def __init__(self, bundle: ReproBundle,
                 target_invariant: str | None = None,
                 max_runs: int = 2000) -> None:
        self.bundle = bundle
        if target_invariant is None and bundle.violations:
            target_invariant = bundle.violations[0].invariant
        #: Invariant name the shrunk trace must still violate; None
        #: accepts any violation.
        self.target_invariant = target_invariant
        self.max_runs = max_runs
        self.runs = 0

    # ------------------------------------------------------------------
    def _fails(self, lists: list[list[tuple[int, int]]]) -> bool:
        """Does this candidate still trigger the target invariant?"""
        if self.runs >= self.max_runs:
            return False
        self.runs += 1
        try:
            workload = _to_workload(lists, self.bundle.workload)
            engine = Engine(workload, self.bundle.make_policy(),
                            config=self.bundle.config,
                            quantum=self.bundle.quantum)
            checker = InvariantChecker.attach(engine, granularity="event")
            engine.run()
        except Exception:
            # A crash is a different failure; keep hunting the original.
            return False
        if self.target_invariant is None:
            return bool(checker.violations)
        return any(v.invariant == self.target_invariant
                   for v in checker.violations)

    # ------------------------------------------------------------------
    def minimise(self) -> WorkloadTraces:
        lists = _to_lists(self.bundle.workload)
        if not self._fails(lists):
            raise ValueError(
                "bundle does not reproduce its violation"
                f" (target invariant: {self.target_invariant!r})")
        lists = self._drop_phases(lists)
        lists = self._ddmin(lists)
        lists = self._greedy(lists)
        return _to_workload(lists, self.bundle.workload)

    # -- pass 1: barrier-delimited phase removal ------------------------
    @staticmethod
    def _split_phases(events: list[tuple[int, int]]
                      ) -> list[list[tuple[int, int]]]:
        """Segments, each ending with its barrier (tail has none)."""
        phases: list[list[tuple[int, int]]] = [[]]
        for ev in events:
            phases[-1].append(ev)
            if ev[0] == EV_BARRIER:
                phases.append([])
        return phases

    def _drop_phases(self, lists):
        phased = [self._split_phases(events) for events in lists]
        n_phases = len(phased[0])
        k = n_phases - 1
        while k >= 0 and self.runs < self.max_runs:
            if any(phased[i][k] for i in range(len(phased))):
                candidate = [
                    [ev for j, phase in enumerate(node_phases) if j != k
                     for ev in phase]
                    for node_phases in phased
                ]
                if self._fails(candidate):
                    for node_phases in phased:
                        node_phases[k] = []
            k -= 1
        return [[ev for phase in node_phases for ev in phase]
                for node_phases in phased]

    # -- pass 2: ddmin over non-barrier events --------------------------
    @staticmethod
    def _removable(lists) -> list[tuple[int, int]]:
        return [(i, j) for i, events in enumerate(lists)
                for j, ev in enumerate(events) if ev[0] != EV_BARRIER]

    @staticmethod
    def _without(lists, drop: list[tuple[int, int]]):
        dropped = set(drop)
        return [[ev for j, ev in enumerate(events) if (i, j) not in dropped]
                for i, events in enumerate(lists)]

    def _ddmin(self, lists):
        items = self._removable(lists)
        n = 2
        while len(items) >= 2 and self.runs < self.max_runs:
            chunk = math.ceil(len(items) / n)
            reduced = False
            for start in range(0, len(items), chunk):
                subset = items[start:start + chunk]
                candidate = self._without(lists, subset)
                if self._fails(candidate):
                    lists = candidate
                    items = self._removable(lists)
                    n = max(2, n - 1)
                    reduced = True
                    break
            if not reduced:
                if n >= len(items):
                    break
                n = min(len(items), 2 * n)
        return lists

    # -- pass 3: greedy single-event deletions --------------------------
    def _greedy(self, lists):
        for i, j in reversed(self._removable(lists)):
            if self.runs >= self.max_runs:
                break
            candidate = self._without(lists, [(i, j)])
            if self._fails(candidate):
                lists = candidate
        return lists


def shrink_bundle(bundle: ReproBundle, target_invariant: str | None = None,
                  max_runs: int = 2000) -> WorkloadTraces:
    """Convenience wrapper: minimise *bundle*'s workload."""
    return TraceShrinker(bundle, target_invariant, max_runs).minimise()
