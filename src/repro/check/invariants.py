"""Structural invariants over a running :class:`~repro.sim.machine.Machine`.

Each check sweeps one family of simulator state and returns the list of
:class:`Violation` records it finds -- empty means the invariant holds.
The checks run at *stable* points only (operation-completion events, a
barrier release, or the end of the run): publish sites fire after their
state mutation completes, so mid-operation transients (a frame taken
before its page is mapped, a copyset mid-invalidation) are never
observed.

The invariant families, and the paper sections they guard:

* **directory-swmr** -- single-writer/multiple-reader: a chunk with a
  dirty owner is cached by exactly that owner (Section 2.1's
  write-invalidate protocol).
* **cache-reachability** -- every locally cached copy (L1 line, RAC
  entry, S-COMA valid chunk, write permission) is reachable through the
  directory's copysets, so invalidations can always find it.
* **frame-accounting** -- each node's free-pool ledger balances and
  every in-use page-cache frame backs exactly one S-COMA page
  (Section 3's free-pool machinery).
* **rac-exclusivity** -- the RAC only holds data of CC-NUMA-mode pages:
  S-COMA pages are backed by page-cache frames and home pages by local
  memory, so RAC residency would be unreachable dead state (Section 4.1).
* **page-table** -- mode/valid-bits/clock agreement and home-mapping
  consistency with the global allocator (catches migration bugs).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..kernel.vm import PageMode

__all__ = [
    "Violation",
    "STRUCTURAL_CHECKS",
    "check_directory_swmr",
    "check_cache_reachability",
    "check_frame_accounting",
    "check_rac_exclusivity",
    "check_page_table",
]


@dataclass
class Violation:
    """One invariant violation, with simulator context for replay."""

    invariant: str
    message: str
    node: int = -1
    page: int = -1
    clock: int = -1
    detail: dict = field(default_factory=dict)

    def __str__(self) -> str:
        where = []
        if self.node >= 0:
            where.append(f"node {self.node}")
        if self.page >= 0:
            where.append(f"page {self.page}")
        if self.clock >= 0:
            where.append(f"clock {self.clock}")
        ctx = f" [{', '.join(where)}]" if where else ""
        return f"{self.invariant}{ctx}: {self.message}"

    def as_dict(self) -> dict:
        return {"invariant": self.invariant, "message": self.message,
                "node": self.node, "page": self.page, "clock": self.clock,
                "detail": self.detail}

    @classmethod
    def from_dict(cls, data: dict) -> "Violation":
        return cls(**data)


# ----------------------------------------------------------------------
def check_directory_swmr(machine) -> list[Violation]:
    """A dirty-owned chunk is cached by exactly its owner."""
    directory = machine.directory
    amap = machine.amap
    out = []
    for chunk, owner in directory.owner.items():
        cs = directory.copyset.get(chunk, 0)
        if cs != 1 << owner:
            out.append(Violation(
                "directory-swmr",
                f"chunk {chunk} owned by node {owner} but copyset is"
                f" {cs:#x} (expected {1 << owner:#x})",
                node=owner, page=amap.page_of_chunk(chunk),
                detail={"chunk": chunk, "copyset": cs}))
    return out


def check_cache_reachability(machine) -> list[Violation]:
    """Every cached copy must be reachable by directory invalidations."""
    directory = machine.directory
    amap = machine.amap
    out = []
    for node in machine.nodes:
        # L1 lines.
        for line in node.l1.resident_lines():
            chunk = line >> amap.chunk_shift
            if not directory.is_cached_by(chunk, node.id):
                out.append(Violation(
                    "cache-reachability",
                    f"L1 holds line {line} (chunk {chunk}) without"
                    " copyset membership",
                    node=node.id, page=line >> amap.line_shift,
                    detail={"structure": "l1", "chunk": chunk, "line": line}))
        # RAC entries (chunks, or victim lines in victim-fill mode).
        for entry in node.rac.resident_entries():
            chunk = entry >> amap.chunk_shift if node.rac_victim else entry
            if not directory.is_cached_by(chunk, node.id):
                out.append(Violation(
                    "cache-reachability",
                    f"RAC holds chunk {chunk} without copyset membership",
                    node=node.id, page=amap.page_of_chunk(chunk),
                    detail={"structure": "rac", "chunk": chunk}))
        # S-COMA valid bits.
        for page, mask in node.page_table.scoma_valid.items():
            first = amap.first_chunk_of_page(page)
            for cip in range(amap.chunks_per_page):
                if mask >> cip & 1 and not directory.is_cached_by(
                        first + cip, node.id):
                    out.append(Violation(
                        "cache-reachability",
                        f"S-COMA valid bit set for chunk {first + cip}"
                        " without copyset membership",
                        node=node.id, page=page,
                        detail={"structure": "scoma", "chunk": first + cip}))
        # Write permission.
        for chunk in node.owned:
            if directory.owner.get(chunk) != node.id:
                out.append(Violation(
                    "cache-reachability",
                    f"node holds write permission on chunk {chunk} but"
                    f" directory owner is {directory.owner.get(chunk, -1)}",
                    node=node.id, page=amap.page_of_chunk(chunk),
                    detail={"structure": "owned", "chunk": chunk}))
    return out


def check_frame_accounting(machine) -> list[Violation]:
    """Free-pool ledger balance and frame <-> S-COMA page agreement."""
    out = []
    for node in machine.nodes:
        pool = node.pool
        if not pool.ledger_consistent():
            out.append(Violation(
                "frame-accounting",
                f"pool ledger out of balance: free={pool.free}"
                f" capacity={pool.capacity} allocations={pool.allocations}"
                f" releases={pool.releases}",
                node=node.id))
        scoma_pages = node.page_table.scoma_page_count()
        if pool.in_use != scoma_pages:
            out.append(Violation(
                "frame-accounting",
                f"{pool.in_use} frames in use but {scoma_pages} S-COMA"
                " pages mapped",
                node=node.id,
                detail={"in_use": pool.in_use, "scoma_pages": scoma_pages}))
    return out


def check_rac_exclusivity(machine) -> list[Violation]:
    """RAC entries belong only to CC-NUMA-mode pages."""
    amap = machine.amap
    out = []
    for node in machine.nodes:
        for entry in node.rac.resident_entries():
            page = (entry >> amap.line_shift if node.rac_victim
                    else amap.page_of_chunk(entry))
            mode = node.page_table.mode_of(page)
            if mode != PageMode.CCNUMA:
                out.append(Violation(
                    "rac-exclusivity",
                    f"RAC holds data of page {page} which is in"
                    f" {PageMode(mode).name} mode",
                    node=node.id, page=page,
                    detail={"entry": entry, "mode": int(mode)}))
    return out


def check_page_table(machine) -> list[Violation]:
    """Mode/valid/clock agreement + home mapping vs the allocator."""
    allocator = machine.allocator
    out = []
    for node in machine.nodes:
        pt = node.page_table
        scoma_pages = {p for p, m in pt.mode.items() if m == PageMode.SCOMA}
        valid_pages = set(pt.scoma_valid)
        if valid_pages != scoma_pages:
            out.append(Violation(
                "page-table",
                f"S-COMA valid-bit pages {sorted(valid_pages)} disagree"
                f" with S-COMA-mode pages {sorted(scoma_pages)}",
                node=node.id))
        clock_pages = list(pt.scoma_clock)
        if (len(clock_pages) != len(set(clock_pages))
                or set(clock_pages) != scoma_pages):
            out.append(Violation(
                "page-table",
                f"second-chance clock {clock_pages} disagrees with"
                f" S-COMA-mode pages {sorted(scoma_pages)}",
                node=node.id))
        for page, mode in pt.mode.items():
            home = allocator.home[page]
            if mode == PageMode.HOME and home != node.id:
                out.append(Violation(
                    "page-table",
                    f"page mapped HOME but allocator home is {home}",
                    node=node.id, page=page))
            elif mode in (PageMode.SCOMA, PageMode.CCNUMA) and home == node.id:
                out.append(Violation(
                    "page-table",
                    f"page mapped {PageMode(mode).name} on its own home node",
                    node=node.id, page=page))
    return out


#: All structural sweeps, in reporting order.
STRUCTURAL_CHECKS = (
    check_directory_swmr,
    check_cache_reachability,
    check_frame_accounting,
    check_rac_exclusivity,
    check_page_table,
)
