"""Online invariant checker: an :class:`~repro.sim.events.EventBus`
observer that validates protocol and page-management behaviour while a
simulation runs.

Two kinds of checking compose:

* **Event-driven checks** run on *every* published event: a per-(node,
  page) shadow of the page-mode FSM validates each transition against
  the architecture policy's declarative surface (``initial_modes``,
  ``supports_relocation``, ``supports_migration``,
  ``allows_forced_eviction``), and AS-COMA's threshold backoff is
  checked for monotonicity between consecutive daemon runs
  (``daemon_backoff``).

* **Structural sweeps** (:data:`~repro.check.invariants.STRUCTURAL_CHECKS`)
  walk the whole machine state.  At the default ``"barrier"``
  granularity they run at barrier releases and at the end of the run;
  at ``"event"`` granularity they additionally run after every
  operation-completion event -- expensive, but it pins a violation to
  the precise transition that introduced it, which is what the failure
  replay wants.

Attach with :meth:`InvariantChecker.attach`; the engine then reports
``invariant_violations`` in its :class:`~repro.sim.stats.RunResult`.
"""

from __future__ import annotations

from ..kernel.vm import PageMode
from ..sim.events import (EV_BARRIER, EV_DAEMON, EV_END, EV_EVICT, EV_FAULT,
                          EV_MAP_SCOMA, EV_MIGRATE, EV_RELOCATE)
from .invariants import STRUCTURAL_CHECKS, Violation

__all__ = ["InvariantChecker", "GRANULARITIES"]

GRANULARITIES = ("event", "barrier")

#: Operation-completion events: machine state is consistent when these
#: publish, so structural sweeps may run.  Sub-operation events (flush,
#: invalidate, demote) fire mid-transaction and are excluded.
_STABLE_KINDS = frozenset({EV_FAULT, EV_MAP_SCOMA, EV_EVICT, EV_RELOCATE,
                           EV_DAEMON, EV_MIGRATE, EV_BARRIER, EV_END})
_BARRIER_KINDS = frozenset({EV_BARRIER, EV_END})


class InvariantChecker:
    """Subscribes to a machine's event bus and accumulates violations."""

    def __init__(self, machine, policy, granularity: str = "barrier",
                 max_violations: int = 1000) -> None:
        if granularity not in GRANULARITIES:
            raise ValueError(f"granularity must be one of {GRANULARITIES}")
        self.machine = machine
        self.policy = policy
        self.granularity = granularity
        self.max_violations = max_violations
        self.violations: list[Violation] = []
        self.events_seen = 0
        self.sweeps_run = 0
        self._sweep_kinds = (_STABLE_KINDS if granularity == "event"
                             else _BARRIER_KINDS)
        #: (node, page) -> shadow PageMode (absent = never observed).
        self._shadow: dict[tuple[int, int], int] = {}
        #: node -> effective threshold reported by its last daemon run.
        self._last_threshold: dict[int, int] = {}

    # ------------------------------------------------------------------
    @classmethod
    def attach(cls, engine, granularity: str = "barrier",
               max_violations: int = 1000) -> "InvariantChecker":
        """Create a checker, subscribe it, and register it on *engine*."""
        checker = cls(engine.machine, engine.policy, granularity,
                      max_violations)
        engine.machine.events.subscribe(checker)
        engine.checker = checker
        return checker

    def detach(self) -> None:
        self.machine.events.unsubscribe(self)

    def violation_count(self) -> int:
        return len(self.violations)

    def report(self) -> str:
        if not self.violations:
            return "no invariant violations"
        lines = [f"{len(self.violations)} invariant violation(s):"]
        lines += [f"  {v}" for v in self.violations]
        return "\n".join(lines)

    # ------------------------------------------------------------------
    def __call__(self, event) -> None:
        """EventBus observer entry point."""
        self.events_seen += 1
        if len(self.violations) >= self.max_violations:
            return
        handler = self._EVENT_CHECKS.get(event.kind)
        if handler is not None:
            handler(self, event)
        if event.kind in self._sweep_kinds:
            self.sweep(clock=event.clock)

    def sweep(self, clock: int = -1) -> list[Violation]:
        """Run every structural check now; returns the new violations."""
        self.sweeps_run += 1
        found = []
        for check in STRUCTURAL_CHECKS:
            for violation in check(self.machine):
                if violation.clock < 0:
                    violation.clock = clock
                found.append(violation)
        self.violations.extend(found)
        return found

    # -- event-driven checks -------------------------------------------
    def _report(self, event, invariant: str, message: str, **detail) -> None:
        self.violations.append(Violation(
            invariant, message, node=event.node, page=event.page,
            clock=event.clock, detail=detail))

    def _on_fault(self, event) -> None:
        mode = event.detail["mode"]
        home = event.detail["home"]
        key = (event.node, event.page)
        if home == event.node:
            if mode != PageMode.HOME:
                self._report(event, "page-mode-fsm",
                             f"fault on locally-homed page yielded"
                             f" {PageMode(mode).name}, expected HOME")
        elif mode not in self.policy.initial_modes:
            legal = sorted(PageMode(m).name for m in self.policy.initial_modes)
            self._report(event, "page-mode-fsm",
                         f"fault mapped remote page in {PageMode(mode).name}"
                         f" mode; {self.policy.name} allows {legal}")
        prev = self._shadow.get(key, PageMode.UNMAPPED)
        if prev not in (PageMode.UNMAPPED, mode):
            self._report(event, "page-mode-fsm",
                         f"fault on a page already in {PageMode(prev).name}"
                         " mode")
        self._shadow[key] = mode

    def _on_map_scoma(self, event) -> None:
        key = (event.node, event.page)
        prev = self._shadow.get(key, PageMode.UNMAPPED)
        if prev == PageMode.CCNUMA:
            if not self.policy.supports_relocation:
                self._report(event, "page-mode-fsm",
                             f"CC-NUMA page upgraded to S-COMA but"
                             f" {self.policy.name} does not relocate")
        elif prev == PageMode.UNMAPPED:
            if PageMode.SCOMA not in self.policy.initial_modes:
                self._report(event, "page-mode-fsm",
                             f"unmapped page mapped S-COMA but"
                             f" {self.policy.name} never starts in S-COMA")
        else:
            self._report(event, "page-mode-fsm",
                         f"S-COMA map of a page in {PageMode(prev).name} mode")
        self._shadow[key] = PageMode.SCOMA

    def _on_evict(self, event) -> None:
        key = (event.node, event.page)
        prev = self._shadow.get(key, PageMode.SCOMA)
        if prev != PageMode.SCOMA:
            self._report(event, "page-mode-fsm",
                         f"eviction of a page in {PageMode(prev).name} mode")
        if event.detail.get("forced") and not self.policy.allows_forced_eviction:
            self._report(event, "forced-eviction",
                         f"forced eviction under {self.policy.name}, which"
                         " never sacrifices a resident page")
        self._shadow[key] = (PageMode.CCNUMA if self.policy.evict_to_ccnuma
                             else PageMode.UNMAPPED)

    def _on_relocate(self, event) -> None:
        if not self.policy.supports_relocation:
            self._report(event, "page-mode-fsm",
                         f"relocation under {self.policy.name}, which does"
                         " not relocate")
        key = (event.node, event.page)
        prev = self._shadow.get(key, PageMode.SCOMA)
        if prev != PageMode.SCOMA:
            # map_scoma publishes before the relocate event, so the
            # shadow must already show S-COMA here.
            self._report(event, "page-mode-fsm",
                         f"relocation left page in {PageMode(prev).name}"
                         " mode, expected SCOMA")

    def _on_migrate(self, event) -> None:
        if not self.policy.supports_migration:
            self._report(event, "page-mode-fsm",
                         f"home migration under {self.policy.name}, which"
                         " does not migrate")
        key = (event.node, event.page)
        prev = self._shadow.get(key, PageMode.CCNUMA)
        if prev != PageMode.CCNUMA:
            self._report(event, "page-mode-fsm",
                         f"migration to a node holding the page in"
                         f" {PageMode(prev).name} mode, expected CCNUMA")
        self._shadow[key] = PageMode.HOME
        old_home = event.detail.get("old_home", -1)
        old_key = (old_home, event.page)
        old_prev = self._shadow.get(old_key)
        if old_prev is not None:
            if old_prev != PageMode.HOME:
                self._report(event, "page-mode-fsm",
                             f"migration away from node {old_home} which"
                             f" held the page in {PageMode(old_prev).name}"
                             " mode, expected HOME")
            self._shadow[old_key] = PageMode.CCNUMA

    def _on_daemon(self, event) -> None:
        if not getattr(self.policy, "daemon_backoff", False):
            return
        threshold = event.detail["threshold"]
        last = self._last_threshold.get(event.node)
        if last is not None:
            if event.detail["thrashing"]:
                # Backoff must not lower the bar (0 = relocation disabled).
                if threshold < last and threshold != 0:
                    self._report(event, "threshold-backoff",
                                 f"thrashing run lowered the relocation"
                                 f" threshold {last} -> {threshold}",
                                 last=last, threshold=threshold)
            else:
                # Recovery must not raise it (unless re-enabling from 0).
                if threshold > last and last != 0:
                    self._report(event, "threshold-backoff",
                                 f"recovered run raised the relocation"
                                 f" threshold {last} -> {threshold}",
                                 last=last, threshold=threshold)
        self._last_threshold[event.node] = threshold

    _EVENT_CHECKS = {
        EV_FAULT: _on_fault,
        EV_MAP_SCOMA: _on_map_scoma,
        EV_EVICT: _on_evict,
        EV_RELOCATE: _on_relocate,
        EV_MIGRATE: _on_migrate,
        EV_DAEMON: _on_daemon,
    }
