"""repro -- reproduction of "AS-COMA: An Adaptive Hybrid Shared Memory
Architecture" (Kuo, Carter, Kuramkote, Swanson; Univ. of Utah, 1998).

A trace-driven simulator of page-grained hybrid CC-NUMA / S-COMA
distributed shared memory, with the paper's five architectures
(CC-NUMA, S-COMA, R-NUMA, VC-NUMA, AS-COMA), the full memory-hierarchy
and OS substrates they run on, the six evaluation workloads, and a
harness regenerating every table and figure.

Quickstart::

    from repro import simulate, make_policy, SystemConfig
    from repro.workloads import generate_workload

    wl = generate_workload("em3d", scale=0.5)
    cfg = SystemConfig(n_nodes=wl.n_nodes, memory_pressure=0.7)
    result = simulate(wl, make_policy("ascoma"), cfg)
    print(result.summary())
"""

from .core import (ASCOMAPolicy, CCNUMAPolicy, POLICIES, RNUMAPolicy,
                   SCOMAPolicy, VCNUMAPolicy, make_policy)
from .sim import Engine, RunResult, SystemConfig, WorkloadTraces, simulate

__version__ = "1.0.0"

__all__ = [
    "ASCOMAPolicy",
    "CCNUMAPolicy",
    "Engine",
    "POLICIES",
    "RNUMAPolicy",
    "RunResult",
    "SCOMAPolicy",
    "SystemConfig",
    "VCNUMAPolicy",
    "WorkloadTraces",
    "__version__",
    "make_policy",
    "simulate",
]
