"""Batch execution of RunSpecs: dedupe, cache, isolate, retry, resume.

This is the one engine every harness entry point (CLI, figures, tables,
claims, benchmarks) funnels through.  Guarantees:

* **Dedupe before dispatch** — identical specs are simulated once, and
  results fan back out to every requesting position.
* **Store-backed resume** — with a :class:`~repro.runtime.store.RunStore`
  attached, cached cells are served from disk and only missing (or
  previously failed — failures are never stored) cells are simulated,
  so an interrupted matrix sweep restarts where it left off.
* **Fault isolation** — a failing cell yields a
  :class:`~repro.runtime.spec.RunFailure` naming its spec instead of
  killing the whole process pool.
* **Optional retry** — transient failures can be retried per cell.
* **Progress** — an optional callback sees one event per cell
  (``"hit" | "run" | "fail" | "store-fail"``); :func:`log_progress`
  prints them.
* **Store-fault isolation** — a raising ``store.put`` (disk full,
  permissions, corrupt store dir) after a successful simulation keeps
  the :class:`~repro.sim.stats.RunResult` and surfaces a
  ``"store-fail"`` progress event instead of killing the sweep.

Observability (PR 5): with a :class:`~repro.obs.SpanRecorder` attached
(explicitly via ``obs=`` or ambiently via
:func:`repro.obs.use_obs` — the CLI's ``--obs`` installs one), the
executor records per-cell wall-clock spans (``prewarm``, ``dispatch``,
``cell``, ``simulate``, ``store_put``) and cell events into a JSONL
telemetry run, and each simulated cell additionally collects the
adaptive-backoff time series through a kind-filtered
:class:`~repro.obs.BackoffTelemetry`.  Pool workers buffer their
records in memory and the parent merges them into the sink.  With no
recorder attached every instrumentation site is one ``is None`` check.

Matrix-throughput machinery (PR 4): before dispatching, the parent
pre-warms each distinct ``(app, scale)`` workload through the trace
cache — forked workers inherit the traces, and on spawn platforms the
pool *initializer* re-installs the ambient
:class:`~repro.runtime.tracecache.TraceStore` and pre-imports the
simulator so a worker's first cell pays no import/generation cost.
Cells dispatch costliest-first (LPT, see :mod:`repro.runtime.costs`)
in chunks sized to amortise pickle round-trips.  Setting
``REPRO_LEGACY_POOL=1`` (or ``legacy_pool=True``) restores the
pre-PR 4 dispatch — cold workers, submission order, ``chunksize=1`` —
which is what the ``matrix_e2e`` benchmark compares against.
"""

from __future__ import annotations

import contextlib
import os
import sys
import traceback
from concurrent.futures import ProcessPoolExecutor

from ..obs import get_default_obs, worker_recorder
from ..sim.stats import RunResult
from .costs import lpt_order, submit_chunksize
from .spec import RunFailure, RunSpec
from .store import get_default_refresh, get_default_store
from .tracecache import get_default_trace_store

__all__ = ["execute", "execute_spec", "run_spec", "log_progress"]


def _span(obs, name: str, **fields):
    """Optional span: a no-op context manager when obs is off."""
    return (obs.span(name, **fields) if obs is not None
            else contextlib.nullcontext())


def run_spec(spec: RunSpec, retries: int = 0, check: bool = False,
             obs=None) -> RunResult | RunFailure:
    """Execute one spec, converting exceptions into :class:`RunFailure`.

    With an *obs* :class:`~repro.obs.SpanRecorder`, each attempt is
    wrapped in a ``cell`` span containing a ``simulate`` span, and a
    successful simulation's backoff time series (collected through a
    kind-filtered :class:`~repro.obs.BackoffTelemetry`) is merged into
    the record stream together with one ``backoff_summary`` record.
    """
    attempt = 0
    while True:
        try:
            if obs is None:
                return spec.execute(check=check)
            from ..obs import BackoffTelemetry
            telemetry = BackoffTelemetry()
            with obs.span("cell", spec=spec, attempt=attempt):
                with obs.span("simulate", spec=spec):
                    result = spec.execute(check=check, telemetry=telemetry)
                obs.backoff_rows(spec, telemetry.rows)
                obs.emit("backoff_summary", spec=spec.label(),
                         spec_hash=spec.spec_hash(), **telemetry.counters())
            return result
        except Exception as exc:  # noqa: BLE001 - isolation is the point
            if attempt >= retries:
                return RunFailure(spec, f"{type(exc).__name__}: {exc}",
                                  traceback.format_exc())
            attempt += 1


def _pool_worker(payload: tuple) -> tuple:
    """Module-level so it pickles for :class:`ProcessPoolExecutor`.

    Returns ``(outcome, records)``: *records* is the worker-side
    telemetry buffer to merge in the parent (``None`` with obs off —
    workers never write to the JSONL sink themselves).
    """
    spec, retries, check, obs_on = payload
    if not obs_on:
        return run_spec(spec, retries, check), None
    recorder = worker_recorder()
    outcome = run_spec(spec, retries, check, obs=recorder)
    return outcome, recorder.drain()


def _pool_init(trace_root: str | None) -> None:
    """Warm a pool worker before it sees its first cell.

    Pre-imports the simulator stack (a no-op under fork, real work
    under spawn) and installs the ambient trace store so every
    :meth:`RunSpec.execute` in this worker resolves workloads through
    the cache instead of regenerating them.
    """
    import repro.coherence.protocol  # noqa: F401
    import repro.harness.experiment  # noqa: F401
    import repro.sim.engine  # noqa: F401

    if trace_root is not None:
        from .tracecache import TraceStore, set_default_trace_store

        set_default_trace_store(TraceStore(trace_root))
    # Resolve the vector kernel before the first cell (a no-op under
    # fork, where the parent's loaded-kernel memo is inherited; under
    # spawn this dlopens the parent's cached .so instead of paying the
    # probe inside a cell).
    from ..sim.soatrace import vector_available

    vector_available()


def _prewarm(specs) -> dict:
    """Resolve every distinct workload once in the parent process.

    Returns ``(app, scale, sample) -> total event count`` for the cost
    model.  Forked workers inherit the warmed traces (and the
    per-process memo) for free.  A workload whose generation raises is
    skipped — the same failure reproduces inside :func:`run_spec`,
    where it is isolated into a :class:`RunFailure` instead of killing
    the sweep.  Sampled cells warm (and count) the *sampled* workload,
    which on a warm trace store streams from the ``.soa`` sidecar
    without materializing the full trace.

    The vector kernel is probed (built + dlopened) here too: one
    compile in the parent instead of one per forked worker, and the
    LPT cost model's substrate detection then reads a warm memo.
    """
    from ..sim.soatrace import vector_available
    from .costs import workload_events

    vector_available()
    events_of: dict = {}
    for key in dict.fromkeys((s.app, s.scale, s.sample) for s in specs):
        app, scale, sample = key
        try:
            events_of[key] = workload_events(app, scale,
                                             sample=sample or None)
        except Exception:  # noqa: BLE001 - fault isolation happens per cell
            pass
    return events_of


def log_progress(event: str, spec: RunSpec, detail: str = "",
                 stream=None) -> None:
    """Default progress callback: one stderr line per cell."""
    stream = stream or sys.stderr
    tag = {"hit": "cached", "run": "ran", "fail": "FAILED",
           "store-fail": "!store"}.get(event, event)
    line = f"[{tag:>6}] {spec.label()}"
    if detail:
        line += f" ({detail})"
    print(line, file=stream)


def execute(specs, *, store=None, refresh: bool | None = None,
            parallel: bool = True, max_workers: int | None = None,
            retries: int = 0, progress=None, check: bool = False,
            legacy_pool: bool = False, obs=None) -> dict:
    """Run many specs; returns ``{spec: RunResult | RunFailure}``.

    *store* defaults to the ambient store (``None`` disables caching);
    *refresh* forces re-simulation of cached cells (results are still
    written back).  ``parallel=False`` runs inline in deterministic
    order — the path tests use.  ``check=True`` attaches the online
    invariant checker to every cell and bypasses the store entirely
    (checked results carry extra fields and must not pollute the cache,
    and cached results carry no violation counts).

    ``parallel=True`` pre-warms workloads, dispatches costliest-first
    and chunks submissions (see the module docstring); when only one
    worker would be used the pool is skipped entirely and cells run
    inline — same results, none of the fork/pickle overhead.  An
    explicit *max_workers* is clamped to the number of cells actually
    dispatched, so a generous ``--workers`` never forks idle workers.
    ``legacy_pool=True`` (or ``REPRO_LEGACY_POOL=1``) restores the
    pre-PR 4 cold-pool dispatch for benchmarking (it too runs inline
    when only one worker would be used).

    *obs* is an optional :class:`~repro.obs.SpanRecorder` (defaulting
    to the ambient one, see :func:`repro.obs.use_obs`); with one
    attached the executor emits the telemetry described in the module
    docstring.
    """
    specs = list(specs)
    if check:
        store = None
    elif store is None:
        store = get_default_store()
    if refresh is None:
        refresh = get_default_refresh()
    if obs is None:
        obs = get_default_obs()

    unique: list[RunSpec] = []
    seen: set[RunSpec] = set()
    for spec in specs:
        if spec not in seen:
            seen.add(spec)
            unique.append(spec)

    results: dict = {}
    todo: list[RunSpec] = []
    for spec in unique:
        cached = None if (store is None or refresh) else store.get(spec)
        if cached is not None:
            results[spec] = cached
            if obs is not None:
                obs.event("hit", spec=spec)
            if progress:
                progress("hit", spec)
        else:
            todo.append(spec)

    if todo:
        legacy_pool = legacy_pool or os.environ.get("REPRO_LEGACY_POOL") == "1"
        workers = min(max_workers or (os.cpu_count() or 2), len(todo))
        payloads = [(spec, retries, check, obs is not None) for spec in todo]
        if parallel and workers > 1 and legacy_pool:
            with ProcessPoolExecutor(max_workers=workers) as pool, \
                    _span(obs, "dispatch", cells=len(todo), workers=workers,
                          pool="legacy"):
                outcomes = pool.map(_pool_worker, payloads)
                pairs = list(zip(todo, outcomes))
        elif parallel and workers > 1:
            with _span(obs, "prewarm", cells=len(todo)):
                events_of = _prewarm(todo)
            ordered = lpt_order(todo, events_of)
            trace_store = get_default_trace_store()
            trace_root = str(trace_store.root) if trace_store else None
            chunk = submit_chunksize(len(ordered), workers)
            payloads = [(spec, retries, check, obs is not None)
                        for spec in ordered]
            with ProcessPoolExecutor(max_workers=workers,
                                     initializer=_pool_init,
                                     initargs=(trace_root,)) as pool, \
                    _span(obs, "dispatch", cells=len(todo), workers=workers,
                          pool="warm"):
                outcomes = pool.map(_pool_worker, payloads, chunksize=chunk)
                pairs = list(zip(ordered, outcomes))
        else:
            if parallel and len(todo) > 1 and not legacy_pool:
                with _span(obs, "prewarm", cells=len(todo)):
                    _prewarm(todo)  # single worker: still warm the memo once
            with _span(obs, "dispatch", cells=len(todo), workers=1,
                       pool="inline"):
                # Inline cells record straight into the parent's sink.
                pairs = [(spec, (run_spec(spec, retries, check, obs=obs),
                                 None))
                         for spec in todo]
        for spec, (outcome, records) in pairs:
            if obs is not None and records:
                obs.merge(records)
            results[spec] = outcome
            if isinstance(outcome, RunFailure):
                if obs is not None:
                    obs.event("fail", spec=spec, error=outcome.error)
                if progress:
                    progress("fail", spec, outcome.error)
                continue
            stored = True
            if store is not None:
                try:
                    with _span(obs, "store_put", spec=spec):
                        store.put(spec, outcome)
                except Exception as exc:  # noqa: BLE001 - keep the result
                    # The cell simulated fine; a failing write-back
                    # (disk full, permissions, corrupt store dir) must
                    # not kill the sweep — the result is still returned,
                    # it just will not resume from the store next time.
                    stored = False
                    detail = f"{type(exc).__name__}: {exc}"
                    if obs is not None:
                        obs.event("store-fail", spec=spec, error=detail)
                    if progress:
                        progress("store-fail", spec, detail)
            if stored and progress:
                progress("run", spec)
    return results


def execute_spec(spec: RunSpec, *, store=None, refresh: bool | None = None,
                 check: bool = False, obs=None) -> RunResult:
    """Run (or fetch) one spec; exceptions propagate to the caller.

    The single-cell path ``run_app`` and friends use: store-aware like
    :func:`execute`, but a failure raises — callers asking for exactly
    one result want the exception, not a wrapper.  ``check=True``
    attaches the online invariant checker and bypasses the store.
    With an *obs* recorder (explicit or ambient) the cell records the
    same ``cell``/``simulate``/``store_put`` spans and backoff series
    as the batch path.
    """
    if obs is None:
        obs = get_default_obs()
    if check:
        store = None
    else:
        if store is None:
            store = get_default_store()
        if refresh is None:
            refresh = get_default_refresh()
        if store is not None and not refresh:
            cached = store.get(spec)
            if cached is not None:
                if obs is not None:
                    obs.event("hit", spec=spec)
                return cached
    if obs is None:
        result = spec.execute(check=check)
    else:
        from ..obs import BackoffTelemetry
        telemetry = BackoffTelemetry()
        with obs.span("cell", spec=spec):
            with obs.span("simulate", spec=spec):
                result = spec.execute(check=check, telemetry=telemetry)
            obs.backoff_rows(spec, telemetry.rows)
            obs.emit("backoff_summary", spec=spec.label(),
                     spec_hash=spec.spec_hash(), **telemetry.counters())
    if store is not None:
        with _span(obs, "store_put", spec=spec):
            store.put(spec, result)
    return result
