"""Batch execution of RunSpecs: dedupe, cache, isolate, retry, resume.

This is the one engine every harness entry point (CLI, figures, tables,
claims, benchmarks) funnels through.  Guarantees:

* **Dedupe before dispatch** — identical specs are simulated once, and
  results fan back out to every requesting position.
* **Store-backed resume** — with a :class:`~repro.runtime.store.RunStore`
  attached, cached cells are served from disk and only missing (or
  previously failed — failures are never stored) cells are simulated,
  so an interrupted matrix sweep restarts where it left off.
* **Fault isolation** — a failing cell yields a
  :class:`~repro.runtime.spec.RunFailure` naming its spec instead of
  killing the whole process pool.
* **Optional retry** — transient failures can be retried per cell.
* **Progress** — an optional callback sees one event per cell
  (``"hit" | "run" | "fail"``); :func:`log_progress` prints them.

Matrix-throughput machinery (PR 4): before dispatching, the parent
pre-warms each distinct ``(app, scale)`` workload through the trace
cache — forked workers inherit the traces, and on spawn platforms the
pool *initializer* re-installs the ambient
:class:`~repro.runtime.tracecache.TraceStore` and pre-imports the
simulator so a worker's first cell pays no import/generation cost.
Cells dispatch costliest-first (LPT, see :mod:`repro.runtime.costs`)
in chunks sized to amortise pickle round-trips.  Setting
``REPRO_LEGACY_POOL=1`` (or ``legacy_pool=True``) restores the
pre-PR 4 dispatch — cold workers, submission order, ``chunksize=1`` —
which is what the ``matrix_e2e`` benchmark compares against.
"""

from __future__ import annotations

import os
import sys
import traceback
from concurrent.futures import ProcessPoolExecutor

from ..sim.stats import RunResult
from .costs import lpt_order, submit_chunksize
from .spec import RunFailure, RunSpec
from .store import get_default_refresh, get_default_store
from .tracecache import get_default_trace_store

__all__ = ["execute", "execute_spec", "run_spec", "log_progress"]


def run_spec(spec: RunSpec, retries: int = 0,
             check: bool = False) -> RunResult | RunFailure:
    """Execute one spec, converting exceptions into :class:`RunFailure`."""
    attempt = 0
    while True:
        try:
            return spec.execute(check=check)
        except Exception as exc:  # noqa: BLE001 - isolation is the point
            if attempt >= retries:
                return RunFailure(spec, f"{type(exc).__name__}: {exc}",
                                  traceback.format_exc())
            attempt += 1


def _pool_worker(payload: tuple) -> RunResult | RunFailure:
    """Module-level so it pickles for :class:`ProcessPoolExecutor`."""
    spec, retries, check = payload
    return run_spec(spec, retries, check)


def _pool_init(trace_root: str | None) -> None:
    """Warm a pool worker before it sees its first cell.

    Pre-imports the simulator stack (a no-op under fork, real work
    under spawn) and installs the ambient trace store so every
    :meth:`RunSpec.execute` in this worker resolves workloads through
    the cache instead of regenerating them.
    """
    import repro.coherence.protocol  # noqa: F401
    import repro.harness.experiment  # noqa: F401
    import repro.sim.engine  # noqa: F401

    if trace_root is not None:
        from .tracecache import TraceStore, set_default_trace_store

        set_default_trace_store(TraceStore(trace_root))


def _prewarm(specs) -> dict:
    """Resolve every distinct workload once in the parent process.

    Returns ``(app, scale) -> total event count`` for the cost model.
    Forked workers inherit the warmed traces (and the per-process memo)
    for free.  A workload whose generation raises is skipped — the same
    failure reproduces inside :func:`run_spec`, where it is isolated
    into a :class:`RunFailure` instead of killing the sweep.
    """
    from .costs import workload_events

    events_of: dict = {}
    for key in dict.fromkeys((s.app, s.scale) for s in specs):
        try:
            events_of[key] = workload_events(*key)
        except Exception:  # noqa: BLE001 - fault isolation happens per cell
            pass
    return events_of


def log_progress(event: str, spec: RunSpec, detail: str = "",
                 stream=None) -> None:
    """Default progress callback: one stderr line per cell."""
    stream = stream or sys.stderr
    tag = {"hit": "cached", "run": "ran", "fail": "FAILED"}.get(event, event)
    line = f"[{tag:>6}] {spec.label()}"
    if detail:
        line += f" ({detail})"
    print(line, file=stream)


def execute(specs, *, store=None, refresh: bool | None = None,
            parallel: bool = True, max_workers: int | None = None,
            retries: int = 0, progress=None, check: bool = False,
            legacy_pool: bool = False) -> dict:
    """Run many specs; returns ``{spec: RunResult | RunFailure}``.

    *store* defaults to the ambient store (``None`` disables caching);
    *refresh* forces re-simulation of cached cells (results are still
    written back).  ``parallel=False`` runs inline in deterministic
    order — the path tests use.  ``check=True`` attaches the online
    invariant checker to every cell and bypasses the store entirely
    (checked results carry extra fields and must not pollute the cache,
    and cached results carry no violation counts).

    ``parallel=True`` pre-warms workloads, dispatches costliest-first
    and chunks submissions (see the module docstring); when only one
    worker would be used the pool is skipped entirely and cells run
    inline — same results, none of the fork/pickle overhead.
    ``legacy_pool=True`` (or ``REPRO_LEGACY_POOL=1``) restores the
    pre-PR 4 cold-pool dispatch for benchmarking.
    """
    specs = list(specs)
    if check:
        store = None
    elif store is None:
        store = get_default_store()
    if refresh is None:
        refresh = get_default_refresh()

    unique: list[RunSpec] = []
    seen: set[RunSpec] = set()
    for spec in specs:
        if spec not in seen:
            seen.add(spec)
            unique.append(spec)

    results: dict = {}
    todo: list[RunSpec] = []
    for spec in unique:
        cached = None if (store is None or refresh) else store.get(spec)
        if cached is not None:
            results[spec] = cached
            if progress:
                progress("hit", spec)
        else:
            todo.append(spec)

    if todo:
        legacy_pool = legacy_pool or os.environ.get("REPRO_LEGACY_POOL") == "1"
        workers = max_workers or min(len(todo), os.cpu_count() or 2)
        if parallel and len(todo) > 1 and legacy_pool:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                outcomes = pool.map(_pool_worker,
                                    [(spec, retries, check) for spec in todo])
                pairs = list(zip(todo, outcomes))
        elif parallel and len(todo) > 1 and workers > 1:
            events_of = _prewarm(todo)
            ordered = lpt_order(todo, events_of)
            trace_store = get_default_trace_store()
            trace_root = str(trace_store.root) if trace_store else None
            chunk = submit_chunksize(len(ordered), workers)
            with ProcessPoolExecutor(max_workers=workers,
                                     initializer=_pool_init,
                                     initargs=(trace_root,)) as pool:
                outcomes = pool.map(
                    _pool_worker,
                    [(spec, retries, check) for spec in ordered],
                    chunksize=chunk)
                pairs = list(zip(ordered, outcomes))
        else:
            if parallel and len(todo) > 1:
                _prewarm(todo)  # single worker: still warm the memo once
            pairs = [(spec, run_spec(spec, retries, check)) for spec in todo]
        for spec, outcome in pairs:
            results[spec] = outcome
            if isinstance(outcome, RunFailure):
                if progress:
                    progress("fail", spec, outcome.error)
            else:
                if store is not None:
                    store.put(spec, outcome)
                if progress:
                    progress("run", spec)
    return results


def execute_spec(spec: RunSpec, *, store=None, refresh: bool | None = None,
                 check: bool = False) -> RunResult:
    """Run (or fetch) one spec; exceptions propagate to the caller.

    The single-cell path ``run_app`` and friends use: store-aware like
    :func:`execute`, but a failure raises — callers asking for exactly
    one result want the exception, not a wrapper.  ``check=True``
    attaches the online invariant checker and bypasses the store.
    """
    if check:
        return spec.execute(check=True)
    if store is None:
        store = get_default_store()
    if refresh is None:
        refresh = get_default_refresh()
    if store is not None and not refresh:
        cached = store.get(spec)
        if cached is not None:
            return cached
    result = spec.execute()
    if store is not None:
        store.put(spec, result)
    return result
