"""Content-addressed on-disk workload trace cache.

The evaluation matrix replays each application's trace under ~15
(architecture, pressure) cells, and every worker process of a matrix
sweep — plus every fresh CLI invocation — used to regenerate those
traces from scratch.  Generation is deterministic, so the traces are
pure functions of their :class:`~repro.workloads.base.WorkloadSpec`;
this module caches them the same way :class:`~repro.runtime.store.RunStore`
caches results:

* **Keying** — :func:`trace_key` hashes the canonical JSON of
  ``(app, n_nodes, scale, WorkloadSpec fields, trace format version,
  cache schema version)``.  Anything that could change the generated
  arrays changes the key; bumping
  :data:`~repro.sim.trace.TRACE_FORMAT_VERSION` orphans every entry.
* **Artifacts** — one file per workload under ``results/traces/``, in
  the existing ``_MAGIC`` binary format
  (:meth:`~repro.sim.trace.WorkloadTraces.save`), written atomically so
  concurrent matrix workers cannot tear an entry.
* **Memo** — a per-process in-memory layer on top
  (:func:`fetch_traces`), so a warm worker touches each workload once
  per run no matter how many cells share it, and cells served from the
  same process share one ``Trace`` object (and therefore one cached
  list-form conversion) instead of one per cell.

A corrupt, stale or foreign file is a *miss*, never an error: the
workload is regenerated and the entry rewritten.  The cache changes
*when* traces are built, never *what* is built — ``tests/test_tracecache.py``
pins cached-vs-regenerated bit-identity.

Replay-loop selection (``REPRO_SLOW_PATH`` / ``REPRO_VECTOR_PATH``)
never enters :func:`trace_key` for the same reason it stays out of
``RunSpec.spec_hash()``: the loops are bit-identical consumers of the
same trace arrays, and the vectorized loop's SoA decode
(:meth:`~repro.sim.trace.WorkloadTraces.soa`) is a per-process view
built lazily on top of whatever this cache loads.

SoA sidecars
------------
With the vector kernel the default substrate, every fresh process pays
the SoA decode (concatenate all node traces into flat arrays) before
its first replay.  ``put`` therefore also writes a ``.soa`` sidecar
next to each ``.trace`` artifact — flat kind/arg arrays in a
memory-mappable layout — and ``get`` attaches it read-only via
``np.memmap``, so warm processes skip the decode *and* share the
page-cache copy of the arrays across concurrent matrix workers.  The
sidecar is strictly additive: it is keyed by the workload's
``content_hash`` plus :data:`SOA_FORMAT_VERSION`, and any mismatch,
truncation, foreign byte order or missing file is a silent decode miss
(the in-memory decode runs as before), never an error.  Older caches
containing only ``.trace`` files keep working unchanged.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import sys
import tempfile
from pathlib import Path

import numpy as np

from ..sim.trace import TRACE_FORMAT_VERSION, WorkloadTraces

__all__ = ["TRACE_STORE_VERSION", "SOA_FORMAT_VERSION", "TraceStore",
           "trace_key", "fetch_traces", "clear_trace_memo",
           "get_default_trace_store", "set_default_trace_store",
           "use_trace_store", "write_soa_sidecar", "attach_soa_sidecar",
           "sample_from_sidecar"]

#: Cache schema version (file naming / keying rules).  Bump when the
#: keying scheme itself changes; old artifacts then stop matching.
TRACE_STORE_VERSION = 1

#: Version of the ``.soa`` sidecar layout.  Bump when the byte layout
#: or the tuple shape of ``WorkloadTraces.soa()`` changes; stale
#: sidecars then read as decode misses and are rewritten on the next
#: ``put``.
SOA_FORMAT_VERSION = 1

_SOA_MAGIC = b"ASOA1\n"


def _pad8(offset: int) -> int:
    """Bytes of zero padding needed to 8-align *offset*."""
    return -offset % 8


def write_soa_sidecar(trace_path: Path, traces: WorkloadTraces) -> bool:
    """Write ``<stem>.soa`` next to *trace_path*; best-effort.

    Layout: magic, one JSON header line (format version, workload
    ``content_hash``, per-node lengths, ref bounds, byte order), zero
    padding to 8 bytes, the raw ``uint8`` kind array, padding, the raw
    little-endian ``int64`` arg array.  Returns ``False`` (and leaves
    no partial file behind) on any failure — an unwritable cache
    directory must never break trace generation.
    """
    kinds, args, _offsets, lengths, ref_lo, ref_hi = traces.soa()
    header = {
        "soa_format_version": SOA_FORMAT_VERSION,
        "content_hash": traces.content_hash(),
        "n_nodes": traces.n_nodes,
        "lengths": [int(x) for x in lengths],
        "ref_lo": ref_lo,
        "ref_hi": ref_hi,
        "byteorder": "little",
    }
    blob = json.dumps(header, sort_keys=True,
                      separators=(",", ":")).encode() + b"\n"
    path = trace_path.with_suffix(".soa")
    tmp = None
    try:
        fd, tmp = tempfile.mkstemp(dir=trace_path.parent, suffix=".tmp")
        with os.fdopen(fd, "wb") as fh:
            fh.write(_SOA_MAGIC)
            fh.write(blob)
            fh.write(b"\0" * _pad8(fh.tell()))
            fh.write(np.ascontiguousarray(kinds, dtype=np.uint8).tobytes())
            fh.write(b"\0" * _pad8(fh.tell()))
            fh.write(np.ascontiguousarray(args, dtype="<i8").tobytes())
        os.replace(tmp, path)
        return True
    except OSError:
        if tmp is not None:
            with contextlib.suppress(OSError):
                os.unlink(tmp)
        return False


def _map_soa(trace_path: Path):
    """Validate and memory-map ``<stem>.soa``.

    Returns ``(header, kinds, args, offsets, lengths)`` with the two
    event arrays as read-only memmaps, or ``None`` on any mismatch
    (wrong magic/version/byte order, truncation, unreadable file).
    """
    if sys.byteorder != "little":  # pragma: no cover - exotic hosts
        return None
    path = trace_path.with_suffix(".soa")
    try:
        with open(path, "rb") as fh:
            if fh.read(len(_SOA_MAGIC)) != _SOA_MAGIC:
                return None
            header = json.loads(fh.readline().decode())
            if header.get("soa_format_version") != SOA_FORMAT_VERSION:
                return None
            if header.get("byteorder") != "little":
                return None
            lengths_list = header.get("lengths")
            if not isinstance(lengths_list, list):
                return None
            pos = fh.tell()
        lengths = np.array(lengths_list, dtype=np.int64)
        total = int(lengths.sum())
        k_off = pos + _pad8(pos)
        a_off = k_off + total
        a_off += _pad8(a_off)
        if path.stat().st_size != a_off + 8 * total:
            return None
        if total:
            kinds = np.memmap(path, dtype=np.uint8, mode="r",
                              offset=k_off, shape=(total,))
            args = np.memmap(path, dtype=np.dtype("<i8"), mode="r",
                             offset=a_off, shape=(total,))
        else:
            kinds = np.zeros(0, dtype=np.uint8)
            args = np.zeros(0, dtype=np.int64)
        offsets = np.zeros(len(lengths), dtype=np.int64)
        np.cumsum(lengths[:-1], out=offsets[1:])
        return header, kinds, args, offsets, lengths
    except (OSError, ValueError, KeyError, TypeError):
        return None


def attach_soa_sidecar(trace_path: Path, traces: WorkloadTraces) -> bool:
    """Memory-map ``<stem>.soa`` into ``traces``' SoA cache slot.

    Validates magic, format version, workload content hash, byte order
    and exact file size before trusting the arrays; every mismatch is
    a silent decode miss (returns ``False``), after which
    :meth:`WorkloadTraces.soa` recomputes in memory exactly as it
    would without a sidecar.
    """
    mapped = _map_soa(trace_path)
    if mapped is None:
        return False
    header, kinds, args, offsets, lengths = mapped
    if header.get("content_hash") != traces.content_hash():
        return False
    if len(lengths) != traces.n_nodes:
        return False
    try:
        bounds = (int(header["ref_lo"]), int(header["ref_hi"]))
    except (KeyError, ValueError, TypeError):
        return False
    traces._soa_cache = (kinds, args, offsets, lengths, *bounds)
    return True


def sample_from_sidecar(trace_path: Path, sample) -> WorkloadTraces | None:
    """Build a *sampled* workload straight from a cached full artifact.

    Reads only the ``.trace`` metadata header (a few hundred bytes) and
    memory-maps the ``.soa`` sidecar, so the full event arrays never
    enter the process heap — the property that lets ``--sample-rate``
    runs on a warm trace store peak at roughly the kept fraction of the
    full run's trace memory.  Any missing or invalid file is ``None``
    (the caller falls back to sampling an in-memory full fetch).
    """
    from ..mem.address import AddressMap
    from ..sim.trace import load_trace_header
    from ..workloads.sample import assemble_sampled

    try:
        header = load_trace_header(str(trace_path))
    except (OSError, ValueError, KeyError, EOFError, SyntaxError):
        return None
    mapped = _map_soa(trace_path)
    if mapped is None:
        return None
    soa_header, kinds, args, offsets, lengths = mapped
    if len(lengths) != header.get("n_nodes"):
        return None
    params = dict(header.get("params") or {})
    params["full_content_hash"] = soa_header.get("content_hash")
    try:
        return assemble_sampled(header["name"], kinds, args, offsets,
                                lengths, header["home_pages_per_node"],
                                header["total_shared_pages"], params, sample,
                                AddressMap().lines_per_page)
    except (KeyError, ValueError, TypeError):
        return None


def trace_key(app: str, scale: float, sample=None, **overrides) -> str:
    """Stable 16-hex content key for one cached workload.

    For generated apps it covers the application name (which selects
    the generator class), the paper node count, the scale, every
    :class:`~repro.workloads.base.WorkloadSpec` field the generator
    consumes, and the trace format + cache schema versions.  For
    external (``ext/``) apps the id already *is* the content identity
    (it embeds the ingested workload's hash), so the payload is the id
    plus the ingest + format versions; scale does not apply.

    A non-null *sample* (:class:`~repro.workloads.sample.SampleSpec`,
    dict, or item pairs) is hashed in additionally, so sampled and full
    artifacts of the same workload can never collide; a null sample
    leaves every pre-sampling key byte-identical.
    """
    from ..workloads.sample import SampleSpec

    if app.startswith("ext/"):
        from ..workloads.ingest import INGEST_FORMAT_VERSION, parse_external_app

        parse_external_app(app)  # validates the id shape
        payload = {
            "app": app,
            "ingest_version": INGEST_FORMAT_VERSION,
            "format_version": TRACE_FORMAT_VERSION,
            "store_version": TRACE_STORE_VERSION,
        }
    else:
        from ..workloads import workload_spec

        spec = workload_spec(app, scale=scale, **overrides)
        payload = {
            "app": app,
            "n_nodes": spec.n_nodes,
            "scale": scale,
            "spec": spec.canonical_dict(),
            "format_version": TRACE_FORMAT_VERSION,
            "store_version": TRACE_STORE_VERSION,
        }
    sample_spec = SampleSpec.from_any(sample)
    if sample_spec is not None:
        payload["sample"] = sample_spec.canonical_dict()
    digest = hashlib.sha256(
        json.dumps(payload, sort_keys=True, separators=(",", ":")).encode())
    return digest.hexdigest()[:16]


class TraceStore:
    """Content-addressed cache of generated workloads under one directory."""

    def __init__(self, root: str | os.PathLike = "results/traces") -> None:
        self.root = Path(root)
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.soa_attaches = 0

    # -- paths ----------------------------------------------------------
    def path_for(self, app: str, scale: float, sample=None,
                 **overrides) -> Path:
        # External app ids contain "/" (ext/<name>@<hash>); flatten for
        # the file name — the key suffix keeps entries unambiguous.
        stem = app.replace("/", "_")
        key = trace_key(app, scale, sample=sample, **overrides)
        return self.root / f"{stem}-{key}.trace"

    @staticmethod
    def _name_matches(traces: WorkloadTraces, app: str, sample) -> bool:
        """Does a loaded artifact plausibly belong to *app*?

        Generated workloads store the app name verbatim.  External
        artifacts store the base ``ext/<name>`` (the full id embeds the
        content hash, which cannot name itself), so the hash is checked
        against the workload's own — except for sampled artifacts,
        whose arrays legitimately hash differently from the full
        workload the id names (the sample-keyed path vouches for them).
        """
        if not app.startswith("ext/"):
            return traces.name == app
        from ..workloads.ingest import parse_external_app

        base, content_hash = parse_external_app(app)
        if traces.name != base:
            return False
        return sample is not None or traces.content_hash() == content_hash

    # -- lookup ---------------------------------------------------------
    def get(self, app: str, scale: float, sample=None,
            **overrides) -> WorkloadTraces | None:
        """Cached workload, or ``None`` (never raises on bad files).

        A wrong magic, a stale format version, a truncated file or a
        header naming a different application all read as a miss; the
        caller regenerates and overwrites.  A non-null *sample*
        resolves the sampled artifact (distinct key, never aliases the
        full trace).
        """
        from ..workloads.sample import SampleSpec

        sample = SampleSpec.from_any(sample)
        path = self.path_for(app, scale, sample=sample, **overrides)
        try:
            traces = WorkloadTraces.load(str(path))
        except (OSError, ValueError, KeyError, EOFError, SyntaxError):
            # SyntaxError: a truncated header fails ast.literal_eval.
            self.misses += 1
            return None
        if not self._name_matches(traces, app, sample):
            self.misses += 1
            return None
        self.hits += 1
        if attach_soa_sidecar(path, traces):
            self.soa_attaches += 1
        return traces

    def __contains__(self, key: tuple) -> bool:
        app, scale = key
        return self.path_for(app, scale).exists()

    # -- update ---------------------------------------------------------
    def put(self, app: str, scale: float, traces: WorkloadTraces,
            sample=None, **overrides) -> Path:
        """Persist *traces* atomically (write temp file, then rename)."""
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.path_for(app, scale, sample=sample, **overrides)
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        os.close(fd)
        try:
            traces.save(tmp)
            os.replace(tmp, path)
        except BaseException:
            with contextlib.suppress(OSError):
                os.unlink(tmp)
            raise
        self.writes += 1
        write_soa_sidecar(path, traces)
        return path

    # -- maintenance ----------------------------------------------------
    def entries(self) -> list[dict]:
        """Summary of every readable artifact, sorted by file name.

        Robust against concurrent mutation: a ``trace-clear`` racing
        this scan (e.g. against a live job server) makes files vanish
        between ``glob`` and ``stat`` — such entries are skipped, never
        an error.
        """
        out = []
        for path in sorted(self.root.glob("*.trace")):
            try:
                traces = WorkloadTraces.load(str(path))
                nbytes = path.stat().st_size
            except (OSError, ValueError, KeyError, EOFError, SyntaxError):
                continue
            out.append({
                "file": path.name,
                "name": traces.name,
                "n_nodes": traces.n_nodes,
                "events": sum(len(t) for t in traces.traces),
                "content_hash": traces.content_hash(),
                "bytes": nbytes,
                "soa": path.with_suffix(".soa").exists(),
            })
        return out

    def clear(self) -> int:
        """Delete every artifact (and its sidecar); returns .trace count."""
        removed = 0
        for path in self.root.glob("*.trace"):
            with contextlib.suppress(OSError):
                path.unlink()
                removed += 1
            with contextlib.suppress(OSError):
                path.with_suffix(".soa").unlink()
        return removed

    def size_bytes(self) -> int:
        """Total artifact bytes; files vanishing mid-scan count as 0."""
        total = 0
        for pattern in ("*.trace", "*.soa"):
            for path in self.root.glob(pattern):
                try:
                    total += path.stat().st_size
                except OSError:
                    continue
        return total

    def describe(self) -> dict:
        n = len(list(self.root.glob("*.trace"))) if self.root.is_dir() else 0
        n_soa = len(list(self.root.glob("*.soa"))) if self.root.is_dir() else 0
        return {"root": str(self.root), "entries": n,
                "soa_sidecars": n_soa,
                "bytes": self.size_bytes(),
                "format_version": TRACE_FORMAT_VERSION,
                "store_version": TRACE_STORE_VERSION,
                "soa_format_version": SOA_FORMAT_VERSION,
                "session": {"hits": self.hits, "misses": self.misses,
                            "writes": self.writes,
                            "soa_attaches": self.soa_attaches}}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TraceStore({str(self.root)!r})"


# -- per-process memo ---------------------------------------------------
#: ``(app, scale, sample pairs, store root or None) -> WorkloadTraces``.
#: Keyed by the store identity so tests pointing at different cache
#: directories never alias each other's entries, and by the sampling
#: policy so sampled and full fetches of one cell coexist.
_memo: dict[tuple, WorkloadTraces] = {}


def clear_trace_memo() -> None:
    """Drop the per-process memo (tests and long-lived daemons)."""
    _memo.clear()


def fetch_traces(app: str, scale: float,
                 store: "TraceStore | None" = None,
                 sample=None) -> WorkloadTraces:
    """Memo -> trace store -> sidecar sampling -> generator, in order.

    The one entry point the runtime layer uses for workload traces.
    With *store* ``None`` the ambient store applies (``None`` ambient
    means no disk caching — the library/test default); generation misses
    are written back so the next process starts warm.

    A non-null *sample* resolves the *sampled* workload: a cached
    sampled artifact if one exists, else — on a warm store — a
    streaming reduction straight from the full artifact's ``.soa``
    sidecar (the full arrays never enter the heap), else an in-memory
    sampling of the full fetch.  Sampled results are written back under
    their own sample-suffixed key.

    External (``ext/``) apps resolve only through the store — there is
    no generator to fall back to; a miss raises with a pointer to
    ``repro ingest``.
    """
    from ..workloads.sample import SampleSpec

    sample = SampleSpec.from_any(sample)
    if store is None:
        store = get_default_trace_store()
    key = (app, scale, str(store.root) if store is not None else None, sample)
    traces = _memo.get(key)
    if traces is not None:
        return traces
    if store is not None:
        traces = store.get(app, scale, sample=sample)
    if traces is None and sample is not None and store is not None:
        full_path = store.path_for(app, scale)
        traces = sample_from_sidecar(full_path, sample)
        if traces is not None and not store._name_matches(traces, app, sample):
            traces = None
        if traces is not None and app.startswith("ext/"):
            # The sampled arrays hash differently from the full
            # workload, so identity is pinned through the sidecar's
            # record of the *full* content hash instead.
            from ..workloads.ingest import parse_external_app

            if (traces.params.get("full_content_hash")
                    != parse_external_app(app)[1]):
                traces = None
        if traces is not None:
            store.put(app, scale, traces, sample=sample)
    if traces is None and sample is not None:
        traces = _sample_in_memory(app, scale, store, sample)
        if store is not None:
            store.put(app, scale, traces, sample=sample)
    if traces is None:
        if app.startswith("ext/"):
            raise LookupError(
                f"external workload {app!r} is not in the trace store"
                + (f" at {store.root}" if store is not None else
                   " (and no trace store is installed)")
                + "; register it first with `repro ingest`")
        # get_workload's lru_cache is the generation-side memo, shared
        # with direct harness callers (perf suite, tables, figures).
        from ..harness.experiment import get_workload

        traces = get_workload(app, scale)
        if store is not None:
            store.put(app, scale, traces)
    _memo[key] = traces
    return traces


def _sample_in_memory(app: str, scale: float, store, sample) -> WorkloadTraces:
    """Cold-path sampling: fetch (or generate) the full workload, reduce it."""
    from ..workloads.sample import sample_workload

    full = fetch_traces(app, scale, store)
    return sample_workload(full, sample)


# -- ambient default ----------------------------------------------------
_default_trace_store: TraceStore | None = None


def get_default_trace_store() -> TraceStore | None:
    return _default_trace_store


def set_default_trace_store(store: TraceStore | None) -> None:
    """Install the ambient trace store used when callers don't pass one."""
    global _default_trace_store
    _default_trace_store = store


@contextlib.contextmanager
def use_trace_store(store: TraceStore | None):
    """Scoped ambient trace store: ``with use_trace_store(...): ...``."""
    prev = _default_trace_store
    set_default_trace_store(store)
    try:
        yield store
    finally:
        set_default_trace_store(prev)
