"""Run orchestration: canonical specs, result store, batch executor.

The layer between the simulator core and every harness consumer:

* :class:`RunSpec` — one evaluation-matrix cell as a frozen value with
  a stable content hash;
* :class:`RunStore` — content-addressed on-disk cache of results
  (``results/store/<hash>.json``);
* :class:`TraceStore` — content-addressed on-disk cache of generated
  workload traces (``results/traces/<app>-<hash>.trace``) with a
  per-process memo on top (:func:`fetch_traces`);
* :func:`execute` / :func:`execute_spec` — store-aware batch/single
  execution with dedupe, per-cell fault isolation, retry and resume,
  plus warm pool workers and cost-aware (LPT) dispatch
  (:mod:`repro.runtime.costs`).

See ``docs/runtime.md`` for hashing and cache-invalidation rules.
"""

from .costs import ARCH_WEIGHTS, lpt_order, spec_cost, submit_chunksize
from .executor import execute, execute_spec, log_progress, run_spec
from .spec import SPEC_VERSION, RunFailure, RunSpec, canonical_arch
from .store import (STORE_VERSION, RunStore, get_default_refresh,
                    get_default_store, set_default_store, use_store)
from .tracecache import (TRACE_STORE_VERSION, TraceStore, clear_trace_memo,
                         fetch_traces, get_default_trace_store,
                         set_default_trace_store, trace_key, use_trace_store)

__all__ = [
    "ARCH_WEIGHTS",
    "SPEC_VERSION",
    "STORE_VERSION",
    "TRACE_STORE_VERSION",
    "RunFailure",
    "RunSpec",
    "RunStore",
    "TraceStore",
    "canonical_arch",
    "clear_trace_memo",
    "execute",
    "execute_spec",
    "fetch_traces",
    "get_default_refresh",
    "get_default_store",
    "get_default_trace_store",
    "log_progress",
    "lpt_order",
    "run_spec",
    "set_default_store",
    "set_default_trace_store",
    "spec_cost",
    "submit_chunksize",
    "trace_key",
    "use_store",
    "use_trace_store",
]
