"""Run orchestration: canonical specs, result store, batch executor.

The layer between the simulator core and every harness consumer:

* :class:`RunSpec` — one evaluation-matrix cell as a frozen value with
  a stable content hash;
* :class:`RunStore` — content-addressed on-disk cache of results
  (``results/store/<hash>.json``);
* :func:`execute` / :func:`execute_spec` — store-aware batch/single
  execution with dedupe, per-cell fault isolation, retry and resume.

See ``docs/runtime.md`` for hashing and cache-invalidation rules.
"""

from .executor import execute, execute_spec, log_progress, run_spec
from .spec import SPEC_VERSION, RunFailure, RunSpec, canonical_arch
from .store import (STORE_VERSION, RunStore, get_default_refresh,
                    get_default_store, set_default_store, use_store)

__all__ = [
    "SPEC_VERSION",
    "STORE_VERSION",
    "RunFailure",
    "RunSpec",
    "RunStore",
    "canonical_arch",
    "execute",
    "execute_spec",
    "get_default_refresh",
    "get_default_store",
    "log_progress",
    "run_spec",
    "set_default_store",
    "use_store",
]
