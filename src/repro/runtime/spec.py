"""Canonical run descriptions.

A :class:`RunSpec` pins down *one* cell of the evaluation matrix — app,
architecture, memory pressure, workload scale, plus any policy/config
overrides and a non-default scheduling quantum — as a frozen, hashable
value.  It replaces the loose ``(app, arch, pressure, scale)`` tuples
previously duplicated across ``experiment.py``, ``parallel.py``,
``cli.py`` and the benchmarks, and it carries a *stable content hash*
(:meth:`RunSpec.spec_hash`) that keys the on-disk result store.

Hash stability rules
--------------------
* architecture names are canonicalised (``"as-coma"`` == ``"ASCOMA"``);
* overrides are stored as sorted ``(key, value)`` tuples, so keyword
  order never changes the hash;
* the hash covers a ``version`` field (:data:`SPEC_VERSION`) — bump it
  whenever simulator semantics change so that stale store artifacts
  become unreachable rather than silently wrong;
* replay-loop selection (``REPRO_SLOW_PATH`` / ``REPRO_VECTOR_PATH``,
  or the engine's ``slow_path``/``vector_path`` arguments) is a
  *runtime mode*, deliberately outside the hash: all three loops are
  pinned bit-identical by ``tests/test_perf_parity.py``, so a store
  entry produced by any loop validly services the same spec replayed
  through any other.

A failed execution is described by :class:`RunFailure`, which names the
spec that failed so batch sweeps can report and resume precisely.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field

from ..sim.stats import RunResult

__all__ = ["SPEC_VERSION", "RunSpec", "RunFailure", "canonical_arch"]

#: Content-hash schema version.  Bump on any change to simulator
#: semantics (or to RunSpec's canonical form) that invalidates stored
#: results; old artifacts then simply stop matching and are re-run.
SPEC_VERSION = 1


def canonical_arch(arch: str) -> str:
    """Canonical architecture spelling used for hashing and display."""
    return arch.upper().replace("-", "").replace("_", "")


def _freeze(overrides) -> tuple:
    """Normalise an overrides mapping/iterable to sorted item pairs."""
    if not overrides:
        return ()
    items = overrides.items() if isinstance(overrides, dict) else overrides
    return tuple(sorted((str(k), v) for k, v in items))


def _freeze_sample(sample) -> tuple:
    """Normalise a sample description to canonical frozen item pairs.

    Accepts ``None``, a :class:`~repro.workloads.sample.SampleSpec`, a
    plain dict, or already-frozen pairs; every spelling of "no
    sampling" collapses to ``()`` so unsampled specs keep their
    pre-sampling canonical form (and store hashes) bit-identical.
    """
    if not sample:
        return ()
    from ..workloads.sample import SampleSpec

    spec = SampleSpec.from_any(sample)
    return spec.to_pairs() if spec is not None else ()


@dataclass(frozen=True)
class RunSpec:
    """One simulation cell, canonically described.

    ``policy_overrides`` / ``config_overrides`` are sorted
    ``(name, value)`` pairs of JSON-scalar values (construct with
    :meth:`make` to pass plain dicts).  ``quantum=None`` means the
    engine default.
    """

    app: str
    arch: str
    pressure: float
    scale: float = 0.5
    policy_overrides: tuple = ()
    config_overrides: tuple = ()
    quantum: int | None = None
    #: Trace-sampling parameters as canonical frozen item pairs
    #: (:meth:`~repro.workloads.sample.SampleSpec.to_pairs`); ``()``
    #: means the full trace.  Sampling changes the replayed workload,
    #: so — unlike replay-loop selection — it *does* enter the hash.
    sample: tuple = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "arch", canonical_arch(self.arch))
        object.__setattr__(self, "policy_overrides",
                           _freeze(self.policy_overrides))
        object.__setattr__(self, "config_overrides",
                           _freeze(self.config_overrides))
        object.__setattr__(self, "sample", _freeze_sample(self.sample))

    # -- constructors ---------------------------------------------------
    @classmethod
    def make(cls, app: str, arch: str, pressure: float, scale: float = 0.5,
             policy_overrides: dict | None = None,
             config_overrides: dict | None = None,
             quantum: int | None = None, sample=None) -> "RunSpec":
        """Build a spec from plain dicts of overrides."""
        return cls(app, arch, pressure, scale,
                   _freeze(policy_overrides), _freeze(config_overrides),
                   quantum, _freeze_sample(sample))

    @classmethod
    def from_cell(cls, cell: tuple) -> "RunSpec":
        """Adapt a legacy ``(app, arch, pressure, scale)`` tuple."""
        app, arch, pressure, scale = cell
        return cls(app, arch, pressure, scale)

    def cell(self) -> tuple:
        """The legacy tuple form (drops overrides and quantum)."""
        return (self.app, self.arch, self.pressure, self.scale)

    # -- serialisation / hashing ---------------------------------------
    def to_dict(self) -> dict:
        out = {
            "app": self.app,
            "arch": self.arch,
            "pressure": self.pressure,
            "scale": self.scale,
            "policy_overrides": [list(p) for p in self.policy_overrides],
            "config_overrides": [list(p) for p in self.config_overrides],
            "quantum": self.quantum,
        }
        # Emitted only when sampling is active: unsampled specs keep
        # the exact canonical JSON (and store hashes) they had before
        # the field existed.
        if self.sample:
            out["sample"] = [list(p) for p in self.sample]
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "RunSpec":
        return cls(data["app"], data["arch"], data["pressure"],
                   data.get("scale", 0.5),
                   tuple(tuple(p) for p in data.get("policy_overrides", ())),
                   tuple(tuple(p) for p in data.get("config_overrides", ())),
                   data.get("quantum"),
                   tuple(tuple(p) for p in data.get("sample", ())))

    def canonical_json(self) -> str:
        """Deterministic JSON form the content hash is computed over."""
        payload = self.to_dict()
        payload["version"] = SPEC_VERSION
        return json.dumps(payload, sort_keys=True, separators=(",", ":"))

    def spec_hash(self) -> str:
        """Stable 16-hex-digit content hash (store key)."""
        digest = hashlib.sha256(self.canonical_json().encode())
        return digest.hexdigest()[:16]

    def sample_spec(self):
        """The :class:`~repro.workloads.sample.SampleSpec`, or ``None``."""
        if not self.sample:
            return None
        from ..workloads.sample import SampleSpec

        return SampleSpec.from_any(self.sample)

    def label(self) -> str:
        """Short human-readable form for logs and reports."""
        extra = ""
        if self.policy_overrides or self.config_overrides or self.quantum:
            extra = "*"
        sample = self.sample_spec()
        if sample is not None:
            extra += sample.label()
        return (f"{self.app}/{self.arch}@{self.pressure:.0%}"
                f"(x{self.scale:g}){extra}")

    # -- execution ------------------------------------------------------
    def execute(self, check: bool = False, traces=None,
                telemetry=None) -> RunResult:
        """Run this cell's simulation (no result caching — see the executor).

        ``check=True`` attaches an online
        :class:`~repro.check.InvariantChecker` (barrier granularity);
        the result then reports ``invariant_violations``.  *check* is a
        runtime mode, not part of the spec, so it never enters the
        content hash — checked runs bypass the result store instead.

        *telemetry* is an optional
        :class:`~repro.obs.BackoffTelemetry` to attach to the engine's
        event bus (kind-filtered, so the replay fast path stays on).
        Like *check* it is a runtime mode: the rows it collects live on
        the telemetry object, never in the :class:`RunResult`, so
        cached results stay byte-identical with and without ``--obs``.

        *traces* short-circuits workload acquisition with an explicit
        :class:`~repro.sim.trace.WorkloadTraces` (the caller vouches it
        matches ``(app, scale)``); otherwise the trace cache resolves it
        — per-process memo, then the ambient
        :class:`~repro.runtime.tracecache.TraceStore` (if one is
        installed), then deterministic regeneration.

        Imports are deferred so worker processes only pay for what they
        use and so ``repro.harness`` can import this module freely.
        """
        from ..harness.experiment import scaled_policy
        from ..sim.config import SystemConfig
        from ..sim.engine import DEFAULT_QUANTUM, Engine
        from .tracecache import fetch_traces

        workload = traces if traces is not None else fetch_traces(
            self.app, self.scale, sample=self.sample or None)
        cfg_kwargs = {"n_nodes": workload.n_nodes,
                      "memory_pressure": self.pressure}
        cfg_kwargs.update(dict(self.config_overrides))
        config = SystemConfig(**cfg_kwargs)
        policy = scaled_policy(self.arch, **dict(self.policy_overrides))
        engine = Engine(workload, policy, config=config,
                        quantum=self.quantum or DEFAULT_QUANTUM)
        checker = None
        if check:
            from ..check import InvariantChecker
            checker = InvariantChecker.attach(engine)
        if telemetry is not None:
            telemetry.attach(engine)
        try:
            return engine.run()
        finally:
            # Always unsubscribe: the bus (and its observer lists) lives
            # as long as the engine, and long-lived callers — the serve
            # layer keeps warm state across thousands of jobs — must not
            # accumulate per-run observers on anything they retain.
            if telemetry is not None:
                telemetry.detach(engine)
            if checker is not None:
                checker.detach()


@dataclass(frozen=True)
class RunFailure:
    """Outcome of a cell whose simulation raised: names the spec.

    Batch sweeps return these in place of :class:`RunResult` so one bad
    cell cannot kill the rest of the matrix; ``error`` is the exception
    summary, ``traceback`` the formatted stack for diagnosis.
    """

    spec: RunSpec
    error: str
    traceback: str = field(default="", compare=False)

    def label(self) -> str:
        return f"{self.spec.label()}: {self.error}"
