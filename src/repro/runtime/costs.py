"""Per-cell cost model for matrix scheduling.

A matrix sweep's cells differ in cost by an order of magnitude: apps
differ ~10x in trace event count (ocean vs fft at equal scale), and
architectures differ a few percent in replay speed per event.  Naive
FIFO dispatch therefore ends with one worker grinding a giant ocean
cell while the rest idle.  This module estimates each
:class:`~repro.runtime.spec.RunSpec`'s cost as

    ``trace event count  x  per-architecture weight``

and orders dispatch longest-first (LPT — longest processing time —
the classic 4/3-approximation for makespan on identical machines).
Chunked submission sizing lives here too, so pool IPC overhead and
tail latency are traded off in one place.

The architecture weights are *calibrated from measurement*, not
guessed: ``BENCH_pr3.json``'s ``single:fft/<arch>`` benchmarks give
events/second per architecture on the reference machine; the weight is
each architecture's per-event time relative to ASCOMA.  The spread is
small (~4%) because PR 3 flattened the replay fast path, but LPT only
needs *ranks* to be right, and event counts dominate those.
"""

from __future__ import annotations

from .spec import RunSpec, canonical_arch

__all__ = ["ARCH_WEIGHTS", "DEFAULT_ARCH_WEIGHT", "workload_events",
           "spec_cost", "lpt_order", "submit_chunksize"]

#: Relative per-event replay time, ASCOMA = 1.0.  Derived from
#: BENCH_pr3.json ``single:fft/*`` events/s (859544 / arch ev/s):
#: CC-NUMA re-fetches remote lines forever under pressure, so it pays
#: the most per event; the page-caching architectures are cheaper.
ARCH_WEIGHTS = {
    "CCNUMA": 1.037,
    "SCOMA": 1.015,
    "RNUMA": 1.027,
    "VCNUMA": 1.003,
    "ASCOMA": 1.000,
}

#: Unknown architectures (tests, experiments) assume mid-pack cost.
DEFAULT_ARCH_WEIGHT = 1.02


def workload_events(app: str, scale: float) -> int:
    """Total trace events of one workload (all nodes).

    Routed through :func:`~repro.runtime.tracecache.fetch_traces`, so
    asking for the count *is* the pre-warm: the parent process pays
    generation (or a cache hit) once, and forked pool workers inherit
    the in-memory traces for free.
    """
    from .tracecache import fetch_traces

    traces = fetch_traces(app, scale)
    return sum(len(t) for t in traces.traces)


def spec_cost(spec: RunSpec, events: int | None = None) -> float:
    """Estimated replay cost of one cell, in weighted events.

    *events* is the workload's total event count; ``None`` looks it up
    (generating or cache-hitting the trace as a side effect).
    """
    if events is None:
        events = workload_events(spec.app, spec.scale)
    weight = ARCH_WEIGHTS.get(canonical_arch(spec.arch), DEFAULT_ARCH_WEIGHT)
    return events * weight


def lpt_order(specs, events_of=None) -> list:
    """Specs sorted costliest-first (LPT dispatch order).

    *events_of* maps ``(app, scale) -> event count``; missing entries
    (e.g. a spec whose workload failed to generate — it will fail
    identically in the worker, where the failure is isolated) cost 0
    and sort last.  The sort is stable, so equal-cost cells keep their
    submission order and reruns dispatch identically.
    """
    events_of = events_of or {}

    def cost(spec: RunSpec) -> float:
        events = events_of.get((spec.app, spec.scale))
        return spec_cost(spec, events) if events is not None else 0.0

    return sorted(specs, key=cost, reverse=True)


def submit_chunksize(n_tasks: int, workers: int,
                     chunks_per_worker: int = 4) -> int:
    """Chunk size for ``pool.map``: fewer pickles, bounded imbalance.

    ``chunksize=1`` (the default) costs one IPC round-trip per cell; one
    giant chunk per worker forfeits the load balancing LPT set up.
    Giving each worker ~``chunks_per_worker`` chunks keeps per-cell IPC
    amortised while capping the imbalance any single chunk can cause at
    ~1/chunks_per_worker of a worker's share.
    """
    if workers <= 0:
        raise ValueError("workers must be positive")
    return max(1, n_tasks // (workers * chunks_per_worker))
