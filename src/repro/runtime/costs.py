"""Per-cell cost model for matrix scheduling.

A matrix sweep's cells differ in cost by an order of magnitude: apps
differ ~10x in trace event count (ocean vs fft at equal scale), and
architectures differ a few percent in replay speed per event.  Naive
FIFO dispatch therefore ends with one worker grinding a giant ocean
cell while the rest idle.  This module estimates each
:class:`~repro.runtime.spec.RunSpec`'s cost as

    ``trace event count  x  per-architecture weight``

and orders dispatch longest-first (LPT — longest processing time —
the classic 4/3-approximation for makespan on identical machines).
Chunked submission sizing lives here too, so pool IPC overhead and
tail latency are traded off in one place.

The architecture weights are *calibrated from measurement*, not
guessed: ``BENCH_pr3.json``'s ``single:fft/<arch>`` benchmarks give
events/second per architecture on the reference machine; the weight is
each architecture's per-event time relative to ASCOMA.  The scalar
spread is small (~4%) because PR 3 flattened the replay fast path, but
LPT only needs *ranks* to be right, and event counts dominate those.

The vector kernel reshuffles those ranks: in-kernel events cost near
nothing, so a cell's time is dominated by how often it *exits* the
kernel for residual events — CC-NUMA re-fetches remote lines forever
under pressure and pays ~1.4x ASCOMA per event, where its scalar
weight was within 4%.  :data:`VECTOR_ARCH_WEIGHTS` carries the
separately calibrated vector ranks, and the cost functions pick the
table matching the substrate the workers will actually use (the
compiled kernel's availability in *this* process, probed once).
"""

from __future__ import annotations

from .spec import RunSpec, canonical_arch

__all__ = ["ARCH_WEIGHTS", "DEFAULT_ARCH_WEIGHT", "VECTOR_ARCH_WEIGHTS",
           "DEFAULT_VECTOR_ARCH_WEIGHT", "workload_events",
           "spec_cost", "lpt_order", "submit_chunksize"]

#: Relative per-event replay time on the *scalar* fast path,
#: ASCOMA = 1.0.  Derived from BENCH_pr3.json ``single:fft/*``
#: events/s (859544 / arch ev/s): CC-NUMA re-fetches remote lines
#: forever under pressure, so it pays the most per event; the
#: page-caching architectures are cheaper.
ARCH_WEIGHTS = {
    "CCNUMA": 1.037,
    "SCOMA": 1.015,
    "RNUMA": 1.027,
    "VCNUMA": 1.003,
    "ASCOMA": 1.000,
}

#: Unknown architectures (tests, experiments) assume mid-pack cost.
DEFAULT_ARCH_WEIGHT = 1.02

#: Relative per-event replay time through the vector kernel,
#: ASCOMA = 1.0 (fft @ 0.25, pressure 0.7, best of 3).  Kernel exits
#: dominate: CC-NUMA's endless remote re-fetches make it the outlier
#: at ~1.4x, while the architectures whose hits stay in-kernel sit
#: within ~10% of each other.
VECTOR_ARCH_WEIGHTS = {
    "CCNUMA": 1.43,
    "SCOMA": 0.96,
    "RNUMA": 1.02,
    "VCNUMA": 1.11,
    "ASCOMA": 1.00,
}

#: Unknown architectures on the vector substrate: mid-pack cost.
DEFAULT_VECTOR_ARCH_WEIGHT = 1.10


def _vector_substrate() -> bool:
    """Will workers replay through the vector kernel by default?

    True iff vector dispatch is not pinned off process-wide *and* the
    compiled kernel actually loads here (workers are forked from — or
    configured identically to — this process).  Probed per call; the
    kernel load itself is memoized, so this is one env read plus one
    memo lookup after the first call.  Env parsing is delegated to
    :func:`~repro.sim.engine.default_vector_mode` so the cost model,
    the engine, the CLI and the job server all read
    ``REPRO_VECTOR_PATH`` with the same (strict) rules.
    """
    from ..sim.engine import default_vector_mode

    if default_vector_mode() == "off":
        return False
    from ..sim.soatrace import vector_available

    return vector_available()


def workload_events(app: str, scale: float, sample=None) -> int:
    """Total trace events of one workload (all nodes).

    Routed through :func:`~repro.runtime.tracecache.fetch_traces`, so
    asking for the count *is* the pre-warm: the parent process pays
    generation (or a cache hit) once, and forked pool workers inherit
    the in-memory traces for free.  With *sample* set, the count (and
    the pre-warm) is of the sampled workload — the one the cell will
    actually replay.
    """
    from .tracecache import fetch_traces

    traces = fetch_traces(app, scale, sample=sample)
    return sum(len(t) for t in traces.traces)


def spec_cost(spec: RunSpec, events: int | None = None,
              vector: bool | None = None) -> float:
    """Estimated replay cost of one cell, in weighted events.

    *events* is the workload's total event count; ``None`` looks it up
    (generating or cache-hitting the trace as a side effect).
    *vector* selects the weight table — ``True`` for the vector kernel,
    ``False`` for the scalar fast path, ``None`` (default) for
    whichever substrate this process would actually dispatch on.
    """
    if events is None:
        events = workload_events(spec.app, spec.scale,
                                 sample=spec.sample or None)
    if vector is None:
        vector = _vector_substrate()
    arch = canonical_arch(spec.arch)
    if vector:
        weight = VECTOR_ARCH_WEIGHTS.get(arch, DEFAULT_VECTOR_ARCH_WEIGHT)
    else:
        weight = ARCH_WEIGHTS.get(arch, DEFAULT_ARCH_WEIGHT)
    return events * weight


def lpt_order(specs, events_of=None, vector: bool | None = None) -> list:
    """Specs sorted costliest-first (LPT dispatch order).

    *events_of* maps ``(app, scale, sample) -> event count`` (legacy
    ``(app, scale)`` keys still resolve unsampled specs); missing
    entries (e.g. a spec whose workload failed to generate — it will
    fail identically in the worker, where the failure is isolated)
    cost 0 and sort last.  The sort is stable, so equal-cost cells keep
    their submission order and reruns dispatch identically.  *vector*
    picks the weight table as in :func:`spec_cost`; the substrate probe
    runs once for the whole sort, not per cell.
    """
    events_of = events_of or {}
    if vector is None:
        vector = _vector_substrate()

    def cost(spec: RunSpec) -> float:
        events = events_of.get((spec.app, spec.scale, spec.sample))
        if events is None and not spec.sample:
            events = events_of.get((spec.app, spec.scale))
        return spec_cost(spec, events, vector=vector) if events is not None \
            else 0.0

    return sorted(specs, key=cost, reverse=True)


def submit_chunksize(n_tasks: int, workers: int,
                     chunks_per_worker: int = 4) -> int:
    """Chunk size for ``pool.map``: fewer pickles, bounded imbalance.

    ``chunksize=1`` (the default) costs one IPC round-trip per cell; one
    giant chunk per worker forfeits the load balancing LPT set up.
    Giving each worker ~``chunks_per_worker`` chunks keeps per-cell IPC
    amortised while capping the imbalance any single chunk can cause at
    ~1/chunks_per_worker of a worker's share.
    """
    if workers <= 0:
        raise ValueError("workers must be positive")
    return max(1, n_tasks // (workers * chunks_per_worker))
