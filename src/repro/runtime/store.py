"""Content-addressed on-disk result store.

Artifacts live at ``<root>/<spec_hash>.json``, one JSON file per
:class:`~repro.runtime.spec.RunSpec`, containing the store schema
version, the full spec (for auditability and ``store list``), and the
serialised :class:`~repro.sim.stats.RunResult`.  Because the file name
is a content hash of the spec (see ``spec.py`` for the hashing rules),
the store needs no index: lookup is one ``open``; a corrupt, stale or
foreign file is simply a miss.

Cache invalidation
------------------
* bump :data:`~repro.runtime.spec.SPEC_VERSION` when simulator
  semantics change — old hashes stop being generated;
* bump :data:`STORE_VERSION` when the *artifact layout* changes — old
  files stop being readable and are re-simulated on demand;
* ``RunStore.clear()`` (CLI: ``repro store clear``) wipes everything;
* per-invocation, ``refresh=True`` bypasses reads but still writes.

The module also carries the *ambient* store used by the harness when no
store is passed explicitly: ``set_default_store`` / ``use_store``.  It
defaults to ``None`` (no caching), so library calls and the test suite
keep pure re-simulation semantics unless a caller opts in — the CLI
opts in by default.
"""

from __future__ import annotations

import contextlib
import json
import os
import tempfile
from pathlib import Path

from ..sim.stats import RunResult
from .spec import RunSpec

__all__ = ["STORE_VERSION", "RunStore", "get_default_store",
           "set_default_store", "get_default_refresh", "use_store"]

#: Artifact layout version; mismatching files read as misses.
STORE_VERSION = 1


class RunStore:
    """Content-addressed cache of simulation results under one directory."""

    def __init__(self, root: str | os.PathLike = "results/store") -> None:
        self.root = Path(root)
        self.hits = 0
        self.misses = 0
        self.writes = 0

    # -- paths ----------------------------------------------------------
    def path_for(self, spec: RunSpec) -> Path:
        return self.root / f"{spec.spec_hash()}.json"

    # -- lookup ---------------------------------------------------------
    def get(self, spec: RunSpec) -> RunResult | None:
        """Cached result for *spec*, or None (never raises on bad files)."""
        path = self.path_for(spec)
        try:
            with open(path) as fh:
                payload = json.load(fh)
        except (OSError, ValueError):
            self.misses += 1
            return None
        if (payload.get("store_version") != STORE_VERSION
                or payload.get("spec") != spec.to_dict()):
            self.misses += 1
            return None
        try:
            result = RunResult.from_dict(payload["result"])
        except (KeyError, TypeError, AttributeError):
            self.misses += 1
            return None
        self.hits += 1
        return result

    def __contains__(self, spec: RunSpec) -> bool:
        return self.path_for(spec).exists()

    # -- update ---------------------------------------------------------
    def put(self, spec: RunSpec, result: RunResult) -> Path:
        """Persist *result* atomically (write temp file, then rename)."""
        self.root.mkdir(parents=True, exist_ok=True)
        payload = {
            "store_version": STORE_VERSION,
            "spec_hash": spec.spec_hash(),
            "spec": spec.to_dict(),
            "result": result.to_dict(),
        }
        path = self.path_for(spec)
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(payload, fh)
            os.replace(tmp, path)
        except BaseException:
            with contextlib.suppress(OSError):
                os.unlink(tmp)
            raise
        self.writes += 1
        return path

    # -- maintenance ----------------------------------------------------
    def entries(self) -> list[dict]:
        """Spec dicts (plus hash) of every readable artifact, sorted."""
        out = []
        for path in sorted(self.root.glob("*.json")):
            try:
                with open(path) as fh:
                    payload = json.load(fh)
            except (OSError, ValueError):
                continue
            out.append({"spec_hash": payload.get("spec_hash", path.stem),
                        "spec": payload.get("spec", {}),
                        "store_version": payload.get("store_version")})
        return out

    def clear(self) -> int:
        """Delete every artifact; returns the number removed."""
        removed = 0
        for path in self.root.glob("*.json"):
            with contextlib.suppress(OSError):
                path.unlink()
                removed += 1
        return removed

    def size_bytes(self) -> int:
        return sum(p.stat().st_size for p in self.root.glob("*.json"))

    def describe(self) -> dict:
        n = len(list(self.root.glob("*.json"))) if self.root.is_dir() else 0
        return {"root": str(self.root), "entries": n,
                "bytes": self.size_bytes() if n else 0,
                "store_version": STORE_VERSION,
                "session": {"hits": self.hits, "misses": self.misses,
                            "writes": self.writes}}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RunStore({str(self.root)!r})"


# -- ambient default ----------------------------------------------------
_default_store: RunStore | None = None
_default_refresh: bool = False


def get_default_store() -> RunStore | None:
    return _default_store


def get_default_refresh() -> bool:
    return _default_refresh


def set_default_store(store: RunStore | None, refresh: bool = False) -> None:
    """Install the ambient store used when callers don't pass one."""
    global _default_store, _default_refresh
    _default_store = store
    _default_refresh = refresh


@contextlib.contextmanager
def use_store(store: RunStore | None, refresh: bool = False):
    """Scoped ambient store: ``with use_store(RunStore(dir)): ...``."""
    prev = (_default_store, _default_refresh)
    set_default_store(store, refresh)
    try:
        yield store
    finally:
        set_default_store(*prev)
