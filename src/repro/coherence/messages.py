"""Typed coherence message records.

The simulator's hot path passes plain tuples for speed, but tests,
debugging and the optional protocol trace use these records.  Message
kinds mirror the transactions of a directory-based write-invalidate
protocol over 128-byte DSM chunks (paper Section 2.1 / 4.1):

* ``GET``   -- read request for a chunk
* ``GETX``  -- read-exclusive (write) request
* ``UPGRADE`` -- ownership upgrade for a chunk already cached shared
* ``FWD``   -- home forwards a request to the dirty owner (3-hop)
* ``INV``   -- invalidation sent to a sharer
* ``ACK``   -- invalidation acknowledgement
* ``DATA``  -- data response (may piggyback a relocation hint, the
  R-NUMA/AS-COMA mechanism that tells the requester its refetch counter
  crossed the threshold)
* ``WB``    -- dirty writeback to home
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

__all__ = ["MsgKind", "Message", "MessageLog"]


class MsgKind(enum.Enum):
    GET = "GET"
    GETX = "GETX"
    UPGRADE = "UPGRADE"
    FWD = "FWD"
    INV = "INV"
    ACK = "ACK"
    DATA = "DATA"
    WB = "WB"


@dataclass(frozen=True)
class Message:
    """One protocol message.  ``relocation_hint`` is only meaningful on DATA."""

    kind: MsgKind
    src: int
    dst: int
    chunk: int
    relocation_hint: bool = False

    def __post_init__(self) -> None:
        if self.src < 0 or self.dst < 0:
            raise ValueError("node ids must be non-negative")
        if self.chunk < 0:
            raise ValueError("chunk id must be non-negative")


@dataclass
class MessageLog:
    """Optional bounded in-memory protocol trace for debugging and tests."""

    limit: int = 100_000
    messages: list[Message] = field(default_factory=list)
    dropped: int = 0

    def record(self, msg: Message) -> None:
        if len(self.messages) < self.limit:
            self.messages.append(msg)
        else:
            self.dropped += 1

    def of_kind(self, kind: MsgKind) -> list[Message]:
        return [m for m in self.messages if m.kind is kind]

    def clear(self) -> None:
        self.messages.clear()
        self.dropped = 0

    def __len__(self) -> int:
        return len(self.messages)
