"""Directory-based write-invalidate coherence over 128-byte DSM chunks."""

from .directory import Directory, FetchOutcome
from .messages import Message, MessageLog, MsgKind
from .protocol import CoherenceProtocol, RemoteResult

__all__ = [
    "CoherenceProtocol",
    "Directory",
    "FetchOutcome",
    "Message",
    "MessageLog",
    "MsgKind",
    "RemoteResult",
]
