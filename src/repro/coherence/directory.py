"""Directory controller state: per-chunk sharing state and per-page
per-node refetch counters.

Every page has a home node; the home's directory controller tracks, for
each 128-byte chunk of the page, the *copyset* of nodes caching the
chunk and the identity of a dirty owner if one exists (Section 2.1).

The hybrid architectures additionally keep, per page and per remote
node, a counter of *refetches*: requests from a node that is already a
member of the chunk's copyset.  Such a request can only be a
conflict/capacity miss -- the node had the data and lost it to cache
pressure -- so a high refetch count marks a "hot" page worth remapping
into the requester's S-COMA page cache (Section 2.4).  When the counter
crosses the requester's current threshold the directory piggybacks a
relocation hint on the data response.

Copysets are integer bitmasks over node ids, keeping the hot path to a
couple of integer ops per request.
"""

from __future__ import annotations

from .messages import Message, MessageLog, MsgKind

__all__ = ["Directory", "FetchOutcome"]


class FetchOutcome:
    """Result of one directory transaction, consumed by the engine.

    Attributes
    ----------
    refetch:
        The requester was already in the chunk's copyset (conflict or
        capacity miss).  Drives both miss classification (CONF/CAPC vs
        COLD) and refetch counting.
    forwarded:
        A dirty remote owner had to service the request (3-hop
        transaction, extra network latency).
    invalidations:
        Nodes whose cached copies were invalidated (write requests).
        The engine flushes the chunk from those nodes' caches.
    relocation_hint:
        The requester's refetch counter for this page crossed its
        threshold; the DSM engine should raise a relocation interrupt.
    """

    __slots__ = ("refetch", "forwarded", "invalidations", "relocation_hint",
                 "prev_owner", "exclusive")

    def __init__(self, refetch: bool, forwarded: bool,
                 invalidations: tuple[int, ...], relocation_hint: bool,
                 prev_owner: int = -1, exclusive: bool = False) -> None:
        self.refetch = refetch
        self.forwarded = forwarded
        self.invalidations = invalidations
        self.relocation_hint = relocation_hint
        #: Node that held the chunk dirty before this request (-1 none).
        self.prev_owner = prev_owner
        #: MESI only: a read was granted Exclusive (no other sharers),
        #: so the requester may write later without an upgrade.
        self.exclusive = exclusive


class Directory:
    """Machine-wide directory state (conceptually distributed per home node).

    The physical distribution across home nodes does not affect
    behaviour -- each page's state is only ever touched through its home
    -- so a single object keeps the bookkeeping simple and fast.
    """

    def __init__(self, n_nodes: int, chunks_per_page: int,
                 log: MessageLog | None = None,
                 grant_exclusive: bool = False) -> None:
        if n_nodes <= 0:
            raise ValueError("need at least one node")
        self.n_nodes = n_nodes
        self.chunks_per_page = chunks_per_page
        #: MESI mode: a read miss with an empty copyset is granted
        #: Exclusive, letting the reader write later with no upgrade
        #: transaction (classic E-state optimisation).
        self.grant_exclusive = grant_exclusive
        self.exclusive_grants = 0
        # chunk -> copyset bitmask; missing means uncached anywhere.
        self.copyset: dict[int, int] = {}
        # chunk -> dirty owner node id; missing means clean.
        self.owner: dict[int, int] = {}
        # (page, node) -> refetch count since last relocation/reset.
        self.refetch_count: dict[tuple[int, int], int] = {}
        self.log = log
        # Aggregate counters (Table 6 and general stats).
        self.total_refetches = 0
        self.relocation_hints = 0
        self.forwards = 0
        self.invalidations_sent = 0

    # ------------------------------------------------------------------
    def fetch(self, node: int, chunk: int, page: int, is_write: bool,
              threshold: int, count_refetch: bool = True,
              home: int = 0) -> FetchOutcome:
        """Process a GET/GETX for *chunk* of *page* from *node*.

        *threshold* is the requester's current relocation threshold; 0
        or negative disables relocation hints (CC-NUMA, pure S-COMA, or
        an AS-COMA node that has turned relocation off).
        *count_refetch* lets S-COMA-mode accesses skip hot-page
        accounting (an S-COMA page is already local; its refetches are
        coherence-driven and must not re-trigger relocation).
        """
        return FetchOutcome(*self.fetch_raw(node, chunk, page, is_write,
                                            threshold, count_refetch, home))

    def fetch_raw(self, node: int, chunk: int, page: int, is_write: bool,
                  threshold: int, count_refetch: bool = True,
                  home: int = 0) -> tuple:
        """:meth:`fetch` without the :class:`FetchOutcome` wrapper.

        Returns the outcome as a plain tuple in ``FetchOutcome.__init__``
        argument order: ``(refetch, forwarded, invalidations,
        relocation_hint, prev_owner, exclusive)``.  The replay engine
        processes tens of thousands of fetches per run, and skipping the
        per-call object construction is a measurable share of the hot
        path (docs/performance.md); both entry points share this body,
        so their behaviour cannot diverge.
        """
        bit = 1 << node
        copyset = self.copyset
        owner_map = self.owner
        log = self.log
        cs = copyset.get(chunk, 0)
        refetch = bool(cs & bit)
        forwarded = False
        exclusive = False
        invalidations: tuple[int, ...] = ()

        owner = owner_map.get(chunk, -1)
        if owner != -1 and owner != node:
            # Dirty at a third node: home forwards, owner writes back.
            forwarded = True
            self.forwards += 1
            if log is not None:
                log.record(Message(MsgKind.FWD, home, owner, chunk))
            del owner_map[chunk]

        if is_write:
            others = cs & ~bit
            if others:
                invalidations = tuple(n for n in range(self.n_nodes) if others >> n & 1)
                self.invalidations_sent += len(invalidations)
                if log is not None:
                    for victim in invalidations:
                        log.record(Message(MsgKind.INV, node, victim, chunk))
            copyset[chunk] = bit
            owner_map[chunk] = node
        else:
            copyset[chunk] = cs | bit
            if owner == node:
                # Re-read by the owner keeps ownership.
                pass
            elif self.grant_exclusive and cs == 0:
                # MESI: first and only reader takes the chunk Exclusive.
                owner_map[chunk] = node
                exclusive = True

        relocation_hint = False
        if refetch and count_refetch:
            self.total_refetches += 1
            if threshold > 0:
                key = (page, node)
                count = self.refetch_count.get(key, 0) + 1
                if count >= threshold:
                    relocation_hint = True
                    self.relocation_hints += 1
                    self.refetch_count[key] = 0
                else:
                    self.refetch_count[key] = count
        if exclusive:
            self.exclusive_grants += 1
        if log is not None:
            log.record(Message(
                MsgKind.GETX if is_write else MsgKind.GET, node, home, chunk,
            ))
            log.record(Message(MsgKind.DATA, home, node, chunk,
                               relocation_hint=relocation_hint))
        return (refetch, forwarded, invalidations, relocation_hint,
                owner if owner != node else -1, exclusive)

    # ------------------------------------------------------------------
    def drop_node_from_page(self, node: int, page: int) -> int:
        """Remove *node* from the copysets of every chunk of *page*.

        Called when a page's lines are flushed at *node* (remap in
        either direction, or S-COMA eviction).  Subsequent accesses by
        the node become cold remote misses -- the induced cold misses of
        the paper's Ncold term.  Returns the number of chunks the node
        was dropped from.
        """
        first = page * self.chunks_per_page
        bulk = getattr(self.copyset, "drop_node_bulk", None)
        if bulk is not None:
            # Array-backed copysets (vectorized replay): clear the
            # node's bit across the whole page in one numpy sweep.
            return bulk(self.owner, node, first, self.chunks_per_page)
        bit = 1 << node
        clear = ~bit
        dropped = 0
        for chunk in range(first, first + self.chunks_per_page):
            cs = self.copyset.get(chunk)
            if cs is not None and cs & bit:
                self.copyset[chunk] = cs & clear
                dropped += 1
                if self.owner.get(chunk) == node:
                    del self.owner[chunk]  # dirty data written back home
        return dropped

    def reset_refetch(self, page: int, node: int) -> None:
        """Reset the hot-page evidence for (page, node) after a remap."""
        self.refetch_count.pop((page, node), None)

    def refetches_of(self, page: int, node: int) -> int:
        return self.refetch_count.get((page, node), 0)

    def sharers(self, chunk: int) -> list[int]:
        cs = self.copyset.get(chunk, 0)
        return [n for n in range(self.n_nodes) if cs >> n & 1]

    def is_cached_by(self, chunk: int, node: int) -> bool:
        return bool(self.copyset.get(chunk, 0) >> node & 1)
