"""Sequentially-consistent write-invalidate protocol over DSM chunks.

Combines the :class:`~repro.coherence.directory.Directory` with the
network and the home node's banked memory to produce full transaction
latencies:

* **2-hop fetch**: requester -> home (request), home memory access,
  home -> requester (data).
* **3-hop fetch**: the chunk is dirty at a third node; home forwards the
  request and the owner supplies the data (extra network leg).
* **writes**: the home invalidates every other sharer; under sequential
  consistency the writer stalls until all acknowledgements return, so
  the invalidation round trip of the *slowest* sharer is added.

The protocol does not know about caches; the machine registers an
``invalidate_chunk(node, chunk)`` callback through which sharer copies
(L1 lines, RAC entry, S-COMA valid bits) are destroyed.
"""

from __future__ import annotations

from typing import Callable

from ..interconnect.network import Network
from ..mem.dram import BankedMemory
from .directory import Directory, FetchOutcome

__all__ = ["CoherenceProtocol", "RemoteResult"]


class RemoteResult:
    """Latency + directory outcome of one remote transaction."""

    __slots__ = ("latency", "outcome")

    def __init__(self, latency: int, outcome: FetchOutcome) -> None:
        self.latency = latency
        self.outcome = outcome


class CoherenceProtocol:
    """Glue object executing whole coherence transactions."""

    def __init__(self, directory: Directory, network: Network,
                 memories: list[BankedMemory],
                 invalidate_chunk: Callable[..., None] | None = None,
                 demote_chunk: Callable[..., None] | None = None,
                 stall_on_invalidate: bool = True) -> None:
        self.directory = directory
        self.network = network
        self.memories = memories
        #: Callbacks receive ``(node, chunk, now)`` with *now* the
        #: protocol-time of the transition (event timestamping).
        self.invalidate_chunk = (invalidate_chunk
                                 or (lambda node, chunk, now=None: None))
        #: A read forwarded to a dirty owner demotes it to shared: the
        #: owner keeps its data but loses write permission.
        self.demote_chunk = demote_chunk or (lambda node, chunk, now=None: None)
        #: Sequential consistency stalls the writer for the slowest
        #: invalidation ack; release consistency overlaps them (the
        #: invalidations still happen -- only the stall differs).
        self.stall_on_invalidate = stall_on_invalidate
        self.remote_fetches = 0
        self.three_hop_fetches = 0
        self.write_stalls = 0

    # ------------------------------------------------------------------
    def remote_fetch(self, node: int, chunk: int, page: int, home: int,
                     is_write: bool, threshold: int, now: int,
                     count_refetch: bool = True) -> RemoteResult:
        """Fetch *chunk* from its remote *home* on behalf of *node*."""
        lat, out = self.remote_fetch_raw(node, chunk, page, home, is_write,
                                         threshold, now, count_refetch)
        return RemoteResult(lat, FetchOutcome(*out))

    def remote_fetch_raw(self, node: int, chunk: int, page: int, home: int,
                         is_write: bool, threshold: int, now: int,
                         count_refetch: bool = True) -> tuple:
        """:meth:`remote_fetch` without the result-object wrappers.

        Returns ``(latency, outcome_tuple)`` with the outcome in
        :meth:`Directory.fetch_raw` order.  The engine's per-miss path
        uses this to skip two object constructions per transaction.
        """
        out = self.directory.fetch_raw(node, chunk, page, is_write,
                                       threshold, count_refetch, home=home)
        net = self.network
        lat = net.one_way(node, home, now)                  # request
        lat += self.memories[home].access(chunk, now + lat)  # home DRAM/dir
        if out[1]:  # forwarded
            # Home -> owner -> requester instead of home -> requester.
            self.three_hop_fetches += 1
            lat += net.one_way(home, node, now + lat)  # forward leg (approx: same cost class)
            prev_owner = out[4]
            if not is_write and prev_owner >= 0:
                self.demote_chunk(prev_owner, chunk, now + lat)
        lat += net.one_way(home, node, now + lat)           # data response
        invalidations = out[2]
        if invalidations:
            lat += self._invalidate_all(invalidations, chunk, home, now + lat)
        self.remote_fetches += 1
        return lat, out

    def _invalidate_all(self, sharers, chunk: int, origin: int,
                        now: int) -> int:
        """Invalidate every sharer; returns the writer's stall cycles
        (the slowest ack under SC, zero under RC)."""
        worst = 0
        for sharer in sharers:
            self.invalidate_chunk(sharer, chunk, now)
            rt = self.network.round_trip(origin, sharer, now)
            if rt > worst:
                worst = rt
        self.write_stalls += 1
        return worst if self.stall_on_invalidate else 0

    def local_fetch(self, node: int, chunk: int, page: int, is_write: bool,
                    now: int) -> RemoteResult:
        """Access a chunk whose home is the requesting node itself.

        Still goes through the directory (a remote node may hold the
        chunk dirty, or sharers may need invalidating on a write), but
        the data normally comes from local DRAM.
        """
        lat, out = self.local_fetch_raw(node, chunk, page, is_write, now)
        return RemoteResult(lat, FetchOutcome(*out))

    def local_fetch_raw(self, node: int, chunk: int, page: int,
                        is_write: bool, now: int) -> tuple:
        """:meth:`local_fetch` returning ``(latency, outcome_tuple)``."""
        out = self.directory.fetch_raw(node, chunk, page, is_write,
                                       threshold=0, count_refetch=False,
                                       home=node)
        lat = self.memories[node].access(chunk, now)
        if out[1]:  # forwarded
            # Dirty at a remote node: full round trip to retrieve it.
            self.three_hop_fetches += 1
            prev_owner = out[4]
            owner = prev_owner if prev_owner >= 0 else self._any_remote(node)
            lat += self.network.round_trip(node, owner, now + lat)
            if not is_write and prev_owner >= 0:
                self.demote_chunk(prev_owner, chunk, now + lat)
        invalidations = out[2]
        if invalidations:
            lat += self._invalidate_all(invalidations, chunk, node, now + lat)
        return lat, out

    def upgrade(self, node: int, chunk: int, page: int, home: int,
                now: int) -> int:
        """Ownership upgrade for a chunk already cached shared at *node*.

        Returns the stall latency.  Counted separately from misses: the
        data is already local, only permission travels.
        """
        out = self.directory.fetch_raw(node, chunk, page, True,
                                       threshold=0, count_refetch=False,
                                       home=home)
        if home == node:
            lat = 0
        else:
            lat = self.network.round_trip(node, home, now)
        invalidations = out[2]
        if invalidations:
            lat += self._invalidate_all(invalidations, chunk, home, now + lat)
        return lat

    def _any_remote(self, node: int) -> int:
        """Representative remote node id for latency purposes."""
        return (node + 1) % self.directory.n_nodes
