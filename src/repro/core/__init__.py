"""The paper's memory-architecture policies and analytic cost model."""

from .analytic import MissCounts, RemoteOverheadModel, TABLE1_ROWS, TABLE2_ROWS
from .ascoma import ASCOMAPolicy, DEFAULT_THRESHOLD_INCREMENT
from .ccnuma import CCNUMAPolicy
from .migration import MigratingCCNUMAPolicy
from .policy import ArchitecturePolicy, PolicyNodeState, RelocationDecision
from .rnuma import DEFAULT_RELOCATION_THRESHOLD, RNUMAPolicy
from .scoma import SCOMAPolicy
from .thrashing import AdaptiveBackoff, BreakEvenDetector
from .vcnuma import DEFAULT_BREAK_EVEN, VCNUMAPolicy

#: Factory registry used by the harness ("--arch ascoma" etc.).
POLICIES = {
    "CCNUMA": CCNUMAPolicy,
    "CCNUMAMIG": MigratingCCNUMAPolicy,
    "SCOMA": SCOMAPolicy,
    "RNUMA": RNUMAPolicy,
    "VCNUMA": VCNUMAPolicy,
    "ASCOMA": ASCOMAPolicy,
}


def make_policy(name: str, **kwargs) -> ArchitecturePolicy:
    """Instantiate a policy by (case-insensitive) name."""
    key = name.upper().replace("-", "").replace("_", "")
    try:
        return POLICIES[key](**kwargs)
    except KeyError:
        raise ValueError(
            f"unknown architecture {name!r}; choose from {sorted(POLICIES)}"
        ) from None


__all__ = [
    "ASCOMAPolicy",
    "AdaptiveBackoff",
    "ArchitecturePolicy",
    "BreakEvenDetector",
    "CCNUMAPolicy",
    "DEFAULT_BREAK_EVEN",
    "DEFAULT_RELOCATION_THRESHOLD",
    "DEFAULT_THRESHOLD_INCREMENT",
    "MigratingCCNUMAPolicy",
    "MissCounts",
    "POLICIES",
    "PolicyNodeState",
    "RNUMAPolicy",
    "RelocationDecision",
    "RemoteOverheadModel",
    "SCOMAPolicy",
    "TABLE1_ROWS",
    "TABLE2_ROWS",
    "VCNUMAPolicy",
    "make_policy",
]
