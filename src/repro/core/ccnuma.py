"""Pure CC-NUMA architecture policy.

Every remote page is mapped straight to its remote home (Section 2.2).
Remote data can only be cached in the processor cache and the small RAC,
so every conflict miss to remote data costs a full remote access:
``(Nremote x Tremote)`` in the paper's Table 1 cost model.  CC-NUMA
never remaps pages, pays no kernel overhead beyond first-touch faults,
and is therefore completely insensitive to memory pressure -- the flat
baseline every other architecture is normalised against in Figures 2-3.
"""

from __future__ import annotations

from ..kernel.vm import PageMode
from .policy import ArchitecturePolicy, PolicyNodeState, RelocationDecision

__all__ = ["CCNUMAPolicy"]


class CCNUMAPolicy(ArchitecturePolicy):
    """Remote pages stay in CC-NUMA mode forever."""

    name = "CCNUMA"
    uses_page_cache = False

    def make_node_state(self) -> PolicyNodeState:
        return PolicyNodeState(threshold=0)

    def initial_mode(self, state: PolicyNodeState, free_frames: int) -> int:
        return PageMode.CCNUMA

    def on_relocation_hint(self, state: PolicyNodeState,
                           free_frames: int) -> str:
        # Unreachable in practice (threshold 0 means the directory never
        # generates hints), kept total for safety.
        return RelocationDecision.SKIP

    def describe(self) -> dict:
        return {
            "name": self.name,
            "uses_page_cache": False,
            "remote_overhead": "(Nremote * Tremote)",
            "storage_cost": "None",
            "complexity": "None",
            "performance_factors": ["Network speed"],
        }
