"""Architecture policy interface.

An :class:`ArchitecturePolicy` is what distinguishes CC-NUMA, S-COMA,
R-NUMA, VC-NUMA and AS-COMA in this simulator: the memory hierarchy,
coherence protocol, kernel cost model and workloads are identical across
architectures (as they are in the paper's Paint setup); only the
page-management decisions differ.  A policy decides:

* the **initial mapping mode** of a remote page on first touch
  (Section 3: AS-COMA prefers S-COMA while free pages last; the other
  hybrids and CC-NUMA start in CC-NUMA mode; pure S-COMA has no choice);
* the current **relocation threshold** the directory should apply to
  refetch counters (0 disables counting);
* whether to **act on a relocation hint**, and whether a relocation may
  forcibly evict another page when the free pool is dry;
* how to react to the **pageout daemon's outcome** (thrashing backoff);
* bookkeeping on **page eviction** (VC-NUMA's break-even evaluation).

Policies are stateless singletons; all mutable per-node state lives in a
:class:`PolicyNodeState` so one policy object can serve every node.
"""

from __future__ import annotations

from ..kernel.pageout import DaemonRunResult, PageoutDaemon
from ..kernel.vm import PageMode

__all__ = ["ArchitecturePolicy", "PolicyNodeState", "RelocationDecision"]


class RelocationDecision:
    """What to do with a relocation hint."""

    RELOCATE = "relocate"          #: take a free frame (or force-evict) and remap
    RELOCATE_IF_FREE = "if_free"   #: remap only if a free frame is available
    MIGRATE = "migrate"            #: move the page's *home* to this node
    SKIP = "skip"                  #: ignore the hint


class PolicyNodeState:
    """Per-node mutable policy state.

    Subclassed by policies that need extra bookkeeping; the base class
    covers the common threshold/enable machinery.
    """

    __slots__ = ("threshold", "relocation_enabled", "relocations",
                 "skipped_relocations", "thrash_backoffs", "threshold_recoveries")

    def __init__(self, threshold: int) -> None:
        self.threshold = threshold
        self.relocation_enabled = threshold > 0
        self.relocations = 0
        self.skipped_relocations = 0
        self.thrash_backoffs = 0
        self.threshold_recoveries = 0

    def effective_threshold(self) -> int:
        """Threshold the directory should enforce (0 = no counting)."""
        return self.threshold if self.relocation_enabled else 0


class ArchitecturePolicy:
    """Base class; concrete architectures override the hooks they need."""

    #: Display name used by the harness ("CCNUMA", "ASCOMA", ...).
    name: str = "base"
    #: Whether this architecture uses local frames as a remote-page cache.
    uses_page_cache: bool = True
    #: Pure S-COMA unmaps evicted pages entirely (next touch re-faults);
    #: hybrids downgrade them to CC-NUMA mode.
    evict_to_ccnuma: bool = True
    #: Pure S-COMA *must* back every remote page with a local frame, so
    #: it force-evicts at fault time and needs a non-empty page cache.
    mandatory_page_cache: bool = False

    # -- declarative protocol surface (consumed by repro.check) ---------
    #: Page modes a first touch of a *remote* page may legally yield.
    #: (HOME is always legal for locally-homed pages and is not listed.)
    initial_modes: frozenset = frozenset({PageMode.CCNUMA})
    #: May a CC-NUMA page be upgraded to S-COMA mode after a hint?
    supports_relocation: bool = False
    #: May a relocation hint move the page's *home* instead?
    supports_migration: bool = False
    #: May the architecture evict an S-COMA page outside a daemon run
    #: (at fault or relocation time, possibly sacrificing a hot page)?
    allows_forced_eviction: bool = False
    #: Does the pageout daemon drive a threshold backoff whose
    #: monotonicity holds between consecutive runs?  (AS-COMA's software
    #: backoff; VC-NUMA adjusts at *eviction* time, so it is excluded.)
    daemon_backoff: bool = False

    def make_node_state(self) -> PolicyNodeState:
        return PolicyNodeState(threshold=0)

    # -- hooks ----------------------------------------------------------
    def initial_mode(self, state: PolicyNodeState, free_frames: int) -> int:
        """Mapping mode for a first-touch to a *remote* page."""
        raise NotImplementedError

    def on_relocation_hint(self, state: PolicyNodeState,
                           free_frames: int) -> str:
        """React to a piggybacked relocation hint from the directory."""
        return RelocationDecision.SKIP

    def on_daemon_result(self, state: PolicyNodeState,
                         result: DaemonRunResult,
                         daemon: PageoutDaemon) -> None:
        """React to a pageout-daemon run (thrashing backoff lives here)."""

    def on_page_evicted(self, state: PolicyNodeState, page: int,
                        pagecache_hits: int) -> None:
        """Bookkeeping when one of the node's S-COMA pages is evicted."""

    def describe(self) -> dict:
        """Static description used by the Table 2 cost/complexity emitter."""
        return {"name": self.name, "uses_page_cache": self.uses_page_cache}
