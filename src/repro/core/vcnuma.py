"""VC-NUMA (USC victim-cache NUMA) relocation policy.

Moga & Dubois, HPCA'98, as characterised in Section 2.4.  Like R-NUMA,
VC-NUMA starts remote pages in CC-NUMA mode and relocates hot pages to
S-COMA frames at a refetch threshold.  Unlike R-NUMA it carries a
hardware thrashing-detection scheme built from a per-S-COMA-page refetch
counter, a programmable *break-even number* (how many page-cache hits a
relocation must yield to repay its cost) and an evaluation cadence tied
to the replacement rate.

Following the paper's methodology (Section 4.1): "We did not simulate
VC-NUMA's victim-cache behavior, because we considered the use of
non-commodity processors or busses to be beyond the scope of this study.
Thus, the results reported for VC-NUMA are only relevant for evaluating
its relocation strategy."  This class models exactly that relocation
strategy: threshold relocation plus break-even backoff, with the
evaluation performed only "when an average of two replacements per
cached page have occurred" -- a cadence the paper shows reacts too
slowly at moderate-to-high pressure.
"""

from __future__ import annotations

from ..kernel.vm import PageMode
from .policy import ArchitecturePolicy, PolicyNodeState, RelocationDecision
from .rnuma import DEFAULT_RELOCATION_THRESHOLD
from .thrashing import BreakEvenDetector

__all__ = ["VCNUMAPolicy", "DEFAULT_BREAK_EVEN"]

#: VC-NUMA's break-even number of page-cache hits per relocation.
DEFAULT_BREAK_EVEN = 32


class VCNUMANodeState(PolicyNodeState):
    """Adds the break-even detector and a view of the cached-page count."""

    __slots__ = ("detector", "cached_pages")

    def __init__(self, threshold: int, break_even: int, increment: int,
                 min_evictions_per_eval: int) -> None:
        super().__init__(threshold)
        self.detector = BreakEvenDetector(
            break_even=break_even, base_threshold=threshold,
            increment=increment,
            min_evictions_per_eval=min_evictions_per_eval)
        self.cached_pages = 0

    def effective_threshold(self) -> int:
        # The detector owns the live threshold.
        return self.detector.threshold if self.relocation_enabled else 0


class VCNUMAPolicy(ArchitecturePolicy):
    """Threshold relocation with hardware break-even thrash detection."""

    name = "VCNUMA"
    uses_page_cache = True
    supports_relocation = True
    allows_forced_eviction = True  # relocation is unconditional, like R-NUMA

    def __init__(self, threshold: int = DEFAULT_RELOCATION_THRESHOLD,
                 break_even: int = DEFAULT_BREAK_EVEN,
                 increment: int = 32,
                 min_evictions_per_eval: int = 32) -> None:
        if threshold <= 0:
            raise ValueError("relocation threshold must be positive")
        self._threshold = threshold
        self._break_even = break_even
        self._increment = increment
        self._min_evictions_per_eval = min_evictions_per_eval

    def make_node_state(self) -> VCNUMANodeState:
        return VCNUMANodeState(self._threshold, self._break_even,
                               self._increment, self._min_evictions_per_eval)

    def initial_mode(self, state: PolicyNodeState, free_frames: int) -> int:
        return PageMode.CCNUMA

    def on_relocation_hint(self, state: PolicyNodeState,
                           free_frames: int) -> str:
        # Relocation itself is unconditional, like R-NUMA; the backoff
        # acts through the threshold, not by vetoing individual hints.
        return RelocationDecision.RELOCATE

    def on_page_evicted(self, state: PolicyNodeState, page: int,
                        pagecache_hits: int) -> None:
        assert isinstance(state, VCNUMANodeState)
        state.detector.record_eviction(pagecache_hits,
                                       max(1, state.cached_pages))

    def describe(self) -> dict:
        return {
            "name": self.name,
            "uses_page_cache": True,
            "remote_overhead":
                "(Npagecache * Tpagecache) + (Nremote * Tremote)"
                " + (Ncold * Tremote) + Toverhead",
            "storage_cost": "Page cache state + per-page refetch counter"
                            " (victim tags in the real design)",
            "complexity": [
                "Page cache state controller",
                "local <-> remote page map",
                "Page-daemon and VM kernel",
                "Break-even comparator (hardware thrash detection)",
            ],
            "performance_factors": ["Network speed", "Software overhead"],
            "threshold": self._threshold,
            "break_even": self._break_even,
            "backoff": "hardware break-even, evaluated every"
                       " ~2 replacements per cached page",
        }
