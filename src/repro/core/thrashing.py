"""Thrashing-backoff controllers.

Two detectors are modelled, matching the two hybrid designs that have
one (Sections 2.4 and 3):

* :class:`AdaptiveBackoff` -- AS-COMA's software scheme.  Driven by the
  pageout daemon: every run that fails to reclaim ``free_target`` pages
  raises the relocation threshold by a fixed increment and stretches the
  daemon interval; enough consecutive failures disable relocation
  outright.  Successful runs (cold pages reappeared, e.g. a program
  phase change) walk the threshold back down and re-enable relocation.

* :class:`BreakEvenDetector` -- VC-NUMA's hardware scheme.  Each
  relocated page is judged against a *break-even number* of page-cache
  hits it must serve to have repaid its relocation cost.  The detector
  is only *evaluated* after an average of two replacements per cached
  page have occurred -- the paper points out this cadence is "not
  sufficiently often to avoid thrashing", which is exactly why VC-NUMA
  underperforms AS-COMA at high pressure.
"""

from __future__ import annotations

from ..kernel.pageout import PageoutDaemon

__all__ = ["AdaptiveBackoff", "BreakEvenDetector"]


class AdaptiveBackoff:
    """AS-COMA's daemon-driven threshold controller (one per node)."""

    __slots__ = ("base_threshold", "increment", "disable_after",
                 "threshold", "enabled", "consecutive_thrash",
                 "backoffs", "recoveries", "disables", "re_enables")

    def __init__(self, base_threshold: int = 64, increment: int = 32,
                 disable_after: int = 4) -> None:
        if base_threshold <= 0 or increment <= 0 or disable_after <= 0:
            raise ValueError("backoff parameters must be positive")
        self.base_threshold = base_threshold
        self.increment = increment
        #: consecutive thrashing daemon runs before relocation is disabled.
        self.disable_after = disable_after
        self.threshold = base_threshold
        self.enabled = True
        self.consecutive_thrash = 0
        self.backoffs = 0
        self.recoveries = 0
        self.disables = 0
        self.re_enables = 0

    def on_thrash(self, daemon: PageoutDaemon | None = None) -> None:
        """Daemon failed to refill the pool: raise the bar, slow the daemon."""
        self.threshold += self.increment
        self.consecutive_thrash += 1
        self.backoffs += 1
        if daemon is not None:
            # Cap the stretch so a phase change is still noticed within
            # a bounded number of cycles (Section 3's recovery path).
            daemon.stretch_interval(cap=32 * daemon.base_interval)
        if self.enabled and self.consecutive_thrash >= self.disable_after:
            self.enabled = False
            self.disables += 1

    def on_recovered(self, daemon: PageoutDaemon | None = None) -> None:
        """Daemon found cold pages again: lower the bar, speed the daemon."""
        self.consecutive_thrash = 0
        if self.threshold > self.base_threshold:
            self.threshold = max(self.base_threshold, self.threshold - self.increment)
            self.recoveries += 1
        if not self.enabled:
            self.enabled = True
            self.re_enables += 1
        if daemon is not None:
            daemon.reset_interval()

    def effective_threshold(self) -> int:
        return self.threshold if self.enabled else 0


class BreakEvenDetector:
    """VC-NUMA's replacement-driven thrashing evaluation (one per node)."""

    __slots__ = ("break_even", "increment", "base_threshold", "threshold",
                 "min_evictions_per_eval",
                 "evictions_since_eval", "losers_since_eval", "winners_since_eval",
                 "evaluations", "backoffs", "recoveries")

    def __init__(self, break_even: int = 32, base_threshold: int = 64,
                 increment: int = 32, min_evictions_per_eval: int = 32) -> None:
        if break_even <= 0 or base_threshold <= 0 or increment <= 0:
            raise ValueError("detector parameters must be positive")
        if min_evictions_per_eval <= 0:
            raise ValueError("min_evictions_per_eval must be positive")
        self.break_even = break_even
        self.increment = increment
        self.base_threshold = base_threshold
        self.threshold = base_threshold
        #: Floor on the evaluation cadence.  VC-NUMA's hardware scheme is
        #: tied to the replacement *rate*, and in the paper's machines
        #: (page caches of thousands of frames) evaluations are rare
        #: events; the floor keeps that property when the simulated
        #: caches are scaled down.
        self.min_evictions_per_eval = min_evictions_per_eval
        self.evictions_since_eval = 0
        self.losers_since_eval = 0
        self.winners_since_eval = 0
        self.evaluations = 0
        self.backoffs = 0
        self.recoveries = 0

    def record_eviction(self, pagecache_hits: int, cached_pages: int) -> None:
        """Record one S-COMA page eviction and evaluate if due.

        *pagecache_hits* is the number of misses the page satisfied from
        the page cache while it was mapped; fewer than ``break_even``
        means relocating it never paid for itself.
        """
        self.evictions_since_eval += 1
        if pagecache_hits < self.break_even:
            self.losers_since_eval += 1
        else:
            self.winners_since_eval += 1
        # Evaluate only after ~2 replacements per cached page (paper),
        # but never more often than the cadence floor.
        cadence = max(2 * max(1, cached_pages), self.min_evictions_per_eval)
        if self.evictions_since_eval >= cadence:
            self._evaluate()

    def _evaluate(self) -> None:
        self.evaluations += 1
        if self.losers_since_eval > self.winners_since_eval:
            self.threshold += self.increment
            self.backoffs += 1
        elif self.threshold > self.base_threshold:
            self.threshold = max(self.base_threshold, self.threshold - self.increment)
            self.recoveries += 1
        self.evictions_since_eval = 0
        self.losers_since_eval = 0
        self.winners_since_eval = 0
