"""Dynamic page migration for CC-NUMA (extension study).

The paper's Section 2.2 notes that "careful page allocation, migration,
or replication can alleviate [CC-NUMA's conflict-miss] problem ... but
these techniques have to date only been successful for read-only or
non-shared pages".  This module implements that alternative so the
claim can be tested against the hybrids:

:class:`MigratingCCNUMAPolicy` is a CC-NUMA whose directory counts
refetches exactly like the hybrids', but a relocation hint triggers a
**home migration** -- the page's home moves to the hot requester --
instead of an S-COMA remap.  Migration consumes *no* page-cache frame,
so unlike the hybrids it keeps working at 100% memory pressure; but the
engine only permits it when no third node shares the page (the
non-shared gate the paper describes), so widely-shared hot pages see no
benefit at all.

Expected outcome (``benchmarks/test_ext_migration.py``): a clear win on
producer->consumer working sets (one consumer per page) at any memory
pressure, and near-zero effect on the paper's em3d-style workloads,
confirming why hybrids rather than migration won this design space.
"""

from __future__ import annotations

from ..kernel.vm import PageMode
from .policy import ArchitecturePolicy, PolicyNodeState, RelocationDecision
from .rnuma import DEFAULT_RELOCATION_THRESHOLD

__all__ = ["MigratingCCNUMAPolicy"]


class MigratingCCNUMAPolicy(ArchitecturePolicy):
    """CC-NUMA with refetch-triggered home migration of non-shared pages."""

    name = "CCNUMA-MIG"
    uses_page_cache = False
    supports_migration = True

    def __init__(self, threshold: int = DEFAULT_RELOCATION_THRESHOLD) -> None:
        if threshold <= 0:
            raise ValueError("migration threshold must be positive")
        self._threshold = threshold

    def make_node_state(self) -> PolicyNodeState:
        return PolicyNodeState(threshold=self._threshold)

    def initial_mode(self, state: PolicyNodeState, free_frames: int) -> int:
        return PageMode.CCNUMA

    def on_relocation_hint(self, state: PolicyNodeState,
                           free_frames: int) -> str:
        return RelocationDecision.MIGRATE

    def describe(self) -> dict:
        return {
            "name": self.name,
            "uses_page_cache": False,
            "remote_overhead": "(Nremote * Tremote) + Tmigration",
            "storage_cost": "Refetch Count: 8 bits per page per node",
            "complexity": [
                "Refetch counter, comparator and interrupt generator",
                "Page copy + home reassignment in the VM kernel",
            ],
            "performance_factors": ["Network speed", "Software overhead",
                                    "Degree of sharing"],
            "threshold": self._threshold,
        }
