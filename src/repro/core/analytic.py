"""Analytic remote-overhead model (paper Tables 1 and 2, Section 2.1).

The paper expresses each architecture's remote access overhead as::

    (Npagecache * Tpagecache) + (Nremote * Tremote)
        + (Ncold * Tremote) + Toverhead

where the terms present depend on the architecture:

* CC-NUMA:   (Nremote * Tremote)                      -- no page cache,
  no remapping, Ncold == 0 and Toverhead == 0 by construction.
* S-COMA:    (Npagecache * Tpagecache) + (Ncold * Tremote) + Toverhead
  -- a conflict miss is either satisfied by the page cache or is a
  (possibly induced) cold miss; there are no CC-NUMA-mode remote pages.
* Hybrids:   all four terms.

:class:`RemoteOverheadModel` evaluates the formula from measured miss
counts, which lets the test suite cross-check the simulator's
accounting (the simulated shared-memory stall time must track the
analytic prediction built from its own miss counters), and lets the
Table 1 bench print the formula next to a concrete evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["MissCounts", "RemoteOverheadModel", "TABLE1_ROWS", "TABLE2_ROWS"]


@dataclass(frozen=True)
class MissCounts:
    """Measured shared-data miss counts (the N-terms of Table 1)."""

    n_pagecache: int = 0  #: conflict misses satisfied by the local page cache
    n_remote: int = 0     #: conflict/capacity misses that went remote
    n_cold: int = 0       #: cold misses (essential + remapping-induced)
    t_overhead: int = 0   #: software overhead cycles (Toverhead, measured)

    def __post_init__(self) -> None:
        for name in ("n_pagecache", "n_remote", "n_cold", "t_overhead"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")


@dataclass(frozen=True)
class RemoteOverheadModel:
    """Latency parameters (the T-terms of Table 1), in cycles."""

    t_pagecache: int = 50   #: local page-cache (DRAM) access
    t_remote: int = 180     #: remote memory access

    def __post_init__(self) -> None:
        if self.t_pagecache <= 0 or self.t_remote <= 0:
            raise ValueError("latencies must be positive")
        if self.t_remote < self.t_pagecache:
            raise ValueError("remote latency cannot be below local latency")

    # -- per-architecture formulas ---------------------------------------
    def ccnuma(self, m: MissCounts) -> int:
        """CC-NUMA: every conflict miss to remote data goes remote."""
        return m.n_remote * self.t_remote

    def scoma(self, m: MissCounts) -> int:
        """Pure S-COMA: page-cache hits + (induced) cold misses + kernel."""
        return (m.n_pagecache * self.t_pagecache
                + m.n_cold * self.t_remote
                + m.t_overhead)

    def hybrid(self, m: MissCounts) -> int:
        """R-NUMA / VC-NUMA / AS-COMA: all four terms."""
        return (m.n_pagecache * self.t_pagecache
                + m.n_remote * self.t_remote
                + m.n_cold * self.t_remote
                + m.t_overhead)

    def evaluate(self, architecture: str, m: MissCounts) -> int:
        arch = architecture.upper()
        if arch == "CCNUMA":
            return self.ccnuma(m)
        if arch == "SCOMA":
            return self.scoma(m)
        if arch in ("RNUMA", "VCNUMA", "ASCOMA", "HYBRID"):
            return self.hybrid(m)
        raise ValueError(f"unknown architecture {architecture!r}")


#: Table 1 of the paper: remote memory overhead and performance factors.
TABLE1_ROWS = [
    {
        "model": "CC-NUMA",
        "remote_overhead": "(Nremote x Tremote)",
        "performance_factors": ["Network speed"],
    },
    {
        "model": "S-COMA",
        "remote_overhead": "(Npagecache x Tpagecache) + (Ncold x Tremote)"
                           " + Toverhead",
        "performance_factors": ["Network speed", "Software overhead"],
    },
    {
        "model": "Hybrid Architectures",
        "remote_overhead": "(Npagecache x Tpagecache) + (Nremote x Tremote)"
                           " + (Ncold x Tremote) + Toverhead",
        "performance_factors": ["Network speed", "Software overhead"],
    },
]

#: Table 2 of the paper: storage cost and complexity.
TABLE2_ROWS = [
    {
        "model": "CC-NUMA",
        "storage_cost": "None",
        "complexity": "None",
    },
    {
        "model": "S-COMA",
        "storage_cost": "Page cache state: 2 bits per block, 32 bits per page",
        "complexity": "1. Page cache state lookup  2. local <-> remote page map"
                      "  3. Page-daemon and VM kernel",
    },
    {
        "model": "Hybrid Architectures",
        "storage_cost": "Page cache state: 2 bits per block, 32 bits per page;"
                        " Refetch Count: 8 bits per page per node",
        "complexity": "1. Page cache state controller  2. local <-> remote page"
                      " map  3. Page-daemon and VM kernel  4. Refetch counter,"
                      " comparator and interrupt generator",
    },
]
