"""Pure S-COMA architecture policy.

Every remote page a node accesses *must* be backed by a frame of the
local page cache before the access can proceed (Section 2.3).  On first
touch the fault handler takes a free frame; chunks of the frame fill
lazily from remote memory on demand (valid bits).  When no free frame
exists, the handler must synchronously evict another S-COMA page --
even a hot one -- flush its lines and remap it, then map the faulting
page.

At low pressure this eliminates remote conflict misses entirely
(``Nremote = 0``); at high pressure the mandatory-mapping rule makes the
page cache thrash like an undersized VM system, and the kernel overhead
(``Toverhead``) skyrockets -- the dramatic S-COMA collapse visible in
every high-pressure bar of Figures 2-3.

Evicted pages return to UNMAPPED (not CC-NUMA): the next access takes a
fresh page fault, which is precisely why pure S-COMA thrashing is so
much more expensive than hybrid thrashing.
"""

from __future__ import annotations

from ..kernel.vm import PageMode
from .policy import ArchitecturePolicy, PolicyNodeState, RelocationDecision

__all__ = ["SCOMAPolicy"]


class SCOMAPolicy(ArchitecturePolicy):
    """All remote pages live in the page cache; eviction unmaps them."""

    name = "SCOMA"
    uses_page_cache = True
    evict_to_ccnuma = False
    mandatory_page_cache = True
    initial_modes = frozenset({PageMode.SCOMA})
    allows_forced_eviction = True  # fault-time eviction when the pool is dry

    def make_node_state(self) -> PolicyNodeState:
        return PolicyNodeState(threshold=0)

    def initial_mode(self, state: PolicyNodeState, free_frames: int) -> int:
        # Mandatory: S-COMA has no CC-NUMA fallback.  The node model
        # force-evicts a victim when free_frames == 0.
        return PageMode.SCOMA

    def on_relocation_hint(self, state: PolicyNodeState,
                           free_frames: int) -> str:
        return RelocationDecision.SKIP  # no refetch counting, no hints

    def describe(self) -> dict:
        return {
            "name": self.name,
            "uses_page_cache": True,
            "remote_overhead":
                "(Npagecache * Tpagecache) + (Ncold * Tremote) + Toverhead",
            "storage_cost": "Page cache state: 2 bits/block + 32 bits/page",
            "complexity": [
                "Page cache state lookup",
                "local <-> remote page map",
                "Page-daemon and VM kernel",
            ],
            "performance_factors": ["Network speed", "Software overhead"],
        }
