"""AS-COMA: the paper's adaptive hybrid architecture (Section 3).

AS-COMA differs from R-NUMA/VC-NUMA in exactly two ways, both modelled
here:

1. **S-COMA-first allocation.**  While the local free page pool has
   frames, first-touched remote pages are mapped directly in S-COMA
   mode, so at low memory pressure the node behaves like a pure S-COMA
   machine: no remote conflict misses, no relocation interrupts, no
   flush-induced cold misses.  Once the pool drains, new pages fall back
   to CC-NUMA mode and must earn promotion through refetches.

2. **Software thrashing backoff.**  The pageout daemon *is* the
   thrashing detector: whenever it cannot reclaim ``free_target`` cold
   pages, the node (a) raises the relocation threshold by a fixed
   increment, (b) stretches the daemon's own invocation interval, and
   (c) after enough consecutive failures disables CC-NUMA -> S-COMA
   relocation entirely.  When cold pages reappear (a program phase
   change), the threshold walks back down and relocation resumes.

Additionally, AS-COMA never force-evicts to satisfy a relocation: a
hint arriving when the pool is dry is dropped (the page stays in
CC-NUMA mode).  This is the "back pressure on the replacement
mechanism" that keeps a reasonable subset of hot pages resident instead
of letting equally-hot pages replace each other -- the behaviour that
lets AS-COMA converge to CC-NUMA-or-better performance at 90% memory
pressure where R-NUMA and VC-NUMA fall off a cliff.
"""

from __future__ import annotations

from ..kernel.pageout import DaemonRunResult, PageoutDaemon
from ..kernel.vm import PageMode
from .policy import ArchitecturePolicy, PolicyNodeState, RelocationDecision
from .rnuma import DEFAULT_RELOCATION_THRESHOLD
from .thrashing import AdaptiveBackoff

__all__ = ["ASCOMAPolicy", "DEFAULT_THRESHOLD_INCREMENT"]

#: Amount added to the relocation threshold per thrashing daemon run.
DEFAULT_THRESHOLD_INCREMENT = 32


class ASCOMANodeState(PolicyNodeState):
    """Per-node adaptive backoff state."""

    __slots__ = ("backoff",)

    def __init__(self, threshold: int, increment: int, disable_after: int) -> None:
        super().__init__(threshold)
        self.backoff = AdaptiveBackoff(base_threshold=threshold,
                                       increment=increment,
                                       disable_after=disable_after)

    def effective_threshold(self) -> int:
        return self.backoff.effective_threshold()


class ASCOMAPolicy(ArchitecturePolicy):
    """S-COMA-first allocation + adaptive relocation backoff."""

    name = "ASCOMA"
    uses_page_cache = True
    initial_modes = frozenset({PageMode.SCOMA, PageMode.CCNUMA})
    supports_relocation = True
    # AS-COMA never force-evicts: hints are dropped when the pool is dry.

    def __init__(self, threshold: int = DEFAULT_RELOCATION_THRESHOLD,
                 increment: int = DEFAULT_THRESHOLD_INCREMENT,
                 disable_after: int = 4,
                 scoma_first: bool = True,
                 adaptive: bool = True) -> None:
        """``scoma_first`` and ``adaptive`` exist for the ablation benches:
        turning either off isolates the contribution of one of the
        paper's two improvements."""
        if threshold <= 0 or increment <= 0 or disable_after <= 0:
            raise ValueError("AS-COMA parameters must be positive")
        self._threshold = threshold
        self._increment = increment
        self._disable_after = disable_after
        self.scoma_first = scoma_first
        self.adaptive = adaptive
        #: instance-level: ablations with adaptive=False have no backoff.
        self.daemon_backoff = adaptive
        if not scoma_first:
            self.initial_modes = frozenset({PageMode.CCNUMA})

    def make_node_state(self) -> ASCOMANodeState:
        return ASCOMANodeState(self._threshold, self._increment,
                               self._disable_after)

    def initial_mode(self, state: PolicyNodeState, free_frames: int) -> int:
        if self.scoma_first and free_frames > 0:
            return PageMode.SCOMA
        return PageMode.CCNUMA

    def on_relocation_hint(self, state: PolicyNodeState,
                           free_frames: int) -> str:
        # Never force-evict a (by definition hot) resident page just to
        # install another hot page.
        return RelocationDecision.RELOCATE_IF_FREE

    def on_daemon_result(self, state: PolicyNodeState,
                         result: DaemonRunResult,
                         daemon: PageoutDaemon) -> None:
        if not self.adaptive:
            return
        assert isinstance(state, ASCOMANodeState)
        if result.thrashing:
            state.backoff.on_thrash(daemon)
            state.thrash_backoffs += 1
        else:
            state.backoff.on_recovered(daemon)
            state.threshold_recoveries += 1

    def describe(self) -> dict:
        return {
            "name": self.name,
            "uses_page_cache": True,
            "remote_overhead":
                "(Npagecache * Tpagecache) + (Nremote * Tremote)"
                " + (Ncold * Tremote) + Toverhead",
            "storage_cost": "Page cache state + refetch count:"
                            " 2 bits/block + 32 bits/page + 8 bits/page/node",
            "complexity": [
                "Page cache state controller",
                "local <-> remote page map",
                "Page-daemon and VM kernel (thrash detection in software)",
                "Refetch counter, comparator and interrupt generator",
            ],
            "performance_factors": ["Network speed", "Software overhead"],
            "threshold": self._threshold,
            "increment": self._increment,
            "backoff": "software, pageout-daemon driven; disables"
                       f" relocation after {self._disable_after} consecutive"
                       " thrashing runs",
            "scoma_first": self.scoma_first,
            "adaptive": self.adaptive,
        }
