"""R-NUMA (Wisconsin reactive CC-NUMA) architecture policy.

Falsafi & Wood, ISCA'97, as characterised in Section 2.4 of the AS-COMA
paper.  R-NUMA starts every remote page in CC-NUMA mode; the home
directory counts per-page per-node *refetches* (requests from a node
already in the chunk's copyset).  When a counter crosses the relocation
threshold (64 refetches), the response piggybacks a hint and the
requesting node remaps the page to a local S-COMA frame.

Two design choices make R-NUMA collapse at high pressure, and both are
modelled here:

1. it "initially maps all pages in CC-NUMA mode, and only upgrades them
   after some number of remote refetches", wasting a free page cache at
   low pressure; and
2. it "always upgrades pages to S-COMA mode when their refetch threshold
   is exceeded, even if it must evict another hot page to do so" -- no
   backoff whatsoever, so at high pressure equally-hot pages evict each
   other continuously and kernel overhead explodes.
"""

from __future__ import annotations

from ..kernel.vm import PageMode
from .policy import ArchitecturePolicy, PolicyNodeState, RelocationDecision

__all__ = ["RNUMAPolicy", "DEFAULT_RELOCATION_THRESHOLD"]

#: The paper's initial relocation threshold, shared by all three hybrids.
DEFAULT_RELOCATION_THRESHOLD = 64


class RNUMAPolicy(ArchitecturePolicy):
    """CC-NUMA-first with unconditional relocation at a fixed threshold."""

    name = "RNUMA"
    uses_page_cache = True
    supports_relocation = True
    allows_forced_eviction = True  # relocates even over a hot victim

    def __init__(self, threshold: int = DEFAULT_RELOCATION_THRESHOLD) -> None:
        if threshold <= 0:
            raise ValueError("relocation threshold must be positive")
        self._threshold = threshold

    def make_node_state(self) -> PolicyNodeState:
        return PolicyNodeState(threshold=self._threshold)

    def initial_mode(self, state: PolicyNodeState, free_frames: int) -> int:
        return PageMode.CCNUMA

    def on_relocation_hint(self, state: PolicyNodeState,
                           free_frames: int) -> str:
        # Unconditional: relocate even if a hot victim must be evicted.
        return RelocationDecision.RELOCATE

    def describe(self) -> dict:
        return {
            "name": self.name,
            "uses_page_cache": True,
            "remote_overhead":
                "(Npagecache * Tpagecache) + (Nremote * Tremote)"
                " + (Ncold * Tremote) + Toverhead",
            "storage_cost": "Page cache state + refetch count:"
                            " 2 bits/block + 32 bits/page + 8 bits/page/node",
            "complexity": [
                "Page cache state controller",
                "local <-> remote page map",
                "Page-daemon and VM kernel",
                "Refetch counter, comparator and interrupt generator",
            ],
            "performance_factors": ["Network speed", "Software overhead"],
            "threshold": self._threshold,
            "backoff": None,
        }
