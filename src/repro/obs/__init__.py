"""Run telemetry: low-overhead structured observability for every layer.

The paper's contribution is an *adaptive* mechanism, and the ROADMAP
asks for observability on every hot path; this package is the bridge
between the two.  It produces one JSONL stream per observed run
(``results/obs/<run_id>.jsonl``) combining:

* **executor spans** — per-cell wall-clock intervals (``prewarm``,
  ``dispatch``, ``cell``, ``simulate``, ``store_put``) and cell events
  (``hit``/``fail``/``store-fail``) recorded by
  :func:`repro.runtime.execute` and its pool workers
  (:mod:`repro.obs.spans`, :mod:`repro.obs.sink`);
* **backoff telemetry** — the adaptive machinery (threshold raises and
  walk-downs, daemon-interval stretches and resets, relocation
  disable/re-enable, thrash events) as a per-cell time series with
  barrier phase markers, via a kind-filtered
  :class:`~repro.sim.events.EventBus` subscription that leaves the
  replay fast path untouched (:mod:`repro.obs.backoff`).

Enable with ``--obs`` on ``repro run``/``repro matrix`` (or
``REPRO_OBS=1``); inspect with ``repro obs summary|timeline|export``.
The measured cost of an observed ``matrix_micro`` is gated at <=2%
(``benchmarks/test_perf_regression.py``).  See ``docs/observability.md``.
"""

from .backoff import BackoffTelemetry
from .report import (backoff_specs, export_records, render_summary,
                     render_timeline, summarize)
from .sink import (DEFAULT_OBS_DIR, ObsSink, default_obs_dir, list_runs,
                   new_run_id, read_records, resolve_run_path)
from .spans import (SpanRecorder, get_default_obs, set_default_obs, use_obs,
                    worker_recorder)

__all__ = [
    "DEFAULT_OBS_DIR",
    "BackoffTelemetry",
    "ObsSink",
    "SpanRecorder",
    "backoff_specs",
    "default_obs_dir",
    "export_records",
    "get_default_obs",
    "list_runs",
    "new_run_id",
    "read_records",
    "render_summary",
    "render_timeline",
    "resolve_run_path",
    "set_default_obs",
    "summarize",
    "use_obs",
    "worker_recorder",
]
