"""Backoff telemetry: the adaptive mechanism as a per-run time series.

The paper's headline mechanism is *dynamic* — under sustained thrashing
the pageout daemon raises the relocation threshold, stretches its own
invocation interval and eventually disables remapping; when cold pages
reappear it walks all three back (Section 3).  End-of-run aggregates
cannot show that trajectory.  :class:`BackoffTelemetry` subscribes to
the :class:`~repro.sim.events.EventBus` with a *kind-filtered*
subscription (``EV_DAEMON``/``EV_BARRIER``/``EV_END`` only), so it sees
every daemon decision with cycle context while the replay hot path —
which gates its inlined fast cases on the *unfiltered* observer list —
keeps running at full speed.  That is what keeps ``--obs`` within the
2% overhead budget where attaching a full observer (e.g. the invariant
checker) costs 2-4x.

Each daemon run becomes one row carrying the post-backoff state
(threshold, interval, relocation enabled) plus *derived transitions*
against the node's previous row: ``threshold_delta``
(``raise``/``lower``), ``interval_delta`` (``stretch``/``reset``) and
``relocation`` (``disabled``/``re-enabled``).  Barrier releases become
``phase`` rows, so the series aligns with the program's phase
structure — the Figure-4-style view the aggregates lose.
"""

from __future__ import annotations

from ..sim.events import EV_BARRIER, EV_DAEMON, EV_END

__all__ = ["BackoffTelemetry"]


class BackoffTelemetry:
    """Kind-filtered EventBus observer building the backoff time series."""

    #: The only kinds this observer subscribes to — all rare, all
    #: published through ``EventBus.watching`` guards.
    KINDS = (EV_DAEMON, EV_BARRIER, EV_END)

    def __init__(self) -> None:
        #: time-ordered rows: {"rec": "backoff"|"phase", ...}
        self.rows: list[dict] = []
        #: node -> (threshold, interval, enabled) of its previous row.
        self._last: dict[int, tuple] = {}
        self.daemon_runs = 0
        self.thrash_events = 0
        self.threshold_raises = 0
        self.threshold_lowers = 0
        self.interval_stretches = 0
        self.interval_resets = 0
        self.relocation_disables = 0
        self.relocation_reenables = 0
        self.end_clock = 0

    # -- wiring ----------------------------------------------------------
    def attach(self, engine) -> "BackoffTelemetry":
        """Subscribe to *engine*'s bus (kind-filtered); returns self."""
        engine.machine.events.subscribe(self, kinds=self.KINDS)
        return self

    def detach(self, engine) -> None:
        engine.machine.events.unsubscribe(self)

    # -- observer --------------------------------------------------------
    def __call__(self, event) -> None:
        if event.kind == EV_DAEMON:
            self._on_daemon(event)
        elif event.kind == EV_BARRIER:
            self.rows.append({"rec": "phase", "clock": event.clock,
                              "barrier": event.detail.get("barrier")})
        else:  # EV_END
            self.end_clock = event.clock

    def _on_daemon(self, event) -> None:
        detail = event.detail
        threshold = detail.get("threshold", 0)
        interval = detail.get("interval", 0)
        enabled = detail.get("enabled", threshold > 0)
        row = {
            "rec": "backoff",
            "clock": event.clock,
            "node": event.node,
            "thrashing": detail.get("thrashing", False),
            "reclaimed": detail.get("reclaimed", 0),
            "target": detail.get("target", 0),
            "free": detail.get("free", 0),
            "threshold": threshold,
            "interval": interval,
            "enabled": enabled,
            "threshold_delta": None,
            "interval_delta": None,
            "relocation": None,
        }
        last = self._last.get(event.node)
        if last is not None:
            p_threshold, p_interval, p_enabled = last
            if threshold > p_threshold:
                row["threshold_delta"] = "raise"
                self.threshold_raises += 1
            elif threshold < p_threshold and enabled and p_enabled:
                # A drop to 0 via disabling is a "relocation" transition,
                # not a threshold walk-down.
                row["threshold_delta"] = "lower"
                self.threshold_lowers += 1
            if interval > p_interval:
                row["interval_delta"] = "stretch"
                self.interval_stretches += 1
            elif interval < p_interval:
                row["interval_delta"] = "reset"
                self.interval_resets += 1
            if p_enabled and not enabled:
                row["relocation"] = "disabled"
                self.relocation_disables += 1
            elif enabled and not p_enabled:
                row["relocation"] = "re-enabled"
                self.relocation_reenables += 1
        self._last[event.node] = (threshold, interval, enabled)
        self.daemon_runs += 1
        if row["thrashing"]:
            self.thrash_events += 1
        self.rows.append(row)

    # -- queries ---------------------------------------------------------
    def counters(self) -> dict:
        """Aggregate transition counts (one summary record per cell)."""
        return {
            "daemon_runs": self.daemon_runs,
            "thrash_events": self.thrash_events,
            "threshold_raises": self.threshold_raises,
            "threshold_lowers": self.threshold_lowers,
            "interval_stretches": self.interval_stretches,
            "interval_resets": self.interval_resets,
            "relocation_disables": self.relocation_disables,
            "relocation_reenables": self.relocation_reenables,
            "end_clock": self.end_clock,
        }

    def of_node(self, node_id: int) -> list[dict]:
        return [r for r in self.rows
                if r["rec"] == "backoff" and r["node"] == node_id]

    def series(self, node_id: int, field: str) -> list:
        return [r[field] for r in self.of_node(node_id)]
