"""Wall-clock span recording for the run orchestration layer.

A :class:`SpanRecorder` stamps ``span`` records (a named wall-clock
interval, optionally tied to one :class:`~repro.runtime.spec.RunSpec`)
and ``event`` records (instantaneous cell outcomes: ``hit``, ``fail``,
``store-fail``) into a sink.  The sink is duck-typed: the parent
process records straight into an :class:`~repro.obs.sink.ObsSink`
(JSONL on disk); pool workers record into a plain list via
:func:`worker_recorder` and ship the buffered records back with the
cell result, where the parent merges them into the file — workers
never hold a file descriptor.

The ambient recorder (``use_obs`` / ``get_default_obs``) mirrors the
result store's ambient pattern: ``None`` (the default) means
observability is off and every instrumentation site reduces to one
``is None`` check, so un-observed runs pay nothing.
"""

from __future__ import annotations

import contextlib
import os
import time

__all__ = ["SpanRecorder", "worker_recorder", "get_default_obs",
           "set_default_obs", "use_obs"]


class SpanRecorder:
    """Emits span/event records into *sink* (ObsSink or list)."""

    __slots__ = ("sink", "source")

    def __init__(self, sink, source: str = "parent") -> None:
        self.sink = sink
        #: ``"parent"`` or ``"worker"`` — which side measured the span.
        self.source = source

    # -- low-level -------------------------------------------------------
    def _write(self, record: dict) -> None:
        record["src"] = self.source
        record["pid"] = os.getpid()
        if isinstance(self.sink, list):
            self.sink.append(record)
        else:
            self.sink.write(record)

    def emit(self, rec: str, **fields) -> None:
        """Write one record of type *rec* (``span``/``event``/...)."""
        record = {"rec": rec}
        record.update(fields)
        self._write(record)

    # -- spans and events ------------------------------------------------
    @contextlib.contextmanager
    def span(self, name: str, spec=None, **fields):
        """Time a block: ``with obs.span("simulate", spec=spec): ...``.

        The record is written even when the block raises, so a failing
        cell still accounts for its wall-clock.
        """
        if spec is not None:
            fields["spec"] = spec.label()
            fields["spec_hash"] = spec.spec_hash()
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self.emit("span", name=name,
                      wall_s=round(time.perf_counter() - t0, 6), **fields)

    def event(self, name: str, spec=None, **fields) -> None:
        """Record an instantaneous per-cell event (``hit``/``fail``/...)."""
        if spec is not None:
            fields["spec"] = spec.label()
            fields["spec_hash"] = spec.spec_hash()
        self.emit("event", name=name, **fields)

    def backoff_rows(self, spec, rows) -> None:
        """Merge a cell's backoff time series (see repro.obs.backoff)."""
        label, spec_hash = spec.label(), spec.spec_hash()
        for row in rows:
            fields = dict(row)
            rec = fields.pop("rec", "backoff")
            self.emit(rec, spec=label, spec_hash=spec_hash, **fields)

    def drain(self) -> list[dict]:
        """Buffered records (list sinks only) — the worker return path."""
        if not isinstance(self.sink, list):
            raise TypeError("drain() is only meaningful for buffer sinks")
        records, self.sink[:] = list(self.sink), []
        return records

    def merge(self, records) -> None:
        """Write records drained from a worker verbatim (no re-stamping)."""
        for record in records:
            if isinstance(self.sink, list):
                self.sink.append(record)
            else:
                self.sink.write(record)


def worker_recorder() -> SpanRecorder:
    """In-memory recorder for a pool worker; drain() ships it home."""
    return SpanRecorder([], source="worker")


# -- ambient default -----------------------------------------------------
_default_obs: SpanRecorder | None = None


def get_default_obs() -> SpanRecorder | None:
    return _default_obs


def set_default_obs(obs: SpanRecorder | None) -> None:
    """Install the ambient recorder used when callers don't pass one."""
    global _default_obs
    _default_obs = obs


@contextlib.contextmanager
def use_obs(obs: SpanRecorder | None):
    """Scoped ambient recorder: ``with use_obs(SpanRecorder(sink)): ...``."""
    prev = _default_obs
    set_default_obs(obs)
    try:
        yield obs
    finally:
        set_default_obs(prev)
