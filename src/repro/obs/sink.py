"""Append-only JSONL telemetry sink under ``results/obs/``.

One observability *run* is one ``<obs_dir>/<run_id>.jsonl`` file; every
line is one self-describing JSON record (see ``docs/observability.md``
for the record schemas).  The sink is process-safe by construction:
the file is opened with ``O_APPEND`` and each record is written with a
single ``os.write`` call, so concurrent writers (the executor's parent
process and, in principle, its pool workers) interleave whole lines,
never fragments.  In practice the executor keeps all writes in the
parent — workers buffer records in memory and the parent merges them —
so the ``O_APPEND`` discipline is a safety net, not a hot path.

A corrupt or truncated trailing line (a killed run) is skipped by
:func:`read_records`, mirroring how the result/trace stores treat
unreadable artifacts as misses rather than errors.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

__all__ = ["DEFAULT_OBS_DIR", "ObsSink", "default_obs_dir", "new_run_id",
           "read_records", "list_runs", "resolve_run_path"]

#: Default telemetry directory, next to the result/trace stores.
DEFAULT_OBS_DIR = "results/obs"


def default_obs_dir() -> str:
    """``$REPRO_OBS_DIR`` or ``results/obs`` (the CLI default)."""
    return os.environ.get("REPRO_OBS_DIR", DEFAULT_OBS_DIR)


def new_run_id() -> str:
    """Wall-clock + pid run id: sortable, unique per process."""
    return time.strftime("%Y%m%d-%H%M%S") + f"-{os.getpid()}"


class ObsSink:
    """One run's JSONL file; ``write`` appends a record atomically."""

    def __init__(self, obs_dir: str | os.PathLike | None = None,
                 run_id: str | None = None) -> None:
        self.obs_dir = Path(obs_dir if obs_dir is not None
                            else default_obs_dir())
        self.run_id = run_id or new_run_id()
        self.path = self.obs_dir / f"{self.run_id}.jsonl"
        self.records_written = 0
        self._fd: int | None = None

    def _fileno(self) -> int:
        if self._fd is None:
            self.obs_dir.mkdir(parents=True, exist_ok=True)
            self._fd = os.open(self.path,
                               os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
        return self._fd

    def write(self, record: dict) -> None:
        """Append one record as one JSON line (single atomic write)."""
        line = json.dumps(record, separators=(",", ":"),
                          sort_keys=True, default=str) + "\n"
        os.write(self._fileno(), line.encode())
        self.records_written += 1

    def write_many(self, records) -> None:
        for record in records:
            self.write(record)

    def close(self) -> None:
        if self._fd is not None:
            os.close(self._fd)
            self._fd = None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ObsSink({str(self.path)!r})"


# -- reading -------------------------------------------------------------
def read_records(path: str | os.PathLike) -> list[dict]:
    """All readable records of one run file; bad lines are skipped."""
    records = []
    try:
        with open(path, encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    continue  # truncated tail of a killed run
                if isinstance(record, dict):
                    records.append(record)
    except OSError as exc:
        raise ValueError(f"cannot read telemetry run {path}: {exc}") from exc
    return records


def list_runs(obs_dir: str | os.PathLike | None = None) -> list[Path]:
    """Run files under *obs_dir*, oldest first (ids are time-sortable)."""
    root = Path(obs_dir if obs_dir is not None else default_obs_dir())
    return sorted(root.glob("*.jsonl"))


def resolve_run_path(run: str | None,
                     obs_dir: str | os.PathLike | None = None) -> Path:
    """Map a ``--run`` argument to a run file.

    ``None`` means the latest run in *obs_dir*; otherwise *run* may be
    a run id (``20260806-101502-4242``) or a path to a ``.jsonl`` file.
    """
    if run:
        as_path = Path(run)
        if as_path.suffix == ".jsonl" or as_path.exists():
            return as_path
        root = Path(obs_dir if obs_dir is not None else default_obs_dir())
        return root / f"{run}.jsonl"
    runs = list_runs(obs_dir)
    if not runs:
        root = Path(obs_dir if obs_dir is not None else default_obs_dir())
        raise ValueError(f"no telemetry runs under {root}"
                         " (run with --obs first)")
    return runs[-1]
