"""Rendering and export of recorded telemetry runs.

Backs the ``repro obs summary|timeline|export`` CLI subcommands.  All
three operate on the merged JSONL record stream of one run (see
:mod:`repro.obs.sink`): *summary* aggregates spans and cell events,
*timeline* renders one cell's backoff trajectory against its phase
markers, *export* re-emits the records as JSON or CSV for external
plotting.
"""

from __future__ import annotations

import csv
import io
import json

__all__ = ["summarize", "render_summary", "render_timeline",
           "export_records", "backoff_specs"]


def summarize(records: list[dict]) -> dict:
    """Aggregate one run's records.

    Returns ``{"spans": {name: {count, total_s, max_s}}, "events":
    {name: count}, "cells": {...}, "backoff": {counter: total}}``.
    """
    spans: dict[str, dict] = {}
    events: dict[str, int] = {}
    backoff = {"cells_with_telemetry": set(), "daemon_runs": 0,
               "thrash_events": 0, "threshold_raises": 0,
               "threshold_lowers": 0, "interval_stretches": 0,
               "interval_resets": 0, "relocation_disables": 0,
               "relocation_reenables": 0}
    cells: set[str] = set()
    for record in records:
        rec = record.get("rec")
        if rec == "span":
            agg = spans.setdefault(record.get("name", "?"),
                                   {"count": 0, "total_s": 0.0, "max_s": 0.0})
            wall = float(record.get("wall_s", 0.0))
            agg["count"] += 1
            agg["total_s"] += wall
            agg["max_s"] = max(agg["max_s"], wall)
            if record.get("spec"):
                cells.add(record["spec"])
        elif rec == "event":
            events[record.get("name", "?")] = \
                events.get(record.get("name", "?"), 0) + 1
            if record.get("spec"):
                cells.add(record["spec"])
        elif rec == "backoff":
            backoff["cells_with_telemetry"].add(record.get("spec", "?"))
            backoff["daemon_runs"] += 1
            backoff["thrash_events"] += bool(record.get("thrashing"))
            delta = record.get("threshold_delta")
            if delta:
                backoff[f"threshold_{delta}s"] += 1
            delta = record.get("interval_delta")
            if delta == "stretch":
                backoff["interval_stretches"] += 1
            elif delta == "reset":
                backoff["interval_resets"] += 1
            if record.get("relocation") == "disabled":
                backoff["relocation_disables"] += 1
            elif record.get("relocation") == "re-enabled":
                backoff["relocation_reenables"] += 1
    backoff["cells_with_telemetry"] = len(backoff["cells_with_telemetry"])
    return {"spans": spans, "events": events, "cells": sorted(cells),
            "backoff": backoff}


def render_summary(records: list[dict], run_name: str = "") -> str:
    """Human-readable one-run summary (``repro obs summary``)."""
    agg = summarize(records)
    lines = [f"telemetry run {run_name}: {len(records)} record(s),"
             f" {len(agg['cells'])} cell(s)"]
    if agg["spans"]:
        lines.append("spans:")
        for name, s in sorted(agg["spans"].items(),
                              key=lambda kv: -kv[1]["total_s"]):
            lines.append(f"  {name:<12} x{s['count']:<4}"
                         f" total {s['total_s']:8.3f}s"
                         f"  max {s['max_s']:8.3f}s")
    if agg["events"]:
        lines.append("cell events: " + "  ".join(
            f"{name}={count}" for name, count in sorted(agg["events"].items())))
    b = agg["backoff"]
    if b["daemon_runs"]:
        lines.append(
            f"backoff: {b['daemon_runs']} daemon run(s) across"
            f" {b['cells_with_telemetry']} cell(s) --"
            f" {b['thrash_events']} thrash,"
            f" {b['threshold_raises']} raise / {b['threshold_lowers']} lower,"
            f" {b['interval_stretches']} stretch /"
            f" {b['interval_resets']} reset,"
            f" {b['relocation_disables']} disable /"
            f" {b['relocation_reenables']} re-enable")
    elif not agg["spans"] and not agg["events"]:
        lines.append("(empty run)")
    return "\n".join(lines)


def backoff_specs(records: list[dict]) -> list[str]:
    """Cells with backoff rows, most rows first (timeline's default)."""
    counts: dict[str, int] = {}
    for record in records:
        if record.get("rec") == "backoff":
            spec = record.get("spec", "?")
            counts[spec] = counts.get(spec, 0) + 1
    return [spec for spec, _ in
            sorted(counts.items(), key=lambda kv: -kv[1])]


def render_timeline(records: list[dict], spec: str | None = None,
                    node: int | None = None, limit: int = 60) -> str:
    """One cell's backoff trajectory (``repro obs timeline``).

    Rows are daemon runs in clock order; ``|`` markers between them are
    barrier releases (phase boundaries).  *spec* defaults to the cell
    with the most backoff rows; *node* filters to one node.
    """
    if spec is None:
        candidates = backoff_specs(records)
        if not candidates:
            return "no backoff telemetry in this run (simulate with --obs)"
        spec = candidates[0]
    rows = [r for r in records
            if r.get("spec") == spec and r.get("rec") in ("backoff", "phase")]
    rows.sort(key=lambda r: (r.get("clock", 0), r.get("rec") == "phase"))
    if node is not None:
        rows = [r for r in rows
                if r["rec"] == "phase" or r.get("node") == node]
    lines = [f"backoff timeline for {spec}"
             + (f" (node {node})" if node is not None else "")]
    header = (f"{'clock':>12} {'node':>4} {'thr':>5} {'interval':>9}"
              f" {'reloc':>6}  flags")
    lines.append(header)
    shown = 0
    for row in rows:
        if row["rec"] == "phase":
            lines.append(f"{row.get('clock', 0):>12} "
                         f"---- barrier {row.get('barrier')} ----")
            continue
        if shown >= limit:
            lines.append(f"... ({len(rows) - shown} more daemon runs)")
            break
        flags = []
        if row.get("thrashing"):
            flags.append("THRASH")
        if row.get("threshold_delta"):
            flags.append(f"thr-{row['threshold_delta']}")
        if row.get("interval_delta"):
            flags.append(f"int-{row['interval_delta']}")
        if row.get("relocation"):
            flags.append(f"reloc-{row['relocation']}")
        lines.append(f"{row.get('clock', 0):>12} {row.get('node', -1):>4}"
                     f" {row.get('threshold', 0):>5}"
                     f" {row.get('interval', 0):>9}"
                     f" {'on' if row.get('enabled') else 'off':>6}"
                     f"  {' '.join(flags)}")
        shown += 1
    if shown == 0:
        lines.append(f"(no daemon runs recorded for {spec})")
    return "\n".join(lines)


#: Column order of the CSV export's backoff rows.
_CSV_FIELDS = ("spec", "node", "clock", "thrashing", "reclaimed", "target",
               "free", "threshold", "interval", "enabled",
               "threshold_delta", "interval_delta", "relocation")


def export_records(records: list[dict], fmt: str = "json",
                   kinds: tuple = ()) -> str:
    """Serialise one run's records (``repro obs export``).

    ``fmt="json"`` dumps the (optionally kind-filtered) records as a
    JSON array; ``fmt="csv"`` exports the backoff time series in a
    fixed column order for spreadsheet/plotting tools.
    """
    if kinds:
        records = [r for r in records if r.get("rec") in kinds]
    if fmt == "json":
        return json.dumps(records, indent=2, sort_keys=True)
    if fmt != "csv":
        raise ValueError(f"unknown export format {fmt!r} (json|csv)")
    rows = [r for r in records if r.get("rec") == "backoff"]
    out = io.StringIO()
    writer = csv.DictWriter(out, fieldnames=_CSV_FIELDS, extrasaction="ignore")
    writer.writeheader()
    for row in rows:
        writer.writerow(row)
    return out.getvalue()
