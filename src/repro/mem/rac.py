"""Remote Access Cache (RAC) model.

The paper's CC-NUMA and hybrid machines are "not pure": the DSM engine
keeps a 128-byte RAC holding *the last remote data received* as part of
performing a 4-line chunk fetch (Section 4.1).  When a remote fetch
returns a 128-byte chunk, the requested 32-byte line is supplied to the
processor and the whole chunk is deposited in the RAC; subsequent misses
to the chunk's other lines hit the RAC at RAC latency instead of going
remote.  The paper notes this "minor optimization had a larger impact on
performance than anticipated" -- it is what makes fft nearly
pressure-insensitive -- so we model it faithfully.

A configurable number of chunk entries is supported (direct-mapped by
chunk id); the paper's machine corresponds to ``n_entries=1``.
"""

from __future__ import annotations

__all__ = ["RemoteAccessCache"]


class RemoteAccessCache:
    """Small direct-mapped cache of remote 128-byte chunks."""

    __slots__ = ("n_entries", "entry_mask", "chunks", "hits", "misses", "fills")

    def __init__(self, n_entries: int = 1) -> None:
        if n_entries <= 0 or n_entries & (n_entries - 1):
            raise ValueError("RAC entry count must be a positive power of two")
        self.n_entries = n_entries
        self.entry_mask = n_entries - 1
        self.chunks: list[int] = [-1] * n_entries
        self.hits = 0
        self.misses = 0
        self.fills = 0

    def lookup(self, chunk: int) -> bool:
        """Probe the RAC for *chunk*.  Returns True on hit."""
        if self.chunks[chunk & self.entry_mask] == chunk:
            self.hits += 1
            return True
        self.misses += 1
        return False

    def contains(self, chunk: int) -> bool:
        return self.chunks[chunk & self.entry_mask] == chunk

    def fill(self, chunk: int) -> None:
        """Deposit a freshly fetched remote chunk."""
        self.chunks[chunk & self.entry_mask] = chunk
        self.fills += 1

    def resident_entries(self) -> list[int]:
        """All resident entry ids (chunks, or lines in victim mode)."""
        return [c for c in self.chunks if c != -1]

    def invalidate_chunk(self, chunk: int) -> bool:
        """Coherence invalidation of one chunk.  True if it was resident."""
        slot = chunk & self.entry_mask
        if self.chunks[slot] == chunk:
            self.chunks[slot] = -1
            return True
        return False

    def flush_page(self, page: int, chunks_per_page: int) -> int:
        """Drop every resident chunk belonging to *page* (page remap)."""
        first = page * chunks_per_page
        last = first + chunks_per_page
        flushed = 0
        for slot, chunk in enumerate(self.chunks):
            if first <= chunk < last:
                self.chunks[slot] = -1
                flushed += 1
        return flushed

    def clear(self) -> None:
        self.chunks = [-1] * self.n_entries
