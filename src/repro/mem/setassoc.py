"""N-way set-associative L1 cache with LRU replacement.

The paper models a direct-mapped L1 because the SPLASH-2 primary
working sets fit 8 KiB; conflict misses to the *secondary* (remote)
working set are what the entire hybrid-architecture story runs on.
Associativity directly attacks those conflict misses, so an obvious
question the paper leaves open is how much of the hybrid benefit
survives a more associative processor cache.  This class powers that
sensitivity study (`benchmarks/test_sensitivity_associativity.py`):
raise ``l1_ways`` in :class:`~repro.sim.config.SystemConfig` and rerun
any experiment.

Same interface as :class:`~repro.mem.cache.DirectMappedCache`; LRU is
tracked with per-set ordering lists (sets are tiny, <= 8 ways).
"""

from __future__ import annotations

from .address import AddressMap
from .cache import CacheStats

__all__ = ["SetAssociativeCache"]


class SetAssociativeCache:
    """N-way set-associative, write-back, LRU cache of global line ids."""

    __slots__ = ("ways", "n_sets", "set_mask", "sets", "dirty", "stats",
                 "amap")

    def __init__(self, size_bytes: int, line_bytes: int, ways: int,
                 amap: AddressMap | None = None) -> None:
        if ways <= 0:
            raise ValueError("need at least one way")
        if size_bytes % (line_bytes * ways):
            raise ValueError("cache size must divide into ways x lines")
        n_sets = size_bytes // (line_bytes * ways)
        if n_sets & (n_sets - 1):
            raise ValueError("number of sets must be a power of two")
        self.ways = ways
        self.n_sets = n_sets
        self.set_mask = n_sets - 1
        # sets[s] is the set's resident lines in LRU order (front = LRU).
        self.sets: list[list[int]] = [[] for _ in range(n_sets)]
        self.dirty: list[set[int]] = [set() for _ in range(n_sets)]
        self.stats = CacheStats()
        self.amap = amap or AddressMap()

    # -- hot path ---------------------------------------------------------
    def lookup(self, line: int) -> bool:
        s = self.sets[line & self.set_mask]
        if line in s:
            self.stats.hits += 1
            if s[-1] != line:
                s.remove(line)
                s.append(line)
            return True
        self.stats.misses += 1
        return False

    def fill(self, line: int, dirty: bool = False) -> int:
        """Install *line*; returns the evicted line id or -1."""
        idx = line & self.set_mask
        s = self.sets[idx]
        d = self.dirty[idx]
        if line in s:
            if s[-1] != line:
                s.remove(line)
                s.append(line)
            if dirty:
                d.add(line)
            return -1
        victim = -1
        if len(s) >= self.ways:
            victim = s.pop(0)
            if victim in d:
                d.discard(victim)
                self.stats.writebacks += 1
        s.append(line)
        if dirty:
            d.add(line)
        return victim

    def mark_dirty(self, line: int) -> None:
        idx = line & self.set_mask
        if line in self.sets[idx]:
            self.dirty[idx].add(line)

    def contains(self, line: int) -> bool:
        return line in self.sets[line & self.set_mask]

    # -- page management ---------------------------------------------------
    def invalidate_line(self, line: int) -> bool:
        idx = line & self.set_mask
        s = self.sets[idx]
        if line in s:
            s.remove(line)
            self.dirty[idx].discard(line)
            self.stats.invalidations += 1
            return True
        return False

    def flush_page(self, page: int) -> int:
        shift = self.amap.line_shift
        flushed = 0
        lpp = self.amap.lines_per_page
        first = page * lpp
        span = min(lpp, self.n_sets)
        seen = set()
        for offset in range(span):
            idx = (first + offset) & self.set_mask
            if idx in seen:
                continue
            seen.add(idx)
            s = self.sets[idx]
            victims = [t for t in s if (t >> shift) == page]
            for t in victims:
                s.remove(t)
                self.dirty[idx].discard(t)
                flushed += 1
        self.stats.flushed_lines += flushed
        return flushed

    def resident_lines_of_page(self, page: int) -> list[int]:
        shift = self.amap.line_shift
        return [t for s in self.sets for t in s if (t >> shift) == page]

    def resident_lines(self) -> list[int]:
        """All resident line ids (invariant-checker sweep)."""
        return [t for s in self.sets for t in s]

    def clear(self) -> None:
        self.sets = [[] for _ in range(self.n_sets)]
        self.dirty = [set() for _ in range(self.n_sets)]
