"""Direct-mapped L1 processor cache model.

Matches Table 3 of the paper: 8 KiB direct-mapped, 32-byte lines,
virtually indexed / physically tagged, write-back, 1-cycle hit.

Because the simulator is trace-driven there is no data payload; the
cache tracks only presence and dirtiness of *global line ids*.  The
page-flush operation exists because every CC-NUMA<->S-COMA remap and
every S-COMA page eviction must flush the page's lines from the
processor cache (Section 2.3) -- this is what induces the cold misses
the paper's Ncold term accounts for.

The tag store is a plain Python list indexed by set, which profiling
showed to be faster than a numpy array for the scalar, branchy access
pattern of the simulation inner loop (single-element reads dominate).
"""

from __future__ import annotations

from .address import AddressMap

__all__ = ["DirectMappedCache", "CacheStats"]


class CacheStats:
    """Hit/miss/writeback counters for one cache instance."""

    __slots__ = ("hits", "misses", "writebacks", "flushed_lines", "invalidations")

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.writebacks = 0
        self.flushed_lines = 0
        self.invalidations = 0

    def as_dict(self) -> dict:
        return {name: getattr(self, name) for name in self.__slots__}


class DirectMappedCache:
    """A direct-mapped, write-back cache of global line ids.

    ``lookup``/``fill`` are the only operations on the reference hot
    path; everything else (flush, invalidate) runs on page-management
    events which are orders of magnitude rarer.
    """

    __slots__ = ("n_sets", "set_mask", "tags", "dirty", "stats", "amap")

    def __init__(self, size_bytes: int, line_bytes: int, amap: AddressMap | None = None) -> None:
        if size_bytes % line_bytes:
            raise ValueError("cache size must be a multiple of the line size")
        n_sets = size_bytes // line_bytes
        if n_sets & (n_sets - 1):
            raise ValueError("number of sets must be a power of two")
        self.n_sets = n_sets
        self.set_mask = n_sets - 1
        # tags[set] holds the resident global line id, or -1 when empty.
        self.tags: list[int] = [-1] * n_sets
        self.dirty: list[bool] = [False] * n_sets
        self.stats = CacheStats()
        self.amap = amap or AddressMap()

    # -- hot path ---------------------------------------------------------
    def lookup(self, line: int) -> bool:
        """Probe the cache for *line*.  Returns True on hit."""
        if self.tags[line & self.set_mask] == line:
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        return False

    def fill(self, line: int, dirty: bool = False) -> int:
        """Install *line*, evicting any conflicting resident line.

        Returns the evicted line id (for victim bookkeeping) or -1 if the
        set was empty or held the same line.
        """
        s = line & self.set_mask
        victim = self.tags[s]
        if victim == line:
            if dirty:
                self.dirty[s] = True
            return -1
        if victim != -1 and self.dirty[s]:
            self.stats.writebacks += 1
        self.tags[s] = line
        self.dirty[s] = dirty
        return victim

    def mark_dirty(self, line: int) -> None:
        s = line & self.set_mask
        if self.tags[s] == line:
            self.dirty[s] = True

    def contains(self, line: int) -> bool:
        """Presence probe that does not perturb statistics."""
        return self.tags[line & self.set_mask] == line

    # -- page management paths ---------------------------------------------
    def invalidate_line(self, line: int) -> bool:
        """Drop *line* if present (coherence invalidation).  True if it was resident."""
        s = line & self.set_mask
        if self.tags[s] == line:
            self.tags[s] = -1
            self.dirty[s] = False
            self.stats.invalidations += 1
            return True
        return False

    def flush_page(self, page: int) -> int:
        """Flush every resident line belonging to *page*.

        Models the cache flush the kernel performs before remapping a
        page.  Returns the number of lines flushed, which the kernel
        cost model converts to cycles.
        """
        amap = self.amap
        lpp = amap.lines_per_page
        first = page * lpp
        tags = self.tags
        mask = self.set_mask
        # A page's lines map to `lines_per_page` consecutive sets (mod
        # n_sets); iterate those rather than scanning the whole cache.
        span = min(lpp, self.n_sets)
        bulk = getattr(tags, "flush_page_bulk", None)
        if bulk is not None:
            # Array-backed tag store (vectorized replay): one numpy
            # sweep over the span instead of span single-element reads.
            flushed = bulk(self.dirty, first, span, mask,
                           amap.line_shift, page)
        else:
            flushed = 0
            for offset in range(span):
                # Every line of the page whose set == (first+offset)&mask.
                s = (first + offset) & mask
                tag = tags[s]
                if tag != -1 and (tag >> amap.line_shift) == page:
                    tags[s] = -1
                    self.dirty[s] = False
                    flushed += 1
        self.stats.flushed_lines += flushed
        return flushed

    def resident_lines_of_page(self, page: int) -> list[int]:
        amap = self.amap
        return [t for t in self.tags if t != -1 and (t >> amap.line_shift) == page]

    def resident_lines(self) -> list[int]:
        """All resident line ids (invariant-checker sweep)."""
        return [t for t in self.tags if t != -1]

    def clear(self) -> None:
        self.tags = [-1] * self.n_sets
        self.dirty = [False] * self.n_sets
