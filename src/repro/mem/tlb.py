"""TLB and per-page reference-bit model.

AS-COMA's pageout daemon detects cold pages with a second-chance
algorithm driven by "the TLB reference bit associated with each S-COMA
page" (Section 3).  We therefore model, per node:

* a small fully-associative TLB with FIFO replacement (miss cost is
  charged by the kernel cost model; the TLB exists mainly so that page
  remaps have a realistic shoot-down/refill cost), and
* a reference-bit table consulted and reset by the pageout daemon.

The reference bits are the load-bearing piece: the second-chance scan in
:mod:`repro.kernel.pageout` reads and clears them to decide which S-COMA
pages are cold enough to evict.
"""

from __future__ import annotations

from collections import OrderedDict

__all__ = ["TLB"]


class TLB:
    """Fully-associative FIFO TLB with per-page reference bits."""

    __slots__ = ("capacity", "entries", "ref_bits", "hits", "misses", "shootdowns")

    def __init__(self, capacity: int = 128) -> None:
        if capacity <= 0:
            raise ValueError("TLB capacity must be positive")
        self.capacity = capacity
        self.entries: OrderedDict[int, None] = OrderedDict()
        # Reference bits persist beyond TLB residency: the paper's VM
        # keeps them in the pmap, and the pageout daemon consults them
        # for *every* S-COMA page, resident in the TLB or not.
        self.ref_bits: dict[int, bool] = {}
        self.hits = 0
        self.misses = 0
        self.shootdowns = 0

    def access(self, page: int) -> bool:
        """Touch *page*: set its reference bit, return True on TLB hit."""
        self.ref_bits[page] = True
        if page in self.entries:
            self.hits += 1
            return True
        self.misses += 1
        if len(self.entries) >= self.capacity:
            self.entries.popitem(last=False)
        self.entries[page] = None
        return False

    def reference_bit(self, page: int) -> bool:
        return self.ref_bits.get(page, False)

    def clear_reference_bit(self, page: int) -> None:
        self.ref_bits[page] = False

    def shootdown(self, page: int) -> None:
        """Remove *page*'s translation (remap/eviction path)."""
        self.entries.pop(page, None)
        self.ref_bits.pop(page, None)
        self.shootdowns += 1

    def resident(self, page: int) -> bool:
        return page in self.entries
