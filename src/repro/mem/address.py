"""Address arithmetic for the simulated global shared address space.

The machine exposes a single global *shared* address space divided into
fixed-size pages.  Within a page, the processor cache operates on 32-byte
*lines* and the DSM engine transfers 128-byte *chunks* (4 lines), exactly
as in the paper's simulated machine (Section 4.1).

Throughout the simulator, addresses are carried as integer *line ids*:

    line_id = page_id * lines_per_page + line_in_page

This keeps every hot-path computation a shift/mask on a Python int and
avoids carrying byte addresses around.  :class:`AddressMap` centralises
all of the derived geometry so the rest of the code never hard-codes a
page or line size.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["AddressMap", "DEFAULT_PAGE_BYTES", "DEFAULT_LINE_BYTES", "DEFAULT_CHUNK_BYTES"]

DEFAULT_PAGE_BYTES = 4096
DEFAULT_LINE_BYTES = 32
DEFAULT_CHUNK_BYTES = 128


def _log2_exact(value: int, what: str) -> int:
    """Return log2(value), raising if *value* is not a positive power of two."""
    if value <= 0 or value & (value - 1):
        raise ValueError(f"{what} must be a positive power of two, got {value}")
    return value.bit_length() - 1


@dataclass(frozen=True)
class AddressMap:
    """Geometry of the shared address space.

    Parameters mirror Table 3 of the paper: 4 KiB pages, 32-byte L1
    lines, 128-byte DSM transfer chunks.

    The derived geometry (``lines_per_page``, ``line_shift``, ...) is
    precomputed once at construction: these values sit on the replay
    engine's per-reference path, where recomputing them as properties
    showed up as a measurable share of the interpreter loop (see
    ``docs/performance.md``).  They are plain attributes, excluded from
    the dataclass equality/hash, and always consistent with the three
    size fields.
    """

    page_bytes: int = DEFAULT_PAGE_BYTES
    line_bytes: int = DEFAULT_LINE_BYTES
    chunk_bytes: int = DEFAULT_CHUNK_BYTES

    #: log2(lines_per_page): shift converting line id -> page id.
    line_shift: int = field(init=False, compare=False, repr=False)
    #: log2(lines_per_chunk): shift converting line id -> chunk id.
    chunk_shift: int = field(init=False, compare=False, repr=False)
    lines_per_page: int = field(init=False, compare=False, repr=False)
    lines_per_chunk: int = field(init=False, compare=False, repr=False)
    chunks_per_page: int = field(init=False, compare=False, repr=False)

    def __post_init__(self) -> None:
        _log2_exact(self.page_bytes, "page_bytes")
        _log2_exact(self.line_bytes, "line_bytes")
        _log2_exact(self.chunk_bytes, "chunk_bytes")
        if self.chunk_bytes % self.line_bytes:
            raise ValueError("chunk_bytes must be a multiple of line_bytes")
        if self.page_bytes % self.chunk_bytes:
            raise ValueError("page_bytes must be a multiple of chunk_bytes")
        set_ = object.__setattr__
        set_(self, "lines_per_page", self.page_bytes // self.line_bytes)
        set_(self, "lines_per_chunk", self.chunk_bytes // self.line_bytes)
        set_(self, "chunks_per_page", self.page_bytes // self.chunk_bytes)
        set_(self, "line_shift",
             _log2_exact(self.lines_per_page, "lines_per_page"))
        set_(self, "chunk_shift",
             _log2_exact(self.lines_per_chunk, "lines_per_chunk"))

    # -- conversions -----------------------------------------------------
    def line_id(self, page: int, line_in_page: int) -> int:
        """Compose a global line id from (page, line-within-page)."""
        lpp = self.lines_per_page
        if not 0 <= line_in_page < lpp:
            raise ValueError(f"line_in_page {line_in_page} out of range [0, {lpp})")
        return page * lpp + line_in_page

    def page_of_line(self, line: int) -> int:
        return line >> self.line_shift

    def chunk_of_line(self, line: int) -> int:
        """Global chunk id containing *line*."""
        return line >> self.chunk_shift

    def page_of_chunk(self, chunk: int) -> int:
        return chunk >> (self.line_shift - self.chunk_shift)

    def first_chunk_of_page(self, page: int) -> int:
        return page * self.chunks_per_page

    def chunk_in_page(self, line: int) -> int:
        """Index of the chunk containing *line* within its page (0..chunks_per_page-1)."""
        return (line >> self.chunk_shift) & (self.chunks_per_page - 1)

    def line_in_page(self, line: int) -> int:
        return line & (self.lines_per_page - 1)

    def lines_of_chunk(self, chunk: int) -> range:
        lpc = self.lines_per_chunk
        start = chunk * lpc
        return range(start, start + lpc)

    def chunks_of_page(self, page: int) -> range:
        cpp = self.chunks_per_page
        start = page * cpp
        return range(start, start + cpp)
