"""Banked main-memory controller occupancy model.

The paper models a multi-bank main memory controller that supplies data
from local memory in ~50 cycles (Section 4.1) and reports that *average*
latencies are considerably higher than the minimum because of contention
for memory banks, which they "accurately model".

We model each bank as a resource with a ``busy_until`` timestamp.  An
access at time ``now`` to bank ``b`` starts at ``max(now, busy_until[b])``
and occupies the bank for ``occupancy`` cycles; the access latency is the
fixed service latency plus any queueing delay.  Banks are interleaved at
DSM-chunk granularity, the grain at which the DSM engine moves data.
"""

from __future__ import annotations

__all__ = ["BankedMemory"]


class BankedMemory:
    """Per-node banked DRAM with simple busy-until contention."""

    __slots__ = ("n_banks", "bank_mask", "busy_until", "service_cycles",
                 "occupancy_cycles", "max_queue", "accesses", "contended",
                 "total_queue_cycles")

    def __init__(self, n_banks: int = 4, service_cycles: int = 50,
                 occupancy_cycles: int = 20,
                 max_queue_occupancies: int = 8) -> None:
        if n_banks <= 0 or n_banks & (n_banks - 1):
            raise ValueError("bank count must be a positive power of two")
        if service_cycles <= 0 or occupancy_cycles <= 0:
            raise ValueError("cycle parameters must be positive")
        self.n_banks = n_banks
        self.bank_mask = n_banks - 1
        self.busy_until = [0] * n_banks
        self.service_cycles = service_cycles
        self.occupancy_cycles = occupancy_cycles
        # Requests arrive stamped with loosely-synchronised node clocks
        # (the engine lets nodes drift apart by a scheduling quantum), so
        # a raw busy_until comparison would book clock *skew* as queueing.
        # Bounding the per-request queue estimate to a few service slots
        # keeps the contention signal and discards the skew artifact.
        self.max_queue = max_queue_occupancies * occupancy_cycles
        self.accesses = 0
        self.contended = 0
        self.total_queue_cycles = 0

    def access(self, chunk: int, now: int) -> int:
        """Access the bank holding *chunk* at time *now*.

        Returns the total latency (service + queueing) in cycles.
        """
        bank = chunk & self.bank_mask
        busy = self.busy_until[bank]
        queue = busy - now if busy > now else 0
        if queue > self.max_queue:
            queue = self.max_queue
        start = now + queue
        self.busy_until[bank] = start + self.occupancy_cycles
        self.accesses += 1
        if queue:
            self.contended += 1
            self.total_queue_cycles += queue
        return self.service_cycles + queue

    def min_latency(self) -> int:
        """Contention-free service latency (Table 4's 'Local Memory' row)."""
        return self.service_cycles

    def utilisation_stats(self) -> dict:
        return {
            "accesses": self.accesses,
            "contended": self.contended,
            "total_queue_cycles": self.total_queue_cycles,
        }
