"""Memory-hierarchy substrates: address map, L1 cache, RAC, DRAM banks, TLB."""

from .address import AddressMap
from .cache import CacheStats, DirectMappedCache
from .dram import BankedMemory
from .rac import RemoteAccessCache
from .setassoc import SetAssociativeCache
from .tlb import TLB

__all__ = [
    "AddressMap",
    "BankedMemory",
    "CacheStats",
    "DirectMappedCache",
    "RemoteAccessCache",
    "SetAssociativeCache",
    "TLB",
]
