"""Continuous performance measurement for the replay engine.

The ROADMAP's north star is a simulator that runs "as fast as the
hardware allows"; this package is how we know whether that is still
true.  It provides:

* :mod:`repro.perf.timing` -- ``Timer`` / ``BenchResult`` primitives
  (wall time, events/sec, peak RSS);
* :mod:`repro.perf.suite` -- the curated microbenchmark suite behind
  ``python -m repro bench`` and the committed ``BENCH_*.json``
  baselines at the repo root (``benchmarks/test_perf_regression.py``
  gates against them).

Methodology notes live in ``docs/performance.md``.  Every engine
optimisation the suite measures is pinned bit-identical to the
reference replay path by ``tests/test_perf_parity.py``.
"""

from .suite import (ALL_APPS, E2E_SCALE, MATRIX_CELLS, MICRO_SCALE,
                    bench_checker_overhead, bench_matrix_e2e,
                    bench_matrix_micro, bench_obs_overhead,
                    bench_serve_warm, bench_single_cell,
                    bench_trace_generation, bench_trace_generation_cached,
                    bench_vector_matrix_micro,
                    bench_payload, load_bench_json, run_suite)
from .timing import BenchResult, Timer, peak_rss_kib, run_bench

__all__ = [
    "Timer",
    "BenchResult",
    "peak_rss_kib",
    "run_bench",
    "ALL_APPS",
    "E2E_SCALE",
    "MICRO_SCALE",
    "MATRIX_CELLS",
    "bench_single_cell",
    "bench_matrix_micro",
    "bench_vector_matrix_micro",
    "bench_matrix_e2e",
    "bench_trace_generation",
    "bench_trace_generation_cached",
    "bench_checker_overhead",
    "bench_obs_overhead",
    "bench_serve_warm",
    "run_suite",
    "bench_payload",
    "load_bench_json",
]
