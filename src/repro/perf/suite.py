"""The curated microbenchmark suite behind ``python -m repro bench``.

Four benchmark families, chosen to bracket the simulator's cost
structure (docs/performance.md):

* ``single:<app>/<arch>`` -- one evaluation cell per architecture, so a
  regression localised to one policy's code path is visible on its own;
* ``matrix_micro`` -- a 10-cell slice of the evaluation matrix
  (fft + em3d across all five architectures at 70% pressure); this is
  the headline number and what ``BENCH_*.json`` speedups are quoted
  against;
* ``tracegen:<app>`` -- workload generation (numpy-vectorised, so it
  regresses independently of the replay loop);
* ``checker:<app>/<arch>`` -- a cell replayed under the online
  invariant checker, pinning the checker-on overhead factor.

Workload generation is hoisted out of every replay measurement (traces
are cached and replayed many times in real sweeps), and engine benches
construct a fresh :class:`Engine` per repeat so no directory/cache
state leaks between repeats.  All benches run the store-free library
path; the result store would otherwise turn repeats into disk reads.
"""

from __future__ import annotations

import json
import platform
import time

from ..harness.experiment import ARCHITECTURES, get_workload, scaled_policy
from ..sim.config import SystemConfig
from ..sim.engine import Engine
from .timing import BenchResult, run_bench

__all__ = ["MICRO_SCALE", "MATRIX_APPS", "MATRIX_PRESSURE", "MATRIX_CELLS",
           "bench_single_cell", "bench_matrix_micro",
           "bench_trace_generation", "bench_checker_overhead", "run_suite",
           "bench_payload", "load_bench_json"]

#: Workload scale all replay microbenchmarks run at: large enough that
#: the inner loop dominates (~100k events per cell), small enough that
#: the whole suite stays under a minute.
MICRO_SCALE = 0.25

#: The matrix micro slice: one RAC-friendly app (fft) and one
#: RAC-hostile one (em3d) across every architecture, at the 70%
#: pressure point where the page-management machinery is active.
MATRIX_APPS = ("fft", "em3d")
MATRIX_PRESSURE = 0.7
MATRIX_CELLS = tuple((app, arch, MATRIX_PRESSURE)
                     for app in MATRIX_APPS for arch in ARCHITECTURES)


def _workload_events(wl) -> int:
    return sum(len(t.kinds) for t in wl.traces)


def _engine(wl, arch: str, pressure: float) -> Engine:
    cfg = SystemConfig(n_nodes=wl.n_nodes, memory_pressure=pressure)
    return Engine(wl, scaled_policy(arch), config=cfg)


# ----------------------------------------------------------------------
def bench_single_cell(arch: str, app: str = "fft",
                      pressure: float = MATRIX_PRESSURE,
                      scale: float = MICRO_SCALE,
                      repeats: int = 3) -> BenchResult:
    """Replay one evaluation cell under *arch*."""
    wl = get_workload(app, scale)
    events = _workload_events(wl)
    return run_bench(
        f"single:{app}/{arch}",
        lambda: _engine(wl, arch, pressure).run(),
        events, repeats,
        meta={"app": app, "arch": arch, "pressure": pressure,
              "scale": scale})


def bench_matrix_micro(repeats: int = 3) -> BenchResult:
    """The headline benchmark: replay the 10-cell matrix slice.

    The cell set, scale and timing method are part of the benchmark's
    identity -- committed ``BENCH_*.json`` numbers are only comparable
    across versions because this definition does not move.
    """
    wls = {app: get_workload(app, MICRO_SCALE) for app in MATRIX_APPS}
    events = sum(_workload_events(wls[app]) for app, _, _ in MATRIX_CELLS)

    def once() -> None:
        for app, arch, pr in MATRIX_CELLS:
            _engine(wls[app], arch, pr).run()

    return run_bench("matrix_micro", once, events, repeats,
                     meta={"cells": len(MATRIX_CELLS), "apps": MATRIX_APPS,
                           "pressure": MATRIX_PRESSURE, "scale": MICRO_SCALE})


def bench_trace_generation(app: str = "em3d", scale: float = MICRO_SCALE,
                           repeats: int = 3) -> BenchResult:
    """Workload generation cost (bypasses the harness lru_cache)."""
    from ..workloads import generate_workload
    events = _workload_events(generate_workload(app, scale=scale))
    return run_bench(
        f"tracegen:{app}",
        lambda: generate_workload(app, scale=scale),
        events, repeats, meta={"app": app, "scale": scale})


def bench_checker_overhead(app: str = "fft", arch: str = "ASCOMA",
                           pressure: float = MATRIX_PRESSURE,
                           scale: float = 0.1,
                           repeats: int = 3) -> BenchResult:
    """One cell under the online invariant checker (barrier sweeps).

    Reported events/sec is the *checked* run; ``meta["overhead_x"]``
    is its slowdown factor over the plain run of the same cell, which
    is the number ``repro check`` users actually pay.
    """
    from ..check import InvariantChecker
    wl = get_workload(app, scale)
    events = _workload_events(wl)

    def checked() -> None:
        engine = _engine(wl, arch, pressure)
        InvariantChecker.attach(engine, granularity="barrier")
        engine.run()

    plain = run_bench("_plain", lambda: _engine(wl, arch, pressure).run(),
                      events, repeats)
    result = run_bench(f"checker:{app}/{arch}", checked, events, repeats,
                       meta={"app": app, "arch": arch, "pressure": pressure,
                             "scale": scale, "granularity": "barrier"})
    result.meta["plain_wall_s"] = round(plain.wall_s, 6)
    result.meta["overhead_x"] = round(result.wall_s / plain.wall_s, 3)
    return result


def run_suite(repeats: int = 3, only: str | None = None) -> list[BenchResult]:
    """Run the whole curated suite; *only* filters by name substring."""
    benches = [
        *(lambda a=arch: bench_single_cell(a, repeats=repeats)
          for arch in ARCHITECTURES),
        lambda: bench_matrix_micro(repeats=repeats),
        lambda: bench_trace_generation(repeats=repeats),
        lambda: bench_checker_overhead(repeats=repeats),
    ]
    names = [f"single:fft/{arch}" for arch in ARCHITECTURES]
    names += ["matrix_micro", "tracegen:em3d", "checker:fft/ASCOMA"]
    results = []
    for name, bench in zip(names, benches):
        if only and only not in name:
            continue
        results.append(bench())
    return results


# ----------------------------------------------------------------------
def bench_payload(results: list[BenchResult],
                  baseline: dict | None = None) -> dict:
    """JSON-ready payload for a ``BENCH_*.json`` artifact.

    With *baseline* (a previously emitted payload, or any dict with a
    ``results`` list), the baseline is embedded verbatim and speedups
    are computed for every benchmark present in both -- so the file
    records the pre-change and post-change numbers side by side.
    """
    payload = {
        "schema": 1,
        "created_unix": int(time.time()),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "results": [r.to_dict() for r in results],
    }
    if baseline is not None:
        payload["baseline"] = baseline
        base = {r["name"]: r for r in baseline.get("results", [])}
        speedups = {}
        for r in results:
            b = base.get(r.name)
            if b and b.get("events_per_sec"):
                speedups[r.name] = round(
                    r.events_per_sec / b["events_per_sec"], 3)
        payload["speedup_vs_baseline"] = speedups
    return payload


def load_bench_json(path: str) -> dict:
    with open(path, encoding="utf-8") as fh:
        return json.load(fh)
