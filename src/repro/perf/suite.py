"""The curated microbenchmark suite behind ``python -m repro bench``.

Ten benchmark families, chosen to bracket the simulator's cost
structure (docs/performance.md):

* ``single:<app>/<arch>`` -- one evaluation cell per architecture, so a
  regression localised to one policy's code path is visible on its own;
* ``matrix_micro`` -- a 10-cell slice of the evaluation matrix
  (fft + em3d across all five architectures at 70% pressure); this is
  the headline number and what ``BENCH_*.json`` speedups are quoted
  against;
* ``vector:matrix_micro`` -- the same 10-cell slice replayed through
  the vectorized SoA loop (``repro.sim.soatrace``); ``meta`` records
  the scalar fast-path wall time and the speedup factor, which the
  regression gate holds at >=3x whenever the compiled kernel is
  available;
* ``matrix_e2e`` -- the full 90-cell parallel matrix through the
  runtime executor, new dispatch (trace cache + warm workers + LPT)
  versus the preserved legacy pool path;
* ``tracegen:<app>`` -- workload generation for each of the six apps
  (numpy-vectorised, so it regresses independently of the replay loop);
* ``tracegen_cached:<app>`` -- the same workload served from the trace
  cache, with the cold generation time and speedup in ``meta``;
* ``checker:<app>/<arch>`` -- a cell replayed under the online
  invariant checker, pinning the checker-on overhead factor;
* ``obs_overhead`` -- the matrix micro slice with full ``--obs``
  telemetry (spans + kind-filtered backoff time series + JSONL sink)
  versus plain, pinning the observability overhead factor that the
  regression gate holds at <=2%;
* ``serve_warm`` -- one submit->result round-trip against a warm
  :class:`~repro.serve.JobServer` for a cached cell, versus a cold
  ``repro run`` process invocation of the same cell; the regression
  gate holds the factor at >=5x;
* ``sampling:<app>/<arch>`` -- sample-then-replay of one committed
  error-analysis cell versus full replay, recording the kept fraction,
  the trace-heap ratio and the wall-time speedup sampled sweeps bank.

Workload generation is hoisted out of every replay measurement (traces
are cached and replayed many times in real sweeps), and engine benches
construct a fresh :class:`Engine` per repeat so no directory/cache
state leaks between repeats.  All benches run the store-free library
path; the result store would otherwise turn repeats into disk reads.
"""

from __future__ import annotations

import json
import os
import platform
import tempfile
import time

from ..harness.experiment import (APP_PRESSURES, ARCHITECTURES, get_workload,
                                  scaled_policy)
from ..sim.config import SystemConfig
from ..sim.engine import Engine
from .timing import BenchResult, run_bench

__all__ = ["MICRO_SCALE", "E2E_SCALE", "ALL_APPS", "MATRIX_APPS",
           "MATRIX_PRESSURE", "MATRIX_CELLS",
           "bench_single_cell", "bench_matrix_micro",
           "bench_vector_matrix_micro", "bench_matrix_e2e",
           "bench_trace_generation", "bench_trace_generation_cached",
           "bench_checker_overhead", "bench_obs_overhead",
           "bench_serve_warm", "bench_sampling", "run_suite",
           "bench_payload", "load_bench_json"]

#: Workload scale all replay microbenchmarks run at: large enough that
#: the inner loop dominates (~100k events per cell), small enough that
#: the whole suite stays under a minute.
MICRO_SCALE = 0.25

#: Scale of the end-to-end matrix benchmark.  The generators' size
#: floors mean the full matrix costs nearly the same wall time from
#: 0.05 to 0.25, so the smallest round scale keeps the benchmark
#: representative without inflating the suite.
E2E_SCALE = 0.1

#: Every paper application, in matrix order.
ALL_APPS = tuple(APP_PRESSURES)

#: The matrix micro slice: one RAC-friendly app (fft) and one
#: RAC-hostile one (em3d) across every architecture, at the 70%
#: pressure point where the page-management machinery is active.
MATRIX_APPS = ("fft", "em3d")
MATRIX_PRESSURE = 0.7
MATRIX_CELLS = tuple((app, arch, MATRIX_PRESSURE)
                     for app in MATRIX_APPS for arch in ARCHITECTURES)


def _workload_events(wl) -> int:
    return sum(len(t.kinds) for t in wl.traces)


def _engine(wl, arch: str, pressure: float, **engine_kwargs) -> Engine:
    cfg = SystemConfig(n_nodes=wl.n_nodes, memory_pressure=pressure)
    return Engine(wl, scaled_policy(arch), config=cfg, **engine_kwargs)


# ----------------------------------------------------------------------
def bench_single_cell(arch: str, app: str = "fft",
                      pressure: float = MATRIX_PRESSURE,
                      scale: float = MICRO_SCALE,
                      repeats: int = 3) -> BenchResult:
    """Replay one evaluation cell under *arch*."""
    wl = get_workload(app, scale)
    events = _workload_events(wl)
    return run_bench(
        f"single:{app}/{arch}",
        lambda: _engine(wl, arch, pressure).run(),
        events, repeats,
        meta={"app": app, "arch": arch, "pressure": pressure,
              "scale": scale})


def bench_matrix_micro(repeats: int = 3) -> BenchResult:
    """The headline benchmark: replay the 10-cell matrix slice.

    The cell set, scale and timing method are part of the benchmark's
    identity -- committed ``BENCH_*.json`` numbers are only comparable
    across versions because this definition does not move.
    """
    wls = {app: get_workload(app, MICRO_SCALE) for app in MATRIX_APPS}
    events = sum(_workload_events(wls[app]) for app, _, _ in MATRIX_CELLS)

    def once() -> None:
        for app, arch, pr in MATRIX_CELLS:
            _engine(wls[app], arch, pr).run()

    return run_bench("matrix_micro", once, events, repeats,
                     meta={"cells": len(MATRIX_CELLS), "apps": MATRIX_APPS,
                           "pressure": MATRIX_PRESSURE, "scale": MICRO_SCALE})


def bench_vector_matrix_micro(repeats: int = 3) -> BenchResult:
    """The matrix micro slice through the vectorized SoA loop.

    Identical cell set, scale and timing method to ``matrix_micro`` --
    only the replay loop differs -- so the two benches' events/sec are
    directly comparable and the recorded speedup is exactly the
    fast->vector win.  ``meta["kernel_available"]`` records whether the
    compiled kernel actually ran: without a C compiler the vector
    engine degrades to the scalar fast path and the factor sits near
    1.0, which the regression gate treats as a skip, not a failure.
    """
    from ..sim.soatrace import vector_available

    wls = {app: get_workload(app, MICRO_SCALE) for app in MATRIX_APPS}
    events = sum(_workload_events(wls[app]) for app, _, _ in MATRIX_CELLS)

    def once(vector: bool) -> None:
        for app, arch, pr in MATRIX_CELLS:
            _engine(wls[app], arch, pr, vector_path=vector).run()

    fast = run_bench("_fast", lambda: once(False), events, repeats)
    result = run_bench("vector:matrix_micro", lambda: once(True),
                       events, repeats,
                       meta={"cells": len(MATRIX_CELLS), "apps": MATRIX_APPS,
                             "pressure": MATRIX_PRESSURE,
                             "scale": MICRO_SCALE,
                             "kernel_available": vector_available()})
    result.meta["fast_wall_s"] = round(fast.wall_s, 6)
    result.meta["speedup_x"] = round(fast.wall_s / result.wall_s, 3)
    return result


def bench_trace_generation(app: str = "em3d", scale: float = MICRO_SCALE,
                           repeats: int = 3) -> BenchResult:
    """Workload generation cost (bypasses the harness lru_cache)."""
    from ..workloads import generate_workload
    events = _workload_events(generate_workload(app, scale=scale))
    return run_bench(
        f"tracegen:{app}",
        lambda: generate_workload(app, scale=scale),
        events, repeats, meta={"app": app, "scale": scale})


def bench_trace_generation_cached(app: str = "em3d",
                                  scale: float = MICRO_SCALE,
                                  repeats: int = 3) -> BenchResult:
    """Trace-cache hit vs cold generation for one workload.

    Times a :class:`~repro.runtime.tracecache.TraceStore` disk hit
    (keying + binary load + array reconstruction) against regenerating
    the same workload; ``meta["cold_wall_s"]``/``meta["speedup_x"]``
    record the cold time and the factor -- the per-workload saving
    every fresh CLI invocation or spawn worker banks.
    """
    from ..runtime.tracecache import TraceStore
    from ..workloads import generate_workload

    wl = generate_workload(app, scale=scale)
    events = _workload_events(wl)
    cold = run_bench("_cold", lambda: generate_workload(app, scale=scale),
                     events, repeats)
    with tempfile.TemporaryDirectory() as tmp:
        store = TraceStore(tmp)
        store.put(app, scale, wl)
        result = run_bench(f"tracegen_cached:{app}",
                           lambda: store.get(app, scale),
                           events, repeats,
                           meta={"app": app, "scale": scale})
    result.meta["cold_wall_s"] = round(cold.wall_s, 6)
    result.meta["speedup_x"] = round(cold.wall_s / result.wall_s, 3)
    return result


def bench_matrix_e2e(repeats: int = 2, scale: float = E2E_SCALE) -> BenchResult:
    """The full 90-cell parallel matrix: new dispatch vs legacy pool.

    Each timed run models a fresh CLI invocation by dropping the
    process-level workload caches first.  The legacy run then behaves
    exactly like the pre-trace-cache executor (cold pool, submission
    order, ``chunksize=1``, workloads regenerated in-process); the new
    run resolves workloads from a pre-populated
    :class:`~repro.runtime.tracecache.TraceStore` and dispatches
    pre-warmed, costliest-first, in chunks.  Both paths bypass the
    result store so every repeat simulates every cell.

    ``meta`` records the legacy wall time, the speedup factor and the
    host's CPU count: the dispatch-level win grows with worker count,
    while on a single-CPU host both paths are replay-bound and the
    factor sits near 1.0.
    """
    from ..harness.parallel import matrix_specs
    from ..runtime import execute, use_trace_store
    from ..runtime.tracecache import TraceStore, clear_trace_memo, fetch_traces

    specs = matrix_specs(scale=scale)
    apps = tuple(dict.fromkeys(s.app for s in specs))
    events_of = {app: _workload_events(get_workload(app, scale))
                 for app in apps}
    events = sum(events_of[s.app] for s in specs)

    def cold_process_caches() -> None:
        clear_trace_memo()
        get_workload.cache_clear()

    def legacy_run() -> None:
        cold_process_caches()
        with use_trace_store(None):
            execute(specs, store=None, parallel=True, legacy_pool=True)

    with tempfile.TemporaryDirectory() as tmp:
        trace_store = TraceStore(tmp)
        with use_trace_store(trace_store):
            for app in apps:
                fetch_traces(app, scale)  # pre-populate the cache

        def new_run() -> None:
            cold_process_caches()
            with use_trace_store(trace_store):
                execute(specs, store=None, parallel=True)

        legacy = run_bench("_legacy", legacy_run, events, repeats)
        result = run_bench("matrix_e2e", new_run, events, repeats,
                           meta={"cells": len(specs), "scale": scale,
                                 "apps": apps})
    cold_process_caches()
    result.meta["legacy_wall_s"] = round(legacy.wall_s, 6)
    result.meta["speedup_x"] = round(legacy.wall_s / result.wall_s, 3)
    result.meta["cpu_count"] = os.cpu_count()
    return result


def bench_checker_overhead(app: str = "fft", arch: str = "ASCOMA",
                           pressure: float = MATRIX_PRESSURE,
                           scale: float = 0.1,
                           repeats: int = 3) -> BenchResult:
    """One cell under the online invariant checker (barrier sweeps).

    Reported events/sec is the *checked* run; ``meta["overhead_x"]``
    is its slowdown factor over the plain run of the same cell, which
    is the number ``repro check`` users actually pay.
    """
    from ..check import InvariantChecker
    wl = get_workload(app, scale)
    events = _workload_events(wl)

    def checked() -> None:
        engine = _engine(wl, arch, pressure)
        InvariantChecker.attach(engine, granularity="barrier")
        engine.run()

    plain = run_bench("_plain", lambda: _engine(wl, arch, pressure).run(),
                      events, repeats)
    result = run_bench(f"checker:{app}/{arch}", checked, events, repeats,
                       meta={"app": app, "arch": arch, "pressure": pressure,
                             "scale": scale, "granularity": "barrier"})
    result.meta["plain_wall_s"] = round(plain.wall_s, 6)
    result.meta["overhead_x"] = round(result.wall_s / plain.wall_s, 3)
    return result


def bench_obs_overhead(repeats: int = 3) -> BenchResult:
    """The matrix micro slice with ``--obs`` telemetry vs without.

    The observed run reproduces exactly what the executor adds per cell
    under ``--obs``: a cell/simulate span pair, a kind-filtered
    :class:`~repro.obs.BackoffTelemetry` on the engine's event bus, the
    merged backoff rows and the per-cell summary record, all written to
    a real JSONL sink.  ``meta["overhead_x"]`` is the factor users pay
    for ``--obs``; ``benchmarks/test_perf_regression.py`` gates it at
    <=2% (the budget that motivated kind-filtered subscriptions — a
    full observer would cost 2-4x by disabling the replay fast path).
    """
    from ..obs import BackoffTelemetry, ObsSink, SpanRecorder
    from ..runtime import RunSpec

    wls = {app: get_workload(app, MICRO_SCALE) for app in MATRIX_APPS}
    events = sum(_workload_events(wls[app]) for app, _, _ in MATRIX_CELLS)
    specs = {cell: RunSpec.make(*cell, scale=MICRO_SCALE)
             for cell in MATRIX_CELLS}

    def plain_once() -> None:
        for app, arch, pr in MATRIX_CELLS:
            _engine(wls[app], arch, pr).run()

    with tempfile.TemporaryDirectory() as tmp:
        def observed_once() -> None:
            obs = SpanRecorder(ObsSink(tmp))
            for cell in MATRIX_CELLS:
                app, arch, pr = cell
                spec = specs[cell]
                telemetry = BackoffTelemetry()
                with obs.span("cell", spec=spec):
                    engine = _engine(wls[app], arch, pr)
                    telemetry.attach(engine)
                    with obs.span("simulate", spec=spec):
                        engine.run()
                    obs.backoff_rows(spec, telemetry.rows)
                    obs.emit("backoff_summary", spec=spec.label(),
                             spec_hash=spec.spec_hash(),
                             **telemetry.counters())
            obs.sink.close()

        plain = run_bench("_plain", plain_once, events, repeats)
        result = run_bench("obs_overhead", observed_once, events, repeats,
                           meta={"cells": len(MATRIX_CELLS),
                                 "apps": MATRIX_APPS,
                                 "pressure": MATRIX_PRESSURE,
                                 "scale": MICRO_SCALE})
    result.meta["plain_wall_s"] = round(plain.wall_s, 6)
    result.meta["overhead_x"] = round(result.wall_s / plain.wall_s, 3)
    return result


def bench_serve_warm(rounds: int = 20, repeats: int = 3) -> BenchResult:
    """Warm-server round-trip for a cached cell vs a cold CLI run.

    The number the serve layer exists for: with a resident
    :class:`~repro.serve.JobServer` (inline backend, primed result
    store), one submit→result round-trip over the Unix socket is
    measured against ``python -m repro run`` of the *same cached cell*
    in a fresh process — interpreter startup, imports and store read
    included, simulation excluded from both sides.  ``meta`` records
    the per-round-trip latency (``roundtrip_s``), the cold invocation
    wall time (``cold_cli_s``) and the factor (``speedup_x``), which
    the regression gate holds at >=5x.
    """
    import subprocess
    import sys

    from ..runtime import RunSpec, RunStore, execute
    from ..serve import JobServer, ServeClient, ServerThread

    spec = RunSpec("fft", "ASCOMA", MATRIX_PRESSURE, 0.05)
    wl_events = _workload_events(get_workload(spec.app, spec.scale))
    with tempfile.TemporaryDirectory() as tmp:
        store = RunStore(os.path.join(tmp, "store"))
        execute([spec], store=store, parallel=False)  # prime the cache

        src_root = os.path.dirname(os.path.dirname(
            os.path.dirname(os.path.abspath(__file__))))
        env = dict(os.environ, PYTHONPATH=src_root)
        for var in ("REPRO_STORE_DIR", "REPRO_TRACE_DIR", "REPRO_OBS_DIR",
                    "REPRO_SERVE_SOCKET"):
            env.pop(var, None)
        cmd = [sys.executable, "-m", "repro", "--scale", str(spec.scale),
               "--store-dir", str(store.root), "run", spec.app, spec.arch,
               "--pressure", str(spec.pressure)]

        def cold_once() -> None:
            proc = subprocess.run(cmd, env=env, cwd=tmp,
                                  capture_output=True, text=True)
            if proc.returncode != 0:
                raise RuntimeError(f"cold CLI run failed:\n{proc.stderr}")

        cold = run_bench("_cold_cli", cold_once, wl_events, min(repeats, 2))

        sock = os.path.join(tmp, "s.sock")
        server = JobServer(sock, store=store, backend="inline", workers=2)
        with ServerThread(server):
            with ServeClient(sock) as client:
                client.submit(spec, wait=True)  # prime connection + memo

                def warm_once() -> None:
                    for _ in range(rounds):
                        job = client.submit(spec, wait=True)
                        client.result(job["id"])

                result = run_bench("serve_warm", warm_once,
                                   wl_events * rounds, repeats,
                                   meta={"spec": spec.label(),
                                         "rounds": rounds,
                                         "backend": "inline"})
    per_rt = result.wall_s / rounds
    result.meta["roundtrip_s"] = round(per_rt, 6)
    result.meta["cold_cli_s"] = round(cold.wall_s, 6)
    result.meta["speedup_x"] = round(cold.wall_s / per_rt, 3)
    return result


def bench_sampling(app: str = "em3d", arch: str = "SCOMA",
                   pressure: float = 0.9, scale: float = MICRO_SCALE,
                   rate: int = 7, repeats: int = 3) -> BenchResult:
    """Sampled replay (sample + run) vs full replay of one cell.

    Times the whole sampled path — streaming the reduction off the SoA
    decode *plus* replaying the reduced trace — against replaying the
    full trace, on a committed error-analysis cell.  ``meta`` records
    the kept-event fraction, the trace-heap ratio
    (:func:`~repro.workloads.sample.trace_memory_bytes`) and the
    wall-time factor: the speedup a ``--sample-rate`` sweep banks per
    cell.
    """
    from ..workloads.sample import (SampleSpec, sample_workload,
                                    trace_memory_bytes)

    wl = get_workload(app, scale)
    spec = SampleSpec(rate=rate)
    events = _workload_events(wl)
    sampled_wl = sample_workload(wl, spec)
    kept = _workload_events(sampled_wl)

    def sampled_once() -> None:
        reduced = sample_workload(wl, spec)
        _engine(reduced, arch, pressure).run()

    full = run_bench("_full", lambda: _engine(wl, arch, pressure).run(),
                     events, repeats)
    result = run_bench(f"sampling:{app}/{arch}", sampled_once, kept, repeats,
                       meta={"app": app, "arch": arch, "pressure": pressure,
                             "scale": scale, "rate": rate, "unit": spec.unit,
                             "kept_fraction": round(kept / events, 4),
                             "memory_ratio": round(
                                 trace_memory_bytes(sampled_wl)
                                 / trace_memory_bytes(wl), 4)})
    result.meta["full_wall_s"] = round(full.wall_s, 6)
    result.meta["speedup_x"] = round(full.wall_s / result.wall_s, 3)
    return result


def run_suite(repeats: int = 3, only: str | None = None) -> list[BenchResult]:
    """Run the whole curated suite; *only* filters by name substring.

    ``matrix_e2e`` is capped at best-of-2: it simulates 90 cells twice
    per repeat (new + legacy path), so letting it scale with *repeats*
    would dominate the suite's runtime.
    """
    benches = [
        *(lambda a=arch: bench_single_cell(a, repeats=repeats)
          for arch in ARCHITECTURES),
        lambda: bench_matrix_micro(repeats=repeats),
        lambda: bench_vector_matrix_micro(repeats=repeats),
        lambda: bench_matrix_e2e(repeats=min(repeats, 2)),
        *(lambda a=app: bench_trace_generation(a, repeats=repeats)
          for app in ALL_APPS),
        *(lambda a=app: bench_trace_generation_cached(a, repeats=repeats)
          for app in ALL_APPS),
        lambda: bench_checker_overhead(repeats=repeats),
        lambda: bench_obs_overhead(repeats=repeats),
        lambda: bench_serve_warm(repeats=repeats),
        lambda: bench_sampling(repeats=repeats),
    ]
    names = [f"single:fft/{arch}" for arch in ARCHITECTURES]
    names += ["matrix_micro", "vector:matrix_micro", "matrix_e2e"]
    names += [f"tracegen:{app}" for app in ALL_APPS]
    names += [f"tracegen_cached:{app}" for app in ALL_APPS]
    names += ["checker:fft/ASCOMA", "obs_overhead", "serve_warm"]
    names += ["sampling:em3d/SCOMA"]
    results = []
    for name, bench in zip(names, benches):
        if only and only not in name:
            continue
        results.append(bench())
    return results


# ----------------------------------------------------------------------
def bench_payload(results: list[BenchResult],
                  baseline: dict | None = None) -> dict:
    """JSON-ready payload for a ``BENCH_*.json`` artifact.

    With *baseline* (a previously emitted payload, or any dict with a
    ``results`` list), the baseline is embedded verbatim and speedups
    are computed for every benchmark present in both -- so the file
    records the pre-change and post-change numbers side by side.
    """
    payload = {
        "schema": 1,
        "created_unix": int(time.time()),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "results": [r.to_dict() for r in results],
    }
    if baseline is not None:
        payload["baseline"] = baseline
        base = {r["name"]: r for r in baseline.get("results", [])}
        speedups = {}
        for r in results:
            b = base.get(r.name)
            if b and b.get("events_per_sec"):
                speedups[r.name] = round(
                    r.events_per_sec / b["events_per_sec"], 3)
        payload["speedup_vs_baseline"] = speedups
    return payload


def load_bench_json(path: str) -> dict:
    with open(path, encoding="utf-8") as fh:
        return json.load(fh)
