"""Benchmark timing primitives: wall clock, throughput, peak RSS.

Measurement policy (see docs/performance.md): wall time comes from
``time.perf_counter``; each benchmark runs its body ``repeats`` times
and reports the *best* wall time -- interpreter benchmarks are
contaminated by one-sided noise (GC, scheduler preemption, cache
warmup), so the minimum is the most repeatable estimator of the code's
actual cost.  Peak RSS is the process high-water mark from
``getrusage`` and is therefore monotone across benchmarks in one
process; it bounds memory use, it does not attribute it.
"""

from __future__ import annotations

import resource
import time
from dataclasses import dataclass, field

__all__ = ["Timer", "BenchResult", "peak_rss_kib", "run_bench"]


def peak_rss_kib() -> int:
    """Peak resident set size of this process in KiB.

    ``ru_maxrss`` is KiB on Linux (bytes on macOS, where this will read
    ~1000x high; the suite only compares like with like, so the unit
    mismatch cannot flip a regression verdict on one platform).
    """
    return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)


class Timer:
    """Wall-clock context manager: ``with Timer() as t: ...; t.wall_s``."""

    __slots__ = ("wall_s", "_t0")

    def __init__(self) -> None:
        self.wall_s: float | None = None
        self._t0 = 0.0

    def __enter__(self) -> "Timer":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        self.wall_s = time.perf_counter() - self._t0
        return False


@dataclass
class BenchResult:
    """One benchmark's outcome.

    ``events`` is the work-unit count of a single repeat (replayed trace
    events for engine benches, generated events for tracegen), so
    ``events_per_sec`` is comparable across code versions as long as
    the benchmark definition is unchanged.
    """

    name: str
    wall_s: float
    events: int
    repeats: int
    peak_rss_kib: int
    meta: dict = field(default_factory=dict)

    @property
    def events_per_sec(self) -> float:
        return self.events / self.wall_s if self.wall_s > 0 else 0.0

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "wall_s": round(self.wall_s, 6),
            "events": self.events,
            "events_per_sec": round(self.events_per_sec, 1),
            "repeats": self.repeats,
            "peak_rss_kib": self.peak_rss_kib,
            "meta": self.meta,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "BenchResult":
        return cls(name=data["name"], wall_s=data["wall_s"],
                   events=data["events"], repeats=data.get("repeats", 1),
                   peak_rss_kib=data.get("peak_rss_kib", 0),
                   meta=data.get("meta", {}))

    def summary(self) -> str:
        return (f"{self.name:<24} {self.wall_s:8.3f}s "
                f"{self.events_per_sec:>12,.0f} ev/s "
                f"rss={self.peak_rss_kib // 1024} MiB")


def run_bench(name: str, fn, events: int, repeats: int = 3,
              meta: dict | None = None) -> BenchResult:
    """Run *fn* ``repeats`` times; report best wall time and peak RSS."""
    if repeats <= 0:
        raise ValueError("repeats must be positive")
    best = None
    for _ in range(repeats):
        with Timer() as t:
            fn()
        if best is None or t.wall_s < best:
            best = t.wall_s
    return BenchResult(name=name, wall_s=best, events=events,
                       repeats=repeats, peak_rss_kib=peak_rss_kib(),
                       meta=dict(meta or {}))
