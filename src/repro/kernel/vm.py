"""Per-node virtual-memory state: page modes and S-COMA page bookkeeping.

Every node classifies each shared page it has touched into one of three
mapping modes (paper, Section 2):

* ``HOME``   -- the page's home is this node; accesses go to local DRAM.
* ``SCOMA``  -- the page is backed by a frame of the local page cache;
  each 128-byte chunk has a valid bit (set when remote data has been
  fetched into the frame, cleared by invalidation or page flush).
* ``CCNUMA`` -- the page maps straight to its remote home; only the L1
  and the RAC can cache its data.

The page table also maintains the *clock* of S-COMA pages used by the
pageout daemon's second-chance scan.
"""

from __future__ import annotations

import enum
from collections import deque

__all__ = ["PageMode", "PageTable"]


class PageMode(enum.IntEnum):
    UNMAPPED = 0
    HOME = 1
    SCOMA = 2
    CCNUMA = 3


class PageTable:
    """One node's shared-page mapping state."""

    def __init__(self, chunks_per_page: int) -> None:
        if chunks_per_page <= 0:
            raise ValueError("chunks_per_page must be positive")
        self.chunks_per_page = chunks_per_page
        self.full_mask = (1 << chunks_per_page) - 1
        self.mode: dict[int, int] = {}
        #: S-COMA valid bits: page -> bitmask over chunks-in-page.
        self.scoma_valid: dict[int, int] = {}
        #: Second-chance clock over S-COMA pages (FIFO with re-queue).
        self.scoma_clock: deque[int] = deque()
        self.faults = 0
        self.remaps_to_scoma = 0
        self.remaps_to_ccnuma = 0

    # -- queries -----------------------------------------------------------
    def mode_of(self, page: int) -> int:
        return self.mode.get(page, PageMode.UNMAPPED)

    def scoma_page_count(self) -> int:
        return len(self.scoma_clock)

    def chunk_valid(self, page: int, chunk_in_page: int) -> bool:
        return bool(self.scoma_valid.get(page, 0) >> chunk_in_page & 1)

    def valid_chunks(self, page: int) -> int:
        """Population count of valid chunks in an S-COMA page."""
        return self.scoma_valid.get(page, 0).bit_count()

    # -- transitions ---------------------------------------------------------
    def map_home(self, page: int) -> None:
        self._assert_unmapped(page)
        self.mode[page] = PageMode.HOME

    def map_ccnuma(self, page: int) -> None:
        self._assert_unmapped(page)
        self.mode[page] = PageMode.CCNUMA

    def map_scoma(self, page: int) -> None:
        """Map *page* into the local page cache with all chunks invalid."""
        current = self.mode.get(page, PageMode.UNMAPPED)
        if current == PageMode.SCOMA:
            raise RuntimeError(f"page {page} already in S-COMA mode")
        if current == PageMode.HOME:
            raise RuntimeError(f"page {page} is home-mapped; cannot S-COMA map")
        if current == PageMode.CCNUMA:
            self.remaps_to_scoma += 1
        self.mode[page] = PageMode.SCOMA
        self.scoma_valid[page] = 0
        self.scoma_clock.append(page)

    def unmap_scoma(self, page: int, to_ccnuma: bool = True) -> None:
        """Evict *page* from the page cache.

        ``to_ccnuma=True`` (hybrids) leaves the page mapped to its remote
        home; ``False`` (pure S-COMA) returns it to UNMAPPED so the next
        touch takes a fresh page fault.
        """
        if self.mode.get(page) != PageMode.SCOMA:
            raise RuntimeError(f"page {page} is not in S-COMA mode")
        del self.scoma_valid[page]
        try:
            self.scoma_clock.remove(page)
        except ValueError:
            pass  # already rotated out by the daemon's scan
        if to_ccnuma:
            self.mode[page] = PageMode.CCNUMA
            self.remaps_to_ccnuma += 1
        else:
            del self.mode[page]

    def convert_ccnuma_to_home(self, page: int) -> None:
        """Page migration landed here: the node becomes the home."""
        if self.mode.get(page) != PageMode.CCNUMA:
            raise RuntimeError(f"page {page} is not CC-NUMA mapped")
        self.mode[page] = PageMode.HOME

    def convert_home_to_ccnuma(self, page: int) -> None:
        """Page migrated away: the old home keeps a CC-NUMA mapping."""
        if self.mode.get(page) != PageMode.HOME:
            raise RuntimeError(f"page {page} is not home-mapped")
        self.mode[page] = PageMode.CCNUMA

    def set_chunk_valid(self, page: int, chunk_in_page: int) -> None:
        self.scoma_valid[page] |= 1 << chunk_in_page

    def clear_chunk_valid(self, page: int, chunk_in_page: int) -> None:
        if page in self.scoma_valid:
            self.scoma_valid[page] &= ~(1 << chunk_in_page)

    def _assert_unmapped(self, page: int) -> None:
        if page in self.mode:
            raise RuntimeError(
                f"page {page} already mapped as {PageMode(self.mode[page]).name}")
