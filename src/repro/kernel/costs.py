"""Kernel operation cycle costs and the K-BASE / K-OVERHD split.

The paper's central empirical point is that *software overhead*
(``Toverhead``) dominates hybrid-architecture performance at high memory
pressure, and that prior studies ignored it.  Its execution-time
breakdowns separate:

* **K-BASE** -- essential kernel operations all architectures perform
  (first-touch page faults, normal allocation), and
* **K-OVERHD** -- architecture-specific overhead: relocation interrupts,
  cache flushes, page remapping, pageout-daemon execution, and the
  context switches between the user application and the daemon
  (Section 2.3).

The interrupt and relocation costs are the paper's "highly optimized"
values (Section 5.1 gives 4-digit cycle counts; the exact digits are
unreadable in the source text, so the defaults below are documented
choices of the same magnitude -- see DESIGN.md).  All values are
configuration, not constants, so sensitivity benches can sweep them.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["KernelCosts"]


@dataclass(frozen=True)
class KernelCosts:
    """Cycle charges for kernel-mediated memory-management operations."""

    #: First-touch page fault service (page table + pmap setup).  K-BASE.
    page_fault: int = 500
    #: TLB miss refill on a page with an existing mapping.  K-BASE.
    tlb_refill: int = 40
    #: Relocation interrupt delivery + handler entry/exit.  K-OVERHD.
    relocation_interrupt: int = 1000
    #: Remapping one page (page-table rewrite, pmap update, DSM engine
    #: notification, TLB shootdown).  Applied on every CC-NUMA<->S-COMA
    #: transition and on S-COMA eviction.  K-OVERHD.
    page_remap: int = 4000
    #: Flushing one valid line from the processor cache.  K-OVERHD.
    flush_per_line: int = 10
    #: Context switch between user application and pageout daemon --
    #: charged twice per daemon run (in and out).  K-OVERHD.
    context_switch: int = 500
    #: Pageout daemon per-page scan work (second-chance check).  K-OVERHD.
    daemon_scan_per_page: int = 20
    #: Fixed daemon dispatch overhead per run.  K-OVERHD.
    daemon_dispatch: int = 200
    #: Copying one DSM chunk across the network during a home
    #: *migration* (extension feature, see repro.core.migration).
    migration_copy_per_chunk: int = 60

    def __post_init__(self) -> None:
        for name in self.__dataclass_fields__:
            if getattr(self, name) < 0:
                raise ValueError(f"kernel cost {name!r} must be non-negative")

    def daemon_run_cost(self, pages_scanned: int) -> int:
        """Total K-OVERHD cycles of one pageout-daemon invocation."""
        return (2 * self.context_switch + self.daemon_dispatch
                + self.daemon_scan_per_page * pages_scanned)

    def flush_cost(self, lines_flushed: int) -> int:
        return self.flush_per_line * lines_flushed

    def relocation_cost(self, lines_flushed: int) -> int:
        """Upgrade of one page from CC-NUMA to S-COMA mode."""
        return (self.relocation_interrupt + self.page_remap
                + self.flush_cost(lines_flushed))

    def eviction_cost(self, lines_flushed: int) -> int:
        """Downgrade / eviction of one S-COMA page."""
        return self.page_remap + self.flush_cost(lines_flushed)

    def migration_cost(self, chunks_per_page: int, lines_flushed: int) -> int:
        """Moving a page's home: interrupt + page copy + remap.

        The 4 KiB copy across the network dominates; the page-table
        rewrites at both ends are folded into one remap charge.
        """
        return (self.relocation_interrupt
                + chunks_per_page * self.migration_copy_per_chunk
                + self.page_remap
                + self.flush_cost(lines_flushed))
