"""Home-page allocation policies.

Paper, Section 4.1: "We extended the first touch allocation algorithm to
distribute home pages equally to nodes by limiting the number of home
pages that are allocated at each node to a proportional share of the
total number of pages.  Once this limit is reached, remaining pages are
allocated in a round robin fashion to nodes that have not reached the
limit."  :class:`HomeAllocator` implements exactly that.

The paper also cites simpler placement policies (Marchetti et al.,
Bolosky et al.) as the CC-NUMA state of the art;
:class:`RoundRobinAllocator` and :class:`RandomAllocator` implement the
locality-blind alternatives so the placement study
(``benchmarks/test_ext_placement.py``) can quantify what balanced
first-touch buys.

An allocator assigns a *home node* to each shared page the first time
any node in the machine touches it, and stays sticky afterwards.
"""

from __future__ import annotations

__all__ = ["HomeAllocator", "RoundRobinAllocator", "RandomAllocator",
           "make_allocator"]


class HomeAllocator:
    """Machine-wide home-node assignment for shared pages."""

    def __init__(self, n_nodes: int, total_shared_pages: int) -> None:
        if n_nodes <= 0:
            raise ValueError("need at least one node")
        if total_shared_pages < 0:
            raise ValueError("total_shared_pages must be non-negative")
        self.n_nodes = n_nodes
        # Proportional share, rounded up so the quotas cover all pages.
        self.quota = -(-total_shared_pages // n_nodes) if total_shared_pages else 0
        self.home: dict[int, int] = {}
        self.count = [0] * n_nodes
        self._rr_next = 0
        self.first_touch_hits = 0
        self.round_robin_spills = 0

    def home_of(self, page: int, toucher: int) -> int:
        """Return *page*'s home node, assigning it on the first touch."""
        node = self.home.get(page)
        if node is not None:
            return node
        if not 0 <= toucher < self.n_nodes:
            raise ValueError(f"toucher {toucher} out of range")
        if self.quota == 0 or self.count[toucher] < self.quota:
            node = toucher
            self.first_touch_hits += 1
        else:
            node = self._next_under_quota()
            self.round_robin_spills += 1
        self.home[page] = node
        self.count[node] += 1
        return node

    def _next_under_quota(self) -> int:
        """Round-robin over nodes that still have quota headroom."""
        for _ in range(self.n_nodes):
            candidate = self._rr_next
            self._rr_next = (self._rr_next + 1) % self.n_nodes
            if self.count[candidate] < self.quota:
                return candidate
        # Every node at quota (rounding slack exhausted): spill to the
        # least-loaded node to preserve balance.
        return min(range(self.n_nodes), key=self.count.__getitem__)

    def migrate(self, page: int, new_home: int) -> int:
        """Reassign *page*'s home (dynamic page migration extension).

        Returns the previous home.  Quota accounting follows the page so
        balance statistics stay meaningful.
        """
        if not 0 <= new_home < self.n_nodes:
            raise ValueError(f"new_home {new_home} out of range")
        old = self.home.get(page)
        if old is None:
            raise KeyError(f"page {page} has no home yet")
        if old != new_home:
            self.home[page] = new_home
            self.count[old] -= 1
            self.count[new_home] += 1
        return old

    def assigned(self, page: int) -> bool:
        return page in self.home

    def pages_homed_at(self, node: int) -> int:
        return self.count[node]

    def imbalance(self) -> int:
        """Max - min home pages across nodes (0 is perfectly balanced)."""
        return max(self.count) - min(self.count) if self.count else 0


class RoundRobinAllocator(HomeAllocator):
    """Locality-blind placement: pages are homed strictly round-robin.

    Perfectly balanced by construction but ignores who touches the data
    -- the baseline the paper's extended first-touch improves on.
    """

    def home_of(self, page: int, toucher: int) -> int:
        node = self.home.get(page)
        if node is not None:
            return node
        if not 0 <= toucher < self.n_nodes:
            raise ValueError(f"toucher {toucher} out of range")
        node = self._rr_next
        self._rr_next = (self._rr_next + 1) % self.n_nodes
        self.home[page] = node
        self.count[node] += 1
        self.round_robin_spills += 1
        return node


class RandomAllocator(HomeAllocator):
    """Locality-blind placement: pages are homed pseudo-randomly.

    Deterministic given the seed (hash of page id), so runs remain
    reproducible.
    """

    def __init__(self, n_nodes: int, total_shared_pages: int,
                 seed: int = 12345) -> None:
        super().__init__(n_nodes, total_shared_pages)
        self.seed = seed

    def home_of(self, page: int, toucher: int) -> int:
        node = self.home.get(page)
        if node is not None:
            return node
        if not 0 <= toucher < self.n_nodes:
            raise ValueError(f"toucher {toucher} out of range")
        # Full splitmix64 finalizer: uniform low bits, deterministic.
        mask = (1 << 64) - 1
        x = (page * 0x9E3779B97F4A7C15 + self.seed) & mask
        x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9 & mask
        x = (x ^ (x >> 27)) * 0x94D049BB133111EB & mask
        x ^= x >> 31
        node = x % self.n_nodes
        self.home[page] = node
        self.count[node] += 1
        return node


#: Registry used by SystemConfig.home_placement.
_ALLOCATORS = {
    "first-touch": HomeAllocator,
    "round-robin": RoundRobinAllocator,
    "random": RandomAllocator,
}


def make_allocator(policy: str, n_nodes: int, total_shared_pages: int):
    """Instantiate a home-placement policy by name."""
    try:
        cls = _ALLOCATORS[policy]
    except KeyError:
        raise ValueError(f"unknown home placement {policy!r}; choose from"
                         f" {sorted(_ALLOCATORS)}") from None
    return cls(n_nodes, total_shared_pages)
