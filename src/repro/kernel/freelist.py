"""Per-node free page pool.

The kernel "maintains a pool of free local pages that it can use to
satisfy allocation or relocation requests.  The pageout daemon attempts
to keep the size of this pool between free_target and free_min pages"
(paper, Section 3).  ``free_min`` and ``free_target`` are fractions of
the node's total physical memory (the paper sets them to a few percent
of total memory; exact digits unreadable -- see DESIGN.md).

The pool tracks only *counts*: which physical frame backs which page is
immaterial to timing, so frames are fungible.
"""

from __future__ import annotations

__all__ = ["FreePagePool"]


class FreePagePool:
    """Counter-based free-frame pool with low-water marks."""

    __slots__ = ("capacity", "free", "free_min", "free_target",
                 "allocations", "releases", "failed_allocations")

    def __init__(self, cache_frames: int, total_frames: int,
                 free_min_frac: float = 0.005, free_target_frac: float = 0.02) -> None:
        if cache_frames < 0 or total_frames <= 0:
            raise ValueError("frame counts must be positive")
        if not 0 <= free_min_frac <= free_target_frac <= 1:
            raise ValueError("need 0 <= free_min_frac <= free_target_frac <= 1")
        self.capacity = cache_frames
        self.free = cache_frames
        # Water marks are fractions of *total* node memory, as in BSD,
        # but can never exceed the page-cache capacity itself.
        self.free_min = min(cache_frames, max(1, round(total_frames * free_min_frac)))
        self.free_target = min(cache_frames, max(self.free_min,
                                                 round(total_frames * free_target_frac)))
        self.allocations = 0
        self.releases = 0
        self.failed_allocations = 0

    def try_allocate(self) -> bool:
        """Take one frame from the pool.  False if empty."""
        if self.free > 0:
            self.free -= 1
            self.allocations += 1
            return True
        self.failed_allocations += 1
        return False

    def release(self) -> None:
        """Return one frame to the pool (page eviction)."""
        if self.free >= self.capacity:
            raise RuntimeError("free pool overflow: released more frames than exist")
        self.free += 1
        self.releases += 1

    @property
    def below_min(self) -> bool:
        return self.free < self.free_min

    @property
    def below_target(self) -> bool:
        return self.free < self.free_target

    @property
    def in_use(self) -> int:
        return self.capacity - self.free

    def deficit_to_target(self) -> int:
        return max(0, self.free_target - self.free)

    def ledger_consistent(self) -> bool:
        """Frames out must equal the allocation ledger (invariant hook)."""
        return (0 <= self.free <= self.capacity
                and self.in_use == self.allocations - self.releases)
