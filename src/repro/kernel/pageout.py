"""Pageout daemon: second-chance reclamation and thrashing detection.

Paper, Section 3: whenever the free page pool falls below ``free_min``,
the pageout daemon tries to evict enough *cold* S-COMA pages to refill
the pool to ``free_target``.  Cold pages are found with a second-chance
(clock) algorithm over the TLB reference bits: a page whose bit is set
gets the bit cleared and survives this scan; a page whose bit is still
clear on the next visit is cold and is evicted.

Whenever the daemon cannot reclaim its target, the memory is saturated
with hot pages -- the machine is *thrashing*.  The daemon reports the
shortfall to the architecture policy (AS-COMA reacts by raising the
relocation threshold, stretching the daemon interval and, in extremis,
disabling relocation; R-NUMA ignores it; pure S-COMA has no choice but
to keep evicting).

The daemon does not evict pages itself: it asks the owning node through
an ``evict(page)`` callback so that cache flushes, directory updates and
cycle accounting happen in one place (:mod:`repro.sim.node`).
"""

from __future__ import annotations

from typing import Callable

from .costs import KernelCosts
from .freelist import FreePagePool
from .vm import PageTable

__all__ = ["PageoutDaemon", "DaemonRunResult"]


class DaemonRunResult:
    """Outcome of one daemon invocation."""

    __slots__ = ("reclaimed", "scanned", "target", "cost", "thrashing")

    def __init__(self, reclaimed: int, scanned: int, target: int, cost: int) -> None:
        self.reclaimed = reclaimed
        self.scanned = scanned
        self.target = target
        self.cost = cost
        #: True when the daemon could not refill the pool to free_target:
        #: the page cache holds only hot pages.
        self.thrashing = reclaimed < target

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"DaemonRunResult(reclaimed={self.reclaimed}, scanned={self.scanned}, "
                f"target={self.target}, cost={self.cost}, thrashing={self.thrashing})")


class PageoutDaemon:
    """One node's pageout daemon."""

    def __init__(self, page_table: PageTable, pool: FreePagePool,
                 costs: KernelCosts,
                 reference_bit: Callable[[int], bool],
                 clear_reference_bit: Callable[[int], None],
                 evict: Callable[[int], None],
                 base_interval: int = 50_000) -> None:
        self.page_table = page_table
        self.pool = pool
        self.costs = costs
        self.reference_bit = reference_bit
        self.clear_reference_bit = clear_reference_bit
        self.evict = evict
        #: Minimum cycles between invocations; AS-COMA's backoff grows it.
        self.base_interval = base_interval
        self.interval = base_interval
        self.next_run_at = 0
        self.runs = 0
        self.total_reclaimed = 0
        self.total_cost = 0
        self.thrash_events = 0

    # ------------------------------------------------------------------
    def due(self, now: int) -> bool:
        """Should the daemon run?  Pool below free_min and not rate-limited."""
        return self.pool.below_min and now >= self.next_run_at

    def run(self, now: int) -> DaemonRunResult:
        """One daemon invocation: a single second-chance revolution.

        Pages whose reference bit is set get the bit cleared and survive
        (their second chance); pages whose bit is still clear from the
        *previous* revolution are cold and are evicted.  The daemon never
        evicts a referenced page -- if one revolution cannot meet the
        target the run reports thrashing instead, which is AS-COMA's
        backoff trigger (Section 3).  Forced evictions of hot pages only
        ever happen on the relocation/fault paths of policies that allow
        them (pure S-COMA, R-NUMA, VC-NUMA).
        """
        target = self.pool.deficit_to_target()
        clock = self.page_table.scoma_clock
        reclaimed = 0
        scanned = 0
        max_scans = len(clock)
        while reclaimed < target and clock and scanned < max_scans:
            page = clock[0]
            scanned += 1
            if self.reference_bit(page):
                # First chance: clear the bit, rotate to the back.
                self.clear_reference_bit(page)
                clock.rotate(-1)
            else:
                # Cold page: evict (callback pops it from the clock and
                # releases its frame back to the pool).
                self.evict(page)
                reclaimed += 1
        cost = self.costs.daemon_run_cost(scanned)
        self.runs += 1
        self.total_reclaimed += reclaimed
        self.total_cost += cost
        self.next_run_at = now + self.interval
        result = DaemonRunResult(reclaimed, scanned, target, cost)
        if result.thrashing:
            self.thrash_events += 1
        return result

    # -- policy knobs ---------------------------------------------------
    def stretch_interval(self, factor: float = 2.0, cap: int | None = None) -> None:
        """Back off the daemon's own invocation rate (AS-COMA, Section 3).

        The caller's *cap* is an absolute ceiling and wins over the
        ``base_interval`` floor: clamping to the cap must happen last,
        or a ``cap < base_interval`` would be silently ignored and the
        interval could exceed what the caller asked for.
        """
        new = max(self.base_interval, int(self.interval * factor))
        if cap is not None:
            new = min(new, cap)
        self.interval = new

    def reset_interval(self) -> None:
        self.interval = self.base_interval
