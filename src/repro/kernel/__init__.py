"""OS/VM substrates: kernel costs, home allocation, free pool, pageout, page table."""

from .allocation import HomeAllocator
from .costs import KernelCosts
from .freelist import FreePagePool
from .pageout import DaemonRunResult, PageoutDaemon
from .vm import PageMode, PageTable

__all__ = [
    "DaemonRunResult",
    "FreePagePool",
    "HomeAllocator",
    "KernelCosts",
    "PageMode",
    "PageoutDaemon",
    "PageTable",
]
