"""Workload trace generators for the paper's six applications.

Each module provides ``generate(...) -> WorkloadTraces`` plus a
``default_spec`` describing its working-set geometry.  ``WORKLOADS``
maps the paper's application names to their generators and records the
node count each runs on (lu uses 4 nodes, everything else 8 --
Section 4.2).
"""

from . import barnes, em3d, fft, ingest, lu, migratory, ocean, radix, sample, synthetic
from .base import SyntheticGenerator, WorkloadSpec
from .ingest import ingest_file, is_external_app, register_external
from .sample import SampleSpec, sample_workload

#: name -> (generate function, paper node count)
WORKLOADS = {
    "barnes": (barnes.generate, 8),
    "em3d": (em3d.generate, 8),
    "fft": (fft.generate, 8),
    "lu": (lu.generate, 4),
    "ocean": (ocean.generate, 8),
    "radix": (radix.generate, 8),
}


def generate_workload(name: str, scale: float = 1.0, **overrides):
    """Build one of the paper's workloads by name at the paper's node count."""
    try:
        fn, n_nodes = WORKLOADS[name]
    except KeyError:
        raise ValueError(
            f"unknown workload {name!r}; choose from {sorted(WORKLOADS)}"
        ) from None
    return fn(n_nodes=n_nodes, scale=scale, **overrides)


def workload_spec(name: str, scale: float = 1.0, **overrides) -> WorkloadSpec:
    """The exact :class:`WorkloadSpec` ``generate_workload`` would use.

    Lets the trace cache key a workload by its canonical parameters
    without paying for generation: every application module routes
    ``generate`` through its ``default_spec``, so this spec (plus the
    application name, which selects the generator class) fully
    determines the generated traces.
    """
    import sys

    try:
        fn, n_nodes = WORKLOADS[name]
    except KeyError:
        raise ValueError(
            f"unknown workload {name!r}; choose from {sorted(WORKLOADS)}"
        ) from None
    module = sys.modules[fn.__module__]
    return module.default_spec(n_nodes=n_nodes, scale=scale, **overrides)


__all__ = [
    "SampleSpec",
    "SyntheticGenerator",
    "WORKLOADS",
    "WorkloadSpec",
    "barnes",
    "em3d",
    "fft",
    "generate_workload",
    "ingest",
    "ingest_file",
    "is_external_app",
    "lu",
    "migratory",
    "ocean",
    "radix",
    "register_external",
    "sample",
    "sample_workload",
    "synthetic",
    "workload_spec",
]
