"""Workload trace generators for the paper's six applications.

Each module provides ``generate(...) -> WorkloadTraces`` plus a
``default_spec`` describing its working-set geometry.  ``WORKLOADS``
maps the paper's application names to their generators and records the
node count each runs on (lu uses 4 nodes, everything else 8 --
Section 4.2).
"""

from . import barnes, em3d, fft, lu, migratory, ocean, radix, synthetic
from .base import SyntheticGenerator, WorkloadSpec

#: name -> (generate function, paper node count)
WORKLOADS = {
    "barnes": (barnes.generate, 8),
    "em3d": (em3d.generate, 8),
    "fft": (fft.generate, 8),
    "lu": (lu.generate, 4),
    "ocean": (ocean.generate, 8),
    "radix": (radix.generate, 8),
}


def generate_workload(name: str, scale: float = 1.0, **overrides):
    """Build one of the paper's workloads by name at the paper's node count."""
    try:
        fn, n_nodes = WORKLOADS[name]
    except KeyError:
        raise ValueError(
            f"unknown workload {name!r}; choose from {sorted(WORKLOADS)}"
        ) from None
    return fn(n_nodes=n_nodes, scale=scale, **overrides)


__all__ = [
    "SyntheticGenerator",
    "WORKLOADS",
    "WorkloadSpec",
    "barnes",
    "em3d",
    "fft",
    "generate_workload",
    "lu",
    "migratory",
    "ocean",
    "radix",
    "synthetic",
]
