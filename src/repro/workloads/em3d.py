"""em3d: Split-C electromagnetic wave propagation stand-in.

Paper characterisation (Section 5.2): em3d iterates over a bipartite
graph whose remote edges make "most of the remote pages ever accessed
... part of the node's working set, i.e., they are hot pages".  Around
55% of a node's memory holds home data (ideal pressure ~53%), so above
~70% pressure the hybrids start thrashing and R-NUMA/VC-NUMA fall below
CC-NUMA while AS-COMA keeps winning -- em3d is the paper's showcase for
the danger of "focusing solely on reducing remote conflict misses".

The stand-in: remote pages drawn from the two neighbouring nodes
(graph partition boundary), a very high hot fraction, medium-length
dense visit runs, and a read-mostly mix (E nodes read remote H nodes
and update local values).
"""

from __future__ import annotations

import numpy as np

from ..sim.trace import WorkloadTraces
from .base import SyntheticGenerator, WorkloadSpec

__all__ = ["generate", "default_spec", "EM3DGenerator"]


class EM3DGenerator(SyntheticGenerator):
    """Remote edges land on neighbouring graph partitions."""

    def remote_pages_of(self, node: int, rng: np.random.Generator) -> np.ndarray:
        spec = self.spec
        h = spec.home_pages_per_node
        left = (node - 1) % spec.n_nodes
        right = (node + 1) % spec.n_nodes
        neighbours = np.concatenate([
            np.arange(left * h, (left + 1) * h),
            np.arange(right * h, (right + 1) * h),
        ])
        count = min(spec.remote_pages_per_node, len(neighbours))
        return rng.choice(neighbours, size=count, replace=False)


def default_spec(n_nodes: int = 8, scale: float = 1.0, seed: int = 7,
                 **overrides) -> WorkloadSpec:
    params = dict(
        name="em3d",
        n_nodes=n_nodes,
        home_pages_per_node=max(16, int(110 * scale)),
        remote_pages_per_node=max(8, int(90 * scale)),
        hot_fraction=0.95,
        sweeps=14,
        lines_per_visit=8,
        visit_cluster=1,
        write_fraction=0.1,
        scatter_lines=True,
        compute_per_ref=6.0,
        local_cycles_per_sweep=3000,
        home_lines_per_sweep=384,
        compute_jitter=0.04,
        seed=seed,
    )
    params.update(overrides)
    return WorkloadSpec(**params)


def generate(n_nodes: int = 8, scale: float = 1.0, seed: int = 7,
             **overrides) -> WorkloadTraces:
    """Build the em3d stand-in workload (ideal pressure ~= 0.55)."""
    return EM3DGenerator(default_spec(n_nodes, scale, seed,
                                      **overrides)).generate()
