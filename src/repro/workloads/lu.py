"""lu: SPLASH-2 blocked dense LU factorisation stand-in.

Paper characterisation (Section 5.2): "in lu, each process accesses
every remote page enough times to warrant remapping, similar to radix.
However, every process uses each set of shared pages in the problem set
for only a short time before moving to another set of pages.  Thus,
unlike radix, only a small set of remote pages are active at any time,
and a small page cache can hold each process's active working set
completely."  All hybrids beat CC-NUMA by ~20-30% at *every* pressure,
and thrashing never occurs because the previous phase's pages go cold
exactly when frames are needed.  lu runs on 4 nodes (small default
problem size).

The stand-in: the remote working set is partitioned into phases; each
phase intensively revisits only its own partition (several intra-phase
rounds), then moves on.  The phase change is what exercises AS-COMA's
threshold-recovery path (cold pages reappear, the daemon reclaims them,
and the refetch threshold walks back down).
"""

from __future__ import annotations

import numpy as np

from ..sim.trace import WorkloadTraces
from .base import SyntheticGenerator, WorkloadSpec

__all__ = ["generate", "default_spec", "LUGenerator"]

#: Distinct active-set phases across the factorisation.
N_PHASES = 9


class LUGenerator(SyntheticGenerator):
    """Phased active sets: sweep s uses partition s * N_PHASES / sweeps."""

    def sweep_visit_pages(self, node: int, sweep: int, hot: np.ndarray,
                          cold: np.ndarray,
                          rng: np.random.Generator) -> np.ndarray:
        spec = self.spec
        all_pages = np.concatenate([hot, cold])
        phase = min(N_PHASES - 1, sweep * N_PHASES // spec.sweeps)
        chunk = max(1, len(all_pages) // N_PHASES)
        active = all_pages[phase * chunk:(phase + 1) * chunk]
        if len(active) == 0:
            active = all_pages[-chunk:]
        # Intensive reuse within the phase: several rounds per sweep.
        pages = np.tile(active, 4)
        return rng.permutation(pages)


def default_spec(n_nodes: int = 4, scale: float = 1.0, seed: int = 23,
                 **overrides) -> WorkloadSpec:
    params = dict(
        name="lu",
        n_nodes=n_nodes,
        home_pages_per_node=max(16, int(90 * scale)),
        remote_pages_per_node=max(12, int(90 * scale)),
        hot_fraction=1.0,   # every remote page is hot... while its phase lasts
        sweeps=18,
        lines_per_visit=16,
        visit_cluster=1,
        write_fraction=0.25,
        scatter_lines=True,
        compute_per_ref=6.0,
        local_cycles_per_sweep=3000,
        home_lines_per_sweep=256,
        compute_jitter=0.1,  # pivot-holder imbalance drives lu's SYNC time
        seed=seed,
    )
    params.update(overrides)
    return WorkloadSpec(**params)


def generate(n_nodes: int = 4, scale: float = 1.0, seed: int = 23,
             **overrides) -> WorkloadTraces:
    """Build the lu stand-in workload (4 nodes, ideal pressure ~= 0.5)."""
    return LUGenerator(default_spec(n_nodes, scale, seed,
                                    **overrides)).generate()
