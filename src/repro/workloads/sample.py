"""Trace sampling: rate and spatial reduction of reference traces.

The evaluation is bounded by what the trace substrate can hold: the
synthetic generators materialize every per-node reference stream, which
caps ``scale`` and node counts well below a paper-grade sweep at 100x.
This module makes huge workloads tractable the way Cydonia samples
block/cache traces — keep a deterministic fraction of the references,
replay the reduced trace, and report the full-trace metrics through a
documented scale-up estimator with *measured* error bounds
(``docs/sampling.md``).

Two samplers, both streaming over the structure-of-arrays decode
(:meth:`~repro.sim.trace.WorkloadTraces.soa`) so a 100x trace is never
converted to list form and — when the trace cache holds a ``.soa``
sidecar — never even loaded into the heap:

* **Rate sampling** (``rate=k``) keeps every k-th *barrier epoch*
  (``unit="sweep"``, the default): whole sweeps survive intact, so the
  intra-sweep working set, page-cache pressure and thrashing regime of
  the kept epochs are *exactly* those of the full run — only the
  cross-sweep steady-state assumption remains, which holds for the
  stationary generated workloads.  The epoch phase is a global hash of
  ``seed`` (node-independent, so barrier counts stay aligned), epoch 0
  (first-touch prologue plus cold sweep) is always kept, and kept
  barriers are renumbered densely.  ``unit="visit"`` strides over page
  visits per node (a visit is a maximal run of consecutive references
  to one page — for barrier-poor traces, e.g. ingested block traces)
  and ``unit="ref"`` over raw references; their phase is a hash of
  ``(node, seed)`` and the pre-first-barrier prologue is exempt.

* **Spatial sampling** (``pages=f``) keeps *all* references to a
  hash-selected fraction ``f`` of the shared pages and rescales the
  workload's ``home_pages_per_node`` by ``f``, so per-node page pools,
  page-cache frames and pageout free targets (all derived from it)
  shrink with the working set and miss *ratios* are preserved.

``COMPUTE``/``LOCAL`` cycle bursts are rescaled by the nominal kept
fraction (cumulative-sum rounding, so per-node totals are exact to one
cycle), so the sampled trace replays as a coherent reduced-scale run of
the same program.  The scale-up estimator uses the *measured* reduction
— full over kept shared-reference count, recorded in the workload's
``params["sample"]["scale_factor"]`` at sampling time
(:func:`sample_scale_factor`), which absorbs hash-selection and
stride-phase noise the nominal ``rate/pages`` would leak into every
estimate (:func:`estimated_metrics`); :func:`sampling_error_report`
measures the
estimator against full replay on small configurations, and
:data:`ERROR_ANALYSIS_CONFIGS` + :data:`ERROR_BOUNDS` are the committed
acceptance bounds pinned by ``tests/test_sampling.py``.

Sampling parameters are *workload identity*, not a runtime mode: they
enter :meth:`~repro.runtime.spec.RunSpec.spec_hash` and the trace-cache
key (:func:`~repro.runtime.tracecache.trace_key`), so sampled and full
runs can never collide in either store.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

from ..sim.trace import (EV_BARRIER, EV_COMPUTE, EV_LOCAL, EV_WRITE, Trace,
                         WorkloadTraces, coalesce_events)

__all__ = ["SAMPLE_FORMAT_VERSION", "SampleSpec", "sample_workload",
           "assemble_sampled", "sample_scale_factor",
           "sample_soa", "trace_memory_bytes", "estimated_metrics",
           "sampling_error", "sampling_error_report", "scaled_home_pages",
           "ERROR_ANALYSIS_CONFIGS", "ERROR_BOUNDS"]

#: Version of the sampling semantics (visit grouping, hash selection,
#: cycle rescaling).  Bump on any change that alters the sampled
#: arrays: trace-cache entries for sampled workloads then stop matching
#: and are regenerated instead of silently misread.
SAMPLE_FORMAT_VERSION = 1

#: Resolution of the spatial page-selection hash: a page is kept iff
#: ``hash % _PAGE_HASH_BUCKETS < round(pages * _PAGE_HASH_BUCKETS)``.
_PAGE_HASH_BUCKETS = 1 << 24


@dataclass(frozen=True)
class SampleSpec:
    """Deterministic description of one trace reduction.

    ``rate=1, pages=1.0`` is the identity (no sampling); anything else
    keys distinct trace-cache and run-store entries.
    """

    #: Keep every ``rate``-th epoch/visit/reference (per ``unit``).
    rate: int = 1
    #: Keep references to this hash-selected fraction of pages.
    pages: float = 1.0
    #: Seeds the stride phase and the page-selection hash.
    seed: int = 0
    #: Rate-sampling granularity.  ``"sweep"`` (default) keeps every
    #: k-th *barrier epoch* — the regime-preserving choice: each kept
    #: epoch replays its full per-sweep working set against the
    #: unmodified page cache, so thrashing behaviour and miss ratios
    #: survive the reduction.  ``"visit"`` strides over page visits
    #: (for barrier-poor traces, e.g. ingested block traces) and
    #: ``"ref"`` over raw references; both stretch per-page revisit
    #: intervals by k, which distorts cache regimes — see
    #: docs/sampling.md for the measured difference.
    unit: str = "sweep"

    def __post_init__(self) -> None:
        if self.rate < 1:
            raise ValueError("sample rate must be >= 1")
        if not 0 < self.pages <= 1:
            raise ValueError("sampled page fraction must be in (0, 1]")
        if self.unit not in ("sweep", "visit", "ref"):
            raise ValueError(f"unknown sample unit {self.unit!r};"
                             " choose 'sweep', 'visit' or 'ref'")

    @property
    def is_null(self) -> bool:
        """True when this spec keeps the trace unchanged."""
        return self.rate == 1 and self.pages >= 1.0

    def keep_fraction(self) -> float:
        """Nominal fraction each COMPUTE/LOCAL burst is rescaled by.

        Epoch sampling drops whole sweeps (their compute goes with
        them), so only the spatial fraction rescales surviving bursts;
        visit/ref striding thins references inside every sweep, so the
        full ``pages/rate`` applies.
        """
        if self.unit == "sweep":
            return self.pages
        return self.pages / self.rate

    def scale_factor(self) -> float:
        """Multiplier reconstructing full-trace metrics from sampled."""
        return self.rate / self.pages

    def canonical_dict(self) -> dict:
        """JSON-scalar form hashed into trace-cache and spec keys."""
        return {"rate": self.rate, "pages": self.pages, "seed": self.seed,
                "unit": self.unit,
                "sample_format_version": SAMPLE_FORMAT_VERSION}

    def to_pairs(self) -> tuple:
        """Sorted item pairs for :class:`~repro.runtime.spec.RunSpec`.

        The null spec collapses to ``()`` so an unsampled
        ``RunSpec``'s canonical form (and therefore every existing
        store key) is unchanged by the sampling feature.
        """
        if self.is_null:
            return ()
        return tuple(sorted(self.canonical_dict().items()))

    @classmethod
    def from_any(cls, value) -> "SampleSpec | None":
        """Normalise ``None`` / SampleSpec / dict / item pairs.

        Returns ``None`` for every spelling of "no sampling", so
        callers can branch on truthiness.
        """
        if value is None:
            return None
        if isinstance(value, SampleSpec):
            return None if value.is_null else value
        if isinstance(value, dict):
            items = value.items()
        else:
            items = value  # item pairs from a frozen RunSpec
        kwargs = {k: v for k, v in items if k != "sample_format_version"}
        spec = cls(**kwargs)
        return None if spec.is_null else spec

    def label(self) -> str:
        """Short human-readable fragment for run labels and logs."""
        suffix = {"sweep": "", "visit": "v", "ref": "r"}[self.unit]
        parts = []
        if self.rate > 1:
            parts.append(f"1/{self.rate}{suffix}")
        if self.pages < 1.0:
            parts.append(f"p{self.pages:g}")
        return "~" + ",".join(parts) if parts else ""


def _node_phase(node: int, seed: int, rate: int) -> int:
    """Deterministic per-node phase of the visit stride (any process)."""
    digest = hashlib.sha256(f"repro-sample:{seed}:{node}".encode()).digest()
    return int.from_bytes(digest[:8], "big") % rate


def _sweep_phase(seed: int, rate: int) -> int:
    """Global phase of the epoch stride.

    Node-independent by construction: every node must keep the *same*
    epochs or the sampled trace's barriers stop aligning.
    """
    digest = hashlib.sha256(f"repro-sample-sweep:{seed}".encode()).digest()
    return int.from_bytes(digest[:8], "big") % rate


def _sweep_keep_mask(is_bar: np.ndarray, spec: SampleSpec) -> np.ndarray | None:
    """Per-event keep mask for epoch (sweep) sampling, or ``None``.

    Epoch 0 (everything up to and including the first barrier) is
    always kept: it carries the home-pinning first-touch prologue and
    the cold transient, which the estimator treats as unscaled.  Of the
    remaining epochs, every ``rate``-th survives (phase hashed from the
    seed); at least one interior epoch is always kept so a rate larger
    than the sweep count still yields a replayable reduction.  Returns
    ``None`` when the trace has no interior epochs to stride over
    (fewer than two barriers — e.g. an ingested trace with only the
    trailing barrier; use ``unit="visit"`` there).
    """
    nbar = int(is_bar.sum())
    if nbar <= 1:
        return None
    phase = _sweep_phase(spec.seed, spec.rate)
    slice_keep = np.zeros(nbar + 1, dtype=bool)
    slice_keep[0] = True          # prologue + cold epoch
    slice_keep[nbar] = True       # unterminated tail after the last barrier
    interior = np.arange(1, nbar)
    slice_keep[interior] = ((interior - 1 + phase) % spec.rate) == 0
    if not slice_keep[1:nbar].any():
        slice_keep[1 + phase % (nbar - 1)] = True
    # An event belongs to the epoch its terminating barrier closes.
    epoch = np.cumsum(is_bar) - is_bar
    return slice_keep[epoch]


def _page_keep_mask(pages: np.ndarray, spec: SampleSpec) -> np.ndarray:
    """Vectorised hash selection of kept pages (splitmix64 finaliser)."""
    x = pages.astype(np.uint64)
    x ^= np.uint64((spec.seed * 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF)
    x = (x ^ (x >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
    x = (x ^ (x >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
    x ^= x >> np.uint64(31)
    cutoff = np.uint64(int(round(spec.pages * _PAGE_HASH_BUCKETS)))
    return (x % np.uint64(_PAGE_HASH_BUCKETS)) < cutoff


def _rescale_cycles(args: np.ndarray, mask: np.ndarray,
                    fraction: float) -> None:
    """Scale ``args[mask]`` by *fraction* in place, conserving the sum.

    Cumulative-sum rounding: event *i* gets
    ``floor(S_i * f) - floor(S_{i-1} * f)``, so the per-node total is
    ``floor(total * f)`` regardless of how the bursts are split —
    deterministic, and immune to drift over millions of events.
    """
    cycles = args[mask]
    if not len(cycles):
        return
    scaled = np.floor(np.cumsum(cycles, dtype=np.float64) * fraction)
    args[mask] = np.diff(scaled.astype(np.int64), prepend=np.int64(0))


def _sample_node(kinds: np.ndarray, args: np.ndarray, node: int,
                 spec: SampleSpec, lines_per_page: int) -> Trace:
    """Sample one node's event slice into a fresh (coalesced) Trace."""
    kinds = np.asarray(kinds)
    n = len(kinds)
    keep = np.ones(n, dtype=bool)
    is_ref = kinds <= EV_WRITE
    is_bar = kinds == EV_BARRIER
    # args is int64 already; copy so cycle rescaling never touches the
    # (possibly memmapped, read-only) source arrays.
    out_args = np.array(args, dtype=np.int64)

    ref_idx = np.nonzero(is_ref)[0]
    pages = out_args[ref_idx] // lines_per_page if len(ref_idx) else \
        np.zeros(0, dtype=np.int64)

    if spec.pages < 1.0 and len(ref_idx):
        keep[ref_idx[~_page_keep_mask(pages, spec)]] = False

    if spec.rate > 1 and spec.unit == "sweep":
        sweep_keep = _sweep_keep_mask(is_bar, spec)
        if sweep_keep is not None:
            keep &= sweep_keep
            # Renumber surviving barriers 0..m-1 (identical across
            # nodes, since epoch selection is global).
            kept_bars = is_bar & keep
            out_args[kept_bars] = np.arange(int(kept_bars.sum()))
    elif spec.rate > 1 and len(ref_idx):
        phase = _node_phase(node, spec.seed, spec.rate)
        if spec.unit == "ref":
            unit_id = np.arange(len(ref_idx), dtype=np.int64)
        else:
            # A visit ends when the page changes between consecutive
            # references or a barrier is crossed.  Line repeats target
            # the same page, so L1-hit pairs stay intact.
            barrier_epoch = np.cumsum(is_bar)[ref_idx]
            starts = np.ones(len(ref_idx), dtype=bool)
            starts[1:] = ((pages[1:] != pages[:-1])
                          | (barrier_epoch[1:] != barrier_epoch[:-1]))
            unit_id = np.cumsum(starts) - 1
        sampled_out = (unit_id + phase) % spec.rate != 0
        # Prologue exemption: references before the first barrier pin
        # the first-touch home assignment (only meaningful when the
        # trace has interior barriers; a single trailing barrier — the
        # ingestion default — marks no prologue).
        if int(is_bar.sum()) > 1:
            first_bar = int(np.nonzero(is_bar)[0][0])
            sampled_out &= ref_idx > first_bar
        keep[ref_idx[sampled_out]] = False

    fraction = spec.keep_fraction()
    if fraction < 1.0:
        cyc = (kinds == EV_COMPUTE) | (kinds == EV_LOCAL)
        _rescale_cycles(out_args, cyc, fraction)
        keep &= ~(cyc & (out_args == 0))

    out_kinds, out_args = coalesce_events(
        np.ascontiguousarray(kinds[keep]),
        np.ascontiguousarray(out_args[keep]))
    return Trace(out_kinds, out_args)


def sample_soa(kinds: np.ndarray, args: np.ndarray, offsets: np.ndarray,
               lengths: np.ndarray, spec: SampleSpec,
               lines_per_page: int) -> list[Trace]:
    """Sample concatenated SoA arrays node by node.

    The core the streaming trace-cache path uses: *kinds*/*args* may be
    read-only memmaps of a ``.soa`` sidecar, and only per-node slices
    plus the (reduced) output ever hit the heap.
    """
    return [
        _sample_node(kinds[off:off + ln], args[off:off + ln], node, spec,
                     lines_per_page)
        for node, (off, ln) in enumerate(zip(offsets, lengths))
    ]


def scaled_home_pages(home_pages_per_node: int, spec: SampleSpec) -> int:
    """Spatially sampled page-pool size (free targets derive from it)."""
    if spec.pages >= 1.0:
        return home_pages_per_node
    return max(1, int(round(home_pages_per_node * spec.pages)))


def _sample_entry(spec: SampleSpec, full_refs: int, kept_refs: int) -> dict:
    """The ``params["sample"]`` record carried by every sampled workload.

    Besides the spec itself it pins the *measured* reduction: the
    actual kept-reference ratio is the estimator's scale factor
    (:func:`sample_scale_factor`), which self-corrects hash-selection
    and stride-phase noise the nominal ``rate/pages`` factor cannot
    see.
    """
    entry = spec.canonical_dict()
    entry["full_refs"] = int(full_refs)
    entry["kept_refs"] = int(kept_refs)
    entry["scale_factor"] = (full_refs / kept_refs if kept_refs
                             else spec.scale_factor())
    return entry


def assemble_sampled(name: str, kinds, args, offsets, lengths,
                     home_pages_per_node: int, total_shared_pages: int,
                     params: dict, spec: SampleSpec,
                     lines_per_page: int) -> WorkloadTraces:
    """Sample raw SoA arrays and wrap the result as a workload.

    The shared assembly used by :func:`sample_workload` (in-memory
    arrays) and the trace cache's sidecar path (memmapped arrays):
    samples node by node, rescales the page pool, and records the
    sample entry (with measured scale factor) in the params.
    """
    sampled = sample_soa(kinds, args, offsets, lengths, spec, lines_per_page)
    full_refs = int(np.count_nonzero(np.asarray(kinds) <= EV_WRITE))
    kept_refs = sum(t.shared_refs() for t in sampled)
    params = dict(params or {})
    params["sample"] = _sample_entry(spec, full_refs, kept_refs)
    return WorkloadTraces(
        name=name,
        traces=sampled,
        home_pages_per_node=scaled_home_pages(home_pages_per_node, spec),
        total_shared_pages=total_shared_pages,
        params=params)


def sample_workload(traces: WorkloadTraces, sample,
                    lines_per_page: int | None = None) -> WorkloadTraces:
    """The sampled form of *traces* (or *traces* itself for a null spec).

    Works on the SoA decode, so the workload's list-form conversion is
    never materialized; when the workload came from the trace cache
    with a sidecar attached, the source arrays are memmaps and the heap
    only ever holds the reduced output.
    """
    spec = SampleSpec.from_any(sample)
    if spec is None:
        return traces
    if lines_per_page is None:
        from ..mem.address import AddressMap
        lines_per_page = AddressMap().lines_per_page
    kinds, args, offsets, lengths, _lo, _hi = traces.soa()
    return assemble_sampled(traces.name, kinds, args, offsets, lengths,
                            traces.home_pages_per_node,
                            traces.total_shared_pages, traces.params, spec,
                            lines_per_page)


def sample_scale_factor(traces: WorkloadTraces) -> float:
    """The metric scale-up factor recorded in a sampled workload.

    ``1.0`` for unsampled workloads.  Prefers the measured
    kept-reference ratio stamped at sampling time; falls back to the
    nominal ``rate/pages`` when a sampled workload predates (or was
    assembled without) the measurement.
    """
    entry = (traces.params or {}).get("sample")
    if not entry:
        return 1.0
    factor = entry.get("scale_factor")
    if factor:
        return float(factor)
    spec = SampleSpec.from_any(
        {k: v for k, v in entry.items()
         if k in ("rate", "pages", "seed", "unit")})
    return spec.scale_factor() if spec is not None else 1.0


def trace_memory_bytes(traces: WorkloadTraces) -> int:
    """Heap bytes the workload's replay inputs currently occupy.

    Counts the per-node event arrays, the SoA decode (if materialized)
    and an estimate of the cached list-form conversion.  Memory-mapped
    arrays (``.soa`` sidecars served from the page cache) are excluded:
    they are shared, reclaimable file pages, not per-run heap.  This is
    the accounting behind the sampled-run memory claim pinned by
    ``tests/test_sampling.py``.
    """
    def heap_bytes(arr) -> int:
        base = arr
        while getattr(base, "base", None) is not None:
            base = base.base
        return 0 if isinstance(base, np.memmap) else arr.nbytes

    total = 0
    for trace in traces.traces:
        total += heap_bytes(trace.kinds) + heap_bytes(trace.args)
        if trace._kinds_list is not None:
            # A Python list of (mostly non-interned) ints: one pointer
            # plus one 28-byte int object per element, per list.
            total += 2 * len(trace._kinds_list) * 36
    cached = getattr(traces, "_soa_cache", None)
    if cached is not None:
        total += heap_bytes(cached[0]) + heap_bytes(cached[1])
    return total


# ---------------------------------------------------------------------------
# Error-analysis harness: sampled + estimator vs. full replay.
# ---------------------------------------------------------------------------

#: The committed error-analysis configurations: small enough to run the
#: *full* trace in CI, in the high-pressure overhead-dominated regimes
#: sampling exists for.  Fields are :func:`sampling_error` kwargs.
#: Measured errors (see docs/sampling.md for the full grid, including
#: the regimes sweep sampling is *not* accurate in) stay within
#: :data:`ERROR_BOUNDS`; ``tests/test_sampling.py`` re-measures and
#: enforces them.
ERROR_ANALYSIS_CONFIGS = (
    {"app": "fft", "arch": "SCOMA", "pressure": 0.9, "scale": 0.25,
     "rate": 4, "pages": 1.0, "seed": 0, "unit": "sweep"},
    {"app": "em3d", "arch": "SCOMA", "pressure": 0.9, "scale": 0.25,
     "rate": 7, "pages": 1.0, "seed": 0, "unit": "sweep"},
    {"app": "em3d", "arch": "SCOMA", "pressure": 0.95, "scale": 0.25,
     "rate": 4, "pages": 1.0, "seed": 0, "unit": "sweep"},
)

#: Committed relative-error acceptance bounds for the configs above.
#: ``cycles`` is parallel execution time, ``toverhead`` the aggregate
#: K_OVERHD bucket (the paper's Toverhead), ``remaps`` the relocation +
#: migration count.  Remaps are a *count* of rare adaptive decisions,
#: inherently noisier under sampling than the cycle metrics — the bound
#: is correspondingly looser.  Measured headroom (2026-08): cycles
#: 0.4-3.4%, toverhead 0.3-3.1%, remaps exact, on the configs above.
ERROR_BOUNDS = {"cycles": 0.05, "toverhead": 0.05, "remaps": 0.5}


def estimated_metrics(result, sample=None, factor: float | None = None) -> dict:
    """Full-trace metric estimates from one sampled run's result.

    Every extensive metric scales by *factor* — pass
    :func:`sample_scale_factor` of the sampled workload for the
    measured ratio (preferred); with ``factor=None`` the nominal
    ``rate/pages`` of *sample* applies (``1.0`` when both are absent).
    Returns cycles (parallel execution time), toverhead (aggregate
    K_OVERHD, the paper's Toverhead) and remaps (relocations +
    migrations).
    """
    if factor is None:
        spec = SampleSpec.from_any(sample)
        factor = spec.scale_factor() if spec is not None else 1.0
    agg = result.aggregate()
    return {
        "cycles": result.execution_time() * factor,
        "toverhead": agg.K_OVERHD * factor,
        "remaps": (agg.relocations + agg.migrations) * factor,
    }


def sampling_error(app: str, arch: str, pressure: float, scale: float,
                   rate: int = 1, pages: float = 1.0, seed: int = 0,
                   unit: str = "sweep") -> dict:
    """Measure the estimator against full replay for one configuration.

    Runs the full and the sampled cell in process (no stores involved;
    the trace memo still dedupes workload generation) and returns the
    full metrics, the estimates, and per-metric relative errors
    ``|est - full| / full`` (0 when the full metric itself is 0).
    """
    from ..runtime.spec import RunSpec
    from ..runtime.tracecache import fetch_traces

    sample = SampleSpec(rate=rate, pages=pages, seed=seed, unit=unit)
    full_wl = fetch_traces(app, scale)
    sampled_wl = sample_workload(full_wl, sample)
    full = RunSpec.make(app, arch, pressure, scale).execute(traces=full_wl)
    sampled = RunSpec.make(app, arch, pressure, scale, sample=sample)\
        .execute(traces=sampled_wl)
    full_metrics = estimated_metrics(full)
    est = estimated_metrics(sampled, sample,
                            factor=sample_scale_factor(sampled_wl))
    errors = {
        key: (abs(est[key] - full_metrics[key]) / full_metrics[key]
              if full_metrics[key] else 0.0)
        for key in full_metrics
    }
    return {"app": app, "arch": arch, "pressure": pressure, "scale": scale,
            "sample": sample.canonical_dict(), "full": full_metrics,
            "estimated": est, "errors": errors,
            "scale_factor": sample_scale_factor(sampled_wl)}


def sampling_error_report(configs=ERROR_ANALYSIS_CONFIGS) -> list[dict]:
    """Run :func:`sampling_error` for every committed configuration."""
    return [sampling_error(**cfg) for cfg in configs]
