"""Synthetic workload generation framework.

The paper evaluates five SPLASH-2 programs plus Split-C em3d.  We have
no PA-RISC binaries or Paint, so each application is replaced by a
parameterised *trace generator* that reproduces the properties the
paper's analysis (Sections 4.2 and 5) actually attributes results to:

* per-node home and remote working-set sizes (Table 5),
* the fraction of remote pages that stay "hot" (Table 6),
* spatial locality (lines touched per page visit -- drives RAC and L1
  behaviour),
* temporal clustering of visits (drives page-cache effectiveness under
  thrashing),
* phase behaviour (lu's shifting active set),
* compute intensity and synchronisation structure.

Every generator emits the same skeleton: a *prologue* in which each
node first-touches its own home pages (pinning the balanced first-touch
home assignment), then ``sweeps`` compute/access rounds separated by
barriers.  Generation is vectorised with numpy; the replay engine
consumes the resulting arrays.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..mem.address import AddressMap
from ..sim.trace import EV_COMPUTE, EV_READ, EV_WRITE, Trace, TraceBuilder, WorkloadTraces

__all__ = ["WorkloadSpec", "SyntheticGenerator", "emit_visits"]


@dataclass(frozen=True)
class WorkloadSpec:
    """Knobs shared by all application generators."""

    name: str
    n_nodes: int = 8
    #: Shared pages whose home is this node (Table 5 "Home pages").
    home_pages_per_node: int = 64
    #: Remote pages each node ever accesses (Table 5 "Maximum remote pages").
    remote_pages_per_node: int = 96
    #: Fraction of those remote pages revisited every sweep ("hot").
    hot_fraction: float = 0.9
    #: Access rounds, each ending in a barrier.
    sweeps: int = 12
    #: Consecutive lines touched per page visit (spatial locality).
    lines_per_visit: int = 16
    #: Consecutive visits to the same page before moving on (temporal
    #: clustering; >1 amortises page faults under thrashing).
    visit_cluster: int = 1
    #: Probability a reference is a write.
    write_fraction: float = 0.2
    #: User compute cycles per shared reference (paper's U-INSTR).
    compute_per_ref: float = 4.0
    #: Private-memory stall cycles per sweep (U-LC-MEM).
    local_cycles_per_sweep: int = 2000
    #: Lines of the node's *own home* pages touched per sweep.
    home_lines_per_sweep: int = 256
    #: Shuffle hot-page visit order every sweep?
    shuffle_visits: bool = True
    #: Scatter remote references at line granularity.  Destroys chunk
    #: adjacency, so the single-chunk RAC stops helping -- the behaviour
    #: of pointer-chasing codes (barnes, em3d).  Ordered streams (fft,
    #: ocean) keep it False and enjoy the RAC.
    scatter_lines: bool = False
    #: Scatter radius in *visits*: references are permuted only within
    #: windows of this many consecutive page visits (0 = whole round).
    #: A bounded window is RAC-hostile yet preserves the page-level
    #: temporal locality real traversals have, which is what lets an
    #: S-COMA page fault amortise over a page's worth of references.
    scatter_window: int = 8
    #: Consecutive touches per line (loads of several words from one
    #: line).  Repeats beyond the first hit the L1; they model the
    #: primary working set the paper notes fits in the 8 KiB cache.
    line_repeats: int = 2
    #: Relative per-node compute jitter (drives SYNC imbalance).
    compute_jitter: float = 0.05
    seed: int = 42

    def __post_init__(self) -> None:
        if self.n_nodes <= 1:
            raise ValueError("need at least two nodes for remote traffic")
        if self.home_pages_per_node <= 0 or self.remote_pages_per_node <= 0:
            raise ValueError("page counts must be positive")
        if not 0 <= self.hot_fraction <= 1:
            raise ValueError("hot_fraction must be in [0, 1]")
        if not 0 <= self.write_fraction <= 1:
            raise ValueError("write_fraction must be in [0, 1]")
        if self.sweeps <= 0 or self.lines_per_visit <= 0 or self.visit_cluster <= 0:
            raise ValueError("sweeps, lines_per_visit and visit_cluster must be positive")

    @property
    def total_shared_pages(self) -> int:
        return self.n_nodes * self.home_pages_per_node

    def ideal_pressure(self) -> float:
        """Table 5's 'Ideal pressure': H / (H + Rmax)."""
        h = self.home_pages_per_node
        return h / (h + self.remote_pages_per_node)

    def canonical_dict(self) -> dict:
        """Every generation-relevant field as plain JSON scalars.

        This is the canonical form the trace cache hashes: two specs
        with equal canonical dicts (plus equal generator class, i.e.
        application name) produce bit-identical traces.  Floats are kept
        as-is — ``json.dumps`` round-trips them exactly — and keys are
        emitted sorted by the hasher, so field declaration order never
        changes a key.
        """
        out = {}
        for name, value in sorted(self.__dict__.items()):
            if isinstance(value, (bool, int, float, str)) or value is None:
                out[name] = value
            else:  # future-proofing: never hash repr of rich objects
                raise TypeError(f"WorkloadSpec.{name} is not a JSON scalar:"
                                f" {type(value).__name__}")
        return out


def emit_visits(builder: TraceBuilder, rng: np.random.Generator,
                pages: np.ndarray, lines_per_visit: int, lines_per_page: int,
                write_fraction: float, compute_per_visit: int,
                scatter: bool = False, line_repeats: int = 1,
                scatter_window: int = 0) -> int:
    """Vectorised emission of one round of page visits.

    For each page in *pages* (repeats allowed -- that is how visit
    clustering and per-sweep revisit multiplicity are expressed), emits
    ``lines_per_visit`` line references starting at a random in-page
    offset, with COMPUTE markers interleaved at visit granularity.

    ``scatter=True`` permutes the round's references at line granularity
    before repeating, destroying the chunk adjacency the RAC depends on.
    ``line_repeats`` emits each line that many times back-to-back (the
    repeats hit the L1).  Returns the number of shared references
    emitted.
    """
    v = len(pages)
    if v == 0:
        return 0
    ln = lines_per_visit
    offsets = rng.integers(0, lines_per_page, size=v)
    # (V, L) line ids: consecutive within the page, wrapping at the end.
    lines = (pages[:, None] * lines_per_page
             + (offsets[:, None] + np.arange(ln)) % lines_per_page).ravel()
    if scatter:
        if scatter_window > 0:
            # Permute within bounded windows of consecutive visits.
            w = scatter_window * ln
            full = (len(lines) // w) * w
            head = lines[:full].reshape(-1, w)
            perm = rng.permuted(head, axis=1)
            tail = rng.permutation(lines[full:])
            lines = np.concatenate([perm.ravel(), tail])
        else:
            lines = rng.permutation(lines)
    if line_repeats > 1:
        lines = np.repeat(lines, line_repeats)
    writes = rng.random(lines.shape) < write_fraction

    # One COMPUTE marker per `block` references keeps compute density
    # independent of scatter/repeat settings.
    block = ln * line_repeats
    n = len(lines)
    n_blocks = n // block
    kinds = np.empty((n_blocks, block + 1), dtype=np.uint8)
    kinds[:, 0] = EV_COMPUTE
    kinds[:, 1:] = np.where(writes[:n_blocks * block], EV_WRITE,
                            EV_READ).reshape(n_blocks, block)
    args = np.empty((n_blocks, block + 1), dtype=np.int64)
    args[:, 0] = compute_per_visit
    args[:, 1:] = lines[:n_blocks * block].reshape(n_blocks, block)

    builder.extend_events(kinds, args)
    # Tail references that do not fill a whole block (bulk-appended:
    # same events the per-call read/write loop produced, one extend).
    tail = n_blocks * block
    if tail < n:
        builder.extend_refs(lines[tail:], writes[tail:])
    return n


class SyntheticGenerator:
    """Reference generator implementing the shared skeleton.

    Application modules subclass this and override the working-set
    construction (:meth:`remote_pages_of`) and/or the per-sweep visit
    plan (:meth:`sweep_visit_pages`).
    """

    def __init__(self, spec: WorkloadSpec, amap: AddressMap | None = None) -> None:
        self.spec = spec
        self.amap = amap or AddressMap()

    # -- overridable structure --------------------------------------------
    def remote_pages_of(self, node: int, rng: np.random.Generator) -> np.ndarray:
        """The set of remote pages *node* ever accesses.

        Default: a random sample of other nodes' pages, biased toward
        neighbouring nodes (producer/consumer locality).
        """
        spec = self.spec
        h = spec.home_pages_per_node
        candidates = np.array([p for p in range(spec.total_shared_pages)
                               if p // h != node])
        count = min(spec.remote_pages_per_node, len(candidates))
        return rng.choice(candidates, size=count, replace=False)

    def sweep_visit_pages(self, node: int, sweep: int, hot: np.ndarray,
                          cold: np.ndarray,
                          rng: np.random.Generator) -> np.ndarray:
        """Pages (with multiplicity) visited by *node* in *sweep*.

        Default: every hot page once (clustered ``visit_cluster`` times),
        plus the cold pages once in the first sweep only.
        """
        pages = hot
        if sweep == 0 and len(cold):
            pages = np.concatenate([cold, hot])
        if self.spec.shuffle_visits:
            pages = rng.permutation(pages)
        if self.spec.visit_cluster > 1:
            pages = np.repeat(pages, self.spec.visit_cluster)
        return pages

    def home_visit_pages(self, node: int, sweep: int,
                         rng: np.random.Generator) -> np.ndarray:
        """Own home pages touched in *sweep* (local traffic)."""
        spec = self.spec
        visits = max(1, spec.home_lines_per_sweep // spec.lines_per_visit)
        first = node * spec.home_pages_per_node
        return rng.integers(first, first + spec.home_pages_per_node,
                            size=visits)

    # -- generation ---------------------------------------------------------
    def generate(self) -> WorkloadTraces:
        spec = self.spec
        amap = self.amap
        lpp = amap.lines_per_page
        traces: list[Trace] = []
        for node in range(spec.n_nodes):
            rng = np.random.default_rng(spec.seed + 1009 * node)
            jitter = 1.0 + spec.compute_jitter * (rng.random() * 2 - 1)
            compute_per_visit = max(1, int(round(
                spec.compute_per_ref * spec.lines_per_visit
                * spec.line_repeats * jitter)))

            builder = TraceBuilder()
            self._prologue(builder, node)
            builder.barrier(0)

            remote = self.remote_pages_of(node, rng)
            hot_n = int(round(len(remote) * spec.hot_fraction))
            hot, cold = remote[:hot_n], remote[hot_n:]

            for sweep in range(spec.sweeps):
                pages = self.sweep_visit_pages(node, sweep, hot, cold, rng)
                emit_visits(builder, rng, pages, spec.lines_per_visit, lpp,
                            spec.write_fraction, compute_per_visit,
                            scatter=spec.scatter_lines,
                            line_repeats=spec.line_repeats,
                            scatter_window=spec.scatter_window)
                home_pages = self.home_visit_pages(node, sweep, rng)
                emit_visits(builder, rng, home_pages, spec.lines_per_visit,
                            lpp, spec.write_fraction, compute_per_visit,
                            scatter=False, line_repeats=spec.line_repeats)
                builder.local(spec.local_cycles_per_sweep)
                builder.barrier(sweep + 1)
            # Coalescing merges any adjacent COMPUTE/LOCAL runs so the
            # replay engine never iterates over split cycle bursts.
            traces.append(builder.build(coalesce=True))

        return WorkloadTraces(
            name=spec.name,
            traces=traces,
            home_pages_per_node=spec.home_pages_per_node,
            total_shared_pages=spec.total_shared_pages,
            params={"spec": spec.__dict__ | {"ideal_pressure": spec.ideal_pressure()}},
        )

    def _prologue(self, builder: TraceBuilder, node: int) -> None:
        """First-touch each of the node's own home pages (pins homes)."""
        spec = self.spec
        lpp = self.amap.lines_per_page
        first = node * spec.home_pages_per_node
        for page in range(first, first + spec.home_pages_per_node):
            builder.read(page * lpp)
        builder.compute(100)
