"""Fully-parameterised synthetic workload (not tied to any paper app).

Exposes every knob of :class:`~repro.workloads.base.WorkloadSpec`
directly -- used by the ablation/sensitivity benches, the property
tests, and the ``custom_workload`` example to construct workloads with
precisely-controlled hot-set sizes and localities.
"""

from __future__ import annotations

from ..sim.trace import WorkloadTraces
from .base import SyntheticGenerator, WorkloadSpec

__all__ = ["generate"]


def generate(name: str = "synthetic", **spec_kwargs) -> WorkloadTraces:
    """Build a workload straight from :class:`WorkloadSpec` arguments."""
    return SyntheticGenerator(WorkloadSpec(name=name, **spec_kwargs)).generate()
