"""fft: SPLASH-2 radix-sqrt(n) FFT stand-in.

Paper characterisation (Section 5.2): "only a tiny fraction of pages in
fft are accessed enough to be eligible for relocation, so all of the
hybrid architectures effectively become CC-NUMAs.  Somewhat
surprisingly, fft has such high spatial locality in its references to
remote memory that the 128-byte RAC plays a major role in satisfying
remote accesses locally."  Pure S-COMA must keep every remote page
mapped, so it thrashes at ~80-90% pressure while everything else stays
flat.

The stand-in: all-to-all transpose traffic (every node reads a slice of
every other node's rows), visits of exactly one DSM chunk (4 lines) so
three of every four line misses hit the RAC, and a hot set of only a
couple of pages (the twiddle/root-of-unity table) -- below 1% of remote
pages become relocation-eligible, as in Table 6.
"""

from __future__ import annotations

import numpy as np

from ..sim.trace import WorkloadTraces
from .base import SyntheticGenerator, WorkloadSpec

__all__ = ["generate", "default_spec", "FFTGenerator"]


class FFTGenerator(SyntheticGenerator):
    """All-to-all remote set; only a tiny hot subset revisited often."""

    def remote_pages_of(self, node: int, rng: np.random.Generator) -> np.ndarray:
        spec = self.spec
        h = spec.home_pages_per_node
        per_peer = max(1, spec.remote_pages_per_node // (spec.n_nodes - 1))
        pages = []
        for peer in range(spec.n_nodes):
            if peer == node:
                continue
            pages.append(rng.choice(np.arange(peer * h, (peer + 1) * h),
                                    size=min(per_peer, h), replace=False))
        return np.concatenate(pages)[:spec.remote_pages_per_node]

    def sweep_visit_pages(self, node: int, sweep: int, hot: np.ndarray,
                          cold: np.ndarray,
                          rng: np.random.Generator) -> np.ndarray:
        # Transpose phase: every remote page once per sweep (streaming),
        # plus the tiny hot table revisited many times.
        streaming = np.concatenate([hot, cold])
        table = hot[:max(1, len(hot) // 16)]
        pages = np.concatenate([streaming, np.tile(table, 8)])
        return rng.permutation(pages)


def default_spec(n_nodes: int = 8, scale: float = 1.0, seed: int = 17,
                 **overrides) -> WorkloadSpec:
    params = dict(
        name="fft",
        n_nodes=n_nodes,
        home_pages_per_node=max(16, int(96 * scale)),
        remote_pages_per_node=max(7, int(32 * scale)),
        hot_fraction=0.25,
        sweeps=10,
        lines_per_visit=4,      # exactly one DSM chunk: RAC-friendly
        visit_cluster=1,
        write_fraction=0.3,
        compute_per_ref=4.0,
        local_cycles_per_sweep=5000,
        home_lines_per_sweep=512,
        compute_jitter=0.03,
        seed=seed,
    )
    params.update(overrides)
    return WorkloadSpec(**params)


def generate(n_nodes: int = 8, scale: float = 1.0, seed: int = 17,
             **overrides) -> WorkloadTraces:
    """Build the fft stand-in workload (ideal pressure ~= 0.75)."""
    return FFTGenerator(default_spec(n_nodes, scale, seed,
                                     **overrides)).generate()
