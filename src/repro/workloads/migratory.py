"""Producer -> consumer workload for the page-migration study.

Models the classic pattern page migration targets (paper Section 2.2):
an initialisation phase first-touches data on one node (making it the
home under first-touch allocation), after which a *different* node uses
each page exclusively for the rest of the run.  Under plain CC-NUMA
every consumer access is a remote miss forever; under CC-NUMA-MIG each
page's home migrates to its consumer after the refetch threshold, and
under the hybrids the consumer caches it in S-COMA mode -- but only if
the page cache has room, which is what makes migration interesting at
high memory pressure.

Each node consumes the pages homed at its successor node, so every page
has exactly one remote consumer (the non-shared case migration handles).
"""

from __future__ import annotations

import numpy as np

from ..sim.trace import WorkloadTraces
from .base import SyntheticGenerator, WorkloadSpec

__all__ = ["generate", "default_spec", "MigratoryGenerator"]


class MigratoryGenerator(SyntheticGenerator):
    """Each node's remote set = all pages of its successor's slab."""

    def remote_pages_of(self, node: int, rng: np.random.Generator) -> np.ndarray:
        spec = self.spec
        h = spec.home_pages_per_node
        producer = (node + 1) % spec.n_nodes
        pages = np.arange(producer * h, producer * h + min(
            spec.remote_pages_per_node, h))
        return pages

    def home_visit_pages(self, node: int, sweep: int,
                         rng: np.random.Generator) -> np.ndarray:
        # After initialisation the producer barely touches its own slab
        # again (it has handed the data off) -- a token visit keeps the
        # trace structure uniform.
        spec = self.spec
        first = node * spec.home_pages_per_node
        return rng.integers(first, first + spec.home_pages_per_node, size=1)


def default_spec(n_nodes: int = 8, scale: float = 1.0, seed: int = 13,
                 **overrides) -> WorkloadSpec:
    home = max(8, int(40 * scale))
    params = dict(
        name="migratory",
        n_nodes=n_nodes,
        home_pages_per_node=home,
        remote_pages_per_node=home,
        hot_fraction=1.0,
        sweeps=16,
        lines_per_visit=16,
        visit_cluster=1,
        write_fraction=0.2,
        compute_per_ref=4.0,
        scatter_lines=True,    # RAC-hostile: misses really go remote
        local_cycles_per_sweep=1000,
        home_lines_per_sweep=32,
        compute_jitter=0.04,
        seed=seed,
    )
    params.update(overrides)
    return WorkloadSpec(**params)


def generate(n_nodes: int = 8, scale: float = 1.0, seed: int = 13,
             **overrides) -> WorkloadTraces:
    """Build the producer->consumer workload (one consumer per page)."""
    return MigratoryGenerator(default_spec(n_nodes, scale, seed,
                                           **overrides)).generate()
