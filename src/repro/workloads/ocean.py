"""ocean: SPLASH-2 ocean current simulation stand-in.

Paper characterisation (Section 5.2): "Even at 90% memory pressure,
only 2% of cache misses are to remote data, and most such accesses can
be supplied from a local S-COMA page or the RAC.  As a result, all of
the architectures other than pure S-COMA ... perform within a few
percent of one another."  Ocean is a regular nearest-neighbour grid
solver: each node owns a horizontal slab and exchanges only the
boundary rows with its two neighbours.

The stand-in: heavy local traffic over the node's own home pages, a
small hot remote boundary (pages from the adjacent slabs) visited with
dense chunk-aligned runs, and pure S-COMA's usual mandatory-mapping
collapse at very high pressure.
"""

from __future__ import annotations

import numpy as np

from ..sim.trace import WorkloadTraces
from .base import SyntheticGenerator, WorkloadSpec

__all__ = ["generate", "default_spec", "OceanGenerator"]


class OceanGenerator(SyntheticGenerator):
    """Remote set = boundary pages of the two neighbouring slabs."""

    def remote_pages_of(self, node: int, rng: np.random.Generator) -> np.ndarray:
        spec = self.spec
        h = spec.home_pages_per_node
        up = (node - 1) % spec.n_nodes
        down = (node + 1) % spec.n_nodes
        half = spec.remote_pages_per_node // 2
        # The neighbour rows adjacent to this slab: the *end* of the
        # upper neighbour's slab and the *start* of the lower one's.
        upper = np.arange((up + 1) * h - half, (up + 1) * h)
        lower = np.arange(down * h, down * h + (spec.remote_pages_per_node - half))
        return np.concatenate([upper, lower])


def default_spec(n_nodes: int = 8, scale: float = 1.0, seed: int = 31,
                 **overrides) -> WorkloadSpec:
    params = dict(
        name="ocean",
        n_nodes=n_nodes,
        home_pages_per_node=max(24, int(120 * scale)),
        remote_pages_per_node=max(6, int(50 * scale)),
        hot_fraction=0.4,   # only the rows right at the boundary stay hot
        sweeps=12,
        lines_per_visit=8,
        visit_cluster=1,
        write_fraction=0.3,
        compute_per_ref=5.0,
        local_cycles_per_sweep=4000,
        home_lines_per_sweep=1024,   # the bulk of ocean's misses are local
        compute_jitter=0.03,
        seed=seed,
    )
    params.update(overrides)
    return WorkloadSpec(**params)


def generate(n_nodes: int = 8, scale: float = 1.0, seed: int = 31,
             **overrides) -> WorkloadTraces:
    """Build the ocean stand-in workload (ideal pressure ~= 0.7)."""
    return OceanGenerator(default_spec(n_nodes, scale, seed,
                                       **overrides)).generate()
