"""radix: SPLASH-2 radix sort stand-in.

Paper characterisation (Section 5.2): "radix exhibits almost no spatial
locality.  Every node accesses every page of shared data at some time
during execution.  As such, it is an extreme example of an application
where fine tuning of the S-COMA page cache will backfire -- each page
is roughly as hot as any other, so the page cache should simply be
loaded with some reasonable set of hot pages and left alone."  Its
ideal pressure is very low; pure S-COMA is several times worse than
CC-NUMA already at 30% pressure, R-NUMA approaches 2x CC-NUMA at 90%,
and AS-COMA -- which stops relocating once thrashing is detected --
stays within a few percent of CC-NUMA.  Radix is also where AS-COMA's
S-COMA-first allocation wins the most at 10% pressure (~17% over
R-NUMA/VC-NUMA): the number of pages the other hybrids must relocate is
the largest of any application.

The stand-in: the remote set is *every* other node's page, visited in
random order with single-line references (no spatial locality) but with
short temporal clusters (the permutation writes to one destination
bucket land together), which is what lets a mapped page amortise its
fault before eviction.
"""

from __future__ import annotations

import numpy as np

from ..sim.trace import WorkloadTraces
from .base import SyntheticGenerator, WorkloadSpec

__all__ = ["generate", "default_spec", "RadixGenerator"]


class RadixGenerator(SyntheticGenerator):
    """Every remote page, no spatial locality, clustered visits."""

    def remote_pages_of(self, node: int, rng: np.random.Generator) -> np.ndarray:
        spec = self.spec
        h = spec.home_pages_per_node
        pages = np.array([p for p in range(spec.total_shared_pages)
                          if p // h != node])
        return rng.permutation(pages)


def default_spec(n_nodes: int = 8, scale: float = 1.0, seed: int = 3,
                 **overrides) -> WorkloadSpec:
    home = max(8, int(26 * scale))
    params = dict(
        name="radix",
        n_nodes=n_nodes,
        home_pages_per_node=home,
        # Every page of every other node (paper: "every node accesses
        # every page of shared data").
        remote_pages_per_node=home * (n_nodes - 1),
        hot_fraction=1.0,
        sweeps=18,
        lines_per_visit=1,   # no spatial locality
        visit_cluster=6,     # ...but bucket writes cluster in time
        write_fraction=0.05,
        compute_per_ref=2.0,
        line_repeats=1,
        local_cycles_per_sweep=2000,
        home_lines_per_sweep=128,
        compute_jitter=0.05,
        seed=seed,
    )
    params.update(overrides)
    return WorkloadSpec(**params)


def generate(n_nodes: int = 8, scale: float = 1.0, seed: int = 3,
             **overrides) -> WorkloadTraces:
    """Build the radix stand-in workload (ideal pressure ~= 0.12)."""
    return RadixGenerator(default_spec(n_nodes, scale, seed,
                                       **overrides)).generate()
