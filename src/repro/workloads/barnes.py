"""barnes: Barnes-Hut N-body (SPLASH-2) stand-in.

Paper characterisation (Sections 4.2, 5.2): barnes is very
compute-intensive, "exhibits very high spatial locality -- it accesses
large dense regions of remote memory, and thus can make good use of a
local S-COMA page cache".  Most remote pages it accesses are part of
the working set and stay hot for long periods, so its ideal pressure is
low (~33%) and thrashing begins around 50% pressure.  The paper runs it
on 8 nodes with ~1.5 MB of home data per node and does not simulate it
above 70% pressure (too few free pages for meaningful statistics).

The stand-in: a large mostly-hot remote working set, long dense visit
runs (16 consecutive lines), high compute per reference, modest write
fraction (tree updates).
"""

from __future__ import annotations

from ..sim.trace import WorkloadTraces
from .base import SyntheticGenerator, WorkloadSpec

__all__ = ["generate", "default_spec"]


def default_spec(n_nodes: int = 8, scale: float = 1.0, seed: int = 42,
                 **overrides) -> WorkloadSpec:
    params = dict(
        name="barnes",
        n_nodes=n_nodes,
        home_pages_per_node=max(8, int(48 * scale)),
        remote_pages_per_node=max(12, int(96 * scale)),
        hot_fraction=0.9,
        sweeps=12,
        lines_per_visit=16,
        visit_cluster=1,
        write_fraction=0.15,
        scatter_lines=True,
        compute_per_ref=14.0,
        local_cycles_per_sweep=4000,
        home_lines_per_sweep=256,
        compute_jitter=0.08,
        seed=seed,
    )
    params.update(overrides)
    return WorkloadSpec(**params)


def generate(n_nodes: int = 8, scale: float = 1.0, seed: int = 42,
             **overrides) -> WorkloadTraces:
    """Build the barnes stand-in workload (ideal pressure ~= 0.33)."""
    return SyntheticGenerator(default_spec(n_nodes, scale, seed,
                                           **overrides)).generate()
