"""External trace ingestion: real access traces as workloads.

The six synthetic generators reproduce the paper's SPLASH-2/em3d
geometry, but the adaptive policies are most interesting on reference
streams nobody parameterised — real cache/block access traces of the
kind the related multi-socket cache-optimization work evaluates on
(PAPERS.md).  This module converts such traces into
:class:`~repro.sim.trace.WorkloadTraces` so they flow through the trace
store, the run store, the matrix executor and the vector kernel
completely unchanged.

Formats
-------
``csv``
    One access per row, ``time,node,addr,op`` (header optional,
    detected): virtual time (any monotone unit), issuing node id, byte
    address, and ``r``/``w`` (also ``read``/``write``/``0``/``1``).
    An optional 5th column gives the access size in bytes (default:
    one line).

``cydonia``
    The Cydonia ``cache_trace`` layout used by the block-storage
    sampling literature: ``ts,lba,op,size`` — timestamp, logical block
    address (512-byte blocks by default), ``r``/``w``, size in bytes.
    Block traces carry no node id, so accesses are sharded across
    ``nodes`` by a deterministic hash of their page.

Mapping
-------
Byte addresses become line ids through the standard
:class:`~repro.mem.address.AddressMap` geometry; pages are densely
renumbered by first appearance, so arbitrarily sparse address spaces
replay against a machine sized ``home_pages_per_node =
ceil(pages / nodes)``.  Homes are then assigned by the simulator's
balanced first-touch allocator, exactly as for generated workloads.
Inter-access time gaps can be converted to COMPUTE bursts
(``cycles_per_time``), and ``barriers`` global synchronisation points
are placed at time quantiles (every workload carries at least the one
trailing barrier the replay engine requires).

Identity
--------
An ingested workload's application id is
``ext/<name>@<content_hash>`` — the trace's own 16-hex
:meth:`~repro.sim.trace.WorkloadTraces.content_hash`.  The hash rides
in the id, so trace-cache keys, ``RunSpec`` hashes and run-store
entries of two different ingested files can never collide, and a
re-ingested identical file maps to the same artifacts.  External apps
resolve *only* through the trace store (there is no generator to fall
back to): ``repro ingest`` registers the artifact, ``repro run
--app ext/...`` replays it.
"""

from __future__ import annotations

import csv
import math
import re
from pathlib import Path

import numpy as np

from ..mem.address import AddressMap
from ..sim.trace import Trace, TraceBuilder, WorkloadTraces

__all__ = ["INGEST_FORMAT_VERSION", "INGEST_FORMATS", "EXTERNAL_PREFIX",
           "is_external_app", "external_app_id", "parse_external_app",
           "ingest_file", "register_external"]

#: Version of the ingestion mapping (column semantics, dense renumber,
#: barrier placement).  Bump when the mapping changes: the version is
#: hashed into external trace-cache keys, so old artifacts stop
#: matching instead of replaying stale semantics.
INGEST_FORMAT_VERSION = 1

INGEST_FORMATS = ("csv", "cydonia")

EXTERNAL_PREFIX = "ext/"

_NAME_RE = re.compile(r"[^A-Za-z0-9_.-]+")
_APP_ID_RE = re.compile(r"^(ext/[A-Za-z0-9_.-]+)@([0-9a-f]{16})$")


def is_external_app(app: str) -> bool:
    """True for ingested-trace application ids (``ext/...``)."""
    return app.startswith(EXTERNAL_PREFIX)


def external_app_id(traces: WorkloadTraces) -> str:
    """The full ``ext/<name>@<hash>`` id of an ingested workload."""
    if not is_external_app(traces.name):
        raise ValueError(f"{traces.name!r} is not an external workload")
    return f"{traces.name}@{traces.content_hash()}"


def parse_external_app(app: str) -> tuple[str, str]:
    """Split ``ext/<name>@<hash>`` into ``(ext/<name>, hash)``."""
    m = _APP_ID_RE.match(app)
    if not m:
        raise ValueError(
            f"malformed external app id {app!r}; expected"
            " 'ext/<name>@<16-hex-hash>' as printed by `repro ingest`")
    return m.group(1), m.group(2)


def _mix64(x: int) -> int:
    """splitmix64 finaliser (node sharding for node-less block traces)."""
    x &= 0xFFFFFFFFFFFFFFFF
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
    return x ^ (x >> 31)


def _parse_op(token: str, path: str, row: int) -> bool:
    op = token.strip().lower()
    if op in ("r", "read", "0"):
        return False
    if op in ("w", "write", "1"):
        return True
    raise ValueError(f"{path}:{row}: unknown op {token!r}"
                     " (expected r/w/read/write/0/1)")


def _read_rows(path: Path, fmt: str, nodes: int | None,
               block_bytes: int) -> list[tuple[float, int, int, bool, int]]:
    """Parse *path* into ``(time, node, byte_addr, is_write, size)`` rows."""
    rows = []
    with open(path, newline="") as fh:
        for lineno, record in enumerate(csv.reader(fh), start=1):
            record = [f.strip() for f in record]
            if not record or not any(record):
                continue
            if record[0].startswith("#"):
                continue
            try:
                time = float(record[0])
            except ValueError:
                if lineno == 1:  # header row
                    continue
                raise ValueError(
                    f"{path}:{lineno}: non-numeric time {record[0]!r}"
                ) from None
            if fmt == "csv":
                if len(record) < 4:
                    raise ValueError(f"{path}:{lineno}: expected"
                                     " time,node,addr,op[,size]")
                node = int(record[1])
                if node < 0:
                    raise ValueError(f"{path}:{lineno}: negative node id")
                addr = int(record[2], 0)
                write = _parse_op(record[3], str(path), lineno)
                size = int(record[4]) if len(record) > 4 else 0
            else:  # cydonia: ts,lba,op,size
                if len(record) < 4:
                    raise ValueError(f"{path}:{lineno}: expected"
                                     " ts,lba,op,size")
                addr = int(record[1], 0) * block_bytes
                write = _parse_op(record[2], str(path), lineno)
                size = int(record[3])
                node = -1  # sharded by page below
            if addr < 0 or size < 0:
                raise ValueError(f"{path}:{lineno}: negative addr/size")
            rows.append((time, node, addr, write, size))
    if not rows:
        raise ValueError(f"{path}: no accesses found")
    return rows


def ingest_file(path: str | Path, fmt: str = "csv", name: str | None = None,
                nodes: int | None = None, barriers: int = 1,
                cycles_per_time: float = 0.0, block_bytes: int = 512,
                amap: AddressMap | None = None,
                seed: int = 0) -> WorkloadTraces:
    """Convert one external trace file into a replayable workload.

    Deterministic: the same file and parameters always produce
    bit-identical traces (and therefore the same ``content_hash`` /
    application id) in any process.
    """
    path = Path(path)
    if fmt not in INGEST_FORMATS:
        raise ValueError(f"unknown ingest format {fmt!r};"
                         f" choose from {INGEST_FORMATS}")
    if barriers < 1:
        raise ValueError("need at least one (trailing) barrier")
    if cycles_per_time < 0:
        raise ValueError("cycles_per_time must be non-negative")
    amap = amap or AddressMap()
    base = _NAME_RE.sub("-", name if name is not None else path.stem).strip("-")
    if not base:
        raise ValueError(f"cannot derive a workload name from {path.name!r}")

    rows = _read_rows(path, fmt, nodes, block_bytes)

    # Shard node-less block traces by page hash; validate explicit ids.
    if fmt == "cydonia":
        n_nodes = nodes or 8
        rows = [(t, _mix64((a // amap.page_bytes) ^ (seed * 0x9E3779B9))
                 % n_nodes, a, w, s) for t, _n, a, w, s in rows]
    else:
        max_node = max(r[1] for r in rows)
        n_nodes = nodes if nodes is not None else max_node + 1
        if max_node >= n_nodes:
            raise ValueError(f"{path}: node id {max_node} out of range for"
                             f" --nodes {n_nodes}")
    if n_nodes < 2:
        raise ValueError(
            f"{path}: only one node; shared-memory replay needs >= 2"
            " (pass nodes= / --nodes to size the machine)")

    # Dense page renumber by first appearance (file order), so sparse
    # address spaces replay against a compact shared space.
    page_ids: dict[int, int] = {}
    line_rows = []  # (time, node, dense_line, write)
    lpp = amap.lines_per_page
    for time, node, addr, write, size in rows:
        first = addr // amap.line_bytes
        last = (addr + max(size - 1, 0)) // amap.line_bytes
        for line in range(first, last + 1):
            page = line // lpp
            dense = page_ids.setdefault(page, len(page_ids))
            line_rows.append((time, node, dense * lpp + line % lpp, write))

    total_pages = len(page_ids)
    home_pages = math.ceil(total_pages / n_nodes)

    # Global barrier boundaries at time quantiles; every node emits
    # barriers 0..B-1 (the last one trailing), as the engine requires.
    times = np.array([r[0] for r in line_rows])
    bounds = [float(np.quantile(times, i / barriers))
              for i in range(1, barriers)]

    per_node: list[TraceBuilder] = [TraceBuilder() for _ in range(n_nodes)]
    next_bar = [0] * n_nodes
    prev_time = [None] * n_nodes
    order = np.argsort(times, kind="stable")
    for idx in order:
        time, node, line, write = line_rows[int(idx)]
        builder = per_node[node]
        while next_bar[node] < len(bounds) and time > bounds[next_bar[node]]:
            builder.barrier(next_bar[node])
            next_bar[node] += 1
        if cycles_per_time > 0:
            # Cumulative rounding keeps each node's total compute within
            # one cycle of gap_sum * cycles_per_time.
            prev = prev_time[node]
            if prev is not None and time > prev:
                builder.compute(int(time * cycles_per_time)
                                - int(prev * cycles_per_time))
            prev_time[node] = time
        builder.write(line) if write else builder.read(line)
    traces: list[Trace] = []
    for node, builder in enumerate(per_node):
        for index in range(next_bar[node], barriers):
            builder.barrier(index)
        traces.append(builder.build(coalesce=True))

    return WorkloadTraces(
        name=EXTERNAL_PREFIX + base,
        traces=traces,
        home_pages_per_node=home_pages,
        total_shared_pages=home_pages * n_nodes,
        params={"ingest": {
            "source": path.name,
            "format": fmt,
            "ingest_format_version": INGEST_FORMAT_VERSION,
            "nodes": n_nodes,
            "barriers": barriers,
            "cycles_per_time": cycles_per_time,
            "block_bytes": block_bytes if fmt == "cydonia" else None,
            "accesses": len(rows),
            "pages": total_pages,
            "seed": seed,
        }})


def register_external(traces: WorkloadTraces, store=None) -> str:
    """Persist an ingested workload in the trace store; returns its app id.

    The store is how external apps resolve at run time (there is no
    generator fallback), so registration requires one — the ambient
    store by default.
    """
    from ..runtime.tracecache import get_default_trace_store

    if store is None:
        store = get_default_trace_store()
    if store is None:
        raise ValueError("registering an external trace needs a TraceStore"
                         " (none passed, no ambient store installed)")
    app_id = external_app_id(traces)
    store.put(app_id, 1.0, traces)
    return app_id
