"""``python -m repro`` entry point (see repro.harness.cli)."""

import sys

from .harness.cli import main

if __name__ == "__main__":
    sys.exit(main())
