"""Bounded per-event debug tracing.

For diagnosing a simulation (why did this page relocate?  which chunk
ping-pongs?), attach an :class:`EventTrace` to the page-management side
effects.  Because the reference hot path must stay fast, the trace
hooks only the *rare* events -- faults, relocations, evictions,
migrations, daemon runs -- by monkey-light decoration of one Node's
methods, not the per-reference path.

Usage::

    engine = Engine(workload, policy, config)
    trace = EventTrace.attach(engine.machine.nodes[0])
    engine.run()
    for ev in trace.events:
        print(ev)
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Event", "EventTrace"]


@dataclass(frozen=True)
class Event:
    kind: str
    node: int
    page: int
    detail: str = ""

    def __str__(self) -> str:  # pragma: no cover - repr aid
        tail = f" ({self.detail})" if self.detail else ""
        return f"[node {self.node}] {self.kind} page {self.page}{tail}"


@dataclass
class EventTrace:
    """Records a node's page-management events (bounded)."""

    limit: int = 10_000
    events: list[Event] = field(default_factory=list)
    dropped: int = 0

    def record(self, kind: str, node: int, page: int, detail: str = "") -> None:
        if len(self.events) < self.limit:
            self.events.append(Event(kind, node, page, detail))
        else:
            self.dropped += 1

    def of_kind(self, kind: str) -> list[Event]:
        return [e for e in self.events if e.kind == kind]

    def pages(self, kind: str | None = None) -> list[int]:
        return [e.page for e in self.events
                if kind is None or e.kind == kind]

    def __len__(self) -> int:
        return len(self.events)

    # ------------------------------------------------------------------
    @classmethod
    def attach(cls, node, limit: int = 10_000) -> "EventTrace":
        """Wrap *node*'s page-management methods with event recording."""
        trace = cls(limit=limit)

        original_map = node.map_scoma
        original_evict = node.evict_scoma_page
        original_relocate = node.relocate_to_scoma
        original_flush = node.flush_page

        def map_scoma(page):
            trace.record("map_scoma", node.id, page)
            return original_map(page)

        def evict_scoma_page(page, forced):
            trace.record("evict", node.id, page,
                         "forced" if forced else "daemon")
            return original_evict(page, forced)

        def relocate_to_scoma(page):
            trace.record("relocate", node.id, page)
            return original_relocate(page)

        def flush_page(page):
            trace.record("flush", node.id, page)
            return original_flush(page)

        node.map_scoma = map_scoma
        node.evict_scoma_page = evict_scoma_page
        node.relocate_to_scoma = relocate_to_scoma
        node.flush_page = flush_page
        return trace

    def ping_pong_pages(self, min_cycles: int = 2) -> dict[int, int]:
        """Pages that were relocated/mapped at least *min_cycles* times --
        the thrashing fingerprint."""
        counts: dict[int, int] = {}
        for event in self.events:
            if event.kind in ("map_scoma", "relocate"):
                counts[event.page] = counts.get(event.page, 0) + 1
        return {page: n for page, n in counts.items() if n >= min_cycles}
