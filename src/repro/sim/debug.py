"""Bounded per-event debug tracing.

For diagnosing a simulation (why did this page relocate?  which chunk
ping-pongs?), attach an :class:`EventTrace` to one node.  The trace is
an observer on the machine-wide :class:`~repro.sim.events.EventBus`:
it records the node's *page-management* events (mappings, evictions,
relocations, flushes) and ignores the chattier coherence traffic, so
the bounded buffer holds the interesting rare transitions.

Usage::

    engine = Engine(workload, policy, config)
    trace = EventTrace.attach(engine.machine.nodes[0])
    engine.run()
    for ev in trace.events:
        print(ev)
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .events import EV_EVICT, EV_FLUSH, EV_MAP_SCOMA, EV_RELOCATE

__all__ = ["Event", "EventTrace"]

#: Event kinds the trace keeps (page management only -- invalidations
#: and demotions would flood the bounded buffer).
_TRACED_KINDS = frozenset({EV_MAP_SCOMA, EV_EVICT, EV_RELOCATE, EV_FLUSH})


@dataclass(frozen=True)
class Event:
    kind: str
    node: int
    page: int
    detail: str = ""

    def __str__(self) -> str:  # pragma: no cover - repr aid
        tail = f" ({self.detail})" if self.detail else ""
        return f"[node {self.node}] {self.kind} page {self.page}{tail}"


@dataclass
class EventTrace:
    """Records a node's page-management events (bounded)."""

    limit: int = 10_000
    events: list[Event] = field(default_factory=list)
    dropped: int = 0

    def record(self, kind: str, node: int, page: int, detail: str = "") -> None:
        if len(self.events) < self.limit:
            self.events.append(Event(kind, node, page, detail))
        else:
            self.dropped += 1

    def of_kind(self, kind: str) -> list[Event]:
        return [e for e in self.events if e.kind == kind]

    def pages(self, kind: str | None = None) -> list[int]:
        return [e.page for e in self.events
                if kind is None or e.kind == kind]

    def __len__(self) -> int:
        return len(self.events)

    # ------------------------------------------------------------------
    @classmethod
    def attach(cls, node, limit: int = 10_000) -> "EventTrace":
        """Subscribe a trace for *node*'s page-management events."""
        trace = cls(limit=limit)
        node_id = node.id

        def observer(event) -> None:
            if event.node != node_id or event.kind not in _TRACED_KINDS:
                return
            detail = ""
            if event.kind == EV_EVICT:
                detail = "forced" if event.detail.get("forced") else "daemon"
            trace.record(event.kind, event.node, event.page, detail)

        node.events.subscribe(observer)
        return trace

    def ping_pong_pages(self, min_cycles: int = 2) -> dict[int, int]:
        """Pages that were relocated/mapped at least *min_cycles* times --
        the thrashing fingerprint."""
        counts: dict[int, int] = {}
        for event in self.events:
            if event.kind in ("map_scoma", "relocate"):
                counts[event.page] = counts.get(event.page, 0) + 1
        return {page: n for page, n in counts.items() if n >= min_cycles}
