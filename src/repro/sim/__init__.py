"""Simulation layer: configuration, traces, machine model, replay engine."""

from .config import SystemConfig
from .engine import Engine, simulate
from .machine import Machine
from .node import Node
from .stats import MISS_CLASSES, TIME_BUCKETS, NodeStats, RunResult
from .timeseries import Sample, TimeSeriesSampler
from .trace import (EV_BARRIER, EV_COMPUTE, EV_LOCAL, EV_READ, EV_WRITE,
                    Trace, TraceBuilder, WorkloadTraces)

__all__ = [
    "EV_BARRIER",
    "EV_COMPUTE",
    "EV_LOCAL",
    "EV_READ",
    "EV_WRITE",
    "Engine",
    "MISS_CLASSES",
    "Machine",
    "Node",
    "NodeStats",
    "RunResult",
    "Sample",
    "SystemConfig",
    "TIME_BUCKETS",
    "TimeSeriesSampler",
    "Trace",
    "TraceBuilder",
    "WorkloadTraces",
    "simulate",
]
