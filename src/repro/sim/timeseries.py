"""Time-series sampling of policy state during a run.

The paper reports end-of-run aggregates; understanding *why* AS-COMA
converges (threshold climbing, relocation shutting off, daemon interval
stretching, a phase change recovering) needs the trajectory.  A
:class:`TimeSeriesSampler` passed to :class:`~repro.sim.engine.Engine`
snapshots every node's page-management state at each barrier release --
the natural globally-consistent points of the execution.

Used by ``examples/backoff_timeline.py`` and the regression tests that
pin down the backoff dynamics (monotone threshold climb under sustained
thrashing, recovery after lu-style phase changes).
"""

from __future__ import annotations

__all__ = ["TimeSeriesSampler", "Sample"]


class Sample:
    """One node's state at one sampling point."""

    __slots__ = ("time", "node", "free_frames", "scoma_pages", "threshold",
                 "relocation_enabled", "relocations", "evictions",
                 "daemon_interval", "daemon_thrash")

    def __init__(self, time: int, node) -> None:
        self.time = time
        self.node = node.id
        self.free_frames = node.pool.free
        self.scoma_pages = node.page_table.scoma_page_count()
        self.threshold = node.policy_state.effective_threshold()
        self.relocation_enabled = self.threshold > 0 or not hasattr(
            node.policy_state, "backoff")
        self.relocations = node.stats.relocations
        self.evictions = node.stats.evictions
        self.daemon_interval = node.daemon.interval
        self.daemon_thrash = node.stats.daemon_thrash

    def as_dict(self) -> dict:
        return {name: getattr(self, name) for name in self.__slots__}


class TimeSeriesSampler:
    """Collects per-node samples at every barrier release."""

    def __init__(self) -> None:
        self.samples: list[Sample] = []

    def sample(self, now: int, nodes) -> None:
        for node in nodes:
            self.samples.append(Sample(now, node))

    # -- queries -----------------------------------------------------------
    def of_node(self, node_id: int) -> list[Sample]:
        return [s for s in self.samples if s.node == node_id]

    def series(self, node_id: int, field: str) -> list:
        return [getattr(s, field) for s in self.of_node(node_id)]

    def times(self, node_id: int = 0) -> list[int]:
        return self.series(node_id, "time")

    def __len__(self) -> int:
        return len(self.samples)

    def sparkline(self, node_id: int, field: str, width: int = 60) -> str:
        """ASCII sparkline of one field's trajectory for one node."""
        values = self.series(node_id, field)
        if not values:
            return ""
        if len(values) > width:
            step = len(values) / width
            values = [values[int(i * step)] for i in range(width)]
        lo, hi = min(values), max(values)
        glyphs = " .:-=+*#%@"
        if hi == lo:
            return glyphs[0] * len(values)
        return "".join(
            glyphs[int((v - lo) / (hi - lo) * (len(glyphs) - 1))]
            for v in values)
