"""Structure-of-arrays replay substrate: the vectorized third loop.

The engine's third replay path (``vector_path=True`` /
``REPRO_VECTOR_PATH=1``) re-expresses the PR4 fast loop over a dense
structure-of-arrays decode of the machine state: every dict/set the
scalar loops mutate per event (directory copyset/owner, page-table
modes and S-COMA valid masks, refetch counters, TLB reference bits,
L1 tags, RAC slots, ownership sets) becomes a flat numpy array, and
the per-event scheduler + classification + protocol arithmetic runs
as a small compiled kernel over those arrays.  The kernel is a direct
transliteration of ``Engine._shared_ref`` and the fast loop's inlined
cases; like the fast path it decides *before mutating anything*
whether an event is one of the shapes it does not model -- a page
fault or an imminent relocation hint -- and hands exactly those
events back to the scalar ``Engine._shared_ref`` machinery, so the
residual path sees identical state and produces identical arithmetic.

Bit-identical output to both scalar loops is the contract: same
``RunResult.to_dict()``, same goldens, same store hashes (see
``tests/test_perf_parity.py``'s three-way differential matrix).

Implementation notes
--------------------
* The kernel is plain C compiled on first use with the system C
  compiler (``cc``/``gcc``) into a source-hash-keyed shared library
  under ``$REPRO_VECTOR_CACHE`` (default ``~/.cache/repro/vector``)
  and loaded through :mod:`cffi` in ABI mode -- no ``Python.h``, no
  build-time dependency.  When cffi or a compiler is missing, or a
  run shape is outside the kernel's model (associative L1, a
  time-series sampler, a directory message log, unfiltered event-bus
  observers other than the engine's page-memo invalidator),
  :func:`run_vector` returns ``None`` and the engine degrades
  loss-free to ``_run_fast`` -- the same graceful-degradation contract
  the fast path's inlined cases already follow (a single
  ``RuntimeWarning`` flags environment problems such as a missing
  compiler or a corrupt kernel cache; see :func:`_load_kernel`).
  Copyset and S-COMA valid bitmaps are multi-word, so there is no
  node-count or chunks-per-page ceiling; the page memo is carried
  (the kernel never mutates page modes/homes); kind-filtered EventBus
  subscribers are served by a bounded in-kernel event ring whose
  entries are replayed post-slice with scalar-identical clocks and
  order; and residual events (page faults, relocation hints) exit in
  batched *runs* that Python drains before re-entering the kernel.
* While the vectorized run is live, the machine's dict/set/list state
  is *replaced* by array-backed views (single source of truth): the
  scalar residual path and all post-run consumers (invariant audits,
  ``utilisation_report``) read and write the same arrays the kernel
  does.  The views stay installed after the run; they implement the
  exact observable dict/set semantics of what they replace and return
  Python ints/bools (never numpy scalars, which would poison the
  JSON-serialised ``RunResult``).
* Path selection is a runtime mode, like ``REPRO_SLOW_PATH``: it must
  never enter ``RunSpec.spec_hash`` (see ``repro.runtime.spec``).
"""

from __future__ import annotations

import hashlib
import os
import shutil
import subprocess
import sys
import tempfile
import warnings

import numpy as np

from ..kernel.vm import PageMode
from .events import EV_DEMOTE, EV_INVALIDATE
from .trace import EV_WRITE

__all__ = ["run_vector", "vector_available"]

# ---------------------------------------------------------------------------
# Kernel exit codes (keep in sync with the C source).
_DONE = 0        # every node finished; deltas are ready to merge
_RESIDUAL = 1    # run of events at ctl needs scalar Engine._shared_ref
_DAEMON = 2      # pageout daemon due on ctl[BEST] at ctl[NOW]
_BARRIER = 3     # every unfinished node is waiting; release in Python
_DEADLOCK = 4    # unfinished nodes exist but none is runnable
_RINGFULL = 5    # event ring lacks headroom; flush and re-enter

# ctl[] slots (keep in sync with the C source).
_IN_SLICE, _BEST, _LIMIT, _NOW, _RLEN, _RINGN = range(6)

# params[] slots (keep in sync with the C enum).
(_P_N, _P_QUANTUM, _P_NO_LIMIT, _P_LINE_SHIFT, _P_CHUNK_SHIFT, _P_CPP_MASK,
 _P_SET_MASK, _P_RAC_MASK, _P_RAC_VICTIM, _P_HIT_CYCLES, _P_RAC_CYCLES,
 _P_DSM2, _P_GRANT_EX, _P_STALL_INV, _P_SKIP_NODE, _P_BANK_MASK,
 _P_MEM_SERVICE, _P_MEM_OCC, _P_MEM_MAXQ, _P_BUS_OCC, _P_BUS_FIXED,
 _P_BUS_MAXQ, _P_NET_OCC, _P_NET_MAXQ, _P_LPC, _P_N_PAGES, _P_N_SETS,
 _P_N_BANKS, _P_RAC_ENTRIES, _P_PC_SHIFT, _P_N_CHUNKS, _P_CS_WORDS,
 _P_SV_WORDS, _P_RING_INV, _P_RING_DEM, _P_RING_CAP) = range(36)
_N_PARAMS = 36

#: Per-node stats delta row: (slot, NodeStats attribute).  Commutative
#: counters only -- nothing reads them mid-run, so the kernel
#: accumulates into a scratch array merged once at the end.
_STAT_ATTRS = (
    "U_SH_MEM", "U_INSTR", "U_LC_MEM", "HOME", "SCOMA", "RAC", "COLD",
    "CONF_CAPC", "HOME_LAT", "SCOMA_LAT", "RAC_LAT", "COLD_LAT",
    "CONF_CAPC_LAT", "upgrades", "induced_cold", "essential_cold",
    "l1_hits", "l1_misses")
_N_STATS = len(_STAT_ATTRS)

# Per-node auxiliary delta row (see _merge_deltas).
(_A_WB, _A_INVAL, _A_RAC_HITS, _A_RAC_MISSES, _A_RAC_FILLS, _A_MEM_ACC,
 _A_MEM_CONT, _A_MEM_Q, _A_BUS_TX, _A_BUS_CONT, _A_BUS_Q) = range(11)
_N_AUX = 11

# Global delta row (see _merge_deltas).
(_G_NET_MSGS, _G_NET_CONT, _G_NET_Q, _G_DIR_REFETCH, _G_DIR_FWD,
 _G_DIR_INV, _G_DIR_EXCL, _G_REMOTE, _G_THREE_HOP, _G_STALLS) = range(10)
_N_GLOB = 10

_STRUCT = """
typedef struct {
    const int64_t *P;
    const uint8_t *kinds;
    const int64_t *args;
    const int64_t *tr_off;
    const int64_t *tr_len;
    int64_t *pos;
    int64_t *clock;
    int64_t *arrival;
    int64_t *barrier_id;
    uint8_t *finished;
    uint8_t *waiting;
    int64_t *ctl;
    int64_t *l1_tags;
    uint8_t *l1_dirty;
    int64_t *rac;
    uint8_t *owned;
    uint8_t *ever;
    uint64_t *copyset;
    int64_t *owner;
    int64_t *refetch;
    int64_t *modes;
    uint64_t *scoma_valid;
    int64_t *pc_hits;
    uint8_t *ref_bits;
    const int64_t *home;
    const int64_t *net_base;
    int64_t *net_port;
    int64_t *mem_busy;
    int64_t *bus_busy;
    const uint8_t *below_min;
    const int64_t *next_run;
    const int64_t *thr;
    int64_t *st;
    int64_t *aux;
    int64_t *glob;
    uint64_t *inv_scratch;
    int64_t *ring;
} SoaState;
"""

_CDEF = _STRUCT + """
int64_t soa_run(SoaState *s);
"""

# The kernel proper: a line-for-line transliteration of the scalar
# machinery it replaces.  Source comments reference the Python it
# mirrors; every formula (queue clamps, leg timestamps, counter sites,
# mutation order) must match repro.sim.engine / repro.coherence /
# repro.interconnect / repro.mem exactly -- the three-way parity matrix
# is the enforcement.
_C_SOURCE = "#include <stdint.h>\n" + _STRUCT + r"""
#define EV_WRITE 1
#define EV_COMPUTE 2
#define EV_LOCAL 3

enum { P_N, P_QUANTUM, P_NO_LIMIT, P_LINE_SHIFT, P_CHUNK_SHIFT, P_CPP_MASK,
       P_SET_MASK, P_RAC_MASK, P_RAC_VICTIM, P_HIT_CYCLES, P_RAC_CYCLES,
       P_DSM2, P_GRANT_EX, P_STALL_INV, P_SKIP_NODE, P_BANK_MASK,
       P_MEM_SERVICE, P_MEM_OCC, P_MEM_MAXQ, P_BUS_OCC, P_BUS_FIXED,
       P_BUS_MAXQ, P_NET_OCC, P_NET_MAXQ, P_LPC, P_N_PAGES, P_N_SETS,
       P_N_BANKS, P_RAC_ENTRIES, P_PC_SHIFT, P_N_CHUNKS, P_CS_WORDS,
       P_SV_WORDS, P_RING_INV, P_RING_DEM, P_RING_CAP };

enum { S_USH, S_UINSTR, S_ULC, S_HOME, S_SCOMA, S_RAC, S_COLD, S_CONF,
       S_HOME_LAT, S_SCOMA_LAT, S_RAC_LAT, S_COLD_LAT, S_CONF_LAT,
       S_UPGRADES, S_INDUCED, S_ESSENTIAL, S_L1_HITS, S_L1_MISSES, N_STATS };

enum { A_WB, A_INVAL, A_RAC_HITS, A_RAC_MISSES, A_RAC_FILLS, A_MEM_ACC,
       A_MEM_CONT, A_MEM_Q, A_BUS_TX, A_BUS_CONT, A_BUS_Q, N_AUX };

enum { G_NET_MSGS, G_NET_CONT, G_NET_Q, G_DIR_REFETCH, G_DIR_FWD,
       G_DIR_INV, G_DIR_EXCL, G_REMOTE, G_THREE_HOP, G_STALLS, N_GLOB };

enum { C_IN_SLICE, C_BEST, C_LIMIT, C_NOW, C_RLEN, C_RING };

enum { RC_DONE, RC_RESIDUAL, RC_DAEMON, RC_BARRIER, RC_DEADLOCK, RC_RING };

/* Bounded event ring: rare coherence transitions the kernel performs
 * itself (chunk invalidations, owner demotions) are recorded here when
 * a kind-filtered EventBus subscriber watches them, and replayed by the
 * Python driver at the next kernel exit -- identical events, identical
 * clocks, identical order to what the scalar loops publish. */
static void ring_push(SoaState *s, int64_t kind, int64_t node,
                      int64_t chunk, int64_t clk) {
    int64_t *e = &s->ring[s->ctl[C_RING] * 4];
    e[0] = kind; e[1] = node; e[2] = chunk; e[3] = clk;
    s->ctl[C_RING]++;
}

/* Network.one_way: same-node messages are free and uncounted. */
static int64_t one_way(SoaState *s, int64_t src, int64_t dst, int64_t now) {
    if (src == dst) return 0;
    int64_t base = s->net_base[src * s->P[P_N] + dst];
    int64_t arrival = now + base;
    int64_t busy = s->net_port[dst];
    int64_t queue = busy > arrival ? busy - arrival : 0;
    if (queue > s->P[P_NET_MAXQ]) queue = s->P[P_NET_MAXQ];
    s->net_port[dst] = arrival + queue + s->P[P_NET_OCC];
    s->glob[G_NET_MSGS]++;
    if (queue) { s->glob[G_NET_CONT]++; s->glob[G_NET_Q] += queue; }
    return base + queue;
}

static int64_t round_trip(SoaState *s, int64_t src, int64_t dst, int64_t now) {
    int64_t out = one_way(s, src, dst, now);
    return out + one_way(s, dst, src, now + out);
}

/* BankedMemory.access */
static int64_t mem_access(SoaState *s, int64_t node, int64_t chunk,
                          int64_t now) {
    int64_t *busy = &s->mem_busy[node * s->P[P_N_BANKS]
                                 + (chunk & s->P[P_BANK_MASK])];
    int64_t queue = *busy > now ? *busy - now : 0;
    if (queue > s->P[P_MEM_MAXQ]) queue = s->P[P_MEM_MAXQ];
    *busy = now + queue + s->P[P_MEM_OCC];
    int64_t *aux = &s->aux[node * N_AUX];
    aux[A_MEM_ACC]++;
    if (queue) { aux[A_MEM_CONT]++; aux[A_MEM_Q] += queue; }
    return s->P[P_MEM_SERVICE] + queue;
}

/* SplitTransactionBus.transact */
static int64_t bus_transact(SoaState *s, int64_t node, int64_t now) {
    int64_t busy = s->bus_busy[node];
    int64_t queue = busy > now ? busy - now : 0;
    if (queue > s->P[P_BUS_MAXQ]) queue = s->P[P_BUS_MAXQ];
    s->bus_busy[node] = now + queue + s->P[P_BUS_OCC];
    int64_t *aux = &s->aux[node * N_AUX];
    aux[A_BUS_TX]++;
    if (queue) { aux[A_BUS_CONT]++; aux[A_BUS_Q] += queue; }
    return s->P[P_BUS_FIXED] + queue;
}

static void rac_drop(SoaState *s, int64_t node, int64_t key) {
    int64_t *slot = &s->rac[node * s->P[P_RAC_ENTRIES]
                            + (key & s->P[P_RAC_MASK])];
    if (*slot == key) *slot = -1;
}

static void rac_fill(SoaState *s, int64_t node, int64_t key) {
    s->rac[node * s->P[P_RAC_ENTRIES] + (key & s->P[P_RAC_MASK])] = key;
    s->aux[node * N_AUX + A_RAC_FILLS]++;
}

/* Machine._invalidate_chunk + Node.invalidate_chunk.  The publish is
 * deferred through the event ring when a kind-filtered subscriber
 * watches EV_INVALIDATE; unfiltered observers (beyond the engine's own
 * page-memo invalidator, which ignores this kind) disqualify the run
 * before the kernel starts. */
static void invalidate_chunk_at(SoaState *s, int64_t node, int64_t chunk,
                                int64_t now) {
    if (node == s->P[P_SKIP_NODE]) return;
    int64_t lpc = s->P[P_LPC];
    int64_t first = chunk * lpc;
    int64_t *tags = &s->l1_tags[node * s->P[P_N_SETS]];
    uint8_t *dirty = &s->l1_dirty[node * s->P[P_N_SETS]];
    int64_t *aux = &s->aux[node * N_AUX];
    for (int64_t line = first; line < first + lpc; line++) {
        int64_t slot = line & s->P[P_SET_MASK];
        if (tags[slot] == line) {
            tags[slot] = -1;
            dirty[slot] = 0;
            aux[A_INVAL]++;
        }
    }
    if (s->P[P_RAC_VICTIM]) {
        for (int64_t line = first; line < first + lpc; line++)
            rac_drop(s, node, line);
    } else {
        rac_drop(s, node, chunk);
    }
    s->owned[node * s->P[P_N_CHUNKS] + chunk] = 0;
    int64_t pidx = node * s->P[P_N_PAGES] + (chunk >> s->P[P_PC_SHIFT]);
    if (s->modes[pidx] == 2) {   /* PageMode.SCOMA */
        int64_t cip = chunk & s->P[P_CPP_MASK];
        s->scoma_valid[pidx * s->P[P_SV_WORDS] + (cip >> 6)]
            &= ~((uint64_t)1 << (cip & 63));
    }
    if (s->P[P_RING_INV]) ring_push(s, 0, node, chunk, now);
}

/* CoherenceProtocol._invalidate_all: invalidate each sharer in
 * ascending id order, all round trips issued at the same `now` (port
 * state still accumulates); one write stall per call.  The sharer set
 * is the multi-word mask fetch_raw left in inv_scratch. */
static int64_t invalidate_all(SoaState *s, int64_t chunk,
                              int64_t origin, int64_t now) {
    int64_t worst = 0;
    for (int64_t w = 0; w < s->P[P_CS_WORDS]; w++) {
        uint64_t m = s->inv_scratch[w];
        while (m) {
            int64_t sh = (w << 6) + __builtin_ctzll(m);
            m &= m - 1;
            invalidate_chunk_at(s, sh, chunk, now);
            int64_t rt = round_trip(s, origin, sh, now);
            if (rt > worst) worst = rt;
        }
    }
    s->glob[G_STALLS]++;
    return s->P[P_STALL_INV] ? worst : 0;
}

typedef struct {
    int64_t refetch, forwarded, has_inv, prev_owner, exclusive;
} DirOut;

/* Directory.fetch_raw.  The relocation-hint branch is unreachable
 * here: shared_ref() pre-checks the hint condition against the
 * pre-mutation copyset/refetch state and exits to Python before
 * calling this, so count+1 < threshold always holds. */
static DirOut fetch_raw(SoaState *s, int64_t node, int64_t chunk,
                        int64_t page, int64_t is_write, int64_t threshold,
                        int64_t count_refetch) {
    DirOut o = {0, 0, 0, -1, 0};
    int64_t W = s->P[P_CS_WORDS];
    uint64_t *cs = &s->copyset[chunk * W];
    int64_t bw = node >> 6;
    uint64_t bit = (uint64_t)1 << (node & 63);
    o.refetch = (cs[bw] & bit) != 0;
    int64_t owner = s->owner[chunk];
    if (owner != -1 && owner != node) {
        o.forwarded = 1;
        s->glob[G_DIR_FWD]++;
        s->owner[chunk] = -1;
    }
    if (is_write) {
        int64_t inv = 0;
        for (int64_t w = 0; w < W; w++) {
            uint64_t others = cs[w];
            if (w == bw) others &= ~bit;
            s->inv_scratch[w] = others;
            inv += __builtin_popcountll(others);
            cs[w] = 0;
        }
        cs[bw] = bit;
        s->owner[chunk] = node;
        if (inv) {
            o.has_inv = 1;
            s->glob[G_DIR_INV] += inv;
        }
    } else {
        uint64_t any = 0;
        for (int64_t w = 0; w < W; w++) any |= cs[w];
        cs[bw] |= bit;
        if (owner == node) {
            /* still the owner */
        } else if (s->P[P_GRANT_EX] && any == 0) {
            s->owner[chunk] = node;
            o.exclusive = 1;
        }
    }
    if (o.refetch && count_refetch) {
        s->glob[G_DIR_REFETCH]++;
        if (threshold > 0)
            s->refetch[page * s->P[P_N] + node]++;
    }
    if (o.exclusive) s->glob[G_DIR_EXCL]++;
    o.prev_owner = (owner != node) ? owner : -1;
    return o;
}

/* CoherenceProtocol.remote_fetch_raw after the directory step. */
static int64_t remote_after_dir(SoaState *s, DirOut *o, int64_t node,
                                int64_t chunk, int64_t home,
                                int64_t is_write, int64_t now) {
    int64_t lat = one_way(s, node, home, now);
    lat += mem_access(s, home, chunk, now + lat);
    if (o->forwarded) {
        s->glob[G_THREE_HOP]++;
        lat += one_way(s, home, node, now + lat);
        if (!is_write && o->prev_owner >= 0) {
            s->owned[o->prev_owner * s->P[P_N_CHUNKS] + chunk] = 0;
            if (s->P[P_RING_DEM])
                ring_push(s, 1, o->prev_owner, chunk, now + lat);
        }
    }
    lat += one_way(s, home, node, now + lat);
    if (o->has_inv)
        lat += invalidate_all(s, chunk, home, now + lat);
    s->glob[G_REMOTE]++;
    return lat;
}

/* CoherenceProtocol.local_fetch_raw after the directory step. */
static int64_t local_after_dir(SoaState *s, DirOut *o, int64_t node,
                               int64_t chunk, int64_t is_write,
                               int64_t now) {
    int64_t lat = mem_access(s, node, chunk, now);
    if (o->forwarded) {
        s->glob[G_THREE_HOP]++;
        int64_t owner = o->prev_owner >= 0 ? o->prev_owner
                                           : (node + 1) % s->P[P_N];
        lat += round_trip(s, node, owner, now + lat);
        if (!is_write && o->prev_owner >= 0) {
            s->owned[o->prev_owner * s->P[P_N_CHUNKS] + chunk] = 0;
            if (s->P[P_RING_DEM])
                ring_push(s, 1, o->prev_owner, chunk, now + lat);
        }
    }
    if (o->has_inv)
        lat += invalidate_all(s, chunk, node, now + lat);
    return lat;
}

/* CoherenceProtocol.upgrade */
static int64_t upgrade(SoaState *s, int64_t node, int64_t chunk,
                       int64_t page, int64_t home, int64_t now) {
    DirOut o = fetch_raw(s, node, chunk, page, 1, 0, 0);
    int64_t lat = (home == node) ? 0 : round_trip(s, node, home, now);
    if (o.has_inv)
        lat += invalidate_all(s, chunk, home, now + lat);
    return lat;
}

/* DirectMappedCache.fill */
static int64_t l1_fill(SoaState *s, int64_t node, int64_t line,
                       int64_t make_dirty) {
    int64_t slot = line & s->P[P_SET_MASK];
    int64_t *tags = &s->l1_tags[node * s->P[P_N_SETS]];
    uint8_t *dirty = &s->l1_dirty[node * s->P[P_N_SETS]];
    int64_t victim = tags[slot];
    if (victim == line) {
        if (make_dirty) dirty[slot] = 1;
        return -1;
    }
    if (victim != -1 && dirty[slot]) s->aux[node * N_AUX + A_WB]++;
    tags[slot] = line;
    dirty[slot] = (uint8_t)make_dirty;
    return victim;
}

/* Engine._l1_fill / plain l1.fill, chosen per rac_fill_policy. */
static void l1_fill_tail(SoaState *s, int64_t node, int64_t line,
                         int64_t is_write) {
    if (s->P[P_RAC_VICTIM]) {
        int64_t victim = l1_fill(s, node, line, is_write);
        if (victim != -1
            && s->modes[node * s->P[P_N_PAGES]
                        + (victim >> s->P[P_LINE_SHIFT])] == 3)
            rac_fill(s, node, victim);   /* PageMode.CCNUMA */
    } else {
        l1_fill(s, node, line, is_write);
    }
}

/* Engine._classify_remote */
static void classify(SoaState *s, int64_t node, int64_t chunk,
                     int64_t refetch, int64_t lat) {
    int64_t *st = &s->st[node * N_STATS];
    uint8_t *ever = &s->ever[node * s->P[P_N_CHUNKS] + chunk];
    if (refetch) {
        st[S_CONF]++;
        st[S_CONF_LAT] += lat;
        *ever = 1;
    } else {
        st[S_COLD]++;
        st[S_COLD_LAT] += lat;
        if (*ever) st[S_INDUCED]++;
        else { st[S_ESSENTIAL]++; *ever = 1; }
    }
}

/* Engine._shared_ref.  Returns elapsed cycles, or -1 when the event
 * needs the scalar path (page fault / relocation hint); -1 is
 * returned strictly before any mutation, so Python can redo the
 * whole event against identical state. */
static int64_t shared_ref(SoaState *s, int64_t nid, int64_t line,
                          int64_t is_write, int64_t now) {
    int64_t *st = &s->st[nid * N_STATS];
    int64_t slot = line & s->P[P_SET_MASK];
    int64_t *tags = &s->l1_tags[nid * s->P[P_N_SETS]];
    int64_t chunk = line >> s->P[P_CHUNK_SHIFT];
    if (tags[slot] == line) {                       /* L1 hit */
        st[S_L1_HITS]++;
        uint8_t *dirty = &s->l1_dirty[nid * s->P[P_N_SETS]];
        if (is_write) {
            uint8_t *ownedp = &s->owned[nid * s->P[P_N_CHUNKS] + chunk];
            if (!*ownedp) {
                int64_t page = line >> s->P[P_LINE_SHIFT];
                int64_t lat = upgrade(s, nid, chunk, page,
                                      s->home[page], now);
                *ownedp = 1;
                st[S_UPGRADES]++;
                st[S_USH] += lat;
                dirty[slot] = 1;
                return s->P[P_HIT_CYCLES] + lat;
            }
            dirty[slot] = 1;
        }
        return s->P[P_HIT_CYCLES];
    }
    /* L1 miss: pure pre-checks before any mutation. */
    int64_t page = line >> s->P[P_LINE_SHIFT];
    int64_t pidx = nid * s->P[P_N_PAGES] + page;
    int64_t mode = s->modes[pidx];
    if (mode == 0) return -1;                       /* page fault */
    if (mode == 3) {                                /* CCNUMA */
        int64_t key = s->P[P_RAC_VICTIM] ? line : chunk;
        if (s->rac[nid * s->P[P_RAC_ENTRIES]
                   + (key & s->P[P_RAC_MASK])] != key) {
            int64_t thr = s->thr[nid];
            if (thr > 0
                && ((s->copyset[chunk * s->P[P_CS_WORDS] + (nid >> 6)]
                     >> (nid & 63)) & 1)
                && s->refetch[page * s->P[P_N] + nid] + 1 >= thr)
                return -1;                          /* relocation hint */
        }
    }
    st[S_L1_MISSES]++;
    s->ref_bits[pidx] = 1;
    int64_t lat = bus_transact(s, nid, now);
    uint8_t *ownedp = &s->owned[nid * s->P[P_N_CHUNKS] + chunk];
    int64_t home = s->home[page];
    if (mode == 1) {                                /* HOME */
        DirOut o = fetch_raw(s, nid, chunk, page, is_write, 0, 0);
        lat += local_after_dir(s, &o, nid, chunk, is_write, now + lat);
        st[S_HOME]++;
        st[S_HOME_LAT] += lat;
        if (is_write || o.exclusive) *ownedp = 1;
    } else if (mode == 2) {                         /* SCOMA */
        int64_t cip = chunk & s->P[P_CPP_MASK];
        uint64_t *sv = &s->scoma_valid[pidx * s->P[P_SV_WORDS]];
        if ((sv[cip >> 6] >> (cip & 63)) & 1) {
            lat += mem_access(s, nid, chunk, now + lat);
            st[S_SCOMA]++;
            s->pc_hits[pidx]++;
            st[S_SCOMA_LAT] += lat;
            if (is_write && !*ownedp) {
                lat += upgrade(s, nid, chunk, page, home, now + lat);
                *ownedp = 1;
                st[S_UPGRADES]++;
            }
        } else {
            DirOut o = fetch_raw(s, nid, chunk, page, is_write, 0, 0);
            int64_t fl = remote_after_dir(s, &o, nid, chunk, home,
                                          is_write, now + lat);
            lat += s->P[P_DSM2] + fl;
            sv[cip >> 6] |= (uint64_t)1 << (cip & 63);
            classify(s, nid, chunk, o.refetch, lat);
            if (is_write || o.exclusive) *ownedp = 1;
        }
    } else {                                        /* CCNUMA */
        int64_t key = s->P[P_RAC_VICTIM] ? line : chunk;
        int64_t *aux = &s->aux[nid * N_AUX];
        if (s->rac[nid * s->P[P_RAC_ENTRIES]
                   + (key & s->P[P_RAC_MASK])] == key) {
            aux[A_RAC_HITS]++;
            lat += s->P[P_RAC_CYCLES];
            st[S_RAC]++;
            st[S_RAC_LAT] += lat;
            if (is_write && !*ownedp) {
                lat += upgrade(s, nid, chunk, page, home, now + lat);
                *ownedp = 1;
                st[S_UPGRADES]++;
            }
        } else {
            aux[A_RAC_MISSES]++;
            DirOut o = fetch_raw(s, nid, chunk, page, is_write,
                                 s->thr[nid], 1);
            int64_t fl = remote_after_dir(s, &o, nid, chunk, home,
                                          is_write, now + lat);
            lat += s->P[P_DSM2] + fl;
            if (!s->P[P_RAC_VICTIM]) rac_fill(s, nid, chunk);
            classify(s, nid, chunk, o.refetch, lat);
            if (is_write || o.exclusive) *ownedp = 1;
        }
    }
    l1_fill_tail(s, nid, line, is_write);
    st[S_USH] += lat;
    return lat;
}

/* Pre-mutation mirror of shared_ref's residual decision: would this
 * reference exit to the scalar path *against current state*?  Used to
 * batch runs of consecutive residual events (fault storms, relocation
 * bursts) into one kernel exit.  Predictions that turn false while
 * Python drains the run are harmless: Engine._shared_ref handles every
 * shared reference bit-identically, residual or not. */
static int is_residual(SoaState *s, int64_t nid, int64_t line) {
    if (s->l1_tags[nid * s->P[P_N_SETS] + (line & s->P[P_SET_MASK])] == line)
        return 0;                                   /* L1 hit */
    int64_t page = line >> s->P[P_LINE_SHIFT];
    int64_t pidx = nid * s->P[P_N_PAGES] + page;
    int64_t mode = s->modes[pidx];
    if (mode == 0) return 1;                        /* page fault */
    if (mode == 3) {                                /* CCNUMA */
        int64_t chunk = line >> s->P[P_CHUNK_SHIFT];
        int64_t key = s->P[P_RAC_VICTIM] ? line : chunk;
        if (s->rac[nid * s->P[P_RAC_ENTRIES]
                   + (key & s->P[P_RAC_MASK])] != key) {
            int64_t thr = s->thr[nid];
            if (thr > 0
                && ((s->copyset[chunk * s->P[P_CS_WORDS] + (nid >> 6)]
                     >> (nid & 63)) & 1)
                && s->refetch[page * s->P[P_N] + nid] + 1 >= thr)
                return 1;                           /* relocation hint */
        }
    }
    return 0;
}

/* The fast loop's scheduler + slice runner.  Exits to Python only for
 * runs of page faults / relocation hints (RC_RESIDUAL, run length in
 * ctl[C_RLEN]), a due pageout daemon (RC_DAEMON), a full barrier
 * (RC_BARRIER), a full event ring (RC_RING), deadlock, or completion;
 * ctl[] carries the resume point across RC_RESIDUAL / RC_DAEMON /
 * RC_RING. */
int64_t soa_run(SoaState *s) {
    const int64_t n = s->P[P_N];
    /* Worst-case ring entries one shared reference can record: one
     * demotion plus n-1 invalidations; exit to flush below that. */
    const int64_t ring_room = (s->P[P_RING_INV] || s->P[P_RING_DEM])
                              ? n + 2 : 0;
    int64_t best, limit, now;
    if (s->ctl[C_IN_SLICE]) {
        best = s->ctl[C_BEST];
        limit = s->ctl[C_LIMIT];
        now = s->ctl[C_NOW];
        s->ctl[C_IN_SLICE] = 0;
        goto inner;
    }
    for (;;) {
        /* Pick the runnable node with the smallest clock. */
        best = -1;
        {
            int64_t best_clock = 0, runner_up = 0;
            int has_best = 0, has_runner = 0;
            for (int64_t i = 0; i < n; i++) {
                if (s->finished[i] || s->waiting[i]) continue;
                int64_t c = s->clock[i];
                if (!has_best || c < best_clock) {
                    runner_up = best_clock;
                    has_runner = has_best;
                    best_clock = c;
                    best = i;
                    has_best = 1;
                } else if (!has_runner || c < runner_up) {
                    runner_up = c;
                    has_runner = 1;
                }
            }
            if (best == -1) {
                for (int64_t i = 0; i < n; i++)
                    if (!s->finished[i]) return RC_DEADLOCK;
                return RC_DONE;
            }
            limit = has_runner ? runner_up + s->P[P_QUANTUM]
                               : s->P[P_NO_LIMIT];
            now = s->clock[best];
        }
        /* run_daemon_if_due: checked once per fresh slice. */
        if (s->below_min[best] && now >= s->next_run[best]) {
            s->ctl[C_IN_SLICE] = 1;
            s->ctl[C_BEST] = best;
            s->ctl[C_LIMIT] = limit;
            s->ctl[C_NOW] = now;
            return RC_DAEMON;
        }
    inner:
        {
            int64_t off = s->tr_off[best];
            int64_t p = s->pos[best];
            int64_t e = s->tr_len[best];
            const uint8_t *kinds = s->kinds + off;
            const int64_t *args = s->args + off;
            while (p < e && now < limit) {
                uint8_t ev = kinds[p];
                int64_t arg = args[p];
                if (ev <= EV_WRITE) {
                    if (ring_room
                        && s->P[P_RING_CAP] - s->ctl[C_RING] < ring_room) {
                        s->pos[best] = p;
                        s->ctl[C_IN_SLICE] = 1;
                        s->ctl[C_BEST] = best;
                        s->ctl[C_LIMIT] = limit;
                        s->ctl[C_NOW] = now;
                        return RC_RING;
                    }
                    int64_t r = shared_ref(s, best, arg,
                                           ev == EV_WRITE, now);
                    if (r < 0) {
                        /* Batch the exit: scan ahead for consecutive
                         * shared refs that are also residual against
                         * current state (bounded look-ahead).  Python
                         * drains the whole run before re-entering. */
                        int64_t scan = p + 1;
                        while (scan < e && scan - p < 64
                               && kinds[scan] <= EV_WRITE
                               && is_residual(s, best, args[scan]))
                            scan++;
                        s->pos[best] = p;
                        s->ctl[C_IN_SLICE] = 1;
                        s->ctl[C_BEST] = best;
                        s->ctl[C_LIMIT] = limit;
                        s->ctl[C_NOW] = now;
                        s->ctl[C_RLEN] = scan - p;
                        return RC_RESIDUAL;
                    }
                    now += r;
                    p++;
                } else if (ev == EV_COMPUTE) {
                    s->st[best * N_STATS + S_UINSTR] += arg;
                    now += arg;
                    p++;
                } else if (ev == EV_LOCAL) {
                    s->st[best * N_STATS + S_ULC] += arg;
                    now += arg;
                    p++;
                } else {                             /* EV_BARRIER */
                    p++;
                    s->waiting[best] = 1;
                    s->barrier_id[best] = arg;
                    s->arrival[best] = now;
                    break;
                }
            }
            s->pos[best] = p;
            s->clock[best] = now;
            if (p >= e && !s->waiting[best]) s->finished[best] = 1;
            if (s->waiting[best]) {
                int64_t all = 1;
                for (int64_t i = 0; i < n; i++)
                    if (!s->finished[i] && !s->waiting[i]) { all = 0; break; }
                if (all) return RC_BARRIER;
            }
        }
    }
}
"""


# ---------------------------------------------------------------------------
# Kernel build & load
# ---------------------------------------------------------------------------

_KERNEL = None  # None = not tried yet; False = unavailable; (ffi, lib) = ok


def _cache_dir() -> str:
    return (os.environ.get("REPRO_VECTOR_CACHE")
            or os.path.join(os.path.expanduser("~"), ".cache", "repro",
                            "vector"))


def _build_library() -> str | None:
    """Compile the kernel into a source-hash-keyed shared library.

    Returns the ``.so`` path, or ``None`` when no C compiler is
    available or compilation fails.  The build is atomic (compile to a
    temp name, ``os.replace`` into place) so concurrent processes --
    the executor's worker pool warms up in parallel -- race benignly.
    """
    digest = hashlib.sha256(_C_SOURCE.encode()).hexdigest()[:16]
    cache = _cache_dir()
    so_path = os.path.join(cache, f"soakernel-{digest}.so")
    if os.path.exists(so_path):
        return so_path
    cc = shutil.which("cc") or shutil.which("gcc")
    if cc is None:
        return None
    try:
        os.makedirs(cache, exist_ok=True)
        fd, c_path = tempfile.mkstemp(suffix=".c", dir=cache)
        with os.fdopen(fd, "w") as f:
            f.write(_C_SOURCE)
        tmp_so = c_path[:-2] + ".so"
        try:
            proc = subprocess.run(
                [cc, "-O2", "-shared", "-fPIC", "-o", tmp_so, c_path],
                capture_output=True, timeout=120)
            if proc.returncode != 0:
                return None
            os.replace(tmp_so, so_path)
        finally:
            for leftover in (c_path, tmp_so):
                try:
                    os.unlink(leftover)
                except OSError:
                    pass
        return so_path
    except (OSError, subprocess.SubprocessError):
        return None


def _fail(reason: str):
    """Memoize unavailability and warn exactly once per process.

    cffi being absent stays *silent* (it is a genuinely optional
    dependency); everything past that point -- no compiler, a failed
    build, an unwritable ``$REPRO_VECTOR_CACHE``, a corrupted cached
    ``.so`` that will not rebuild -- warns, because the user has the
    pieces for the vector kernel and is losing it to an environment
    problem.  Results are unaffected either way: the engine degrades
    loss-free to the scalar fast path.
    """
    global _KERNEL
    _KERNEL = False
    warnings.warn(
        f"vector kernel unavailable ({reason}); falling back to the scalar"
        " fast path (results are identical, replay is slower)",
        RuntimeWarning, stacklevel=4)
    return None


def _load_kernel():
    """Lazily compile + dlopen the kernel; memoized process-wide."""
    global _KERNEL
    if _KERNEL is not None:
        return _KERNEL or None
    try:
        import cffi
    except ImportError:
        _KERNEL = False
        return None
    try:
        so_path = _build_library()
    except Exception as exc:  # unexpected build-machinery failure
        return _fail(f"kernel build error: {exc}")
    if so_path is None:
        return _fail("no C compiler found or compilation failed")
    ffi = cffi.FFI()
    ffi.cdef(_CDEF)
    try:
        lib = ffi.dlopen(so_path)
    except OSError:
        # A corrupted or stale cached .so (truncated write, wrong arch,
        # bit rot): discard it and rebuild once from source.
        try:
            os.unlink(so_path)
        except OSError:
            pass
        try:
            so_path = _build_library()
            if so_path is None:
                return _fail("cached kernel was corrupt and the rebuild"
                             " failed")
            lib = ffi.dlopen(so_path)
        except Exception as exc:
            return _fail(f"cached kernel was corrupt: {exc}")
    _KERNEL = (ffi, lib)
    return _KERNEL


def vector_available() -> bool:
    """True when the compiled kernel can be built and loaded here."""
    return _load_kernel() is not None


# ---------------------------------------------------------------------------
# Array-backed views over the machine's dict/set/list state
# ---------------------------------------------------------------------------
# While a vectorized run is live these replace the real containers, so
# the scalar residual path, the pageout daemon, the fault handler and
# the post-run invariant audits all read/write the same dense arrays
# the kernel does.  Every accessor converts to plain Python int/bool:
# numpy scalars must never leak into NodeStats or RunResult (they
# would change the JSON bytes the store hashes).


_WORD = 0xFFFFFFFFFFFFFFFF


def _join_words(row) -> int:
    """Little-endian uint64 words -> one arbitrary-precision Python int."""
    v = 0
    for w in range(len(row) - 1, -1, -1):
        v = (v << 64) | int(row[w])
    return v


def _split_words(value: int, row) -> None:
    """One Python int -> little-endian uint64 words (row pre-zeroed not
    required; every word is written)."""
    for w in range(len(row)):
        row[w] = value & _WORD
        value >>= 64


class _MaskDict:
    """Directory.copyset: chunk -> sharer bitmask; 0 means absent.

    Backed by a 2-D ``(n_chunks, words)`` uint64 array so >62-node
    machines fit; the view joins/splits the multi-word rows into the
    arbitrary-precision Python ints the scalar directory code uses.

    The real dict can briefly hold an explicit 0 (drop_node_from_page
    stores ``cs & clear``), but every consumer reads through ``.get``
    with a 0/None default and bit-tests the result, so 0-as-absent is
    observationally identical.
    """

    __slots__ = ("_a",)

    def __init__(self, a):
        self._a = a

    def get(self, key, default=None):
        v = _join_words(self._a[key])
        return v if v else default

    def __getitem__(self, key):
        v = _join_words(self._a[key])
        if not v:
            raise KeyError(key)
        return v

    def __setitem__(self, key, value):
        _split_words(int(value), self._a[key])

    def __contains__(self, key):
        return bool(self._a[key].any())

    def __len__(self):
        return int(np.count_nonzero(self._a.any(axis=1)))

    def __iter__(self):
        return iter(np.flatnonzero(self._a.any(axis=1)).tolist())

    def items(self):
        a = self._a
        return [(k, _join_words(a[k]))
                for k in np.flatnonzero(a.any(axis=1)).tolist()]

    def keys(self):
        return list(self)

    def pop(self, key, default=None):
        v = _join_words(self._a[key])
        self._a[key] = 0
        return v if v else default

    def clear(self):
        self._a[:] = 0

    def update(self, other=()):
        items = other.items() if hasattr(other, "items") else other
        for k, v in items:
            _split_words(int(v), self._a[k])

    def drop_node_bulk(self, owner, node, first, count):
        """Directory.drop_node_from_page over the backing arrays.

        One numpy sweep instead of ``count`` get/set round-trips
        through the arbitrary-precision join/split; observationally
        identical to the scalar loop (0-as-absent, owner entry dropped
        only where the node was actually a sharer and the owner)."""
        bit = np.uint64(1 << (node & 63))
        col = self._a[first:first + count, node >> 6]
        hit = (col & bit) != 0
        dropped = int(np.count_nonzero(hit))
        if dropped:
            col[hit] &= ~bit
            oa = owner._a[first:first + count]
            oa[hit & (oa == node)] = -1
        return dropped


class _OwnerDict:
    """Directory.owner: chunk -> owning node; -1 means absent."""

    __slots__ = ("_a",)

    def __init__(self, a):
        self._a = a

    def get(self, key, default=None):
        v = self._a[key]
        return int(v) if v != -1 else default

    def __getitem__(self, key):
        v = self._a[key]
        if v == -1:
            raise KeyError(key)
        return int(v)

    def __setitem__(self, key, value):
        self._a[key] = value

    def __delitem__(self, key):
        if self._a[key] == -1:
            raise KeyError(key)
        self._a[key] = -1

    def __contains__(self, key):
        return self._a[key] != -1

    def __len__(self):
        return int(np.count_nonzero(self._a != -1))

    def __iter__(self):
        return iter(np.flatnonzero(self._a != -1).tolist())

    def items(self):
        a = self._a
        return [(k, int(a[k])) for k in np.flatnonzero(a != -1).tolist()]

    def keys(self):
        return list(self)


class _RefetchDict:
    """Directory.refetch_count: (page, node) -> count over a flat array.

    An explicit 0 (the hint path resets the count) is indistinguishable
    from absence for every consumer (``.get(key, 0)`` / ``.pop``).
    """

    __slots__ = ("_a", "_n")

    def __init__(self, a, n_nodes):
        self._a = a
        self._n = n_nodes

    def _idx(self, key):
        page, node = key
        return page * self._n + node

    def get(self, key, default=None):
        v = self._a[self._idx(key)]
        return int(v) if v else default

    def __getitem__(self, key):
        v = self._a[self._idx(key)]
        if not v:
            raise KeyError(key)
        return int(v)

    def __setitem__(self, key, value):
        self._a[self._idx(key)] = value

    def __contains__(self, key):
        return bool(self._a[self._idx(key)])

    def pop(self, key, default=None):
        i = self._idx(key)
        v = self._a[i]
        self._a[i] = 0
        return int(v) if v else default

    def __len__(self):
        return int(np.count_nonzero(self._a))

    def items(self):
        n = self._n
        return [((k // n, k % n), int(self._a[k]))
                for k in np.flatnonzero(self._a).tolist()]

    def keys(self):
        return [k for k, _ in self.items()]


class _ModeDict:
    """PageTable.mode: page -> PageMode; UNMAPPED (0) means absent."""

    __slots__ = ("_a",)

    def __init__(self, a):
        self._a = a

    def get(self, key, default=None):
        v = self._a[key]
        return PageMode(int(v)) if v else default

    def __getitem__(self, key):
        v = self._a[key]
        if not v:
            raise KeyError(key)
        return PageMode(int(v))

    def __setitem__(self, key, value):
        self._a[key] = int(value)

    def __delitem__(self, key):
        if not self._a[key]:
            raise KeyError(key)
        self._a[key] = 0

    def __contains__(self, key):
        return bool(self._a[key])

    def __len__(self):
        return int(np.count_nonzero(self._a))

    def __iter__(self):
        return iter(np.flatnonzero(self._a).tolist())

    def items(self):
        a = self._a
        return [(k, PageMode(int(a[k]))) for k in np.flatnonzero(a).tolist()]

    def values(self):
        return [v for _, v in self.items()]

    def keys(self):
        return list(self)


class _ScomaValidDict:
    """PageTable.scoma_valid: page -> chunk-valid bitmask.

    Presence is *mode-derived* (a page has an entry iff its mode is
    SCOMA), because a freshly mapped page legitimately holds mask 0 and
    must still show up in iteration and the page-table audits.
    ``__delitem__`` only zeroes the mask: unmap_scoma deletes the entry
    while the mode is still SCOMA and flips the mode immediately after,
    which removes the derived presence.

    Writes to a page whose mode is *not* SCOMA land in a plain-dict
    overlay instead: the simulator never does this, but the invariant
    tests inject exactly that corruption (an entry disagreeing with the
    page mode) to prove the checker sees it, and the view must be able
    to hold -- and delete -- the bad entry like the real dict would.
    """

    __slots__ = ("_a", "_m", "_x")

    def __init__(self, a, modes):
        self._a = a
        self._m = modes
        self._x = {}

    def get(self, key, default=None):
        if self._m[key] != 2:
            return self._x.get(key, default)
        return _join_words(self._a[key])

    def __getitem__(self, key):
        if self._m[key] != 2:
            return self._x[key]
        return _join_words(self._a[key])

    def __setitem__(self, key, value):
        if self._m[key] == 2:
            _split_words(int(value), self._a[key])
            self._x.pop(key, None)
        else:
            self._x[key] = value

    def __delitem__(self, key):
        if key in self._x:
            del self._x[key]
        elif self._m[key] == 2:
            self._a[key] = 0
        else:
            raise KeyError(key)

    def __contains__(self, key):
        return self._m[key] == 2 or key in self._x

    def __len__(self):
        return int(np.count_nonzero(self._m == 2)) + len(self._x)

    def __iter__(self):
        yield from np.flatnonzero(self._m == 2).tolist()
        yield from self._x

    def items(self):
        a = self._a
        out = [(k, _join_words(a[k]))
               for k in np.flatnonzero(self._m == 2).tolist()]
        out.extend(self._x.items())
        return out

    def keys(self):
        return list(self)


class _PcHitsDict:
    """Node.pagecache_hits: page -> hit count; -1 means absent.

    Presence is *not* mode-derived: evict_scoma_page pops the entry
    after unmap_scoma has already flipped the mode, so the entry must
    outlive the SCOMA mapping by one step.
    """

    __slots__ = ("_a",)

    def __init__(self, a):
        self._a = a

    def get(self, key, default=None):
        v = self._a[key]
        return int(v) if v >= 0 else default

    def __getitem__(self, key):
        v = self._a[key]
        if v < 0:
            raise KeyError(key)
        return int(v)

    def __setitem__(self, key, value):
        self._a[key] = value

    def __contains__(self, key):
        return self._a[key] >= 0

    def pop(self, key, default=None):
        v = self._a[key]
        self._a[key] = -1
        return int(v) if v >= 0 else default

    def __len__(self):
        return int(np.count_nonzero(self._a >= 0))

    def items(self):
        a = self._a
        return [(k, int(a[k])) for k in np.flatnonzero(a >= 0).tolist()]

    def keys(self):
        return np.flatnonzero(self._a >= 0).tolist()


class _RefBitsDict:
    """TLB.ref_bits: page -> bool.  A stored False and absence are
    indistinguishable to every consumer (``get(page, False)``), so the
    view needs no separate presence bit."""

    __slots__ = ("_a",)

    def __init__(self, a):
        self._a = a

    def get(self, key, default=None):
        v = self._a[key]
        return True if v else default

    def __getitem__(self, key):
        if not self._a[key]:
            raise KeyError(key)
        return True

    def __setitem__(self, key, value):
        self._a[key] = 1 if value else 0

    def __contains__(self, key):
        return bool(self._a[key])

    def pop(self, key, default=None):
        v = self._a[key]
        self._a[key] = 0
        return True if v else default

    def __len__(self):
        return int(np.count_nonzero(self._a))

    def keys(self):
        return np.flatnonzero(self._a).tolist()


class _ChunkSet:
    """Node.owned / Node.ever_fetched over a uint8 membership row."""

    __slots__ = ("_a",)

    def __init__(self, a):
        self._a = a

    def add(self, key):
        self._a[key] = 1

    def discard(self, key):
        self._a[key] = 0

    def discard_range(self, start, stop):
        """Bulk discard of a contiguous key range (page flush)."""
        self._a[start:stop] = 0

    def __contains__(self, key):
        return bool(self._a[key])

    def __len__(self):
        return int(np.count_nonzero(self._a))

    def __iter__(self):
        return iter(np.flatnonzero(self._a).tolist())


class _IntList:
    """list[int] facade over an int64 row (L1 tags, RAC chunks)."""

    __slots__ = ("_a",)

    def __init__(self, a):
        self._a = a

    def __getitem__(self, i):
        return int(self._a[i])

    def __setitem__(self, i, v):
        self._a[i] = v

    def __len__(self):
        return len(self._a)

    def __iter__(self):
        return iter(self._a.tolist())

    def flush_page_bulk(self, dirty, first, span, mask, line_shift, page):
        """Cache.flush_page over the backing arrays.

        A page's lines land in ``span`` consecutive sets; with the
        power-of-two geometry the span never wraps, so the sweep is a
        contiguous slice compare + masked clear (the wrap fallback
        gathers through an index array).  Bit-identical to the scalar
        per-set loop."""
        a = self._a
        s0 = first & mask
        if s0 + span <= len(a):
            seg = a[s0:s0 + span]
            dseg = dirty._a[s0:s0 + span]
        else:  # pragma: no cover - non-power-of-two geometry only
            idx = (first + np.arange(span)) & mask
            seg = a[idx]
            dseg = None
        hit = (seg != -1) & ((seg >> line_shift) == page)
        flushed = int(np.count_nonzero(hit))
        if flushed:
            if dseg is None:  # pragma: no cover - wrap fallback
                sel = idx[hit]
                a[sel] = -1
                dirty._a[sel] = 0
            else:
                seg[hit] = -1
                dseg[hit] = 0
        return flushed


class _BoolList:
    """list[bool] facade over a uint8 row (L1 dirty bits)."""

    __slots__ = ("_a",)

    def __init__(self, a):
        self._a = a

    def __getitem__(self, i):
        return bool(self._a[i])

    def __setitem__(self, i, v):
        self._a[i] = 1 if v else 0

    def __len__(self):
        return len(self._a)

    def __iter__(self):
        return [bool(x) for x in self._a.tolist()].__iter__()


class _HomeDict:
    """HomeAllocator.home: page -> home node; -1 means unassigned."""

    __slots__ = ("_a",)

    def __init__(self, a):
        self._a = a

    def get(self, key, default=None):
        v = self._a[key]
        return int(v) if v != -1 else default

    def __getitem__(self, key):
        v = self._a[key]
        if v == -1:
            raise KeyError(key)
        return int(v)

    def __setitem__(self, key, value):
        self._a[key] = value

    def __contains__(self, key):
        return self._a[key] != -1

    def __len__(self):
        return int(np.count_nonzero(self._a != -1))

    def __iter__(self):
        return iter(np.flatnonzero(self._a != -1).tolist())

    def items(self):
        a = self._a
        return [(k, int(a[k])) for k in np.flatnonzero(a != -1).tolist()]

    def keys(self):
        return list(self)


# ---------------------------------------------------------------------------
# Eligibility + orchestration
# ---------------------------------------------------------------------------

def _eligible(engine) -> bool:
    """Cheap pre-flight: is this run inside the kernel's model?

    Anything that truly needs to observe *every* intermediate state
    transition (unfiltered event-bus observers beyond the engine's own
    page-memo invalidator -- which is how the invariant checker
    attaches -- a directory message log, a time-series sampler) or a
    shape the dense arrays cannot carry (associative L1, out-of-range
    reference args) falls back to ``_run_fast``.

    Shapes that used to disqualify a run but no longer do:

    * **>62 nodes / chunks-per-page** -- copyset and S-COMA valid
      bitmaps are multi-word ``uint64`` rows now;
    * **the page memo** -- the kernel never mutates page modes or
      homes (faults, evictions, relocations and migrations all exit to
      Python pre-mutation), so the memo and its unfiltered invalidator
      observer stay exact across kernel slices;
    * **kind-filtered observers** (``repro.obs`` backoff telemetry) --
      run-structure kinds publish at Python exits exactly as before,
      and in-kernel invalidations/demotions are replayed post-slice
      through the bounded event ring.
    """
    machine = engine.machine
    if not engine._l1_direct:
        return False
    if engine.sampler is not None:
        return False
    if machine.directory.log is not None:
        return False
    for ob in machine.events.observers:
        if ob != engine._invalidate_memo:
            return False
    _, _, _, _, ref_lo, ref_hi = engine.workload.soa()
    if ref_hi >= 0:
        n_pages = engine.workload.total_shared_pages
        lines_total = n_pages << engine._line_shift
        if ref_lo < 0 or ref_hi >= lines_total:
            return False
    return True


def _merge_deltas(engine, st, aux, glob) -> None:
    """Fold the kernel's commutative counter deltas into the live
    objects.  Every value goes through int(): numpy scalars must not
    reach NodeStats / RunResult."""
    machine = engine.machine
    for i, node in enumerate(machine.nodes):
        stats = node.stats
        row = st[i]
        for slot, attr in enumerate(_STAT_ATTRS):
            setattr(stats, attr, getattr(stats, attr) + int(row[slot]))
        arow = aux[i]
        l1s = node.l1.stats
        l1s.writebacks += int(arow[_A_WB])
        l1s.invalidations += int(arow[_A_INVAL])
        rac = node.rac
        rac.hits += int(arow[_A_RAC_HITS])
        rac.misses += int(arow[_A_RAC_MISSES])
        rac.fills += int(arow[_A_RAC_FILLS])
        mem = node.memory
        mem.accesses += int(arow[_A_MEM_ACC])
        mem.contended += int(arow[_A_MEM_CONT])
        mem.total_queue_cycles += int(arow[_A_MEM_Q])
        bus = machine.buses[i]
        bus.transactions += int(arow[_A_BUS_TX])
        bus.contended += int(arow[_A_BUS_CONT])
        bus.total_queue_cycles += int(arow[_A_BUS_Q])
    net = machine.network
    net.messages += int(glob[_G_NET_MSGS])
    net.contended_messages += int(glob[_G_NET_CONT])
    net.total_queue_cycles += int(glob[_G_NET_Q])
    directory = machine.directory
    directory.total_refetches += int(glob[_G_DIR_REFETCH])
    directory.forwards += int(glob[_G_DIR_FWD])
    directory.invalidations_sent += int(glob[_G_DIR_INV])
    directory.exclusive_grants += int(glob[_G_DIR_EXCL])
    protocol = machine.protocol
    protocol.remote_fetches += int(glob[_G_REMOTE])
    protocol.three_hop_fetches += int(glob[_G_THREE_HOP])
    protocol.write_stalls += int(glob[_G_STALLS])


def run_vector(engine) -> list[int] | None:
    """Run the engine's replay through the compiled SoA kernel.

    Returns the per-node finish clocks (plain ints), or ``None`` when
    the kernel is unavailable or the run is ineligible -- in which
    case nothing has been mutated and the caller falls back to
    ``_run_fast``.
    """
    kernel = _load_kernel()
    if kernel is None or not _eligible(engine):
        return None
    ffi, lib = kernel

    machine = engine.machine
    config = engine.config
    amap = machine.amap
    nodes = machine.nodes
    directory = machine.directory
    network = machine.network
    allocator = machine.allocator
    n = config.n_nodes
    n_pages = engine.workload.total_shared_pages
    cpp = amap.chunks_per_page
    n_chunks = n_pages * cpp
    n_sets = nodes[0].l1.n_sets
    rac_entries = nodes[0].rac.n_entries
    n_banks = len(nodes[0].memory.busy_until)
    mem0 = nodes[0].memory
    bus0 = machine.buses[0]

    # --- trace SoA ---------------------------------------------------
    kinds_all, args_all, tr_off, tr_len, _, _ = engine.workload.soa()

    # --- dense state arrays, built from the live containers ----------
    # Copyset / S-COMA valid bitmaps are multi-word uint64 rows so the
    # kernel model has no node-count or chunks-per-page ceiling.
    cs_words = (n + 63) // 64
    sv_words = (cpp + 63) // 64
    copyset = np.zeros((max(n_chunks, 1), cs_words), dtype=np.uint64)
    for k, v in directory.copyset.items():
        _split_words(int(v), copyset[k])
    owner = np.full(max(n_chunks, 1), -1, dtype=np.int64)
    for k, v in directory.owner.items():
        owner[k] = v
    refetch = np.zeros(max(n_pages * n, 1), dtype=np.int64)
    for (pg, nd), v in directory.refetch_count.items():
        refetch[pg * n + nd] = v
    home = np.full(max(n_pages, 1), -1, dtype=np.int64)
    for pg, v in allocator.home.items():
        home[pg] = v
    modes = np.zeros((n, max(n_pages, 1)), dtype=np.int64)
    scoma_valid = np.zeros((n, max(n_pages, 1), sv_words), dtype=np.uint64)
    pc_hits = np.full((n, max(n_pages, 1)), -1, dtype=np.int64)
    ref_bits = np.zeros((n, max(n_pages, 1)), dtype=np.uint8)
    owned = np.zeros((n, max(n_chunks, 1)), dtype=np.uint8)
    ever = np.zeros((n, max(n_chunks, 1)), dtype=np.uint8)
    l1_tags = np.empty((n, n_sets), dtype=np.int64)
    l1_dirty = np.empty((n, n_sets), dtype=np.uint8)
    rac_arr = np.empty((n, rac_entries), dtype=np.int64)
    for i, node in enumerate(nodes):
        pt = node.page_table
        for pg, m in pt.mode.items():
            modes[i, pg] = int(m)
        for pg, mask in pt.scoma_valid.items():
            _split_words(int(mask), scoma_valid[i, pg])
        for pg, hits in node.pagecache_hits.items():
            pc_hits[i, pg] = hits
        for pg, bit in node.tlb.ref_bits.items() if hasattr(
                node.tlb.ref_bits, "items") else ():
            ref_bits[i, pg] = 1 if bit else 0
        for c in node.owned:
            owned[i, c] = 1
        for c in node.ever_fetched:
            ever[i, c] = 1
        l1_tags[i, :] = node.l1.tags
        l1_dirty[i, :] = [1 if d else 0 for d in node.l1.dirty]
        rac_arr[i, :] = node.rac.chunks

    # --- scheduler state ---------------------------------------------
    pos = np.zeros(n, dtype=np.int64)
    clock = np.zeros(n, dtype=np.int64)
    arrival = np.zeros(n, dtype=np.int64)
    barrier_id = np.full(n, -1, dtype=np.int64)
    finished = np.array([tr_len[i] == 0 for i in range(n)], dtype=np.uint8)
    waiting = np.zeros(n, dtype=np.uint8)
    ctl = np.zeros(8, dtype=np.int64)

    # --- event ring + invalidation scratch ---------------------------
    # The ring records in-kernel invalidations/demotions only when a
    # kind-filtered subscriber actually watches that kind; an
    # unfiltered observer other than the page-memo invalidator already
    # failed eligibility, and the memo invalidator ignores both kinds.
    events = machine.events
    ring_inv = EV_INVALIDATE in events.kind_observers
    ring_dem = EV_DEMOTE in events.kind_observers
    ring_cap = max(1024, 2 * n + 4)
    ring = np.zeros((ring_cap, 4), dtype=np.int64)
    inv_scratch = np.zeros(cs_words, dtype=np.uint64)

    # --- timing state (copied in/out at every kernel boundary) -------
    net_port = np.zeros(n, dtype=np.int64)
    mem_busy = np.zeros((n, n_banks), dtype=np.int64)
    bus_busy = np.zeros(n, dtype=np.int64)
    net_base = np.ascontiguousarray(np.array(network._base, dtype=np.int64))

    # --- per-boundary scalars + counter deltas -----------------------
    below_min = np.zeros(n, dtype=np.uint8)
    next_run = np.zeros(n, dtype=np.int64)
    thr = np.zeros(n, dtype=np.int64)
    st = np.zeros((n, _N_STATS), dtype=np.int64)
    aux = np.zeros((n, _N_AUX), dtype=np.int64)
    glob = np.zeros(_N_GLOB, dtype=np.int64)

    params = np.zeros(_N_PARAMS, dtype=np.int64)
    params[_P_N] = n
    params[_P_QUANTUM] = engine.quantum
    params[_P_NO_LIMIT] = sys.maxsize
    params[_P_LINE_SHIFT] = engine._line_shift
    params[_P_CHUNK_SHIFT] = engine._chunk_shift
    params[_P_CPP_MASK] = engine._cpp_mask
    params[_P_SET_MASK] = nodes[0].l1.set_mask
    params[_P_RAC_MASK] = nodes[0].rac.entry_mask
    params[_P_RAC_VICTIM] = 1 if engine._rac_victim else 0
    params[_P_HIT_CYCLES] = engine._hit_cycles
    params[_P_RAC_CYCLES] = engine._rac_cycles
    params[_P_DSM2] = engine._dsm2
    params[_P_GRANT_EX] = 1 if directory.grant_exclusive else 0
    params[_P_STALL_INV] = 1 if machine.protocol.stall_on_invalidate else 0
    params[_P_SKIP_NODE] = config.debug_skip_invalidate_node
    params[_P_BANK_MASK] = mem0.bank_mask
    params[_P_MEM_SERVICE] = mem0.service_cycles
    params[_P_MEM_OCC] = mem0.occupancy_cycles
    params[_P_MEM_MAXQ] = mem0.max_queue
    params[_P_BUS_OCC] = bus0.occupancy
    params[_P_BUS_FIXED] = bus0.fixed_cost
    params[_P_BUS_MAXQ] = bus0.max_queue
    params[_P_NET_OCC] = network.port_occupancy
    params[_P_NET_MAXQ] = network.max_queue
    params[_P_LPC] = 1 << engine._chunk_shift
    params[_P_N_PAGES] = max(n_pages, 1)
    params[_P_N_SETS] = n_sets
    params[_P_N_BANKS] = n_banks
    params[_P_RAC_ENTRIES] = rac_entries
    params[_P_PC_SHIFT] = engine._line_shift - engine._chunk_shift
    params[_P_N_CHUNKS] = max(n_chunks, 1)
    params[_P_CS_WORDS] = cs_words
    params[_P_SV_WORDS] = sv_words
    params[_P_RING_INV] = 1 if ring_inv else 0
    params[_P_RING_DEM] = 1 if ring_dem else 0
    params[_P_RING_CAP] = ring_cap

    # --- install the views: arrays become the single source of truth -
    directory.copyset = _MaskDict(copyset)
    directory.owner = _OwnerDict(owner)
    directory.refetch_count = _RefetchDict(refetch, n)
    home_view = _HomeDict(home)
    allocator.home = home_view
    engine._home = home_view
    for i, node in enumerate(nodes):
        pt = node.page_table
        pt.mode = _ModeDict(modes[i])
        pt.scoma_valid = _ScomaValidDict(scoma_valid[i], modes[i])
        node.pagecache_hits = _PcHitsDict(pc_hits[i])
        node.tlb.ref_bits = _RefBitsDict(ref_bits[i])
        node.owned = _ChunkSet(owned[i])
        node.ever_fetched = _ChunkSet(ever[i])
        node.l1.tags = _IntList(l1_tags[i])
        node.l1.dirty = _BoolList(l1_dirty[i])
        node.rac.chunks = _IntList(rac_arr[i])

    # --- wire the C struct -------------------------------------------
    state = ffi.new("SoaState *")
    keepalive = []

    def _ptr(arr, ctype):
        keepalive.append(arr)
        return ffi.cast(ctype, arr.ctypes.data)

    state.P = _ptr(params, "int64_t *")
    state.kinds = _ptr(np.ascontiguousarray(kinds_all), "uint8_t *")
    state.args = _ptr(np.ascontiguousarray(args_all), "int64_t *")
    state.tr_off = _ptr(np.ascontiguousarray(tr_off), "int64_t *")
    state.tr_len = _ptr(np.ascontiguousarray(tr_len), "int64_t *")
    state.pos = _ptr(pos, "int64_t *")
    state.clock = _ptr(clock, "int64_t *")
    state.arrival = _ptr(arrival, "int64_t *")
    state.barrier_id = _ptr(barrier_id, "int64_t *")
    state.finished = _ptr(finished, "uint8_t *")
    state.waiting = _ptr(waiting, "uint8_t *")
    state.ctl = _ptr(ctl, "int64_t *")
    state.l1_tags = _ptr(l1_tags, "int64_t *")
    state.l1_dirty = _ptr(l1_dirty, "uint8_t *")
    state.rac = _ptr(rac_arr, "int64_t *")
    state.owned = _ptr(owned, "uint8_t *")
    state.ever = _ptr(ever, "uint8_t *")
    state.copyset = _ptr(copyset, "uint64_t *")
    state.owner = _ptr(owner, "int64_t *")
    state.refetch = _ptr(refetch, "int64_t *")
    state.modes = _ptr(modes, "int64_t *")
    state.scoma_valid = _ptr(scoma_valid, "uint64_t *")
    state.pc_hits = _ptr(pc_hits, "int64_t *")
    state.ref_bits = _ptr(ref_bits, "uint8_t *")
    state.home = _ptr(home, "int64_t *")
    state.net_base = _ptr(net_base, "int64_t *")
    state.net_port = _ptr(net_port, "int64_t *")
    state.mem_busy = _ptr(mem_busy, "int64_t *")
    state.bus_busy = _ptr(bus_busy, "int64_t *")
    state.below_min = _ptr(below_min, "uint8_t *")
    state.next_run = _ptr(next_run, "int64_t *")
    state.thr = _ptr(thr, "int64_t *")
    state.st = _ptr(st, "int64_t *")
    state.aux = _ptr(aux, "int64_t *")
    state.glob = _ptr(glob, "int64_t *")
    state.inv_scratch = _ptr(inv_scratch, "uint64_t *")
    state.ring = _ptr(ring, "int64_t *")

    buses = machine.buses

    def _timing_in():
        """Copy live timing state (lists/scalars) into the arrays."""
        for i, node in enumerate(nodes):
            mem_busy[i, :] = node.memory.busy_until
            bus_busy[i] = buses[i].busy_until
            below_min[i] = 1 if node.pool.below_min else 0
            next_run[i] = node.daemon.next_run_at
            thr[i] = node.policy_state.effective_threshold()
        net_port[:] = network.port_busy_until

    def _timing_out():
        """Copy the arrays back into the live objects (plain ints)."""
        for i, node in enumerate(nodes):
            node.memory.busy_until[:] = mem_busy[i].tolist()
            buses[i].busy_until = int(bus_busy[i])
        network.port_busy_until[:] = net_port.tolist()

    pc_shift = int(params[_P_PC_SHIFT])

    def _flush_ring():
        """Replay ring-deferred invalidate/demote events to the bus.

        Runs before any other Python-side work at every kernel exit, so
        the publish order (and the per-event clock stamp, which mirrors
        the scalar kind-filtered stamping rule) matches the scalar
        loops exactly.
        """
        count = int(ctl[_RINGN])
        if not count:
            return
        for j in range(count):
            kind, nd, ch, clk = ring[j].tolist()
            events.clock = clk
            events.publish(EV_INVALIDATE if kind == 0 else EV_DEMOTE,
                           nd, ch >> pc_shift, chunk=ch)
        ctl[_RINGN] = 0

    # --- drive the kernel --------------------------------------------
    while True:
        _timing_in()
        rc = int(lib.soa_run(state))
        _timing_out()
        _flush_ring()
        if rc == _RESIDUAL:
            # Drain the whole run of residual events the kernel
            # batched up (page-fault storms, relocation bursts).  The
            # first event was already admitted by the kernel's limit
            # check; each later one re-checks the slice limit, exactly
            # like the scalar loop's `while now < limit` would.
            best = int(ctl[_BEST])
            now = int(ctl[_NOW])
            limit = int(ctl[_LIMIT])
            run = int(ctl[_RLEN])
            p = int(pos[best])
            off = int(tr_off[best])
            node = nodes[best]
            shared_ref = engine._shared_ref
            for j in range(run):
                if j and now >= limit:
                    break
                now += shared_ref(node, int(args_all[off + p]),
                                  int(kinds_all[off + p]) == EV_WRITE, now)
                p += 1
            pos[best] = p
            ctl[_NOW] = now
        elif rc == _RINGFULL:
            pass  # flushed above; re-enter with a drained ring
        elif rc == _DAEMON:
            nodes[int(ctl[_BEST])].run_daemon_if_due(int(ctl[_NOW]))
        elif rc == _BARRIER:
            clock_l = clock.tolist()
            arrival_l = arrival.tolist()
            waiting_l = [bool(x) for x in waiting]
            pos_l = pos.tolist()
            end_l = tr_len.tolist()
            finished_l = [bool(x) for x in finished]
            bid_l = barrier_id.tolist()
            engine._release_barrier(nodes, clock_l, arrival_l, waiting_l,
                                    pos_l, end_l, finished_l, bid_l)
            clock[:] = clock_l
            waiting[:] = [1 if w else 0 for w in waiting_l]
            finished[:] = [1 if f else 0 for f in finished_l]
        elif rc == _DEADLOCK:
            _merge_deltas(engine, st, aux, glob)
            raise RuntimeError("deadlock: all unfinished nodes are waiting"
                               " at a barrier that never released")
        else:  # _DONE
            _merge_deltas(engine, st, aux, glob)
            return [int(c) for c in clock]
