"""Simulation event bus: rare page-management and coherence events.

The replay engine's per-reference hot path must stay fast, so the bus
publishes only the *rare* transitions the protocol and VM state
machines make -- page faults, S-COMA mappings, evictions, relocations,
flushes, migrations, invalidations, daemon runs, barrier releases --
to registered observers.  With no observer attached, every publish
site reduces to one attribute load and a falsy-list check, so an
unobserved run pays (near-)zero cost.

One :class:`EventBus` is shared by a :class:`~repro.sim.machine.Machine`
and all of its nodes.  The engine stamps ``bus.clock`` with the acting
node's local clock at every rare-event entry point, so observers see
events with cycle context without the hot path threading ``now``
through every call.

Observers include :class:`~repro.sim.debug.EventTrace` (bounded
diagnostic recording) and :class:`~repro.check.InvariantChecker`
(online invariant checking with deterministic failure replay).
"""

from __future__ import annotations

__all__ = [
    "EventBus", "SimEvent",
    "EV_FAULT", "EV_MAP_SCOMA", "EV_EVICT", "EV_RELOCATE", "EV_FLUSH",
    "EV_INVALIDATE", "EV_DEMOTE", "EV_DAEMON", "EV_BARRIER", "EV_MIGRATE",
    "EV_END",
]

# -- event kinds ---------------------------------------------------------
EV_FAULT = "fault"            #: first touch of a shared page on a node
EV_MAP_SCOMA = "map_scoma"    #: page installed into the local page cache
EV_EVICT = "evict"            #: S-COMA page evicted (detail: forced)
EV_RELOCATE = "relocate"      #: CC-NUMA page upgraded to S-COMA mode
EV_FLUSH = "flush"            #: page flushed from all local caches
EV_INVALIDATE = "invalidate"  #: chunk invalidated by a remote write
EV_DEMOTE = "demote"          #: write permission lost to a remote read
EV_DAEMON = "daemon"          #: pageout daemon run (detail: thrashing)
EV_BARRIER = "barrier"        #: global barrier released
EV_MIGRATE = "migrate"        #: page home migrated (detail: old_home)
EV_END = "end"                #: simulation finished


class SimEvent:
    """One published event.  ``detail`` carries kind-specific context."""

    __slots__ = ("kind", "node", "page", "clock", "detail")

    def __init__(self, kind: str, node: int, page: int, clock: int,
                 detail: dict) -> None:
        self.kind = kind
        self.node = node
        self.page = page
        self.clock = clock
        self.detail = detail

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        tail = f" {self.detail}" if self.detail else ""
        return (f"<{self.kind} node={self.node} page={self.page}"
                f" clock={self.clock}{tail}>")


class EventBus:
    """Synchronous observer list with a clock hint.

    ``publish`` returns immediately when no observer is subscribed;
    publish *sites* may additionally guard on ``bus.observers`` to skip
    building event details entirely.

    Kind-filtered subscriptions (``subscribe(obs, kinds=...)``) exist
    for telemetry that must not slow the replay hot path: a filtered
    observer never appears in ``observers``, so the engine's inlined
    fast path (which disables itself while ``observers`` is non-empty)
    and the per-event publish guards stay on.  The trade-off is that a
    filtered observer only sees kinds whose publish sites guard on
    :meth:`watching` rather than on ``observers`` — today the rare
    run-structure kinds (``EV_DAEMON``, ``EV_BARRIER``, ``EV_END``),
    which is exactly the set :class:`repro.obs.BackoffTelemetry` needs.
    """

    __slots__ = ("observers", "clock", "kind_observers")

    def __init__(self) -> None:
        self.observers: list = []
        #: kind -> observers that only want that kind (see class docs).
        self.kind_observers: dict = {}
        self.clock = 0

    def subscribe(self, observer, kinds=None) -> None:
        """Register ``observer(event: SimEvent)``.

        With *kinds* (an iterable of event-kind strings) the observer
        is kind-filtered: it sees only those kinds, and it does not
        disturb the ``observers``-guarded fast paths.
        """
        if kinds is None:
            self.observers.append(observer)
        else:
            for kind in kinds:
                self.kind_observers.setdefault(kind, []).append(observer)

    def unsubscribe(self, observer) -> None:
        if observer in self.observers:
            self.observers.remove(observer)
            return
        for kind in list(self.kind_observers):
            subscribers = self.kind_observers[kind]
            while observer in subscribers:
                subscribers.remove(observer)
            if not subscribers:
                del self.kind_observers[kind]

    def watching(self, kind: str) -> bool:
        """Would a publish of *kind* reach any observer right now?"""
        return bool(self.observers) or kind in self.kind_observers

    def publish(self, kind: str, node: int, page: int, **detail) -> None:
        filtered = self.kind_observers.get(kind)
        if not self.observers and not filtered:
            return
        event = SimEvent(kind, node, page, self.clock, detail)
        for observer in self.observers:
            observer(event)
        if filtered:
            for observer in filtered:
                observer(event)
