"""Per-node reference traces.

A trace is the sequence of events one node's processor generates:

* ``READ`` / ``WRITE`` of a global shared line,
* ``COMPUTE`` -- a burst of user instructions (cycles),
* ``LOCAL``  -- a burst of private/non-shared memory stall (cycles),
* ``BARRIER`` -- global synchronisation point.

Traces are stored as three parallel numpy arrays (kind, arg) for
compactness; the replay engine converts them to Python lists once per
run because scalar indexing of Python lists is ~3x faster than numpy
scalar indexing in the interpreter loop (see the hpc guides: profile,
then optimise the measured hot path).

The module also provides a tiny binary save/load format so generated
workloads can be cached on disk.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

import numpy as np

__all__ = ["EV_READ", "EV_WRITE", "EV_COMPUTE", "EV_LOCAL", "EV_BARRIER",
           "TRACE_FORMAT_VERSION", "Trace", "TraceBuilder", "WorkloadTraces",
           "coalesce_events", "load_trace_header"]

EV_READ = 0
EV_WRITE = 1
EV_COMPUTE = 2
EV_LOCAL = 3
EV_BARRIER = 4

_EVENT_NAMES = {EV_READ: "READ", EV_WRITE: "WRITE", EV_COMPUTE: "COMPUTE",
                EV_LOCAL: "LOCAL", EV_BARRIER: "BARRIER"}

_MAGIC = b"ASCT1\n"

#: Version of the event encoding + on-disk layout.  Bump whenever the
#: meaning of (kind, arg) pairs or the binary layout changes: saved
#: files then stop loading (``load`` raises) and every content hash
#: derived from this constant stops matching, so stale trace-cache
#: entries are regenerated rather than silently misread.
TRACE_FORMAT_VERSION = 1


def coalesce_events(kinds: np.ndarray,
                    args: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Merge adjacent same-kind ``COMPUTE``/``LOCAL`` runs.

    A run of k consecutive ``EV_COMPUTE`` (or ``EV_LOCAL``) events
    collapses into one event whose arg is the run's cycle sum.  Shared
    references and barriers are never touched, and the relative order
    of all surviving events is preserved, so per-node cycle totals,
    stats buckets and barrier alignment are unchanged -- the property
    ``tests/test_generator_properties.py`` pins down.  Fewer events
    means fewer interpreter iterations in the replay engine.
    """
    if kinds.shape != args.shape:
        raise ValueError("kinds/args length mismatch")
    n = len(kinds)
    if n == 0:
        return kinds, args
    mergeable = (kinds == EV_COMPUTE) | (kinds == EV_LOCAL)
    # Event i merges into its predecessor iff same kind and mergeable.
    merge = (kinds[1:] == kinds[:-1]) & mergeable[1:]
    if not merge.any():
        return kinds, args
    keep = np.concatenate([[True], ~merge])
    group = np.cumsum(keep) - 1  # output index of each input event
    out_args = np.zeros(int(keep.sum()), dtype=np.int64)
    np.add.at(out_args, group, np.asarray(args, dtype=np.int64))
    # Non-mergeable kinds are always singleton groups, so the group sum
    # is their own arg (barrier ids and line ids survive untouched).
    return kinds[keep], out_args


class Trace:
    """Immutable event sequence for one node.

    The replay engine consumes the plain-list form (:meth:`as_lists`),
    which is computed once and cached: scalar indexing of Python lists
    is ~3x faster than numpy scalar indexing, and the evaluation matrix
    replays the same (cached) workload under many architectures.
    """

    __slots__ = ("kinds", "args", "_kinds_list", "_args_list")

    def __init__(self, kinds: np.ndarray, args: np.ndarray) -> None:
        if kinds.shape != args.shape:
            raise ValueError("kinds/args length mismatch")
        self.kinds = np.ascontiguousarray(kinds, dtype=np.uint8)
        self.args = np.ascontiguousarray(args, dtype=np.int64)
        self._kinds_list: list[int] | None = None
        self._args_list: list[int] | None = None

    def as_lists(self) -> tuple[list[int], list[int]]:
        """Cached ``(kinds, args)`` as plain Python lists (read-only)."""
        if self._kinds_list is None:
            self._kinds_list = self.kinds.tolist()
            self._args_list = self.args.tolist()
        return self._kinds_list, self._args_list

    def coalesced(self) -> "Trace":
        """This trace with adjacent COMPUTE/LOCAL runs merged.

        Returns ``self`` when there is nothing to merge (the common
        case for the built-in generators, which interleave compute
        markers between reference bursts).
        """
        kinds, args = coalesce_events(self.kinds, self.args)
        if kinds is self.kinds:
            return self
        return Trace(kinds, args)

    def __len__(self) -> int:
        return len(self.kinds)

    def __iter__(self):
        for k, a in zip(self.kinds, self.args):
            yield int(k), int(a)

    # -- introspection ----------------------------------------------------
    def count(self, kind: int) -> int:
        return int(np.count_nonzero(self.kinds == kind))

    def shared_refs(self) -> int:
        return self.count(EV_READ) + self.count(EV_WRITE)

    def barriers(self) -> int:
        return self.count(EV_BARRIER)

    def pages_touched(self, lines_per_page: int) -> set[int]:
        mask = (self.kinds == EV_READ) | (self.kinds == EV_WRITE)
        return set((self.args[mask] // lines_per_page).tolist())

    def event_name(self, kind: int) -> str:
        return _EVENT_NAMES[kind]

    def content_hash(self) -> str:
        """Stable 16-hex digest of the event arrays.

        Covers dtype, length and raw bytes of both arrays plus the
        trace format version, so two traces hash equal iff replaying
        them is guaranteed to be indistinguishable.
        """
        h = hashlib.sha256()
        h.update(f"v{TRACE_FORMAT_VERSION}:{len(self.kinds)}:".encode())
        h.update(self.kinds.tobytes())
        h.update(self.args.tobytes())
        return h.hexdigest()[:16]


@dataclass
class TraceBuilder:
    """Append-only trace construction."""

    _kinds: list[int] = field(default_factory=list)
    _args: list[int] = field(default_factory=list)

    def read(self, line: int) -> None:
        self._kinds.append(EV_READ)
        self._args.append(line)

    def write(self, line: int) -> None:
        self._kinds.append(EV_WRITE)
        self._args.append(line)

    def compute(self, cycles: int) -> None:
        if cycles < 0:
            raise ValueError("compute cycles must be non-negative")
        if cycles:
            self._kinds.append(EV_COMPUTE)
            self._args.append(cycles)

    def local(self, cycles: int) -> None:
        if cycles < 0:
            raise ValueError("local-memory cycles must be non-negative")
        if cycles:
            self._kinds.append(EV_LOCAL)
            self._args.append(cycles)

    def barrier(self, index: int) -> None:
        self._kinds.append(EV_BARRIER)
        self._args.append(index)

    def extend_refs(self, lines: np.ndarray, writes: np.ndarray) -> None:
        """Bulk-append shared references (vectorised generator path)."""
        if len(lines) != len(writes):
            raise ValueError("lines/writes length mismatch")
        self._kinds.extend(np.where(writes, EV_WRITE, EV_READ).tolist())
        self._args.extend(np.asarray(lines, dtype=np.int64).tolist())

    def extend_events(self, kinds, args) -> None:
        """Bulk-append pre-encoded ``(kind, arg)`` pairs.

        Accepts numpy arrays or plain sequences; multi-dimensional
        arrays are flattened in C order.  This is the public bulk API
        for vectorised emitters that assemble whole event blocks
        (e.g. ``workloads.base.emit_visits``) -- they must not reach
        into the private ``_kinds``/``_args`` lists.
        """
        kinds = np.asarray(kinds, dtype=np.uint8).ravel()
        args = np.asarray(args, dtype=np.int64).ravel()
        if kinds.shape != args.shape:
            raise ValueError("kinds/args length mismatch")
        if len(kinds) and int(kinds.max()) > EV_BARRIER:
            raise ValueError("unknown event kind in bulk append")
        self._kinds.extend(kinds.tolist())
        self._args.extend(args.tolist())

    def build(self, coalesce: bool = False) -> Trace:
        """Freeze into a :class:`Trace`.

        ``coalesce=True`` merges adjacent same-kind COMPUTE/LOCAL runs
        (see :func:`coalesce_events`) -- the generators pass it so
        replay never pays for split cycle bursts.
        """
        kinds = np.array(self._kinds, dtype=np.uint8)
        args = np.array(self._args, dtype=np.int64)
        if coalesce:
            kinds, args = coalesce_events(kinds, args)
        return Trace(kinds, args)

    def __len__(self) -> int:
        return len(self._kinds)


class WorkloadTraces:
    """A complete workload: one trace per node + metadata.

    ``home_pages_per_node`` sizes each node's pinned memory (and thus,
    with the memory pressure, its page cache); ``name`` keys the Table 5
    and Figure 2/3 emitters.
    """

    def __init__(self, name: str, traces: list[Trace],
                 home_pages_per_node: int, total_shared_pages: int,
                 params: dict | None = None) -> None:
        if not traces:
            raise ValueError("need at least one node trace")
        barrier_counts = {t.barriers() for t in traces}
        if len(barrier_counts) != 1:
            raise ValueError("all nodes must reach the same number of barriers")
        self.name = name
        self.traces = traces
        self.home_pages_per_node = home_pages_per_node
        self.total_shared_pages = total_shared_pages
        self.params = params or {}

    @property
    def n_nodes(self) -> int:
        return len(self.traces)

    def total_refs(self) -> int:
        return sum(t.shared_refs() for t in self.traces)

    def max_remote_pages(self, lines_per_page: int,
                         home_of: dict[int, int] | None = None) -> int:
        """Upper bound on remote pages any node touches.

        Without a home map this counts pages touched minus the node's
        proportional home share -- the quantity Table 5 reports.
        """
        worst = 0
        for node, trace in enumerate(self.traces):
            touched = trace.pages_touched(lines_per_page)
            if home_of is not None:
                remote = sum(1 for p in touched if home_of.get(p) != node)
            else:
                remote = max(0, len(touched) - self.home_pages_per_node)
            worst = max(worst, remote)
        return worst

    def ideal_pressure(self, lines_per_page: int) -> float:
        """Memory pressure below which a perfect S-COMA never evicts.

        ideal = H / (H + Rmax): with pressure p, cache frames per node
        are H(1-p)/p, which covers Rmax exactly at p = H/(H+Rmax).
        """
        h = self.home_pages_per_node
        r = self.max_remote_pages(lines_per_page)
        return h / (h + r) if (h + r) else 1.0

    def soa(self) -> tuple:
        """Structure-of-arrays decode of the whole workload, cached.

        Returns ``(kinds, args, offsets, lengths, ref_lo, ref_hi)``:
        every node trace concatenated into one contiguous ``uint8`` kind
        array and one contiguous ``int64`` arg array, with per-node
        ``offsets``/``lengths`` (``int64``) locating node *i*'s events at
        ``[offsets[i], offsets[i] + lengths[i])``.  ``ref_lo``/``ref_hi``
        are the smallest and largest line id any READ/WRITE event
        references (``0``/``-1`` when there are none) -- the vectorized
        replay substrate (:mod:`repro.sim.soatrace`) sizes and bounds-
        checks its dense state arrays with them.

        The decode is computed once and cached on the workload object:
        the evaluation matrix replays one workload under many
        architectures and pressures, and the per-process trace memo
        shares the ``WorkloadTraces`` instance across those runs, so the
        concatenation cost amortises the same way :meth:`Trace.as_lists`
        does for the scalar loops.  All arrays are read-only for
        callers.
        """
        cached = getattr(self, "_soa_cache", None)
        if cached is None:
            kinds = np.concatenate([t.kinds for t in self.traces])
            args = np.concatenate([t.args for t in self.traces])
            lengths = np.array([len(t) for t in self.traces], dtype=np.int64)
            offsets = np.zeros(len(lengths), dtype=np.int64)
            np.cumsum(lengths[:-1], out=offsets[1:])
            refs = args[kinds <= EV_WRITE]
            if len(refs):
                ref_lo, ref_hi = int(refs.min()), int(refs.max())
            else:
                ref_lo, ref_hi = 0, -1
            cached = (kinds, args, offsets, lengths, ref_lo, ref_hi)
            self._soa_cache = cached
        return cached

    def content_hash(self) -> str:
        """Stable 16-hex digest of the complete workload.

        Combines every node trace's :meth:`Trace.content_hash` with the
        metadata the replay engine consumes, so equality of hashes means
        "bit-identical replay inputs" — the property the trace cache's
        golden tests pin down.
        """
        h = hashlib.sha256()
        h.update(f"{self.name}:{self.home_pages_per_node}:"
                 f"{self.total_shared_pages}:{self.n_nodes}:".encode())
        for trace in self.traces:
            h.update(trace.content_hash().encode())
        return h.hexdigest()[:16]

    # -- persistence ---------------------------------------------------
    def save(self, path: str) -> None:
        with open(path, "wb") as fh:
            fh.write(_MAGIC)
            header = {
                "name": self.name,
                "home_pages_per_node": self.home_pages_per_node,
                "total_shared_pages": self.total_shared_pages,
                "n_nodes": self.n_nodes,
                "params": self.params,
                "format_version": TRACE_FORMAT_VERSION,
            }
            fh.write((repr(header) + "\n").encode())
            for trace in self.traces:
                np.save(fh, trace.kinds)
                np.save(fh, trace.args)

    @classmethod
    def load(cls, path: str) -> "WorkloadTraces":
        with open(path, "rb") as fh:
            header = _read_header(fh, path)
            traces = []
            for _ in range(header["n_nodes"]):
                kinds = np.load(fh)
                args = np.load(fh)
                traces.append(Trace(kinds, args))
        return cls(header["name"], traces, header["home_pages_per_node"],
                   header["total_shared_pages"], header.get("params"))


def _read_header(fh, path) -> dict:
    import ast

    if fh.read(len(_MAGIC)) != _MAGIC:
        raise ValueError(f"{path} is not a workload trace file")
    header = ast.literal_eval(fh.readline().decode())
    # Files written before format_version existed carry no version key
    # and read as version 0: always stale.
    version = header.get("format_version", 0)
    if version != TRACE_FORMAT_VERSION:
        raise ValueError(
            f"{path} has trace format version {version}, "
            f"expected {TRACE_FORMAT_VERSION}")
    return header


def load_trace_header(path: str) -> dict:
    """The metadata header of a saved workload, without the arrays.

    Reads a few hundred bytes however large the trace is — the hook the
    trace cache's streaming sampled path uses to recover
    ``name``/``home_pages_per_node``/``total_shared_pages``/``params``
    while the event arrays stay memory-mapped in the ``.soa`` sidecar.
    Raises exactly like :meth:`WorkloadTraces.load` on a foreign or
    stale file.
    """
    with open(path, "rb") as fh:
        return _read_header(fh, path)
