"""Machine assembly: nodes + directory + network + protocol wiring.

Builds the full simulated multiprocessor for one (architecture,
workload, pressure) combination and wires the cross-node callbacks:
chunk invalidation (writes) and owner demotion (reads of dirty data)
reach into the victim node's L1/RAC/page-cache state.
"""

from __future__ import annotations

from ..coherence.directory import Directory
from ..coherence.messages import MessageLog
from ..coherence.protocol import CoherenceProtocol
from ..core.policy import ArchitecturePolicy
from ..interconnect.bus import SplitTransactionBus
from ..interconnect.network import Network
from ..interconnect.topology import SwitchTopology
from ..kernel.allocation import make_allocator
from .config import SystemConfig
from .events import EventBus
from .node import Node

__all__ = ["Machine"]


class Machine:
    """The assembled multiprocessor."""

    def __init__(self, config: SystemConfig, policy: ArchitecturePolicy,
                 home_pages_per_node: int, total_shared_pages: int,
                 log_messages: bool = False) -> None:
        self.config = config
        self.policy = policy
        self.amap = config.address_map()
        #: Shared rare-event bus (near-zero cost while unobserved).
        self.events = EventBus()

        self.log = MessageLog() if log_messages else None
        self.directory = Directory(config.n_nodes, self.amap.chunks_per_page,
                                   log=self.log,
                                   grant_exclusive=config.protocol == "mesi")
        self.network = Network(
            topology=SwitchTopology(config.n_nodes, config.switch_radix),
            propagation=config.net_propagation_cycles,
            fall_through=config.net_fall_through_cycles,
            port_occupancy=(config.net_port_occupancy_cycles
                            if config.model_contention else 0),
        )
        self.allocator = make_allocator(config.home_placement,
                                        config.n_nodes,
                                        total_shared_pages)

        cache_frames = (config.cache_frames(home_pages_per_node)
                        if policy.uses_page_cache else 0)
        if policy.mandatory_page_cache:
            # A pure S-COMA machine cannot run with zero frames: every
            # remote access must be backed by a local page.
            cache_frames = max(1, cache_frames)
        total_frames = config.total_frames(home_pages_per_node)
        self.nodes = [
            Node(i, config, self.amap, self.directory, policy,
                 cache_frames, total_frames, events=self.events)
            for i in range(config.n_nodes)
        ]
        self.buses = [SplitTransactionBus(config.bus_occupancy_cycles
                                          if config.model_contention else 0)
                      for _ in range(config.n_nodes)]

        self.protocol = CoherenceProtocol(
            self.directory, self.network,
            memories=[n.memory for n in self.nodes],
            invalidate_chunk=self._invalidate_chunk,
            demote_chunk=self._demote_chunk,
            stall_on_invalidate=config.consistency == "sc",
        )

    # -- cross-node callbacks --------------------------------------------
    def _invalidate_chunk(self, node_id: int, chunk: int,
                          now: int | None = None) -> None:
        if node_id == self.config.debug_skip_invalidate_node:
            # Deliberate protocol bug used to exercise the invariant
            # checker (repro.check): the victim keeps a stale copy that
            # the directory no longer knows about.
            return
        self.nodes[node_id].invalidate_chunk(chunk, now)

    def _demote_chunk(self, node_id: int, chunk: int,
                      now: int | None = None) -> None:
        self.nodes[node_id].demote_chunk(chunk, now)

    # -- introspection ----------------------------------------------------
    def page_cache_frames(self) -> int:
        return self.nodes[0].pool.capacity if self.nodes else 0

    def utilisation_report(self) -> dict:
        return {
            "network": self.network.utilisation_stats(),
            "memory": [n.memory.utilisation_stats() for n in self.nodes],
            "buses": [b.utilisation_stats() for b in self.buses],
            "directory": {
                "refetches": self.directory.total_refetches,
                "relocation_hints": self.directory.relocation_hints,
                "forwards": self.directory.forwards,
                "invalidations": self.directory.invalidations_sent,
            },
        }
