"""Execution statistics: cycle buckets and miss classification.

These mirror the two chart families of Figures 2 and 3:

* **Time buckets** (left charts): U-SH-MEM (stalled on shared memory),
  K-BASE (essential kernel work), K-OVERHD (architecture-specific kernel
  work: remapping, flushing, relocation interrupts, pageout daemon),
  U-INSTR (user instructions), U-LC-MEM (non-shared memory stalls), and
  SYNC (synchronisation waits).

* **Miss classes** (right charts): HOME (local node is the home),
  SCOMA (satisfied from the local page cache), RAC, COLD (cold misses
  satisfied remotely, *including* remap-induced ones), and CONF-CAPC
  (conflict/capacity misses that went remote).
"""

from __future__ import annotations

__all__ = ["TIME_BUCKETS", "MISS_CLASSES", "NodeStats", "RunResult"]

TIME_BUCKETS = ("U_SH_MEM", "K_BASE", "K_OVERHD", "U_INSTR", "U_LC_MEM", "SYNC")
MISS_CLASSES = ("HOME", "SCOMA", "RAC", "COLD", "CONF_CAPC")


class NodeStats:
    """Per-node counters.  Attribute access is hot-path; keep it flat."""

    __slots__ = (
        # time buckets (cycles)
        "U_SH_MEM", "K_BASE", "K_OVERHD", "U_INSTR", "U_LC_MEM", "SYNC",
        # miss classes (counts)
        "HOME", "SCOMA", "RAC", "COLD", "CONF_CAPC",
        # per-class stall cycles (for average-latency analysis)
        "HOME_LAT", "SCOMA_LAT", "RAC_LAT", "COLD_LAT", "CONF_CAPC_LAT",
        # event counters
        "page_faults", "relocations", "skipped_relocations", "evictions",
        "forced_evictions", "daemon_runs", "daemon_thrash", "upgrades",
        "induced_cold", "essential_cold", "lines_flushed", "l1_hits",
        "l1_misses", "migrations", "skipped_migrations",
    )

    def __init__(self) -> None:
        for name in self.__slots__:
            setattr(self, name, 0)

    # ------------------------------------------------------------------
    def total_cycles(self) -> int:
        return (self.U_SH_MEM + self.K_BASE + self.K_OVERHD
                + self.U_INSTR + self.U_LC_MEM + self.SYNC)

    def busy_cycles(self) -> int:
        """Cycles excluding synchronisation wait."""
        return self.total_cycles() - self.SYNC

    def shared_misses(self) -> int:
        return self.HOME + self.SCOMA + self.RAC + self.COLD + self.CONF_CAPC

    def remote_misses(self) -> int:
        """Misses that crossed the network (COLD + CONF/CAPC)."""
        return self.COLD + self.CONF_CAPC

    def time_breakdown(self) -> dict[str, int]:
        return {b: getattr(self, b) for b in TIME_BUCKETS}

    def miss_breakdown(self) -> dict[str, int]:
        return {m: getattr(self, m) for m in MISS_CLASSES}

    def average_latency(self, miss_class: str) -> float:
        """Average observed stall per miss of one class (cycles).

        Includes queueing at banks/ports/buses, so under load it sits
        above the Table 4 minimum -- the paper notes exactly this
        ("the average latency in our simulation is considerably higher
        than this minimum because of contention").
        """
        count = getattr(self, miss_class)
        return getattr(self, miss_class + "_LAT") / count if count else 0.0

    def as_dict(self) -> dict[str, int]:
        return {name: getattr(self, name) for name in self.__slots__}

    @classmethod
    def from_dict(cls, data: dict) -> "NodeStats":
        """Inverse of :meth:`as_dict`; unknown keys are rejected."""
        stats = cls()
        for key, value in data.items():
            setattr(stats, key, value)  # non-slot keys raise AttributeError
        return stats

    def merge(self, other: "NodeStats") -> None:
        for name in self.__slots__:
            setattr(self, name, getattr(self, name) + getattr(other, name))


class RunResult:
    """Outcome of one simulation run (one arch x workload x pressure)."""

    def __init__(self, architecture: str, workload: str, pressure: float,
                 node_stats: list[NodeStats], extra: dict | None = None) -> None:
        self.architecture = architecture
        self.workload = workload
        self.pressure = pressure
        self.node_stats = node_stats
        self.extra = extra or {}

    # -- aggregates ------------------------------------------------------
    @property
    def n_nodes(self) -> int:
        return len(self.node_stats)

    def execution_time(self) -> int:
        """Parallel execution time = slowest node's total cycles."""
        return max(s.total_cycles() for s in self.node_stats)

    def aggregate(self) -> NodeStats:
        total = NodeStats()
        for s in self.node_stats:
            total.merge(s)
        return total

    def time_breakdown(self, normalise_by: int | None = None) -> dict[str, float]:
        """Machine-wide time breakdown, optionally normalised.

        The paper's stacked bars show per-architecture totals relative
        to CC-NUMA's; pass CC-NUMA's aggregate total as *normalise_by*
        to reproduce that scaling.
        """
        agg = self.aggregate()
        denom = normalise_by if normalise_by else 1
        return {b: getattr(agg, b) / denom for b in TIME_BUCKETS}

    def miss_breakdown(self) -> dict[str, int]:
        agg = self.aggregate()
        return {m: getattr(agg, m) for m in MISS_CLASSES}

    def relative_time(self, baseline: "RunResult") -> float:
        """This run's aggregate busy time relative to *baseline*'s."""
        return (self.aggregate().total_cycles()
                / max(1, baseline.aggregate().total_cycles()))

    def kernel_overhead_fraction(self) -> float:
        agg = self.aggregate()
        total = agg.total_cycles()
        return agg.K_OVERHD / total if total else 0.0

    @property
    def invariant_violations(self) -> int | None:
        """Online-checker violation count; None when no checker ran."""
        return self.extra.get("invariant_violations")

    # -- serialisation ---------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-compatible form; round-trips through :meth:`from_dict`.

        The canonical result serialisation: ``harness.serialize`` and
        the runtime result store both build on this pair.
        """
        return {
            "architecture": self.architecture,
            "workload": self.workload,
            "pressure": self.pressure,
            "nodes": [s.as_dict() for s in self.node_stats],
            # `extra` holds only plain dict/int content by construction.
            "extra": self.extra,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RunResult":
        nodes = [NodeStats.from_dict(d) for d in data["nodes"]]
        return cls(data["architecture"], data["workload"], data["pressure"],
                   nodes, data.get("extra"))

    def summary(self) -> dict:
        agg = self.aggregate()
        out = {
            "architecture": self.architecture,
            "workload": self.workload,
            "pressure": self.pressure,
            "execution_time": self.execution_time(),
            "time": agg.time_breakdown(),
            "misses": agg.miss_breakdown(),
            "relocations": agg.relocations,
            "evictions": agg.evictions,
            "daemon_runs": agg.daemon_runs,
            "induced_cold": agg.induced_cold,
        }
        if self.invariant_violations is not None:
            out["invariant_violations"] = self.invariant_violations
        return out
