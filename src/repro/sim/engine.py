"""Trace replay engine.

Replays one :class:`~repro.sim.trace.WorkloadTraces` through a
:class:`~repro.sim.machine.Machine` under one architecture policy,
producing a :class:`~repro.sim.stats.RunResult`.

Scheduling
----------
Nodes are interleaved by *lazy quantum scheduling*: the engine always
advances the node with the smallest local clock, processing its events
until its clock passes the runner-up clock by a small quantum.  This
keeps cross-node event ordering approximately global (so coherence
invalidations and directory state interleave realistically) while
amortising scheduling overhead over many events -- the standard
conservative-window technique from parallel architectural simulation
(and the approach of the Paint/Mint family the paper builds on).

Barriers synchronise all nodes: each arriving node stalls, and when the
last one arrives every waiter's clock jumps to the maximum arrival time
with the difference charged to SYNC.

Accounting
----------
Every event advances its node's clock and exactly one stats bucket:
compute -> U_INSTR, private stalls -> U_LC_MEM, shared-reference stall
time -> U_SH_MEM, kernel work -> K_BASE or K_OVERHD, barrier waits ->
SYNC.  Misses are simultaneously classified into HOME / SCOMA / RAC /
COLD / CONF_CAPC, matching the right-hand charts of Figures 2-3.

The three replay loops
----------------------
The engine carries three replay loops producing **bit-identical**
:class:`RunResult`s (``tests/test_perf_parity.py`` enforces this for
every architecture):

* the **fast path** inlines the direct-mapped L1 hit case into the
  event loop, hoists per-event attribute lookups into locals, replays
  cached list-form traces, and (optionally) memoizes each node's
  page -> (mode, home) lookups, invalidated through the event bus on
  every page-management transition;
* the **reference path** (``REPRO_SLOW_PATH=1`` or ``slow_path=True``)
  is the straightforward one-call-per-event loop the fast path was
  derived from.  It is the escape hatch for debugging and the parity
  oracle for every future hot-path change;
* the **vector path** decodes the trace to structure-of-arrays form
  and replays it through the compiled SoA kernel in
  :mod:`repro.sim.soatrace`, exiting to the scalar machinery for
  residual events and degrading (loss-free) to the fast path when the
  engine is ineligible or no kernel can be built.

Vector dispatch is three-state (``Engine.vector_mode``): ``auto`` --
the default -- tries the kernel and silently falls back; ``on``
(``REPRO_VECTOR_PATH=1``, ``vector_path=True`` or ``repro --vector``)
is the explicit opt-in; ``off`` (``REPRO_VECTOR_PATH=0``,
``vector_path=False`` or ``repro --no-vector``) pins the scalar
loops.  Selection precedence is constructor over environment; asking
for the reference loop and ``on`` *at the same level* raises
``ValueError`` (``auto`` never conflicts -- slow_path simply wins).
Loop selection is a runtime concern only: it never enters spec hashes
or trace cache keys.  See ``docs/performance.md`` for the measured
speedups.
"""

from __future__ import annotations

import os
import sys

from ..core.policy import ArchitecturePolicy, RelocationDecision
from ..kernel.vm import PageMode
from .config import SystemConfig
from .events import (EV_BARRIER, EV_END, EV_EVICT, EV_FAULT, EV_MAP_SCOMA,
                     EV_MIGRATE, EV_RELOCATE)
from .machine import Machine
from .stats import RunResult
from .trace import EV_COMPUTE, EV_LOCAL, EV_WRITE, WorkloadTraces

__all__ = ["Engine", "simulate", "default_vector_mode"]

#: How far (cycles) one node may run ahead of the runner-up clock.
DEFAULT_QUANTUM = 2000


def default_vector_mode() -> str:
    """Vector mode (``auto``/``on``/``off``) an Engine gets from the
    environment alone — what ``REPRO_VECTOR_PATH`` currently resolves
    to, before any ctor override.  Used by the CLI and the job server
    to report the process-wide dispatch default.

    Only the documented spellings are honoured: ``1/on/yes/true`` pin
    the kernel on, ``0/off/no/false`` pin it off, empty or ``auto``
    defer to dispatch.  Anything else (a typo like ``of`` or ``fasle``)
    used to silently force the kernel *on*; it now warns once and falls
    back to ``auto``, so a typo can neither force nor forbid a
    substrate behind the user's back."""
    raw = os.environ.get("REPRO_VECTOR_PATH", "").strip().lower()
    if raw in ("", "auto"):
        return "auto"
    if raw in ("0", "off", "no", "false"):
        return "off"
    if raw in ("1", "on", "yes", "true"):
        return "on"
    import warnings

    warnings.warn(
        f"unrecognized REPRO_VECTOR_PATH={raw!r}; expected one of"
        " 1/on/yes/true, 0/off/no/false, or auto — falling back to 'auto'",
        RuntimeWarning, stacklevel=2)
    return "auto"

#: Event kinds after which a memoized page -> (mode, home) entry may be
#: stale: page faults and S-COMA (un)mappings change the mode, home
#: migration changes the home (for every node's view of the page).
_MEMO_INVALIDATORS = frozenset(
    {EV_FAULT, EV_MAP_SCOMA, EV_EVICT, EV_RELOCATE, EV_MIGRATE})


class Engine:
    """One simulation run."""

    def __init__(self, workload: WorkloadTraces, policy: ArchitecturePolicy,
                 config: SystemConfig | None = None,
                 quantum: int = DEFAULT_QUANTUM,
                 log_messages: bool = False,
                 sampler=None,
                 slow_path: bool | None = None,
                 vector_path: bool | None = None,
                 page_memo: bool | None = None) -> None:
        self.workload = workload
        #: Optional TimeSeriesSampler snapshotting policy state at every
        #: barrier release (see repro.sim.timeseries).
        self.sampler = sampler
        self.policy = policy
        self.config = config or SystemConfig(n_nodes=workload.n_nodes)
        if self.config.n_nodes != workload.n_nodes:
            raise ValueError(
                f"config has {self.config.n_nodes} nodes but workload has"
                f" {workload.n_nodes}")
        if quantum <= 0:
            raise ValueError("quantum must be positive")
        self.quantum = quantum
        self.machine = Machine(self.config, policy,
                               workload.home_pages_per_node,
                               workload.total_shared_pages,
                               log_messages=log_messages)
        #: Machine-shared rare-event bus (identity is stable for the
        #: engine's lifetime, so it can be cached in locals).
        self._events = self.machine.events
        #: Optional online invariant checker (repro.check attaches one);
        #: when set, the run result carries its violation count.
        self.checker = None
        #: pure S-COMA must map every remote page locally, even if a
        #: victim has to be force-evicted at fault time.
        self._mandatory_scoma = policy.mandatory_page_cache
        #: Direct-mapped L1s take an inlined tag-compare fast path in
        #: the reference loop; associative ones go through lookup().
        self._l1_direct = self.config.l1_ways == 1
        #: Victim-mode RAC: fills from L1 evictions of remote lines,
        #: never from fetches (see SystemConfig.rac_fill_policy).
        self._rac_victim = self.config.rac_fill_policy == "victim"
        #: Replay-loop selection.  Three mutually-checking loops:
        #: the reference loop (slow_path), the optimised scalar loop
        #: (the default), and the vectorized SoA loop (vector_path,
        #: see repro.sim.soatrace).  Each is selected per engine via
        #: the ctor or process-wide via REPRO_SLOW_PATH=1 /
        #: REPRO_VECTOR_PATH=1; an explicit ctor argument beats the
        #: environment, and selecting both loops at once is a
        #: contradiction that raises instead of silently picking one
        #: (precedence documented in docs/performance.md).
        env_slow = os.environ.get("REPRO_SLOW_PATH", "") not in ("", "0")
        if vector_path is None:
            mode = default_vector_mode()
        else:
            mode = "on" if vector_path else "off"
        slow = env_slow if slow_path is None else slow_path
        if slow and mode == "on":
            if slow_path is not None and vector_path is not None:
                raise ValueError(
                    "conflicting path selections: slow_path=True and"
                    " vector_path=True cannot both be honoured")
            if slow_path is None and vector_path is None:
                raise ValueError(
                    "conflicting path selections: REPRO_SLOW_PATH and"
                    " REPRO_VECTOR_PATH are both set")
            # Exactly one side was explicit: ctor beats env.
            if slow_path is not None:
                mode = "off"
            else:
                slow = False
        self.slow_path = slow
        #: Three-state vector dispatch.  ``"auto"`` (the default) runs
        #: the SoA kernel whenever this engine is eligible and a kernel
        #: can be loaded, degrading loss-free to the scalar fast path
        #: otherwise; ``"on"`` is the explicit opt-in (ctor
        #: vector_path=True / REPRO_VECTOR_PATH=1); ``"off"`` pins the
        #: scalar loops (vector_path=False / REPRO_VECTOR_PATH=0).
        #: ``"auto"`` never conflicts with the reference loop: an
        #: explicit or env slow_path simply wins.
        self.vector_mode = mode
        #: True only when the kernel was *explicitly* selected -- the
        #: historical boolean the selection tests and callers key on;
        #: ``auto`` reports False here while still dispatching through
        #: the kernel at run() time.
        self.vector_path = mode == "on"
        #: Per-node page -> (mode, home) memo, invalidated through the
        #: event bus (_MEMO_INVALIDATORS).  Opt-in: subscribing the
        #: invalidation observer makes every page-management publish
        #: construct an event, which costs more than the memo saves on
        #: the curated workloads (see docs/performance.md) -- but it
        #: wins when lookups dominate, e.g. page-table-heavy configs.
        if page_memo is None:
            page_memo = False
        self._memo = None
        if page_memo:
            self._memo = [{} for _ in range(self.config.n_nodes)]
            self._events.subscribe(self._invalidate_memo)
        # Hot-path constants and stable sub-object aliases, hoisted once
        # so `_shared_ref` never re-walks attribute chains per event.
        # All aliased objects are created by Machine.__init__ and only
        # ever mutated in place (never rebound) during a run.
        amap = self.machine.amap
        self._line_shift = amap.line_shift
        self._chunk_shift = amap.chunk_shift
        self._cpp_mask = amap.chunks_per_page - 1
        self._hit_cycles = self.config.l1_hit_cycles
        self._rac_cycles = self.config.rac_hit_cycles
        self._dsm2 = 2 * self.config.dsm_processing_cycles
        self._protocol = self.machine.protocol
        self._buses = self.machine.buses
        self._home = self.machine.allocator.home

    # ------------------------------------------------------------------
    def _invalidate_memo(self, event) -> None:
        """Event-bus observer dropping stale page-lookup memo entries.

        Mode transitions are per-node but a migration changes every
        node's view of the page's home, so entries are dropped from all
        nodes -- over-invalidation is always safe, and these events are
        orders of magnitude rarer than lookups.
        """
        if event.kind in _MEMO_INVALIDATORS and event.page >= 0:
            page = event.page
            for memo in self._memo:
                memo.pop(page, None)

    # ------------------------------------------------------------------
    def run(self) -> RunResult:
        if self.slow_path:
            clock = self._run_reference()
        elif self.vector_mode != "off":
            clock = self._run_vector()
        else:
            clock = self._run_fast()

        events = self._events
        if events.watching(EV_END):
            events.clock = max(clock) if clock else 0
            events.publish(EV_END, -1, -1)

        machine = self.machine
        extra = {
            "utilisation": machine.utilisation_report(),
            "page_cache_frames": machine.page_cache_frames(),
            "protocol": {
                "remote_fetches": machine.protocol.remote_fetches,
                "three_hop": machine.protocol.three_hop_fetches,
                "write_stalls": machine.protocol.write_stalls,
            },
        }
        if self.checker is not None:
            extra["invariant_violations"] = self.checker.violation_count()
        return RunResult(
            architecture=self.policy.name,
            workload=self.workload.name,
            pressure=self.config.memory_pressure,
            node_stats=[nd.stats for nd in machine.nodes],
            extra=extra,
        )

    # ------------------------------------------------------------------
    def _release_barrier(self, nodes, clock, arrival, waiting, pos, end,
                         finished, barrier_id) -> None:
        """Release a full barrier: charge SYNC, align clocks, publish."""
        n = len(nodes)
        ids = {barrier_id[i] for i in range(n) if waiting[i]}
        if len(ids) != 1:
            raise RuntimeError(
                f"barrier mismatch: nodes waiting at {sorted(ids)}")
        release = max(arrival[i] for i in range(n) if waiting[i])
        for i in range(n):
            if waiting[i]:
                nodes[i].stats.SYNC += release - arrival[i]
                clock[i] = release
                waiting[i] = False
                if pos[i] >= end[i]:
                    finished[i] = True
        if self.sampler is not None:
            self.sampler.sample(release, nodes)
        events = self._events
        if events.watching(EV_BARRIER):
            events.clock = release
            events.publish(EV_BARRIER, -1, -1, barrier=ids.pop())

    # ------------------------------------------------------------------
    def _run_fast(self) -> list[int]:
        """Optimised replay loop (the default).

        Bit-identical to :meth:`_run_reference` -- every divergence is
        a pure re-expression of the same arithmetic: the direct-mapped
        L1 hit case is inlined (the tag probe is a pure compare, so the
        fallback `_shared_ref` call re-probing on the remaining cases
        sees identical state), per-event attribute chains are hoisted
        to locals that alias the same mutable objects, and the
        ``limit is None`` check is folded into a sentinel clock no run
        can reach.

        When nothing observes intermediate state (no event-bus
        observers, no message log, no page memo), the common L1-*miss*
        cases are inlined too: the HOME-mode local fetch, the S-COMA
        page-cache hit, the RAC hit, the plain 2-hop remote fetch and
        the sharer-free ownership upgrade each replicate
        `_shared_ref`'s exact mutation sequence without its call chain
        (protocol -> directory -> memory -> network).  Every inlined
        case decides *before mutating anything* whether it is one of
        the rare shapes it does not model (dirty-owner forward, write
        invalidations, page fault, relocation hint) and falls back to
        the untouched `_shared_ref`, which is what keeps the parity
        suite a real oracle for this block.
        """
        machine = self.machine
        nodes = machine.nodes
        n = len(nodes)
        # -- inlined-miss machinery (see docstring) ---------------------
        protocol = self._protocol
        directory = protocol.directory
        inline_miss = (self._l1_direct and self._memo is None
                       and directory.log is None
                       and not self._events.observers)
        dir_copyset = directory.copyset
        dir_owner = directory.owner
        dir_refetch = directory.refetch_count
        grant_ex = directory.grant_exclusive
        mems = protocol.memories
        network = protocol.network
        net_base = network._base
        net_port_busy = network.port_busy_until
        net_maxq = network.max_queue
        net_occ = network.port_occupancy
        home_arr = self._home
        line_shift = self._line_shift
        cpp_mask = self._cpp_mask
        dsm2 = self._dsm2
        rac_cycles = self._rac_cycles
        rac_victim = self._rac_victim
        l1_fill_victim = self._l1_fill
        buses = self._buses
        # Cached list-form traces: scalar list indexing beats numpy
        # scalar indexing ~3x, and the cache amortises the conversion
        # across the many runs of one workload in a matrix sweep.
        kinds = []
        args = []
        for t in self.workload.traces:
            k, a = t.as_lists()
            kinds.append(k)
            args.append(a)
        pos = [0] * n
        end = [len(k) for k in kinds]
        clock = [0] * n
        finished = [p >= e for p, e in zip(pos, end)]
        waiting = [False] * n
        barrier_id = [-1] * n
        arrival = [0] * n
        quantum = self.quantum
        shared_ref = self._shared_ref
        l1_direct = self._l1_direct
        hit_cycles = self._hit_cycles
        chunk_shift = self._chunk_shift
        ev_write = EV_WRITE
        ev_compute = EV_COMPUTE
        ev_local = EV_LOCAL
        no_limit = sys.maxsize  # clocks stay far below 2**63

        while True:
            # Pick the runnable node with the smallest clock.
            best = -1
            best_clock = None
            runner_up = None
            for i in range(n):
                if finished[i] or waiting[i]:
                    continue
                c = clock[i]
                if best_clock is None or c < best_clock:
                    runner_up = best_clock
                    best_clock = c
                    best = i
                elif runner_up is None or c < runner_up:
                    runner_up = c
            if best == -1:
                if all(finished):
                    break
                raise RuntimeError("deadlock: all unfinished nodes are waiting"
                                   " at a barrier that never released")
            limit = (runner_up + quantum) if runner_up is not None else no_limit

            node = nodes[best]
            k = kinds[best]
            a = args[best]
            p = pos[best]
            e = end[best]
            now = clock[best]
            stats = node.stats
            node.run_daemon_if_due(now)

            if l1_direct:
                # Hot loop with the L1 hit case inlined.  `tags`/`dirty`
                # alias the cache's own lists (mutated in place by fills
                # and flushes, never rebound during a run).  Hits and
                # misses are tallied in locals and flushed once per
                # slice: nothing reads `stats.l1_hits`/`l1_misses`/
                # `U_SH_MEM`/`HOME*` mid-slice, and integer addition
                # commutes with the `_shared_ref` increments.
                l1 = node.l1
                tags = l1.tags
                dirty = l1.dirty
                set_mask = l1.set_mask
                owned = node.owned
                hits = 0
                misses = 0
                ush = 0
                home_n = 0
                home_lat = 0
                bus_tx = 0
                mem_acc = 0
                if inline_miss:
                    nid = node.id
                    nbit = 1 << nid
                    bus = buses[nid]
                    bus_occ = bus.occupancy
                    bus_fixed = bus.fixed_cost
                    bus_maxq = bus.max_queue
                    mode_get = node.page_table.mode.get
                    sv = node.page_table.scoma_valid
                    tlb_ref = node.tlb.ref_bits
                    mem = node.memory
                    mem_busy = mem.busy_until
                    mem_mask = mem.bank_mask
                    mem_service = mem.service_cycles
                    mem_occ = mem.occupancy_cycles
                    mem_maxq = mem.max_queue
                    rac = node.rac
                    rac_chunks = rac.chunks
                    rac_mask = rac.entry_mask
                    ps = node.policy_state
                    pagecache_hits = node.pagecache_hits
                    ever = node.ever_fetched
                    l1stats = l1.stats
                    net_base_nid = net_base[nid]
                while p < e and now < limit:
                    ev = k[p]
                    arg = a[p]
                    p += 1
                    if ev <= ev_write:  # READ or WRITE
                        s = arg & set_mask
                        if tags[s] == arg:
                            if ev != ev_write:
                                hits += 1
                                now += hit_cycles
                                continue
                            chunk = arg >> chunk_shift
                            if chunk in owned:
                                hits += 1
                                dirty[s] = True
                                now += hit_cycles
                                continue
                            if not inline_miss:
                                # Write hit needing an ownership
                                # upgrade: the full path re-probes
                                # (pure compare) and takes the branch
                                # the reference path does.
                                now += shared_ref(node, arg, True, now)
                                continue
                            # ---- inlined upgrade (write hit, chunk
                            # not owned).  Pure pre-checks: a dirty
                            # remote owner or sharers to invalidate
                            # fall back to the full transaction.
                            owner = dir_owner.get(chunk, -1)
                            if owner != -1 and owner != nid:
                                now += shared_ref(node, arg, True, now)
                                continue
                            cs = dir_copyset.get(chunk, 0)
                            if cs & ~nbit:
                                now += shared_ref(node, arg, True, now)
                                continue
                            hits += 1
                            dir_copyset[chunk] = nbit
                            dir_owner[chunk] = nid
                            page = arg >> line_shift
                            home = home_arr[page]
                            if home != nid:
                                # round trip: request leg, then ack leg
                                base = net_base_nid[home]
                                t = now + base
                                busy = net_port_busy[home]
                                q = busy - t if busy > t else 0
                                if q > net_maxq:
                                    q = net_maxq
                                net_port_busy[home] = t + q + net_occ
                                network.messages += 1
                                if q:
                                    network.contended_messages += 1
                                    network.total_queue_cycles += q
                                lat = base + q
                                base = net_base[home][nid]
                                t = now + lat + base
                                busy = net_port_busy[nid]
                                q = busy - t if busy > t else 0
                                if q > net_maxq:
                                    q = net_maxq
                                net_port_busy[nid] = t + q + net_occ
                                network.messages += 1
                                if q:
                                    network.contended_messages += 1
                                    network.total_queue_cycles += q
                                lat += base + q
                            else:
                                lat = 0
                            owned.add(chunk)
                            stats.upgrades += 1
                            ush += lat
                            dirty[s] = True
                            now += hit_cycles + lat
                            continue
                        if not inline_miss:
                            now += shared_ref(node, arg, ev == ev_write, now)
                            continue
                        # ---- inlined L1 miss (see docstring) --------
                        # Pure probes first; nothing is mutated until
                        # the case is known to be one this block models
                        # exactly, so a fallback `_shared_ref` call
                        # always sees pristine state.
                        page = arg >> line_shift
                        mode = mode_get(page, 0)
                        chunk = arg >> chunk_shift
                        is_write = ev == ev_write
                        if mode == 1:  # HOME: local fetch
                            owner = dir_owner.get(chunk, -1)
                            if owner != -1 and owner != nid:
                                now += shared_ref(node, arg, is_write, now)
                                continue
                            cs = dir_copyset.get(chunk, 0)
                            exclusive = False
                            if is_write:
                                if cs & ~nbit:  # sharers to invalidate
                                    now += shared_ref(node, arg, is_write,
                                                      now)
                                    continue
                                dir_copyset[chunk] = nbit
                                dir_owner[chunk] = nid
                            else:
                                dir_copyset[chunk] = cs | nbit
                                if grant_ex and cs == 0 and owner != nid:
                                    dir_owner[chunk] = nid
                                    exclusive = True
                                    directory.exclusive_grants += 1
                            misses += 1
                            tlb_ref[page] = True
                            # bus transaction (inlined)
                            busy = bus.busy_until
                            q = busy - now if busy > now else 0
                            if q > bus_maxq:
                                q = bus_maxq
                            bus.busy_until = now + q + bus_occ
                            bus_tx += 1
                            if q:
                                bus.contended += 1
                                bus.total_queue_cycles += q
                            lat = bus_fixed + q
                            # local DRAM access (inlined)
                            bank = chunk & mem_mask
                            t = now + lat
                            busy = mem_busy[bank]
                            q = busy - t if busy > t else 0
                            if q > mem_maxq:
                                q = mem_maxq
                            mem_busy[bank] = t + q + mem_occ
                            mem_acc += 1
                            if q:
                                mem.contended += 1
                                mem.total_queue_cycles += q
                            lat += mem_service + q
                            home_n += 1
                            home_lat += lat
                            if is_write or exclusive:
                                owned.add(chunk)
                            # L1 fill (inlined; `s` probed above missed)
                            if rac_victim:
                                l1_fill_victim(node, arg, is_write)
                            else:
                                victim = tags[s]
                                if victim != -1 and dirty[s]:
                                    l1stats.writebacks += 1
                                tags[s] = arg
                                dirty[s] = is_write
                            ush += lat
                            now += lat
                            continue
                        if mode == 2:  # S-COMA
                            cip = chunk & cpp_mask
                            if sv[page] >> cip & 1:  # page-cache hit
                                upgrading = is_write and chunk not in owned
                                if upgrading:
                                    # Pure pre-checks for the clean
                                    # inlined upgrade; anything else
                                    # takes the full transaction.
                                    owner = dir_owner.get(chunk, -1)
                                    cs = dir_copyset.get(chunk, 0)
                                    if ((owner != -1 and owner != nid)
                                            or cs & ~nbit):
                                        now += shared_ref(node, arg, True,
                                                          now)
                                        continue
                                misses += 1
                                tlb_ref[page] = True
                                busy = bus.busy_until
                                q = busy - now if busy > now else 0
                                if q > bus_maxq:
                                    q = bus_maxq
                                bus.busy_until = now + q + bus_occ
                                bus_tx += 1
                                if q:
                                    bus.contended += 1
                                    bus.total_queue_cycles += q
                                lat = bus_fixed + q
                                bank = chunk & mem_mask
                                t = now + lat
                                busy = mem_busy[bank]
                                q = busy - t if busy > t else 0
                                if q > mem_maxq:
                                    q = mem_maxq
                                mem_busy[bank] = t + q + mem_occ
                                mem_acc += 1
                                if q:
                                    mem.contended += 1
                                    mem.total_queue_cycles += q
                                lat += mem_service + q
                                stats.SCOMA += 1
                                pagecache_hits[page] += 1
                                stats.SCOMA_LAT += lat
                                if upgrading:
                                    # round trip at now + lat, then the
                                    # directory takes the write.
                                    dir_copyset[chunk] = nbit
                                    dir_owner[chunk] = nid
                                    if home_arr[page] != nid:
                                        home = home_arr[page]
                                        base = net_base_nid[home]
                                        t = now + lat + base
                                        busy = net_port_busy[home]
                                        q = busy - t if busy > t else 0
                                        if q > net_maxq:
                                            q = net_maxq
                                        net_port_busy[home] = t + q + net_occ
                                        network.messages += 1
                                        if q:
                                            network.contended_messages += 1
                                            network.total_queue_cycles += q
                                        ulat = base + q
                                        base = net_base[home][nid]
                                        t = now + lat + ulat + base
                                        busy = net_port_busy[nid]
                                        q = busy - t if busy > t else 0
                                        if q > net_maxq:
                                            q = net_maxq
                                        net_port_busy[nid] = t + q + net_occ
                                        network.messages += 1
                                        if q:
                                            network.contended_messages += 1
                                            network.total_queue_cycles += q
                                        lat += ulat + base + q
                                    owned.add(chunk)
                                    stats.upgrades += 1
                                if rac_victim:
                                    l1_fill_victim(node, arg, is_write)
                                else:
                                    victim = tags[s]
                                    if victim != -1 and dirty[s]:
                                        l1stats.writebacks += 1
                                    tags[s] = arg
                                    dirty[s] = is_write
                                ush += lat
                                now += lat
                                continue
                            remote_kind = 0  # S-COMA chunk fill
                        elif mode == 3:  # CC-NUMA
                            key = arg if rac_victim else chunk
                            if rac_chunks[key & rac_mask] == key:  # RAC hit
                                upgrading = is_write and chunk not in owned
                                if upgrading:
                                    owner = dir_owner.get(chunk, -1)
                                    cs = dir_copyset.get(chunk, 0)
                                    if ((owner != -1 and owner != nid)
                                            or cs & ~nbit):
                                        now += shared_ref(node, arg, True,
                                                          now)
                                        continue
                                rac.hits += 1
                                misses += 1
                                tlb_ref[page] = True
                                busy = bus.busy_until
                                q = busy - now if busy > now else 0
                                if q > bus_maxq:
                                    q = bus_maxq
                                bus.busy_until = now + q + bus_occ
                                bus_tx += 1
                                if q:
                                    bus.contended += 1
                                    bus.total_queue_cycles += q
                                lat = bus_fixed + q + rac_cycles
                                stats.RAC += 1
                                stats.RAC_LAT += lat
                                if upgrading:
                                    dir_copyset[chunk] = nbit
                                    dir_owner[chunk] = nid
                                    if home_arr[page] != nid:
                                        home = home_arr[page]
                                        base = net_base_nid[home]
                                        t = now + lat + base
                                        busy = net_port_busy[home]
                                        q = busy - t if busy > t else 0
                                        if q > net_maxq:
                                            q = net_maxq
                                        net_port_busy[home] = t + q + net_occ
                                        network.messages += 1
                                        if q:
                                            network.contended_messages += 1
                                            network.total_queue_cycles += q
                                        ulat = base + q
                                        base = net_base[home][nid]
                                        t = now + lat + ulat + base
                                        busy = net_port_busy[nid]
                                        q = busy - t if busy > t else 0
                                        if q > net_maxq:
                                            q = net_maxq
                                        net_port_busy[nid] = t + q + net_occ
                                        network.messages += 1
                                        if q:
                                            network.contended_messages += 1
                                            network.total_queue_cycles += q
                                        lat += ulat + base + q
                                    owned.add(chunk)
                                    stats.upgrades += 1
                                if rac_victim:
                                    l1_fill_victim(node, arg, is_write)
                                else:
                                    victim = tags[s]
                                    if victim != -1 and dirty[s]:
                                        l1stats.writebacks += 1
                                    tags[s] = arg
                                    dirty[s] = is_write
                                ush += lat
                                now += lat
                                continue
                            remote_kind = 1  # CC-NUMA remote fetch
                        else:  # UNMAPPED: page fault machinery
                            now += shared_ref(node, arg, is_write, now)
                            continue
                        # ---- plain 2-hop remote fetch (both kinds) --
                        home = home_arr[page]
                        owner = dir_owner.get(chunk, -1)
                        if owner != -1 and owner != nid:  # forwarded
                            now += shared_ref(node, arg, is_write, now)
                            continue
                        cs = dir_copyset.get(chunk, 0)
                        if is_write and cs & ~nbit:  # invalidations
                            now += shared_ref(node, arg, is_write, now)
                            continue
                        refetch = cs & nbit
                        if remote_kind:  # CC-NUMA counts refetches
                            threshold = (ps.threshold
                                         if ps.relocation_enabled else 0)
                            if refetch and threshold > 0:
                                count = dir_refetch.get((page, nid), 0) + 1
                                if count >= threshold:  # relocation hint
                                    now += shared_ref(node, arg, is_write,
                                                      now)
                                    continue
                        # Commit: replicate `_shared_ref`'s sequence.
                        misses += 1
                        if remote_kind:  # the CC-NUMA path probed the RAC
                            rac.misses += 1
                        tlb_ref[page] = True
                        busy = bus.busy_until
                        q = busy - now if busy > now else 0
                        if q > bus_maxq:
                            q = bus_maxq
                        bus.busy_until = now + q + bus_occ
                        bus_tx += 1
                        if q:
                            bus.contended += 1
                            bus.total_queue_cycles += q
                        lat = bus_fixed + q
                        # directory fetch_raw effects
                        exclusive = False
                        if is_write:
                            dir_copyset[chunk] = nbit
                            dir_owner[chunk] = nid
                        else:
                            dir_copyset[chunk] = cs | nbit
                            if grant_ex and cs == 0 and owner != nid:
                                dir_owner[chunk] = nid
                                exclusive = True
                                directory.exclusive_grants += 1
                        if remote_kind and refetch:
                            directory.total_refetches += 1
                            if threshold > 0:
                                dir_refetch[(page, nid)] = count
                        # request leg (network one_way, inlined)
                        t = now + lat
                        if nid != home:
                            base = net_base_nid[home]
                            t += base
                            busy = net_port_busy[home]
                            q = busy - t if busy > t else 0
                            if q > net_maxq:
                                q = net_maxq
                            net_port_busy[home] = t + q + net_occ
                            network.messages += 1
                            if q:
                                network.contended_messages += 1
                                network.total_queue_cycles += q
                            rlat = base + q
                        else:
                            rlat = 0
                        # home DRAM access
                        mem_h = mems[home]
                        t = now + lat + rlat
                        bank = chunk & mem_h.bank_mask
                        busy = mem_h.busy_until[bank]
                        q = busy - t if busy > t else 0
                        if q > mem_h.max_queue:
                            q = mem_h.max_queue
                        mem_h.busy_until[bank] = t + q + mem_h.occupancy_cycles
                        mem_h.accesses += 1
                        if q:
                            mem_h.contended += 1
                            mem_h.total_queue_cycles += q
                        rlat += mem_h.service_cycles + q
                        # data response leg
                        if home != nid:
                            base = net_base[home][nid]
                            t = now + lat + rlat + base
                            busy = net_port_busy[nid]
                            q = busy - t if busy > t else 0
                            if q > net_maxq:
                                q = net_maxq
                            net_port_busy[nid] = t + q + net_occ
                            network.messages += 1
                            if q:
                                network.contended_messages += 1
                                network.total_queue_cycles += q
                            rlat += base + q
                        protocol.remote_fetches += 1
                        lat += dsm2 + rlat
                        if remote_kind:
                            if not rac_victim:
                                rac_chunks[chunk & rac_mask] = chunk
                                rac.fills += 1
                        else:
                            sv[page] |= 1 << cip
                        # miss classification (_classify_remote, inlined)
                        if refetch:
                            stats.CONF_CAPC += 1
                            stats.CONF_CAPC_LAT += lat
                            ever.add(chunk)
                        else:
                            stats.COLD += 1
                            stats.COLD_LAT += lat
                            if chunk in ever:
                                stats.induced_cold += 1
                            else:
                                stats.essential_cold += 1
                                ever.add(chunk)
                        if is_write or exclusive:
                            owned.add(chunk)
                        if rac_victim:
                            l1_fill_victim(node, arg, is_write)
                        else:
                            victim = tags[s]
                            if victim != -1 and dirty[s]:
                                l1stats.writebacks += 1
                            tags[s] = arg
                            dirty[s] = is_write
                        ush += lat
                        now += lat
                    elif ev == ev_compute:
                        stats.U_INSTR += arg
                        now += arg
                    elif ev == ev_local:
                        stats.U_LC_MEM += arg
                        now += arg
                    else:  # EV_BARRIER
                        waiting[best] = True
                        barrier_id[best] = arg
                        arrival[best] = now
                        break
                if hits:
                    stats.l1_hits += hits
                if misses:
                    stats.l1_misses += misses
                if ush:
                    stats.U_SH_MEM += ush
                if home_n:
                    stats.HOME += home_n
                    stats.HOME_LAT += home_lat
                if bus_tx:
                    bus.transactions += bus_tx
                if mem_acc:
                    mem.accesses += mem_acc
            else:
                while p < e and now < limit:
                    ev = k[p]
                    arg = a[p]
                    p += 1
                    if ev <= ev_write:
                        now += shared_ref(node, arg, ev == ev_write, now)
                    elif ev == ev_compute:
                        stats.U_INSTR += arg
                        now += arg
                    elif ev == ev_local:
                        stats.U_LC_MEM += arg
                        now += arg
                    else:  # EV_BARRIER
                        waiting[best] = True
                        barrier_id[best] = arg
                        arrival[best] = now
                        break

            pos[best] = p
            clock[best] = now
            if p >= e and not waiting[best]:
                finished[best] = True

            if waiting[best]:
                # Release when every unfinished node is at the barrier.
                if all(finished[i] or waiting[i] for i in range(n)):
                    self._release_barrier(nodes, clock, arrival, waiting,
                                          pos, end, finished, barrier_id)
        return clock

    # ------------------------------------------------------------------
    def _run_vector(self) -> list[int]:
        """Vectorized SoA replay loop (see repro.sim.soatrace).

        Bit-identical to both scalar loops.  The decoded trace and the
        machine's per-event mutable state move into dense numpy
        arrays, and a small compiled kernel replays the scheduler and
        the five fast-path reference cases over them, handing only the
        residual events (page faults, relocation hints, daemon runs,
        barrier releases) back to the scalar machinery -- which then
        operates on the same arrays through dict/set views, so the two
        substrates never diverge.

        Degrades silently to :meth:`_run_fast` when the kernel is
        unavailable (no C compiler / cffi) or the run shape is outside
        its model -- the same rule by which the fast path's inlined
        cases fall back to `_shared_ref`.  Notably, attaching the
        invariant checker subscribes an unfiltered observer, so
        checked runs take the scalar path.
        """
        from .soatrace import run_vector

        clock = run_vector(self)
        if clock is None:
            return self._run_fast()
        return clock

    # ------------------------------------------------------------------
    def _run_reference(self) -> list[int]:
        """Reference replay loop: one `_shared_ref` call per event.

        This is the pre-optimisation engine, kept verbatim as the
        parity oracle (`tests/test_perf_parity.py`) and as the
        REPRO_SLOW_PATH=1 escape hatch.
        """
        machine = self.machine
        nodes = machine.nodes
        n = len(nodes)
        # Python lists index ~3x faster than numpy scalars in this loop.
        kinds = [t.kinds.tolist() for t in self.workload.traces]
        args = [t.args.tolist() for t in self.workload.traces]
        pos = [0] * n
        end = [len(k) for k in kinds]
        clock = [0] * n
        finished = [p >= e for p, e in zip(pos, end)]
        waiting = [False] * n
        barrier_id = [-1] * n
        arrival = [0] * n
        quantum = self.quantum
        shared_ref = self._shared_ref

        while True:
            # Pick the runnable node with the smallest clock.
            best = -1
            best_clock = None
            runner_up = None
            for i in range(n):
                if finished[i] or waiting[i]:
                    continue
                c = clock[i]
                if best_clock is None or c < best_clock:
                    runner_up = best_clock
                    best_clock = c
                    best = i
                elif runner_up is None or c < runner_up:
                    runner_up = c
            if best == -1:
                if all(finished):
                    break
                raise RuntimeError("deadlock: all unfinished nodes are waiting"
                                   " at a barrier that never released")
            limit = (runner_up + quantum) if runner_up is not None else None

            node = nodes[best]
            k = kinds[best]
            a = args[best]
            p = pos[best]
            e = end[best]
            now = clock[best]
            stats = node.stats
            # Let the pageout daemon run on its own schedule, not only
            # when a frame is needed (it is how AS-COMA notices recovery).
            node.run_daemon_if_due(now)

            while p < e and (limit is None or now < limit):
                ev = k[p]
                arg = a[p]
                p += 1
                if ev <= EV_WRITE:  # READ or WRITE
                    now += shared_ref(node, arg, ev == EV_WRITE, now)
                elif ev == EV_COMPUTE:
                    stats.U_INSTR += arg
                    now += arg
                elif ev == EV_LOCAL:
                    stats.U_LC_MEM += arg
                    now += arg
                else:  # EV_BARRIER
                    waiting[best] = True
                    barrier_id[best] = arg
                    arrival[best] = now
                    break

            pos[best] = p
            clock[best] = now
            if p >= e and not waiting[best]:
                finished[best] = True

            if waiting[best]:
                # Release when every unfinished node is at the barrier.
                if all(finished[i] or waiting[i] for i in range(n)):
                    self._release_barrier(nodes, clock, arrival, waiting,
                                          pos, end, finished, barrier_id)
        return clock

    # ------------------------------------------------------------------
    def _shared_ref(self, node, line: int, is_write: bool, now: int) -> int:
        """Process one shared-memory reference; returns elapsed cycles.

        Updates the node's stats buckets in place (U_SH_MEM for stall
        time, K_BASE/K_OVERHD for kernel work triggered by the access).

        Attribute chains are hoisted into locals / precomputed engine
        attributes (`_hit_cycles`, `_home`, ...): this function *is* the
        profile's hot spot, and both replay loops share it, so every
        saved lookup is bit-identical by construction.
        """
        stats = node.stats
        l1 = node.l1

        # -- L1 probe (the overwhelmingly common case) -------------------
        if self._l1_direct:
            hit = l1.tags[line & l1.set_mask] == line
        else:
            hit = l1.lookup(line)
        if hit:
            stats.l1_hits += 1
            if is_write:
                chunk = line >> self._chunk_shift
                owned = node.owned
                if chunk not in owned:
                    page = line >> self._line_shift
                    home = self._home[page]
                    events = self._events
                    if events.observers:
                        events.clock = now
                    lat = self._protocol.upgrade(node.id, chunk, page,
                                                 home, now)
                    owned.add(chunk)
                    stats.upgrades += 1
                    stats.U_SH_MEM += lat
                    l1.mark_dirty(line)
                    return self._hit_cycles + lat
                l1.mark_dirty(line)
            return self._hit_cycles

        # -- L1 miss ------------------------------------------------------
        stats.l1_misses += 1
        events = self._events
        if events.observers:
            events.clock = now
        page = line >> self._line_shift
        chunk = line >> self._chunk_shift
        node.tlb.ref_bits[page] = True
        nid = node.id

        kernel = 0
        memo = self._memo
        if memo is not None:
            node_memo = memo[nid]
            cached = node_memo.get(page)
            if cached is not None:
                mode, home = cached
            else:
                mode = node.page_table.mode.get(page, 0)
                if mode == 0:  # UNMAPPED: first touch on this node
                    mode, kernel = self._page_fault(node, page, now)
                # The fault (ours or an earlier node's) assigned a home.
                home = self._home[page]
                # Install *after* the fault event so the invalidation
                # observer cannot wipe a just-created entry.
                node_memo[page] = (mode, home)
        else:
            mode = node.page_table.mode.get(page, 0)
            if mode == 0:  # UNMAPPED: first touch on this node
                mode, kernel = self._page_fault(node, page, now)
            home = self._home[page]
        now += kernel

        lat = self._buses[nid].transact(now)
        protocol = self._protocol
        owned = node.owned

        # Outcome tuples are in Directory.fetch_raw order:
        # (refetch, forwarded, invalidations, relocation_hint,
        #  prev_owner, exclusive).
        if mode == PageMode.HOME:
            fetch_lat, out = protocol.local_fetch_raw(nid, chunk, page,
                                                      is_write, now + lat)
            lat += fetch_lat
            stats.HOME += 1
            stats.HOME_LAT += lat
            if is_write or out[5]:
                owned.add(chunk)
        elif mode == PageMode.SCOMA:
            cip = chunk & self._cpp_mask
            if node.page_table.scoma_valid[page] >> cip & 1:
                lat += node.memory.access(chunk, now + lat)
                stats.SCOMA += 1
                node.pagecache_hits[page] += 1
                stats.SCOMA_LAT += lat
                if is_write and chunk not in owned:
                    lat += protocol.upgrade(nid, chunk, page, home, now + lat)
                    owned.add(chunk)
                    stats.upgrades += 1
            else:
                fetch_lat, out = protocol.remote_fetch_raw(
                    nid, chunk, page, home, is_write, 0, now + lat,
                    count_refetch=False)
                lat += self._dsm2 + fetch_lat
                node.page_table.set_chunk_valid(page, cip)
                self._classify_remote(node, chunk, out[0], lat)
                if is_write or out[5]:
                    owned.add(chunk)
        else:  # PageMode.CCNUMA
            if node.rac.lookup(line if self._rac_victim else chunk):
                lat += self._rac_cycles
                stats.RAC += 1
                stats.RAC_LAT += lat
                if is_write and chunk not in owned:
                    lat += protocol.upgrade(nid, chunk, page, home, now + lat)
                    owned.add(chunk)
                    stats.upgrades += 1
            else:
                threshold = node.policy_state.effective_threshold()
                fetch_lat, out = protocol.remote_fetch_raw(
                    nid, chunk, page, home, is_write, threshold, now + lat)
                lat += self._dsm2 + fetch_lat
                if not self._rac_victim:
                    node.rac.fill(chunk)
                self._classify_remote(node, chunk, out[0], lat)
                if is_write or out[5]:
                    owned.add(chunk)
                if out[3]:  # relocation hint
                    # Fill the L1 *before* the relocation interrupt: the
                    # access completed first, and the remap's page flush
                    # must also purge this line, or a stale copy would
                    # linger in the cache without copyset membership.
                    self._l1_fill(node, line, is_write)
                    kernel += self._handle_relocation_hint(node, page,
                                                           now + lat)
                    stats.U_SH_MEM += lat
                    return kernel + lat

        if self._rac_victim:
            self._l1_fill(node, line, is_write)
        else:
            l1.fill(line, is_write)
        stats.U_SH_MEM += lat
        return kernel + lat

    def _l1_fill(self, node, line: int, is_write: bool) -> None:
        """Install a line in the L1; in victim-RAC mode, evicted remote
        lines drop into the RAC (VC-NUMA's actual hardware)."""
        victim = node.l1.fill(line, dirty=is_write)
        if self._rac_victim and victim != -1:
            vpage = victim >> self._line_shift
            if node.page_table.mode.get(vpage, 0) == PageMode.CCNUMA:
                node.rac.fill(victim)

    # ------------------------------------------------------------------
    def _classify_remote(self, node, chunk: int, refetch: bool,
                         lat: int = 0) -> None:
        """COLD vs CONF/CAPC classification of a remote fetch."""
        stats = node.stats
        if refetch:
            stats.CONF_CAPC += 1
            stats.CONF_CAPC_LAT += lat
        else:
            stats.COLD += 1
            stats.COLD_LAT += lat
            if chunk in node.ever_fetched:
                stats.induced_cold += 1
            else:
                stats.essential_cold += 1
                node.ever_fetched.add(chunk)
            return
        node.ever_fetched.add(chunk)

    def _page_fault(self, node, page: int, now: int) -> tuple[int, int]:
        """First touch to *page* on *node*: returns (mode, kernel_cycles)."""
        stats = node.stats
        costs = node.costs
        kernel = costs.page_fault
        stats.K_BASE += kernel
        stats.page_faults += 1
        node.page_table.faults += 1

        home = self.machine.allocator.home_of(page, node.id)
        if home == node.id:
            node.page_table.map_home(page)
            return self._faulted(node, page, PageMode.HOME, home, kernel)

        mode = self.policy.initial_mode(node.policy_state, node.pool.free)
        if mode == PageMode.SCOMA:
            if node.acquire_frame(now + kernel):
                node.map_scoma(page)
                return self._faulted(node, page, PageMode.SCOMA, home, kernel)
            if self._mandatory_scoma:
                # Pure S-COMA: evict someone (hot or not) right now.
                victim = node.choose_victim()
                overhead = node.evict_scoma_page(victim, forced=True)
                stats.K_OVERHD += overhead
                kernel += overhead
                if not node.pool.try_allocate():  # pragma: no cover - invariant
                    raise RuntimeError("frame lost after forced eviction")
                node.map_scoma(page)
                return self._faulted(node, page, PageMode.SCOMA, home, kernel)
            # Hybrid with a dry pool: fall back to CC-NUMA mode.
        node.page_table.map_ccnuma(page)
        return self._faulted(node, page, PageMode.CCNUMA, home, kernel)

    def _faulted(self, node, page: int, mode: int, home: int,
                 kernel: int) -> tuple[int, int]:
        """Publish the fault event and return the (mode, kernel) pair."""
        events = self._events
        if events.observers:
            events.publish(EV_FAULT, node.id, page, mode=int(mode), home=home)
        return mode, kernel

    def _handle_relocation_hint(self, node, page: int, now: int) -> int:
        """Directory flagged *page* hot for *node*: maybe remap it."""
        stats = node.stats
        decision = self.policy.on_relocation_hint(node.policy_state,
                                                  node.pool.free)
        if decision == RelocationDecision.SKIP:
            node.policy_state.skipped_relocations += 1
            stats.skipped_relocations += 1
            return 0

        if decision == RelocationDecision.MIGRATE:
            return self._migrate_page(node, page, now)

        if not node.acquire_frame(now):
            if decision == RelocationDecision.RELOCATE_IF_FREE:
                # AS-COMA: never evict a hot page for another hot page.
                node.policy_state.skipped_relocations += 1
                stats.skipped_relocations += 1
                return 0
            # R-NUMA / VC-NUMA: force-evict a victim (possibly hot).
            victim = node.choose_victim()
            overhead = node.evict_scoma_page(victim, forced=True)
            if not node.pool.try_allocate():  # pragma: no cover - invariant
                raise RuntimeError("frame lost after forced eviction")
            overhead += node.relocate_to_scoma(page)
            stats.K_OVERHD += overhead
            return overhead

        overhead = node.relocate_to_scoma(page)
        stats.K_OVERHD += overhead
        return overhead

    def _migrate_page(self, node, page: int, now: int) -> int:
        """Move *page*'s home to *node* (CCNUMA-MIG extension).

        Only non-shared pages migrate: if any third node (neither the
        requester nor the current home) caches a chunk of the page, the
        migration is vetoed -- the gate the paper describes for why
        migration only works on read-only or non-shared data.
        """
        machine = self.machine
        amap = machine.amap
        directory = machine.directory
        old_home = machine.allocator.home[page]
        stats = node.stats

        allowed = ~((1 << node.id) | (1 << old_home))
        home_bit = 1 << old_home
        home_chunks = 0
        first = amap.first_chunk_of_page(page)
        for chunk in range(first, first + amap.chunks_per_page):
            cs = directory.copyset.get(chunk, 0)
            if cs & allowed:
                stats.skipped_migrations += 1
                return 0
            if cs & home_bit:
                home_chunks += 1
        # The old home still actively uses the page (it caches a
        # non-trivial share of its chunks): moving the home would just
        # swap whose accesses go remote.  Real migration policies weigh
        # both sides' usage; a small occupancy bound captures that.
        if home_chunks > amap.chunks_per_page // 4:
            stats.skipped_migrations += 1
            return 0

        # Old home flushes its cached copies and demotes to CC-NUMA mode
        # (its own next access will go remote).
        old = machine.nodes[old_home]
        flushed = old.flush_page(page)
        if old.page_table.mode_of(page) == PageMode.HOME:
            old.page_table.convert_home_to_ccnuma(page)

        machine.allocator.migrate(page, node.id)
        node.page_table.convert_ccnuma_to_home(page)
        # The requester's RAC may hold chunks fetched while the page was
        # remote; now that it is home-mapped they would linger unused.
        node.rac.flush_page(page, amap.lines_per_page if self._rac_victim
                            else amap.chunks_per_page)
        directory.reset_refetch(page, node.id)

        overhead = node.costs.migration_cost(amap.chunks_per_page, flushed)
        stats.K_OVERHD += overhead
        stats.migrations += 1
        events = self._events
        if events.observers:
            events.clock = now
            events.publish(EV_MIGRATE, node.id, page, old_home=old_home)
        return overhead


def simulate(workload: WorkloadTraces, policy: ArchitecturePolicy,
             config: SystemConfig | None = None,
             quantum: int = DEFAULT_QUANTUM,
             log_messages: bool = False) -> RunResult:
    """Convenience wrapper: build an :class:`Engine` and run it."""
    return Engine(workload, policy, config=config, quantum=quantum,
                  log_messages=log_messages).run()
