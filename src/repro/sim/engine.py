"""Trace replay engine.

Replays one :class:`~repro.sim.trace.WorkloadTraces` through a
:class:`~repro.sim.machine.Machine` under one architecture policy,
producing a :class:`~repro.sim.stats.RunResult`.

Scheduling
----------
Nodes are interleaved by *lazy quantum scheduling*: the engine always
advances the node with the smallest local clock, processing its events
until its clock passes the runner-up clock by a small quantum.  This
keeps cross-node event ordering approximately global (so coherence
invalidations and directory state interleave realistically) while
amortising scheduling overhead over many events -- the standard
conservative-window technique from parallel architectural simulation
(and the approach of the Paint/Mint family the paper builds on).

Barriers synchronise all nodes: each arriving node stalls, and when the
last one arrives every waiter's clock jumps to the maximum arrival time
with the difference charged to SYNC.

Accounting
----------
Every event advances its node's clock and exactly one stats bucket:
compute -> U_INSTR, private stalls -> U_LC_MEM, shared-reference stall
time -> U_SH_MEM, kernel work -> K_BASE or K_OVERHD, barrier waits ->
SYNC.  Misses are simultaneously classified into HOME / SCOMA / RAC /
COLD / CONF_CAPC, matching the right-hand charts of Figures 2-3.

Fast path vs reference path
---------------------------
The engine carries two replay loops producing **bit-identical**
:class:`RunResult`s (``tests/test_perf_parity.py`` enforces this for
every architecture):

* the **fast path** (default) inlines the direct-mapped L1 hit case
  into the event loop, hoists per-event attribute lookups into locals,
  replays cached list-form traces, and (optionally) memoizes each
  node's page -> (mode, home) lookups, invalidated through the event
  bus on every page-management transition;
* the **reference path** (``REPRO_SLOW_PATH=1`` or ``slow_path=True``)
  is the straightforward one-call-per-event loop the fast path was
  derived from.  It is the escape hatch for debugging and the parity
  oracle for every future hot-path change.

See ``docs/performance.md`` for the measured speedups.
"""

from __future__ import annotations

import os
import sys

from ..core.policy import ArchitecturePolicy, RelocationDecision
from ..kernel.vm import PageMode
from .config import SystemConfig
from .events import (EV_BARRIER, EV_END, EV_EVICT, EV_FAULT, EV_MAP_SCOMA,
                     EV_MIGRATE, EV_RELOCATE)
from .machine import Machine
from .stats import RunResult
from .trace import EV_COMPUTE, EV_LOCAL, EV_WRITE, WorkloadTraces

__all__ = ["Engine", "simulate"]

#: How far (cycles) one node may run ahead of the runner-up clock.
DEFAULT_QUANTUM = 2000

#: Event kinds after which a memoized page -> (mode, home) entry may be
#: stale: page faults and S-COMA (un)mappings change the mode, home
#: migration changes the home (for every node's view of the page).
_MEMO_INVALIDATORS = frozenset(
    {EV_FAULT, EV_MAP_SCOMA, EV_EVICT, EV_RELOCATE, EV_MIGRATE})


class Engine:
    """One simulation run."""

    def __init__(self, workload: WorkloadTraces, policy: ArchitecturePolicy,
                 config: SystemConfig | None = None,
                 quantum: int = DEFAULT_QUANTUM,
                 log_messages: bool = False,
                 sampler=None,
                 slow_path: bool | None = None,
                 page_memo: bool | None = None) -> None:
        self.workload = workload
        #: Optional TimeSeriesSampler snapshotting policy state at every
        #: barrier release (see repro.sim.timeseries).
        self.sampler = sampler
        self.policy = policy
        self.config = config or SystemConfig(n_nodes=workload.n_nodes)
        if self.config.n_nodes != workload.n_nodes:
            raise ValueError(
                f"config has {self.config.n_nodes} nodes but workload has"
                f" {workload.n_nodes}")
        if quantum <= 0:
            raise ValueError("quantum must be positive")
        self.quantum = quantum
        self.machine = Machine(self.config, policy,
                               workload.home_pages_per_node,
                               workload.total_shared_pages,
                               log_messages=log_messages)
        #: Machine-shared rare-event bus (identity is stable for the
        #: engine's lifetime, so it can be cached in locals).
        self._events = self.machine.events
        #: Optional online invariant checker (repro.check attaches one);
        #: when set, the run result carries its violation count.
        self.checker = None
        #: pure S-COMA must map every remote page locally, even if a
        #: victim has to be force-evicted at fault time.
        self._mandatory_scoma = policy.mandatory_page_cache
        #: Direct-mapped L1s take an inlined tag-compare fast path in
        #: the reference loop; associative ones go through lookup().
        self._l1_direct = self.config.l1_ways == 1
        #: Victim-mode RAC: fills from L1 evictions of remote lines,
        #: never from fetches (see SystemConfig.rac_fill_policy).
        self._rac_victim = self.config.rac_fill_policy == "victim"
        #: Reference mode: one `_shared_ref` call per READ/WRITE event.
        #: Selected per engine, or process-wide via REPRO_SLOW_PATH=1
        #: (the escape hatch documented in docs/performance.md).
        if slow_path is None:
            slow_path = os.environ.get("REPRO_SLOW_PATH", "") not in ("", "0")
        self.slow_path = slow_path
        #: Per-node page -> (mode, home) memo, invalidated through the
        #: event bus (_MEMO_INVALIDATORS).  Opt-in: subscribing the
        #: invalidation observer makes every page-management publish
        #: construct an event, which costs more than the memo saves on
        #: the curated workloads (see docs/performance.md) -- but it
        #: wins when lookups dominate, e.g. page-table-heavy configs.
        if page_memo is None:
            page_memo = False
        self._memo = None
        if page_memo:
            self._memo = [{} for _ in range(self.config.n_nodes)]
            self._events.subscribe(self._invalidate_memo)
        # Hot-path constants and stable sub-object aliases, hoisted once
        # so `_shared_ref` never re-walks attribute chains per event.
        # All aliased objects are created by Machine.__init__ and only
        # ever mutated in place (never rebound) during a run.
        amap = self.machine.amap
        self._line_shift = amap.line_shift
        self._chunk_shift = amap.chunk_shift
        self._cpp_mask = amap.chunks_per_page - 1
        self._hit_cycles = self.config.l1_hit_cycles
        self._rac_cycles = self.config.rac_hit_cycles
        self._dsm2 = 2 * self.config.dsm_processing_cycles
        self._protocol = self.machine.protocol
        self._buses = self.machine.buses
        self._home = self.machine.allocator.home

    # ------------------------------------------------------------------
    def _invalidate_memo(self, event) -> None:
        """Event-bus observer dropping stale page-lookup memo entries.

        Mode transitions are per-node but a migration changes every
        node's view of the page's home, so entries are dropped from all
        nodes -- over-invalidation is always safe, and these events are
        orders of magnitude rarer than lookups.
        """
        if event.kind in _MEMO_INVALIDATORS and event.page >= 0:
            page = event.page
            for memo in self._memo:
                memo.pop(page, None)

    # ------------------------------------------------------------------
    def run(self) -> RunResult:
        clock = (self._run_reference() if self.slow_path
                 else self._run_fast())

        events = self._events
        if events.observers:
            events.clock = max(clock) if clock else 0
            events.publish(EV_END, -1, -1)

        machine = self.machine
        extra = {
            "utilisation": machine.utilisation_report(),
            "page_cache_frames": machine.page_cache_frames(),
            "protocol": {
                "remote_fetches": machine.protocol.remote_fetches,
                "three_hop": machine.protocol.three_hop_fetches,
                "write_stalls": machine.protocol.write_stalls,
            },
        }
        if self.checker is not None:
            extra["invariant_violations"] = self.checker.violation_count()
        return RunResult(
            architecture=self.policy.name,
            workload=self.workload.name,
            pressure=self.config.memory_pressure,
            node_stats=[nd.stats for nd in machine.nodes],
            extra=extra,
        )

    # ------------------------------------------------------------------
    def _release_barrier(self, nodes, clock, arrival, waiting, pos, end,
                         finished, barrier_id) -> None:
        """Release a full barrier: charge SYNC, align clocks, publish."""
        n = len(nodes)
        ids = {barrier_id[i] for i in range(n) if waiting[i]}
        if len(ids) != 1:
            raise RuntimeError(
                f"barrier mismatch: nodes waiting at {sorted(ids)}")
        release = max(arrival[i] for i in range(n) if waiting[i])
        for i in range(n):
            if waiting[i]:
                nodes[i].stats.SYNC += release - arrival[i]
                clock[i] = release
                waiting[i] = False
                if pos[i] >= end[i]:
                    finished[i] = True
        if self.sampler is not None:
            self.sampler.sample(release, nodes)
        events = self._events
        if events.observers:
            events.clock = release
            events.publish(EV_BARRIER, -1, -1, barrier=ids.pop())

    # ------------------------------------------------------------------
    def _run_fast(self) -> list[int]:
        """Optimised replay loop (the default).

        Bit-identical to :meth:`_run_reference` -- every divergence is
        a pure re-expression of the same arithmetic: the direct-mapped
        L1 hit case is inlined (the tag probe is a pure compare, so the
        fallback `_shared_ref` call re-probing on the remaining cases
        sees identical state), per-event attribute chains are hoisted
        to locals that alias the same mutable objects, and the
        ``limit is None`` check is folded into a sentinel clock no run
        can reach.
        """
        machine = self.machine
        nodes = machine.nodes
        n = len(nodes)
        # Cached list-form traces: scalar list indexing beats numpy
        # scalar indexing ~3x, and the cache amortises the conversion
        # across the many runs of one workload in a matrix sweep.
        kinds = []
        args = []
        for t in self.workload.traces:
            k, a = t.as_lists()
            kinds.append(k)
            args.append(a)
        pos = [0] * n
        end = [len(k) for k in kinds]
        clock = [0] * n
        finished = [p >= e for p, e in zip(pos, end)]
        waiting = [False] * n
        barrier_id = [-1] * n
        arrival = [0] * n
        quantum = self.quantum
        shared_ref = self._shared_ref
        l1_direct = self._l1_direct
        hit_cycles = self._hit_cycles
        chunk_shift = self._chunk_shift
        ev_write = EV_WRITE
        ev_compute = EV_COMPUTE
        ev_local = EV_LOCAL
        no_limit = sys.maxsize  # clocks stay far below 2**63

        while True:
            # Pick the runnable node with the smallest clock.
            best = -1
            best_clock = None
            runner_up = None
            for i in range(n):
                if finished[i] or waiting[i]:
                    continue
                c = clock[i]
                if best_clock is None or c < best_clock:
                    runner_up = best_clock
                    best_clock = c
                    best = i
                elif runner_up is None or c < runner_up:
                    runner_up = c
            if best == -1:
                if all(finished):
                    break
                raise RuntimeError("deadlock: all unfinished nodes are waiting"
                                   " at a barrier that never released")
            limit = (runner_up + quantum) if runner_up is not None else no_limit

            node = nodes[best]
            k = kinds[best]
            a = args[best]
            p = pos[best]
            e = end[best]
            now = clock[best]
            stats = node.stats
            node.run_daemon_if_due(now)

            if l1_direct:
                # Hot loop with the L1 hit case inlined.  `tags`/`dirty`
                # alias the cache's own lists (mutated in place by fills
                # and flushes, never rebound during a run).  Hits are
                # tallied in a local and flushed once per slice: nothing
                # reads `stats.l1_hits` mid-slice, and integer addition
                # commutes with the `_shared_ref` increments.
                l1 = node.l1
                tags = l1.tags
                dirty = l1.dirty
                set_mask = l1.set_mask
                owned = node.owned
                hits = 0
                while p < e and now < limit:
                    ev = k[p]
                    arg = a[p]
                    p += 1
                    if ev <= ev_write:  # READ or WRITE
                        if tags[arg & set_mask] == arg:
                            if ev != ev_write:
                                hits += 1
                                now += hit_cycles
                                continue
                            if (arg >> chunk_shift) in owned:
                                hits += 1
                                dirty[arg & set_mask] = True
                                now += hit_cycles
                                continue
                        # Miss, or write hit needing an upgrade: the
                        # full path re-probes (pure compare) and takes
                        # the identical branch the reference path does.
                        now += shared_ref(node, arg, ev == ev_write, now)
                    elif ev == ev_compute:
                        stats.U_INSTR += arg
                        now += arg
                    elif ev == ev_local:
                        stats.U_LC_MEM += arg
                        now += arg
                    else:  # EV_BARRIER
                        waiting[best] = True
                        barrier_id[best] = arg
                        arrival[best] = now
                        break
                if hits:
                    stats.l1_hits += hits
            else:
                while p < e and now < limit:
                    ev = k[p]
                    arg = a[p]
                    p += 1
                    if ev <= ev_write:
                        now += shared_ref(node, arg, ev == ev_write, now)
                    elif ev == ev_compute:
                        stats.U_INSTR += arg
                        now += arg
                    elif ev == ev_local:
                        stats.U_LC_MEM += arg
                        now += arg
                    else:  # EV_BARRIER
                        waiting[best] = True
                        barrier_id[best] = arg
                        arrival[best] = now
                        break

            pos[best] = p
            clock[best] = now
            if p >= e and not waiting[best]:
                finished[best] = True

            if waiting[best]:
                # Release when every unfinished node is at the barrier.
                if all(finished[i] or waiting[i] for i in range(n)):
                    self._release_barrier(nodes, clock, arrival, waiting,
                                          pos, end, finished, barrier_id)
        return clock

    # ------------------------------------------------------------------
    def _run_reference(self) -> list[int]:
        """Reference replay loop: one `_shared_ref` call per event.

        This is the pre-optimisation engine, kept verbatim as the
        parity oracle (`tests/test_perf_parity.py`) and as the
        REPRO_SLOW_PATH=1 escape hatch.
        """
        machine = self.machine
        nodes = machine.nodes
        n = len(nodes)
        # Python lists index ~3x faster than numpy scalars in this loop.
        kinds = [t.kinds.tolist() for t in self.workload.traces]
        args = [t.args.tolist() for t in self.workload.traces]
        pos = [0] * n
        end = [len(k) for k in kinds]
        clock = [0] * n
        finished = [p >= e for p, e in zip(pos, end)]
        waiting = [False] * n
        barrier_id = [-1] * n
        arrival = [0] * n
        quantum = self.quantum
        shared_ref = self._shared_ref

        while True:
            # Pick the runnable node with the smallest clock.
            best = -1
            best_clock = None
            runner_up = None
            for i in range(n):
                if finished[i] or waiting[i]:
                    continue
                c = clock[i]
                if best_clock is None or c < best_clock:
                    runner_up = best_clock
                    best_clock = c
                    best = i
                elif runner_up is None or c < runner_up:
                    runner_up = c
            if best == -1:
                if all(finished):
                    break
                raise RuntimeError("deadlock: all unfinished nodes are waiting"
                                   " at a barrier that never released")
            limit = (runner_up + quantum) if runner_up is not None else None

            node = nodes[best]
            k = kinds[best]
            a = args[best]
            p = pos[best]
            e = end[best]
            now = clock[best]
            stats = node.stats
            # Let the pageout daemon run on its own schedule, not only
            # when a frame is needed (it is how AS-COMA notices recovery).
            node.run_daemon_if_due(now)

            while p < e and (limit is None or now < limit):
                ev = k[p]
                arg = a[p]
                p += 1
                if ev <= EV_WRITE:  # READ or WRITE
                    now += shared_ref(node, arg, ev == EV_WRITE, now)
                elif ev == EV_COMPUTE:
                    stats.U_INSTR += arg
                    now += arg
                elif ev == EV_LOCAL:
                    stats.U_LC_MEM += arg
                    now += arg
                else:  # EV_BARRIER
                    waiting[best] = True
                    barrier_id[best] = arg
                    arrival[best] = now
                    break

            pos[best] = p
            clock[best] = now
            if p >= e and not waiting[best]:
                finished[best] = True

            if waiting[best]:
                # Release when every unfinished node is at the barrier.
                if all(finished[i] or waiting[i] for i in range(n)):
                    self._release_barrier(nodes, clock, arrival, waiting,
                                          pos, end, finished, barrier_id)
        return clock

    # ------------------------------------------------------------------
    def _shared_ref(self, node, line: int, is_write: bool, now: int) -> int:
        """Process one shared-memory reference; returns elapsed cycles.

        Updates the node's stats buckets in place (U_SH_MEM for stall
        time, K_BASE/K_OVERHD for kernel work triggered by the access).

        Attribute chains are hoisted into locals / precomputed engine
        attributes (`_hit_cycles`, `_home`, ...): this function *is* the
        profile's hot spot, and both replay loops share it, so every
        saved lookup is bit-identical by construction.
        """
        stats = node.stats
        l1 = node.l1

        # -- L1 probe (the overwhelmingly common case) -------------------
        if self._l1_direct:
            hit = l1.tags[line & l1.set_mask] == line
        else:
            hit = l1.lookup(line)
        if hit:
            stats.l1_hits += 1
            if is_write:
                chunk = line >> self._chunk_shift
                owned = node.owned
                if chunk not in owned:
                    page = line >> self._line_shift
                    home = self._home[page]
                    events = self._events
                    if events.observers:
                        events.clock = now
                    lat = self._protocol.upgrade(node.id, chunk, page,
                                                 home, now)
                    owned.add(chunk)
                    stats.upgrades += 1
                    stats.U_SH_MEM += lat
                    l1.mark_dirty(line)
                    return self._hit_cycles + lat
                l1.mark_dirty(line)
            return self._hit_cycles

        # -- L1 miss ------------------------------------------------------
        stats.l1_misses += 1
        events = self._events
        if events.observers:
            events.clock = now
        page = line >> self._line_shift
        chunk = line >> self._chunk_shift
        node.tlb.ref_bits[page] = True
        nid = node.id

        kernel = 0
        memo = self._memo
        if memo is not None:
            node_memo = memo[nid]
            cached = node_memo.get(page)
            if cached is not None:
                mode, home = cached
            else:
                mode = node.page_table.mode.get(page, 0)
                if mode == 0:  # UNMAPPED: first touch on this node
                    mode, kernel = self._page_fault(node, page, now)
                # The fault (ours or an earlier node's) assigned a home.
                home = self._home[page]
                # Install *after* the fault event so the invalidation
                # observer cannot wipe a just-created entry.
                node_memo[page] = (mode, home)
        else:
            mode = node.page_table.mode.get(page, 0)
            if mode == 0:  # UNMAPPED: first touch on this node
                mode, kernel = self._page_fault(node, page, now)
            home = self._home[page]
        now += kernel

        lat = self._buses[nid].transact(now)
        protocol = self._protocol
        owned = node.owned

        # Outcome tuples are in Directory.fetch_raw order:
        # (refetch, forwarded, invalidations, relocation_hint,
        #  prev_owner, exclusive).
        if mode == PageMode.HOME:
            fetch_lat, out = protocol.local_fetch_raw(nid, chunk, page,
                                                      is_write, now + lat)
            lat += fetch_lat
            stats.HOME += 1
            stats.HOME_LAT += lat
            if is_write or out[5]:
                owned.add(chunk)
        elif mode == PageMode.SCOMA:
            cip = chunk & self._cpp_mask
            if node.page_table.scoma_valid[page] >> cip & 1:
                lat += node.memory.access(chunk, now + lat)
                stats.SCOMA += 1
                node.pagecache_hits[page] += 1
                stats.SCOMA_LAT += lat
                if is_write and chunk not in owned:
                    lat += protocol.upgrade(nid, chunk, page, home, now + lat)
                    owned.add(chunk)
                    stats.upgrades += 1
            else:
                fetch_lat, out = protocol.remote_fetch_raw(
                    nid, chunk, page, home, is_write, 0, now + lat,
                    count_refetch=False)
                lat += self._dsm2 + fetch_lat
                node.page_table.set_chunk_valid(page, cip)
                self._classify_remote(node, chunk, out[0], lat)
                if is_write or out[5]:
                    owned.add(chunk)
        else:  # PageMode.CCNUMA
            if node.rac.lookup(line if self._rac_victim else chunk):
                lat += self._rac_cycles
                stats.RAC += 1
                stats.RAC_LAT += lat
                if is_write and chunk not in owned:
                    lat += protocol.upgrade(nid, chunk, page, home, now + lat)
                    owned.add(chunk)
                    stats.upgrades += 1
            else:
                threshold = node.policy_state.effective_threshold()
                fetch_lat, out = protocol.remote_fetch_raw(
                    nid, chunk, page, home, is_write, threshold, now + lat)
                lat += self._dsm2 + fetch_lat
                if not self._rac_victim:
                    node.rac.fill(chunk)
                self._classify_remote(node, chunk, out[0], lat)
                if is_write or out[5]:
                    owned.add(chunk)
                if out[3]:  # relocation hint
                    # Fill the L1 *before* the relocation interrupt: the
                    # access completed first, and the remap's page flush
                    # must also purge this line, or a stale copy would
                    # linger in the cache without copyset membership.
                    self._l1_fill(node, line, is_write)
                    kernel += self._handle_relocation_hint(node, page,
                                                           now + lat)
                    stats.U_SH_MEM += lat
                    return kernel + lat

        if self._rac_victim:
            self._l1_fill(node, line, is_write)
        else:
            l1.fill(line, is_write)
        stats.U_SH_MEM += lat
        return kernel + lat

    def _l1_fill(self, node, line: int, is_write: bool) -> None:
        """Install a line in the L1; in victim-RAC mode, evicted remote
        lines drop into the RAC (VC-NUMA's actual hardware)."""
        victim = node.l1.fill(line, dirty=is_write)
        if self._rac_victim and victim != -1:
            vpage = victim >> self._line_shift
            if node.page_table.mode.get(vpage, 0) == PageMode.CCNUMA:
                node.rac.fill(victim)

    # ------------------------------------------------------------------
    def _classify_remote(self, node, chunk: int, refetch: bool,
                         lat: int = 0) -> None:
        """COLD vs CONF/CAPC classification of a remote fetch."""
        stats = node.stats
        if refetch:
            stats.CONF_CAPC += 1
            stats.CONF_CAPC_LAT += lat
        else:
            stats.COLD += 1
            stats.COLD_LAT += lat
            if chunk in node.ever_fetched:
                stats.induced_cold += 1
            else:
                stats.essential_cold += 1
                node.ever_fetched.add(chunk)
            return
        node.ever_fetched.add(chunk)

    def _page_fault(self, node, page: int, now: int) -> tuple[int, int]:
        """First touch to *page* on *node*: returns (mode, kernel_cycles)."""
        stats = node.stats
        costs = node.costs
        kernel = costs.page_fault
        stats.K_BASE += kernel
        stats.page_faults += 1
        node.page_table.faults += 1

        home = self.machine.allocator.home_of(page, node.id)
        if home == node.id:
            node.page_table.map_home(page)
            return self._faulted(node, page, PageMode.HOME, home, kernel)

        mode = self.policy.initial_mode(node.policy_state, node.pool.free)
        if mode == PageMode.SCOMA:
            if node.acquire_frame(now + kernel):
                node.map_scoma(page)
                return self._faulted(node, page, PageMode.SCOMA, home, kernel)
            if self._mandatory_scoma:
                # Pure S-COMA: evict someone (hot or not) right now.
                victim = node.choose_victim()
                overhead = node.evict_scoma_page(victim, forced=True)
                stats.K_OVERHD += overhead
                kernel += overhead
                if not node.pool.try_allocate():  # pragma: no cover - invariant
                    raise RuntimeError("frame lost after forced eviction")
                node.map_scoma(page)
                return self._faulted(node, page, PageMode.SCOMA, home, kernel)
            # Hybrid with a dry pool: fall back to CC-NUMA mode.
        node.page_table.map_ccnuma(page)
        return self._faulted(node, page, PageMode.CCNUMA, home, kernel)

    def _faulted(self, node, page: int, mode: int, home: int,
                 kernel: int) -> tuple[int, int]:
        """Publish the fault event and return the (mode, kernel) pair."""
        events = self._events
        if events.observers:
            events.publish(EV_FAULT, node.id, page, mode=int(mode), home=home)
        return mode, kernel

    def _handle_relocation_hint(self, node, page: int, now: int) -> int:
        """Directory flagged *page* hot for *node*: maybe remap it."""
        stats = node.stats
        decision = self.policy.on_relocation_hint(node.policy_state,
                                                  node.pool.free)
        if decision == RelocationDecision.SKIP:
            node.policy_state.skipped_relocations += 1
            stats.skipped_relocations += 1
            return 0

        if decision == RelocationDecision.MIGRATE:
            return self._migrate_page(node, page, now)

        if not node.acquire_frame(now):
            if decision == RelocationDecision.RELOCATE_IF_FREE:
                # AS-COMA: never evict a hot page for another hot page.
                node.policy_state.skipped_relocations += 1
                stats.skipped_relocations += 1
                return 0
            # R-NUMA / VC-NUMA: force-evict a victim (possibly hot).
            victim = node.choose_victim()
            overhead = node.evict_scoma_page(victim, forced=True)
            if not node.pool.try_allocate():  # pragma: no cover - invariant
                raise RuntimeError("frame lost after forced eviction")
            overhead += node.relocate_to_scoma(page)
            stats.K_OVERHD += overhead
            return overhead

        overhead = node.relocate_to_scoma(page)
        stats.K_OVERHD += overhead
        return overhead

    def _migrate_page(self, node, page: int, now: int) -> int:
        """Move *page*'s home to *node* (CCNUMA-MIG extension).

        Only non-shared pages migrate: if any third node (neither the
        requester nor the current home) caches a chunk of the page, the
        migration is vetoed -- the gate the paper describes for why
        migration only works on read-only or non-shared data.
        """
        machine = self.machine
        amap = machine.amap
        directory = machine.directory
        old_home = machine.allocator.home[page]
        stats = node.stats

        allowed = ~((1 << node.id) | (1 << old_home))
        home_bit = 1 << old_home
        home_chunks = 0
        first = amap.first_chunk_of_page(page)
        for chunk in range(first, first + amap.chunks_per_page):
            cs = directory.copyset.get(chunk, 0)
            if cs & allowed:
                stats.skipped_migrations += 1
                return 0
            if cs & home_bit:
                home_chunks += 1
        # The old home still actively uses the page (it caches a
        # non-trivial share of its chunks): moving the home would just
        # swap whose accesses go remote.  Real migration policies weigh
        # both sides' usage; a small occupancy bound captures that.
        if home_chunks > amap.chunks_per_page // 4:
            stats.skipped_migrations += 1
            return 0

        # Old home flushes its cached copies and demotes to CC-NUMA mode
        # (its own next access will go remote).
        old = machine.nodes[old_home]
        flushed = old.flush_page(page)
        if old.page_table.mode_of(page) == PageMode.HOME:
            old.page_table.convert_home_to_ccnuma(page)

        machine.allocator.migrate(page, node.id)
        node.page_table.convert_ccnuma_to_home(page)
        # The requester's RAC may hold chunks fetched while the page was
        # remote; now that it is home-mapped they would linger unused.
        node.rac.flush_page(page, amap.lines_per_page if self._rac_victim
                            else amap.chunks_per_page)
        directory.reset_refetch(page, node.id)

        overhead = node.costs.migration_cost(amap.chunks_per_page, flushed)
        stats.K_OVERHD += overhead
        stats.migrations += 1
        events = self._events
        if events.observers:
            events.clock = now
            events.publish(EV_MIGRATE, node.id, page, old_home=old_home)
        return overhead


def simulate(workload: WorkloadTraces, policy: ArchitecturePolicy,
             config: SystemConfig | None = None,
             quantum: int = DEFAULT_QUANTUM,
             log_messages: bool = False) -> RunResult:
    """Convenience wrapper: build an :class:`Engine` and run it."""
    return Engine(workload, policy, config=config, quantum=quantum,
                  log_messages=log_messages).run()
