"""Workload trace analysis: working sets, reuse distances, sharing.

The paper's entire evaluation hinges on three properties of each
application's reference stream: the size of the remote working set
relative to the page cache (Table 5), how *hot* pages are (Table 6),
and the page-grained temporal locality that decides whether an S-COMA
frame amortises its mapping cost.  This module computes those
properties directly from a :class:`~repro.sim.trace.WorkloadTraces`, so
a new workload can be characterised before ever running the simulator
-- the workflow `examples/workload_analysis.py` demonstrates.

All analyses are vectorised numpy passes over the trace arrays.
"""

from __future__ import annotations

import numpy as np

from .trace import EV_READ, EV_WRITE, Trace, WorkloadTraces

__all__ = ["page_reference_counts", "page_reuse_distances",
           "working_set_curve", "sharing_profile", "node_summary",
           "analyze"]


def _ref_pages(trace: Trace, lines_per_page: int) -> np.ndarray:
    """Page id of every shared reference, in trace order."""
    mask = (trace.kinds == EV_READ) | (trace.kinds == EV_WRITE)
    return trace.args[mask] // lines_per_page


def page_reference_counts(trace: Trace, lines_per_page: int) -> dict[int, int]:
    """References per page -- the 'hotness' histogram behind Table 6."""
    pages = _ref_pages(trace, lines_per_page)
    uniq, counts = np.unique(pages, return_counts=True)
    return dict(zip(uniq.tolist(), counts.tolist()))

def page_reuse_distances(trace: Trace, lines_per_page: int) -> np.ndarray:
    """Stack (LRU) reuse distances at page granularity.

    Distance = number of *distinct* pages touched between consecutive
    references to the same page; first touches are excluded.  The
    distribution against the page-cache size predicts S-COMA hit rates:
    mass below the cache size is capturable locality.
    """
    pages = _ref_pages(trace, lines_per_page)
    distances = []
    stack: list[int] = []  # LRU order, most recent last
    seen: set[int] = set()
    for page in pages.tolist():
        if page in seen:
            idx = stack.index(page)
            distances.append(len(stack) - 1 - idx)
            stack.pop(idx)
        else:
            seen.add(page)
        stack.append(page)
    return np.array(distances, dtype=np.int64)


def working_set_curve(trace: Trace, lines_per_page: int,
                      n_windows: int = 20) -> list[tuple[int, int]]:
    """Distinct pages touched per window of the reference stream.

    A flat curve means a stable working set (em3d); a curve whose
    windows touch disjoint sets means phases (lu).
    """
    pages = _ref_pages(trace, lines_per_page)
    if len(pages) == 0:
        return []
    bounds = np.linspace(0, len(pages), n_windows + 1, dtype=int)
    return [(int(hi), int(np.unique(pages[lo:hi]).size))
            for lo, hi in zip(bounds[:-1], bounds[1:]) if hi > lo]


def sharing_profile(workload: WorkloadTraces,
                    lines_per_page: int) -> dict[int, int]:
    """Histogram: number of pages touched by exactly k nodes.

    Pages with one toucher are private; pages with two are
    producer/consumer (migration candidates); higher counts are widely
    shared (S-COMA's domain).
    """
    touchers: dict[int, int] = {}
    for trace in workload.traces:
        for page in trace.pages_touched(lines_per_page):
            touchers[page] = touchers.get(page, 0) + 1
    histogram: dict[int, int] = {}
    for count in touchers.values():
        histogram[count] = histogram.get(count, 0) + 1
    return dict(sorted(histogram.items()))


def node_summary(workload: WorkloadTraces, node: int,
                 lines_per_page: int) -> dict:
    """Per-node characterisation used by the analysis example."""
    trace = workload.traces[node]
    h = workload.home_pages_per_node
    counts = page_reference_counts(trace, lines_per_page)
    remote = {p: c for p, c in counts.items()
              if not node * h <= p < (node + 1) * h}
    distances = page_reuse_distances(trace, lines_per_page)
    return {
        "node": node,
        "shared_refs": trace.shared_refs(),
        "pages_touched": len(counts),
        "remote_pages": len(remote),
        "remote_refs": sum(remote.values()),
        "hottest_remote_refs": max(remote.values()) if remote else 0,
        "median_reuse_distance": float(np.median(distances)) if len(distances)
                                 else 0.0,
        "p90_reuse_distance": float(np.percentile(distances, 90))
                              if len(distances) else 0.0,
    }


def analyze(workload: WorkloadTraces, lines_per_page: int = 128) -> dict:
    """Full workload characterisation."""
    summaries = [node_summary(workload, node, lines_per_page)
                 for node in range(workload.n_nodes)]
    worst = max(summaries, key=lambda s: s["remote_pages"])
    h = workload.home_pages_per_node
    return {
        "name": workload.name,
        "n_nodes": workload.n_nodes,
        "home_pages_per_node": h,
        "max_remote_pages": worst["remote_pages"],
        "ideal_pressure": h / (h + worst["remote_pages"])
                          if worst["remote_pages"] else 1.0,
        "sharing": sharing_profile(workload, lines_per_page),
        "nodes": summaries,
    }
