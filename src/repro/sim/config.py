"""System configuration (paper Tables 3 and 4, Section 4.1).

One :class:`SystemConfig` fully describes the simulated machine apart
from the architecture policy and the workload.  Defaults reproduce the
paper's setup:

* 8 nodes (lu runs on 4), 120 MHz processors and Runway-class bus;
* 8 KiB direct-mapped L1, 32-byte lines, 1-cycle hit;
* 128-byte DSM chunks; a 128-byte (single-chunk) RAC at 36 cycles;
* 4-bank local memory at 50 cycles;
* 4x4 switch network, 2-cycle propagation, 4-cycle fall-through, giving
  a remote:local latency ratio of ~3.6 once DSM controller processing
  is included;
* 4 KiB pages, free_min/free_target at 0.5%/2% of node memory
  (scaled with the workloads -- see DESIGN.md Calibration notes).

Where the source text's digits are unreadable, the chosen defaults are
documented in DESIGN.md.  Everything is a plain field so benches can
sweep any parameter.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..kernel.costs import KernelCosts
from ..mem.address import AddressMap

__all__ = ["SystemConfig"]


@dataclass(frozen=True)
class SystemConfig:
    """Machine parameters shared by every architecture."""

    n_nodes: int = 8
    clock_mhz: int = 120

    # -- processor cache ------------------------------------------------
    l1_size_bytes: int = 8192
    line_bytes: int = 32
    l1_hit_cycles: int = 1
    #: L1 associativity.  The paper models a direct-mapped cache (1);
    #: higher values power the conflict-miss sensitivity study.
    l1_ways: int = 1

    # -- DSM engine -----------------------------------------------------
    chunk_bytes: int = 128
    rac_entries: int = 1
    rac_hit_cycles: int = 36
    #: RAC fill policy.  "fetch" (the paper's machine): a remote fetch
    #: deposits the whole chunk in the RAC, so streaming accesses hit it
    #: (fft's friend).  "victim" (VC-NUMA's actual hardware, which the
    #: paper could not evaluate in isolation): the RAC fills from L1
    #: *evictions* of remote lines instead, catching conflict victims.
    rac_fill_policy: str = "fetch"
    #: DSM controller processing per network message endpoint (request
    #: issue / response handling).  Sized so the contention-free remote
    #: fetch is ~180 cycles = 3.6x local (see DESIGN.md).
    dsm_processing_cycles: int = 59
    #: Coherence protocol family: "msi" (the paper's write-invalidate
    #: protocol) or "mesi" (adds the Exclusive state: an only-reader can
    #: write without an upgrade transaction).
    protocol: str = "msi"
    #: Memory consistency model: "sc" (the paper's sequentially
    #: consistent machine: writers stall for the slowest invalidation
    #: acknowledgement) or "rc" (release consistency: invalidations
    #: overlap with execution and only synchronisation orders them).
    consistency: str = "sc"

    # -- local memory -----------------------------------------------------
    dram_banks: int = 4
    local_memory_cycles: int = 50
    dram_occupancy_cycles: int = 20

    # -- bus / network ----------------------------------------------------
    bus_occupancy_cycles: int = 4
    net_propagation_cycles: int = 2
    net_fall_through_cycles: int = 4
    net_port_occupancy_cycles: int = 8
    switch_radix: int = 4

    # -- VM ---------------------------------------------------------------
    page_bytes: int = 4096
    tlb_entries: int = 128
    #: Home-page placement: the paper's balanced "first-touch", or
    #: the locality-blind "round-robin" / "random" baselines.
    home_placement: str = "first-touch"
    free_min_frac: float = 0.005
    free_target_frac: float = 0.02
    #: Cycles between pageout-daemon invocations.  Must sit *above* the
    #: typical hot-page reuse distance (one application sweep), or the
    #: second-chance scan sees every page as cold between touches and
    #: reclaims hot pages -- the classic clock-rate pitfall.
    daemon_base_interval: int = 400_000
    kernel: KernelCosts = field(default_factory=KernelCosts)

    # -- run --------------------------------------------------------------
    #: Fraction of each node's memory pinned by home pages (Section 2.3).
    memory_pressure: float = 0.5
    #: Enable network/bus/bank contention modelling (paper models input
    #: port contention only; we model all three, each switchable).
    model_contention: bool = True

    # -- debug -------------------------------------------------------------
    #: Deliberate protocol-bug injection for the invariant checker
    #: (:mod:`repro.check`): invalidations destined for this node are
    #: silently dropped, leaving stale copies the directory cannot
    #: reach.  -1 (the default) disables the bug.
    debug_skip_invalidate_node: int = -1

    def __post_init__(self) -> None:
        if self.n_nodes <= 0:
            raise ValueError("n_nodes must be positive")
        if not 0 < self.memory_pressure <= 1:
            raise ValueError("memory_pressure must be in (0, 1]")
        if self.l1_hit_cycles <= 0 or self.rac_hit_cycles <= 0:
            raise ValueError("hit latencies must be positive")
        if self.l1_ways <= 0:
            raise ValueError("l1_ways must be positive")
        if self.protocol not in ("msi", "mesi"):
            raise ValueError('protocol must be "msi" or "mesi"')
        if self.rac_fill_policy not in ("fetch", "victim"):
            raise ValueError('rac_fill_policy must be "fetch" or "victim"')
        if self.consistency not in ("sc", "rc"):
            raise ValueError('consistency must be "sc" or "rc"')
        if self.rac_hit_cycles >= self.remote_min_cycles():
            raise ValueError("RAC hit must be cheaper than a remote fetch")

    # -- derived ----------------------------------------------------------
    def address_map(self) -> AddressMap:
        return AddressMap(page_bytes=self.page_bytes,
                          line_bytes=self.line_bytes,
                          chunk_bytes=self.chunk_bytes)

    def remote_min_cycles(self, hops: int = 1) -> int:
        """Contention-free remote fetch latency (Table 4's 'Remote Memory')."""
        one_way = self.net_propagation_cycles * hops + self.net_fall_through_cycles
        return (2 * self.dsm_processing_cycles + 2 * one_way
                + self.local_memory_cycles)

    def remote_to_local_ratio(self) -> float:
        """Paper reports ~3.6 for their machine."""
        return self.remote_min_cycles() / self.local_memory_cycles

    def cache_frames(self, home_pages_per_node: int) -> int:
        """Page-cache frames per node at this memory pressure.

        Memory pressure p means home pages pin a fraction p of the
        node's memory; the rest, ``H * (1-p)/p`` frames, is available to
        cache remote pages (Section 2.3).
        """
        if home_pages_per_node < 0:
            raise ValueError("home_pages_per_node must be non-negative")
        p = self.memory_pressure
        return int(round(home_pages_per_node * (1 - p) / p))

    def total_frames(self, home_pages_per_node: int) -> int:
        return home_pages_per_node + self.cache_frames(home_pages_per_node)

    def at_pressure(self, pressure: float) -> "SystemConfig":
        """Copy of this config at a different memory pressure."""
        return replace(self, memory_pressure=pressure)

    def with_nodes(self, n_nodes: int) -> "SystemConfig":
        return replace(self, n_nodes=n_nodes)

    def describe(self) -> dict:
        """Table 3-style characteristics dump."""
        return {
            "L1 Cache": f"{self.l1_size_bytes // 1024} KiB, {self.line_bytes}-byte"
                        f" lines, "
                        + ("direct-mapped"
                           if self.l1_ways == 1 else f"{self.l1_ways}-way")
                        + f", {self.l1_hit_cycles}-cycle hit",
            "RAC": f"{self.rac_entries * self.chunk_bytes}-byte,"
                   f" {self.chunk_bytes}-byte lines, direct-mapped,"
                   f" {self.rac_hit_cycles}-cycle hit",
            "Network": f"{self.net_propagation_cycles}-cycle propagation,"
                       f" {self.switch_radix}x{self.switch_radix} switch,"
                       f" fall-through {self.net_fall_through_cycles} cycles,"
                       " input port contention modelled",
            "Memory": f"{self.dram_banks}-bank, {self.local_memory_cycles}-cycle"
                      " local access",
            "Remote:local ratio": f"{self.remote_to_local_ratio():.2f}",
            "Page size": f"{self.page_bytes} bytes",
            "Clock": f"{self.clock_mhz} MHz",
        }
