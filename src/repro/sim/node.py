"""Per-node model: caches + VM state + page-management operations.

A :class:`Node` owns one processor's L1, RAC, TLB/reference bits, page
table, free pool, pageout daemon and policy state, plus references to
the machine-wide directory and cost model.  All page-management
operations (S-COMA mapping, eviction, relocation) live here so that
their three side-effect families always happen together:

1. cache state: flush L1 lines / RAC chunks / S-COMA valid bits;
2. directory state: drop the node from the page's copysets (making
   future accesses *induced cold misses*) and reset refetch evidence;
3. accounting: cycle charges to K-BASE/K-OVERHD and event counters.
"""

from __future__ import annotations

from ..coherence.directory import Directory
from ..core.policy import ArchitecturePolicy, PolicyNodeState
from ..kernel.costs import KernelCosts
from ..kernel.freelist import FreePagePool
from ..kernel.pageout import PageoutDaemon
from ..kernel.vm import PageMode, PageTable
from ..mem.address import AddressMap
from ..mem.cache import DirectMappedCache
from ..mem.setassoc import SetAssociativeCache
from ..mem.dram import BankedMemory
from ..mem.rac import RemoteAccessCache
from ..mem.tlb import TLB
from .config import SystemConfig
from .events import (EV_DAEMON, EV_DEMOTE, EV_EVICT, EV_FLUSH,
                     EV_INVALIDATE, EV_MAP_SCOMA, EV_RELOCATE, EventBus)
from .stats import NodeStats

__all__ = ["Node"]


class Node:
    """One node of the simulated machine."""

    def __init__(self, node_id: int, config: SystemConfig, amap: AddressMap,
                 directory: Directory, policy: ArchitecturePolicy,
                 cache_frames: int, total_frames: int,
                 events: EventBus | None = None) -> None:
        self.id = node_id
        #: Machine-shared rare-event bus (see repro.sim.events).
        self.events = events if events is not None else EventBus()
        self.config = config
        self.amap = amap
        self.directory = directory
        self.policy = policy
        self.costs: KernelCosts = config.kernel

        if config.l1_ways == 1:
            self.l1 = DirectMappedCache(config.l1_size_bytes,
                                        config.line_bytes, amap)
        else:
            self.l1 = SetAssociativeCache(config.l1_size_bytes,
                                          config.line_bytes,
                                          config.l1_ways, amap)
        self.rac = RemoteAccessCache(config.rac_entries)
        #: Victim-mode RACs hold 32-byte L1 victim *lines*; fetch-mode
        #: RACs hold whole 128-byte chunks (see SystemConfig).
        self.rac_victim = config.rac_fill_policy == "victim"
        self.tlb = TLB(config.tlb_entries)
        self.memory = BankedMemory(config.dram_banks, config.local_memory_cycles,
                                   config.dram_occupancy_cycles,
                                   max_queue_occupancies=(
                                       8 if config.model_contention else 0))
        self.page_table = PageTable(amap.chunks_per_page)
        self.pool = FreePagePool(cache_frames, total_frames,
                                 config.free_min_frac, config.free_target_frac)
        self.policy_state: PolicyNodeState = policy.make_node_state()
        self.stats = NodeStats()

        #: chunks this node holds in Modified state (write permission).
        self.owned: set[int] = set()
        #: chunks this node has ever fetched remotely (induced-cold stats).
        self.ever_fetched: set[int] = set()
        #: page -> misses satisfied from the page cache since mapping
        #: (VC-NUMA's break-even input).
        self.pagecache_hits: dict[int, int] = {}

        self.daemon = PageoutDaemon(
            self.page_table, self.pool, self.costs,
            reference_bit=self.tlb.reference_bit,
            clear_reference_bit=self.tlb.clear_reference_bit,
            evict=self._daemon_evict,
            base_interval=config.daemon_base_interval,
        )
        self._daemon_evict_count = 0

    # ------------------------------------------------------------------
    # Chunk-level coherence side effects (machine wires these in).
    # ------------------------------------------------------------------
    def invalidate_chunk(self, chunk: int, now: int | None = None) -> None:
        """Destroy this node's copy of *chunk* (remote write).

        *now* is the protocol-time of the invalidation.  It stamps the
        event-bus clock only for kind-filtered subscribers: unfiltered
        observers keep seeing the ambient clock the engine stamps at
        rare-event entry points (the checker corpus pins those event
        streams), while filtered telemetry -- and the vector kernel's
        event-ring replay, which must be clock-identical to this path
        -- gets the precise transition time.
        """
        amap = self.amap
        for line in amap.lines_of_chunk(chunk):
            self.l1.invalidate_line(line)
        if self.rac_victim:
            for line in amap.lines_of_chunk(chunk):
                self.rac.invalidate_chunk(line)
        else:
            self.rac.invalidate_chunk(chunk)
        self.owned.discard(chunk)
        page = amap.page_of_chunk(chunk)
        if self.page_table.mode_of(page) == PageMode.SCOMA:
            self.page_table.clear_chunk_valid(page, chunk % amap.chunks_per_page)
        events = self.events
        if events.watching(EV_INVALIDATE):
            if now is not None and EV_INVALIDATE in events.kind_observers:
                events.clock = now
            events.publish(EV_INVALIDATE, self.id, page, chunk=chunk)

    def demote_chunk(self, chunk: int, now: int | None = None) -> None:
        """Lose write permission (a remote reader demoted our M copy)."""
        self.owned.discard(chunk)
        events = self.events
        if events.watching(EV_DEMOTE):
            if now is not None and EV_DEMOTE in events.kind_observers:
                events.clock = now
            events.publish(EV_DEMOTE, self.id,
                           self.amap.page_of_chunk(chunk), chunk=chunk)

    # ------------------------------------------------------------------
    # Page-management operations.
    # ------------------------------------------------------------------
    def flush_page(self, page: int) -> int:
        """Flush a page from all local caching structures.

        Returns the number of L1 lines flushed (the kernel flush cost is
        proportional to it).  Also drops the node from the page's chunk
        copysets, so subsequent accesses become induced cold misses.
        """
        flushed = self.l1.flush_page(page)
        self.rac.flush_page(page, self.amap.lines_per_page if self.rac_victim
                            else self.amap.chunks_per_page)
        first = self.amap.first_chunk_of_page(page)
        discard_range = getattr(self.owned, "discard_range", None)
        if discard_range is not None:
            discard_range(first, first + self.amap.chunks_per_page)
        else:
            for chunk in range(first, first + self.amap.chunks_per_page):
                self.owned.discard(chunk)
        self.directory.drop_node_from_page(self.id, page)
        self.stats.lines_flushed += flushed
        if self.events.observers:
            self.events.publish(EV_FLUSH, self.id, page, flushed=flushed)
        return flushed

    def map_scoma(self, page: int) -> None:
        """Install *page* into the page cache (frame already allocated)."""
        self.page_table.map_scoma(page)
        self.pagecache_hits[page] = 0
        if hasattr(self.policy_state, "cached_pages"):
            self.policy_state.cached_pages = self.page_table.scoma_page_count()
        if self.events.observers:
            self.events.publish(EV_MAP_SCOMA, self.id, page)

    def evict_scoma_page(self, page: int, forced: bool) -> int:
        """Evict *page* from the page cache; returns K-OVERHD cycles.

        Hybrids downgrade the page to CC-NUMA mode; pure S-COMA unmaps
        it entirely.  The frame returns to the free pool.
        """
        flushed = self.flush_page(page)
        self.page_table.unmap_scoma(page, to_ccnuma=self.policy.evict_to_ccnuma)
        self.tlb.shootdown(page)
        self.pool.release()
        self.directory.reset_refetch(page, self.id)
        hits = self.pagecache_hits.pop(page, 0)
        self.policy.on_page_evicted(self.policy_state, page, hits)
        if hasattr(self.policy_state, "cached_pages"):
            self.policy_state.cached_pages = self.page_table.scoma_page_count()
        self.stats.evictions += 1
        if forced:
            self.stats.forced_evictions += 1
        if self.events.observers:
            self.events.publish(EV_EVICT, self.id, page, forced=forced,
                                flushed=flushed)
        return self.costs.eviction_cost(flushed)

    def relocate_to_scoma(self, page: int) -> int:
        """Upgrade a CC-NUMA page to S-COMA mode (frame already allocated).

        Returns the K-OVERHD cycle charge: relocation interrupt + flush
        of the page's cached lines + remap.
        """
        flushed = self.flush_page(page)
        self.tlb.shootdown(page)
        self.map_scoma(page)
        self.directory.reset_refetch(page, self.id)
        self.policy_state.relocations += 1
        self.stats.relocations += 1
        if self.events.observers:
            self.events.publish(EV_RELOCATE, self.id, page, flushed=flushed)
        return self.costs.relocation_cost(flushed)

    def choose_victim(self) -> int:
        """Second-chance victim selection for a forced eviction.

        Rotates past referenced pages (clearing their bits) up to one
        full revolution; if everything is referenced -- the all-hot case
        the paper's thrashing discussion centres on -- the front page is
        evicted anyway.
        """
        clock = self.page_table.scoma_clock
        if not clock:
            raise RuntimeError(f"node {self.id}: no S-COMA page to evict")
        for _ in range(len(clock)):
            page = clock[0]
            if self.tlb.reference_bit(page):
                self.tlb.clear_reference_bit(page)
                clock.rotate(-1)
            else:
                return page
        return clock[0]

    def _daemon_evict(self, page: int) -> None:
        """Eviction callback used by the pageout daemon's scan."""
        cost = self.evict_scoma_page(page, forced=False)
        # The daemon's per-run dispatch/scan cost is charged by the
        # caller; the eviction work itself is charged here.
        self.stats.K_OVERHD += cost
        self._daemon_evict_count += 1

    # ------------------------------------------------------------------
    def run_daemon_if_due(self, now: int) -> None:
        """Invoke the pageout daemon when the pool is low (rate-limited)."""
        if self.daemon.due(now):
            events = self.events
            watched = events.watching(EV_DAEMON)
            if watched:
                events.clock = now
            result = self.daemon.run(now)
            self.stats.K_OVERHD += result.cost
            self.stats.daemon_runs += 1
            if result.thrashing:
                self.stats.daemon_thrash += 1
            self.policy.on_daemon_result(self.policy_state, result, self.daemon)
            if watched:
                # Published after on_daemon_result, so threshold/interval
                # carry the *post-backoff* state of the adaptive machinery.
                threshold = self.policy_state.effective_threshold()
                events.publish(
                    EV_DAEMON, self.id, -1,
                    reclaimed=result.reclaimed, target=result.target,
                    thrashing=result.thrashing,
                    threshold=threshold,
                    interval=self.daemon.interval,
                    enabled=threshold > 0,
                    free=self.pool.free)

    def acquire_frame(self, now: int) -> bool:
        """Try to get a free frame, running the daemon first if it is due."""
        self.run_daemon_if_due(now)
        return self.pool.try_allocate()
