"""Split-transaction coherent memory bus model.

Each node's processor, memory controller and DSM controller share a
coherent split-transaction bus (the paper's machines use HP's Runway
bus, clocked with the 120 MHz CPU).  Because the bus is split
transaction, a memory access occupies it for a short
address/arbitration phase and, later, a data phase; we charge a single
combined occupancy per transaction and model queueing with a
busy-until timestamp like the other resources.

Bus time is already folded into the Table 4 minimum latencies (L1 miss
service cannot be faster than the bus transaction), so the default
per-transaction *additional* cost is zero and only contention shows up.
"""

from __future__ import annotations

__all__ = ["SplitTransactionBus"]


class SplitTransactionBus:
    """Per-node coherent bus with busy-until contention accounting."""

    __slots__ = ("occupancy", "fixed_cost", "max_queue", "busy_until",
                 "transactions", "contended", "total_queue_cycles")

    def __init__(self, occupancy: int = 4, fixed_cost: int = 0,
                 max_queue_occupancies: int = 8) -> None:
        if occupancy < 0 or fixed_cost < 0:
            raise ValueError("bus parameters must be non-negative")
        self.occupancy = occupancy
        self.fixed_cost = fixed_cost
        #: Queue-estimate bound (see BankedMemory: clock-skew guard).
        self.max_queue = max_queue_occupancies * occupancy
        self.busy_until = 0
        self.transactions = 0
        self.contended = 0
        self.total_queue_cycles = 0

    def transact(self, now: int) -> int:
        """Run one bus transaction at *now*; returns added latency."""
        queue = self.busy_until - now if self.busy_until > now else 0
        if queue > self.max_queue:
            queue = self.max_queue
        self.busy_until = now + queue + self.occupancy
        self.transactions += 1
        if queue:
            self.contended += 1
            self.total_queue_cycles += queue
        return self.fixed_cost + queue

    def utilisation_stats(self) -> dict:
        return {
            "transactions": self.transactions,
            "contended": self.contended,
            "total_queue_cycles": self.total_queue_cycles,
        }
