"""Interconnect topologies: hop counts between nodes.

The paper's machine uses a 4x4-switch network whose latency is a
propagation delay per switch plus a fall-through delay, with only input
port contention modelled (Table 3).  For the 8-node (and 4-node lu)
configurations studied, every pair of distinct nodes is a small constant
number of switch traversals apart; we provide the paper's flat switch as
the default plus mesh and ring alternatives for sensitivity studies.
"""

from __future__ import annotations

import math

__all__ = ["Topology", "SwitchTopology", "RingTopology", "MeshTopology"]


class Topology:
    """Hop-count interface."""

    def __init__(self, n_nodes: int) -> None:
        if n_nodes <= 0:
            raise ValueError("need at least one node")
        self.n_nodes = n_nodes

    def hops(self, src: int, dst: int) -> int:
        raise NotImplementedError

    def _check(self, src: int, dst: int) -> None:
        if not (0 <= src < self.n_nodes and 0 <= dst < self.n_nodes):
            raise ValueError(f"node out of range: {src} -> {dst} (n={self.n_nodes})")


class SwitchTopology(Topology):
    """Multistage network of `radix`-way switches (the paper's 4x4 switch).

    Nodes sharing a first-level switch are one switch apart; otherwise
    the message climbs ceil(log_radix n) stages.  For n <= radix this is
    a single crossbar: every remote pair is 1 hop.
    """

    def __init__(self, n_nodes: int, radix: int = 4) -> None:
        super().__init__(n_nodes)
        if radix < 2:
            raise ValueError("switch radix must be >= 2")
        self.radix = radix
        self.stages = max(1, math.ceil(math.log(max(n_nodes, 2), radix)))

    def hops(self, src: int, dst: int) -> int:
        self._check(src, dst)
        if src == dst:
            return 0
        if src // self.radix == dst // self.radix:
            return 1
        return self.stages


class RingTopology(Topology):
    """Bidirectional ring (shortest way round)."""

    def hops(self, src: int, dst: int) -> int:
        self._check(src, dst)
        d = abs(src - dst)
        return min(d, self.n_nodes - d)


class MeshTopology(Topology):
    """2-D mesh with near-square shape, Manhattan routing."""

    def __init__(self, n_nodes: int) -> None:
        super().__init__(n_nodes)
        self.width = max(1, int(math.isqrt(n_nodes)))
        while n_nodes % self.width:
            self.width -= 1
        self.height = n_nodes // self.width

    def hops(self, src: int, dst: int) -> int:
        self._check(src, dst)
        sx, sy = src % self.width, src // self.width
        dx, dy = dst % self.width, dst // self.width
        return abs(sx - dx) + abs(sy - dy)
