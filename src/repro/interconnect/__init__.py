"""Interconnect substrates: topology, network latency/contention, coherent bus."""

from .bus import SplitTransactionBus
from .network import Network
from .topology import MeshTopology, RingTopology, SwitchTopology, Topology

__all__ = [
    "MeshTopology",
    "Network",
    "RingTopology",
    "SplitTransactionBus",
    "SwitchTopology",
    "Topology",
]
