"""Network latency and input-port contention model.

Paper, Table 3: "2 cycle propagation, 4x4 switch topology, port
contention (only) modelled.  Fall through delay: 4 cycles", and the
resulting remote:local access latency ratio is about 3.6:1.

A one-way traversal costs::

    propagation * hops + fall_through

Contention: each message occupies the *destination's input port* for
``port_occupancy`` cycles.  A message arriving while the port is busy
queues; the queueing delay is added to its latency.  This is exactly the
"input port contention (only)" the paper models, and it is what makes
average remote latency exceed the Table 4 minimum as remote traffic
grows.
"""

from __future__ import annotations

from .topology import SwitchTopology, Topology

__all__ = ["Network"]


class Network:
    """Point-to-point message latency with per-node input-port queues."""

    __slots__ = ("topology", "propagation", "fall_through", "port_occupancy",
                 "max_queue", "port_busy_until", "messages",
                 "contended_messages", "total_queue_cycles", "_base")

    def __init__(self, topology: Topology | None = None, n_nodes: int = 8,
                 propagation: int = 2, fall_through: int = 4,
                 port_occupancy: int = 8,
                 max_queue_occupancies: int = 8) -> None:
        self.topology = topology or SwitchTopology(n_nodes)
        if propagation < 0 or fall_through < 0 or port_occupancy < 0:
            raise ValueError("latency parameters must be non-negative")
        self.propagation = propagation
        self.fall_through = fall_through
        self.port_occupancy = port_occupancy
        # Bound per-message queueing to a few port slots: message
        # timestamps come from loosely-synchronised node clocks, and an
        # unbounded busy_until comparison would book clock skew as
        # contention (see BankedMemory for the same reasoning).
        self.max_queue = max_queue_occupancies * port_occupancy
        self.port_busy_until = [0] * self.topology.n_nodes
        self.messages = 0
        self.contended_messages = 0
        self.total_queue_cycles = 0
        # Hop counts are a pure function of the (immutable) topology, so
        # the contention-free one-way cost is precomputed per node pair.
        # One hops() call at construction replaces one per message.
        n = self.topology.n_nodes
        self._base = [
            [0 if s == d else propagation * self.topology.hops(s, d) + fall_through
             for d in range(n)]
            for s in range(n)
        ]

    # ------------------------------------------------------------------
    def one_way(self, src: int, dst: int, now: int) -> int:
        """Latency of one message from *src* to *dst* departing at *now*."""
        if src == dst:
            return 0
        base = self._base[src][dst]
        arrival = now + base
        busy = self.port_busy_until[dst]
        queue = busy - arrival if busy > arrival else 0
        if queue > self.max_queue:
            queue = self.max_queue
        self.port_busy_until[dst] = arrival + queue + self.port_occupancy
        self.messages += 1
        if queue:
            self.contended_messages += 1
            self.total_queue_cycles += queue
        return base + queue

    def round_trip(self, src: int, dst: int, now: int) -> int:
        """Request + response latency (no remote service time included)."""
        out = self.one_way(src, dst, now)
        back = self.one_way(dst, src, now + out)
        return out + back

    def min_one_way(self, src: int, dst: int) -> int:
        """Contention-free one-way latency (for Table 4)."""
        return self._base[src][dst]

    def utilisation_stats(self) -> dict:
        return {
            "messages": self.messages,
            "contended_messages": self.contended_messages,
            "total_queue_cycles": self.total_queue_cycles,
        }
