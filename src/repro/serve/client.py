"""Thin synchronous client for the ``repro.serve`` job server.

One blocking socket, line-delimited JSON frames (see
:mod:`repro.serve.protocol`).  The client is deliberately minimal — no
threads, no retries, no reconnection magic — because the CLI and the
test harness both want *observable* behaviour: a request is written,
frames are read until the matching response arrives, and any ``"ev"``
frames seen on the way are handed to the caller's ``on_event``
callback in arrival order.

    from repro.serve import ServeClient
    with ServeClient("results/serve.sock") as client:
        job = client.submit([spec], wait=True)
        outcomes = client.outcomes(job["id"])

``outcomes`` rebuilds real :class:`~repro.sim.stats.RunResult` /
:class:`~repro.runtime.spec.RunFailure` objects, so code downstream of
a server round-trip is identical to code downstream of
:func:`repro.runtime.execute`.
"""

from __future__ import annotations

import socket

from ..runtime import RunFailure, RunSpec
from ..sim.stats import RunResult
from .protocol import decode_frame, encode_frame

__all__ = ["ServeError", "ServeClient", "server_available"]


class ServeError(ValueError):
    """An ``ok: false`` response; ``code`` is the protocol error code.

    A :class:`ValueError` so the CLI's error handling reports it as a
    one-line ``error: ...`` instead of a traceback.
    """

    def __init__(self, code: str, message: str) -> None:
        super().__init__(message)
        self.code = code


class ServeClient:
    """Blocking client for one server connection."""

    def __init__(self, socket_path: str | None = None, *,
                 host: str | None = None, port: int | None = None,
                 timeout: float | None = 300.0) -> None:
        if host is not None and port is None:
            raise ValueError("a TCP client needs both host and port")
        self.socket_path = socket_path
        self.host, self.port = host, port
        self.timeout = timeout
        self._sock: socket.socket | None = None
        self._file = None

    # -- connection ------------------------------------------------------
    def connect(self) -> "ServeClient":
        if self._sock is not None:
            return self
        if self.host is not None:
            sock = socket.create_connection((self.host, self.port),
                                            timeout=self.timeout)
        else:
            if not self.socket_path:
                from .server import default_socket_path
                self.socket_path = default_socket_path()
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(self.timeout)
            sock.connect(str(self.socket_path))
        self._sock = sock
        self._file = sock.makefile("rb")
        return self

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None
        if self._sock is not None:
            self._sock.close()
            self._sock = None

    def __enter__(self) -> "ServeClient":
        return self.connect()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- request/response ------------------------------------------------
    def request(self, frame: dict, on_event=None) -> dict:
        """Send one frame; return its response, raising on ``ok: false``.

        Event frames arriving before the response go to *on_event*
        (ignored when None).  EOF before a response means the server
        went away mid-request.
        """
        self.connect()
        self._sock.sendall(encode_frame(frame))
        while True:
            line = self._file.readline()
            if not line:
                raise ConnectionError("server closed the connection"
                                      " before responding")
            received = decode_frame(line)
            if "ev" in received:
                if on_event is not None:
                    on_event(received)
                continue
            if not received.get("ok", False):
                raise ServeError(received.get("code", "error"),
                                 received.get("error", "request failed"))
            return received

    # -- ops -------------------------------------------------------------
    def ping(self) -> dict:
        return self.request({"op": "ping"})["server"]

    def submit(self, specs, *, wait: bool = False, stream: bool = False,
               retries: int = 0, on_event=None) -> dict:
        """Submit specs (RunSpec values or dicts); returns the job dict."""
        raw = []
        for spec in ([specs] if isinstance(specs, (RunSpec, dict))
                     else list(specs)):
            raw.append(spec.to_dict() if isinstance(spec, RunSpec)
                       else dict(spec))
        frame = {"op": "submit", "specs": raw, "wait": wait,
                 "stream": stream, "retries": retries}
        return self.request(frame, on_event=on_event)["job"]

    def status(self, job_id: str) -> dict:
        return self.request({"op": "status", "job": job_id})["job"]

    def watch(self, job_id: str, on_event=None) -> dict:
        """Stream a live job's events until terminal; returns the job."""
        return self.request({"op": "watch", "job": job_id},
                            on_event=on_event)["job"]

    def result(self, job_id: str) -> dict:
        """The raw ``result`` response (job dict + per-cell payloads)."""
        return self.request({"op": "result", "job": job_id})

    def outcomes(self, job_id: str) -> dict:
        """``{RunSpec: RunResult | RunFailure}`` for a terminal job.

        The exact shape :func:`repro.runtime.execute` returns, so
        server-routed and in-process sweeps share downstream code.
        """
        response = self.result(job_id)
        outcomes: dict = {}
        for entry in response["results"]:
            spec = RunSpec.from_dict(entry["spec"])
            if "failure" in entry:
                failure = entry["failure"]
                outcomes[spec] = RunFailure(spec, failure["error"],
                                            failure.get("traceback", ""))
            elif "result" in entry:
                outcomes[spec] = RunResult.from_dict(entry["result"])
        return outcomes

    def cancel(self, job_id: str) -> dict:
        return self.request({"op": "cancel", "job": job_id})["job"]

    def jobs(self) -> list[dict]:
        return self.request({"op": "jobs"})["jobs"]

    def shutdown(self) -> bool:
        return self.request({"op": "shutdown"}).get("bye", False)


def server_available(socket_path: str | None = None, *,
                     host: str | None = None, port: int | None = None,
                     timeout: float = 2.0) -> bool:
    """True when a server answers a ping at the given address."""
    try:
        with ServeClient(socket_path, host=host, port=port,
                         timeout=timeout) as client:
            client.ping()
        return True
    except (OSError, ServeError, ValueError):
        return False
