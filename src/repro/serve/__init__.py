"""Simulation-as-a-service: the persistent async job server.

The runtime layer (PR 1) made every cell a frozen, content-hashed
:class:`~repro.runtime.spec.RunSpec` with a content-addressed result
store; this package puts a long-running service in front of it.  A
:class:`~repro.serve.server.JobServer` keeps the
:class:`~repro.runtime.store.RunStore`, the trace cache and a warm
worker pool resident across jobs, accepts concurrent submissions over
a Unix socket (or TCP) speaking a line-delimited JSON protocol, dedupes
identical in-flight specs across clients, streams per-cell progress and
``repro.obs`` telemetry to subscribers, and bounds its queue with
backpressure.  The CLI (``repro serve`` / ``repro submit`` /
``repro jobs``, plus ``--server`` on ``run``/``matrix``) is one client
among many; :class:`~repro.serve.client.ServeClient` is the library
entry point.  See ``docs/serving.md``.
"""

from .client import ServeClient, ServeError, server_available
from .jobs import TERMINAL_STATES, Job, JobTable
from .protocol import (MAX_FRAME_BYTES, OPS, PROTOCOL_VERSION, ProtocolError,
                       decode_frame, encode_frame, error_frame)
from .server import (DEFAULT_SOCKET, EV_CELL, EV_JOB, EV_OBS,
                     BackpressureError, JobServer, ServerThread,
                     default_socket_path)

__all__ = [
    "DEFAULT_SOCKET",
    "EV_CELL",
    "EV_JOB",
    "EV_OBS",
    "MAX_FRAME_BYTES",
    "OPS",
    "PROTOCOL_VERSION",
    "TERMINAL_STATES",
    "BackpressureError",
    "Job",
    "JobServer",
    "JobTable",
    "ProtocolError",
    "ServeClient",
    "ServeError",
    "ServerThread",
    "decode_frame",
    "default_socket_path",
    "encode_frame",
    "error_frame",
    "server_available",
]
