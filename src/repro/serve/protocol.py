"""Wire protocol of the ``repro.serve`` job server.

Line-delimited JSON: every frame is one JSON object on one ``\\n``-
terminated line, UTF-8 encoded.  The framing is deliberately dumb —
any language (or ``nc``) can speak it — and self-describing:

* **Requests** carry an ``"op"`` field (:data:`OPS`) plus op-specific
  fields; an optional ``"id"`` is echoed back verbatim so clients can
  correlate responses on a shared connection.
* **Responses** carry ``"ok": true|false``.  Exactly one response is
  sent per request (for ``wait``/``stream`` submits it arrives when the
  job reaches a terminal state).  A failed request carries ``"error"``
  (human-readable) and ``"code"`` (machine-readable, :data:`CODES`).
* **Events** carry ``"ev"`` instead of ``"ok"`` — per-cell progress,
  job state changes and ``repro.obs`` telemetry records streamed to a
  subscribed client *between* its request and its response.

Schema details (one table per op) live in ``docs/serving.md``; the
golden request/response frames in ``tests/test_serve.py`` pin the
observable behaviour.
"""

from __future__ import annotations

import json

__all__ = [
    "PROTOCOL_VERSION", "MAX_FRAME_BYTES", "OPS", "CODES",
    "ProtocolError", "encode_frame", "decode_frame", "error_frame",
    "parse_request", "parse_specs",
]

#: Bumped on any incompatible change to frame layout or op semantics.
PROTOCOL_VERSION = 1

#: Read-side line limit: a matrix submit is ~20 KiB, so 8 MiB leaves
#: three orders of magnitude of headroom while still bounding a
#: garbage (or hostile) client's memory impact on the server.
MAX_FRAME_BYTES = 8 * 1024 * 1024

#: Every request op the server understands.
OPS = frozenset({"ping", "submit", "status", "result", "cancel",
                 "watch", "jobs", "shutdown"})

#: Machine-readable error codes carried by ``ok: false`` responses.
CODES = frozenset({"bad-frame", "bad-request", "unknown-op", "bad-spec",
                   "unknown-job", "backpressure", "not-done",
                   "shutting-down"})


class ProtocolError(ValueError):
    """A rejected frame; ``code`` is one of :data:`CODES`."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(message)
        self.code = code


def encode_frame(obj: dict) -> bytes:
    """One frame: compact JSON + newline (the only framing there is)."""
    return (json.dumps(obj, separators=(",", ":"), default=str)
            + "\n").encode("utf-8")


def decode_frame(line: bytes | str) -> dict:
    """Parse one received line; anything but a JSON object is rejected."""
    if isinstance(line, bytes):
        try:
            line = line.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ProtocolError("bad-frame", f"frame is not UTF-8: {exc}")
    try:
        obj = json.loads(line)
    except ValueError as exc:
        raise ProtocolError("bad-frame", f"frame is not JSON: {exc}")
    if not isinstance(obj, dict):
        raise ProtocolError("bad-frame",
                            f"frame must be a JSON object, got"
                            f" {type(obj).__name__}")
    return obj


def error_frame(code: str, message: str, **extra) -> dict:
    """An ``ok: false`` response frame."""
    frame = {"ok": False, "code": code, "error": message}
    frame.update(extra)
    return frame


def parse_request(frame: dict) -> str:
    """Validate the op and op-specific required fields; returns the op.

    Raises :class:`ProtocolError` with ``unknown-op`` / ``bad-request``;
    spec payloads are validated separately by :func:`parse_specs` so the
    error can carry the offending spec.
    """
    op = frame.get("op")
    if not isinstance(op, str) or op not in OPS:
        raise ProtocolError("unknown-op", f"unknown op {op!r};"
                                          f" expected one of {sorted(OPS)}")
    if op in ("status", "result", "cancel", "watch"):
        job = frame.get("job")
        if not isinstance(job, str) or not job:
            raise ProtocolError("bad-request",
                                f"op {op!r} requires a 'job' id string")
    if op == "submit":
        specs = frame.get("specs")
        if not isinstance(specs, list) or not specs:
            raise ProtocolError("bad-request",
                                "op 'submit' requires a non-empty"
                                " 'specs' list")
        for key in ("wait", "stream"):
            if key in frame and not isinstance(frame[key], bool):
                raise ProtocolError("bad-request",
                                    f"submit field {key!r} must be a bool")
        retries = frame.get("retries", 0)
        if not isinstance(retries, int) or retries < 0:
            raise ProtocolError("bad-request",
                                "submit field 'retries' must be a"
                                " non-negative int")
    return op


def parse_specs(raw_specs: list) -> list:
    """Deserialise a submit's spec dicts into :class:`RunSpec` values."""
    from ..runtime import RunSpec

    specs = []
    for i, raw in enumerate(raw_specs):
        if not isinstance(raw, dict):
            raise ProtocolError("bad-spec",
                                f"specs[{i}] must be an object, got"
                                f" {type(raw).__name__}")
        try:
            specs.append(RunSpec.from_dict(raw))
        except (KeyError, TypeError, ValueError) as exc:
            raise ProtocolError("bad-spec",
                                f"specs[{i}] is not a valid RunSpec:"
                                f" {type(exc).__name__}: {exc}")
    return specs
