"""Job bookkeeping for the ``repro.serve`` server.

A :class:`Job` is one submitted batch of :class:`~repro.runtime.spec.RunSpec`
cells moving through ``queued -> running -> done|failed|cancelled``.
Outcomes are collected per spec hash (so duplicate specs inside one
submission collapse, mirroring the executor), and the public dict form
(:meth:`Job.to_dict`) is what every protocol response embeds.

The :class:`JobTable` keeps every live job plus a bounded tail of
terminal ones — a long-running server must not grow its job table
without bound, and a client that never calls ``result`` must not pin
results forever.  Eviction is strictly oldest-terminal-first; live jobs
are never evicted.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..runtime import RunFailure, RunSpec

__all__ = ["TERMINAL_STATES", "Job", "JobTable"]

#: States a job cannot leave.  ``done``: every cell has a result;
#: ``failed``: at least one cell is a RunFailure; ``cancelled``: the
#: client (or server shutdown) gave up on it.
TERMINAL_STATES = frozenset({"done", "failed", "cancelled"})


@dataclass
class Job:
    """One submitted batch of cells and everything known about it."""

    id: str
    specs: list[RunSpec]
    retries: int = 0
    state: str = "queued"
    created: float = field(default_factory=time.time)
    finished: float | None = None
    #: spec_hash -> RunResult | RunFailure, filled as cells complete.
    outcomes: dict = field(default_factory=dict)
    #: per-cell progress tallies (``hit``/``run``/``attach``/``fail``/
    #: ``store-fail``), mirroring the executor's progress events.
    counts: dict = field(default_factory=dict)
    #: the asyncio.Task driving the job; None until started.
    task: object = None
    #: asyncio.Event set exactly once, on entering a terminal state.
    done_event: object = None

    def __post_init__(self) -> None:
        # Duplicate specs inside one submission collapse to one cell,
        # exactly as repro.runtime.execute dedupes its input list.
        unique, seen = [], set()
        for spec in self.specs:
            key = spec.spec_hash()
            if key not in seen:
                seen.add(key)
                unique.append(spec)
        self.specs = unique

    # -- queries ---------------------------------------------------------
    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def bump(self, event: str) -> None:
        self.counts[event] = self.counts.get(event, 0) + 1

    def failures(self) -> list[RunFailure]:
        return [o for o in self.outcomes.values()
                if isinstance(o, RunFailure)]

    def to_dict(self) -> dict:
        """The job as every protocol response embeds it."""
        out = {
            "id": self.id,
            "state": self.state,
            "cells": len(self.specs),
            "completed": len(self.outcomes),
            "failed": len(self.failures()),
            "counts": dict(self.counts),
            "created": round(self.created, 6),
        }
        if self.finished is not None:
            out["wall_s"] = round(self.finished - self.created, 6)
        return out

    def results_payload(self) -> list[dict]:
        """Per-cell outcome frames for the ``result`` op.

        One entry per cell, in submission order; a simulated (or
        cached) cell carries ``"result"``, a failed one ``"failure"``
        with the same error/traceback a local
        :class:`~repro.runtime.spec.RunFailure` would show.
        """
        payload = []
        for spec in self.specs:
            outcome = self.outcomes.get(spec.spec_hash())
            entry: dict = {"spec": spec.to_dict(),
                           "spec_hash": spec.spec_hash()}
            if isinstance(outcome, RunFailure):
                entry["failure"] = {"error": outcome.error,
                                    "traceback": outcome.traceback}
            elif outcome is not None:
                entry["result"] = outcome.to_dict()
            payload.append(entry)
        return payload


class JobTable:
    """Insertion-ordered job registry with bounded terminal retention."""

    def __init__(self, keep_terminal: int = 256) -> None:
        self.keep_terminal = keep_terminal
        self._jobs: dict[str, Job] = {}
        self._counter = 0

    def new_id(self) -> str:
        self._counter += 1
        return f"j{self._counter:06d}"

    def add(self, job: Job) -> None:
        self._jobs[job.id] = job
        self.prune()

    def get(self, job_id: str) -> Job | None:
        return self._jobs.get(job_id)

    def all(self) -> list[Job]:
        return list(self._jobs.values())

    def live(self) -> list[Job]:
        return [j for j in self._jobs.values() if not j.terminal]

    def prune(self) -> int:
        """Evict oldest terminal jobs beyond the retention bound."""
        terminal = [j for j in self._jobs.values() if j.terminal]
        evicted = 0
        for job in terminal[:max(0, len(terminal) - self.keep_terminal)]:
            del self._jobs[job.id]
            evicted += 1
        return evicted

    def __len__(self) -> int:
        return len(self._jobs)
