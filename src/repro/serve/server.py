"""Persistent asyncio job server: simulation as a service.

Every CLI invocation pays interpreter startup, imports, trace
generation/load and pool spin-up before the first ASCOMA cell
simulates.  :class:`JobServer` pays those costs once and then stays
resident: the :class:`~repro.runtime.store.RunStore`, the
:class:`~repro.runtime.tracecache.TraceStore` (plus the per-process
trace memo) and — with the process backend — a warm worker pool all
survive across jobs, so a submit whose cells are cached answers in
about a millisecond where a fresh ``repro run`` pays ~1s of process
startup (``bench_serve_warm`` pins the factor).

Guarantees, mirroring (and built on) :mod:`repro.runtime.executor`:

* **In-flight dedupe across clients** — each unique
  :meth:`~repro.runtime.spec.RunSpec.spec_hash` simulates at most once
  at a time server-wide: the second submitter's job attaches to the
  first's cell task (``attach`` progress event) and both receive the
  one result.  Store hits are served without simulating at all.
* **Fault isolation** — a failing cell becomes a
  :class:`~repro.runtime.spec.RunFailure` in the job's outcomes (job
  state ``failed``), never a dead server.  A killed pool worker breaks
  only the cells in flight on that pool; the pool is rebuilt lazily
  and subsequent submits succeed.
* **Store parity** — results are written through the same
  :meth:`RunStore.put` as in-process runs, in the parent, producing
  byte-identical artifacts; a raising ``put`` keeps the result and
  surfaces the executor's ``store-fail`` tag as a protocol event.
* **Backpressure** — at most ``max_queued`` jobs may be live at once;
  beyond that, submits are rejected with the ``backpressure`` error
  code instead of queueing unboundedly.
* **Streaming** — per-cell progress, job state changes and (with an
  obs recorder attached) ``repro.obs`` telemetry records are published
  on a server-wide :class:`~repro.sim.events.EventBus` under the
  :data:`EV_JOB`/:data:`EV_CELL`/:data:`EV_OBS` kinds; streaming
  clients get a *kind-filtered* subscription that is always
  unsubscribed on completion, cancellation or disconnect, so observer
  lists cannot grow across jobs (``tests/test_serve_stress.py`` pins
  this over 1000 jobs).

Concurrency model: all bookkeeping (job table, in-flight map, store
reads/writes, event publishing) happens on the event-loop thread;
simulations run off-loop — ``backend="process"`` dispatches to a warm
:class:`~concurrent.futures.ProcessPoolExecutor` via the executor's
``_pool_worker`` (same payloads, same telemetry buffering),
``backend="inline"`` runs the same worker function on a thread, which
shares the parent's warm trace memo and is the lowest-latency path for
store-hit-heavy traffic.  Cancelling a job cancels cells no other live
job references; a cell another job attached to keeps running.
"""

from __future__ import annotations

import asyncio
import contextlib
import os
import threading
import time
import traceback
from concurrent.futures import ProcessPoolExecutor

from ..runtime import RunFailure, RunSpec
from ..runtime.executor import _pool_init, _pool_worker
from ..runtime.tracecache import set_default_trace_store
from ..sim.events import EventBus
from ..sim.stats import RunResult
from .jobs import Job, JobTable
from .protocol import (MAX_FRAME_BYTES, ProtocolError, decode_frame,
                       encode_frame, error_frame, parse_request, parse_specs)

__all__ = ["DEFAULT_SOCKET", "EV_JOB", "EV_CELL", "EV_OBS",
           "BackpressureError", "JobServer", "ServerThread",
           "default_socket_path"]

#: Default Unix socket, next to the result/trace/obs stores.
DEFAULT_SOCKET = "results/serve.sock"

#: Server-bus event kinds (all kind-filtered; see module docstring).
EV_JOB = "job"    #: job state change (queued/running/terminal)
EV_CELL = "cell"  #: per-cell progress (hit/attach/run/fail/store-fail)
EV_OBS = "obs"    #: one repro.obs telemetry record


def default_socket_path() -> str:
    """``$REPRO_SERVE_SOCKET`` or ``results/serve.sock``."""
    return os.environ.get("REPRO_SERVE_SOCKET", DEFAULT_SOCKET)


class BackpressureError(RuntimeError):
    """Submit rejected: the bounded job queue is full."""


class JobServer:
    """The resident simulation service (one instance per event loop)."""

    def __init__(self, socket_path: str | None = None, *,
                 host: str | None = None, port: int | None = None,
                 store=None, trace_store=None, obs=None,
                 backend: str = "process", workers: int | None = None,
                 max_queued: int = 32, keep_jobs: int = 256,
                 worker_fn=None) -> None:
        if backend not in ("process", "inline"):
            raise ValueError(f"unknown backend {backend!r}")
        self.socket_path = (None if host is not None
                            else (socket_path or default_socket_path()))
        self.host, self.port = host, port
        self.store = store
        self.trace_store = trace_store
        self.obs = obs
        self.backend = backend
        self.workers = workers or (os.cpu_count() or 2)
        self.max_queued = max_queued
        self.bus = EventBus()
        self.jobs = JobTable(keep_jobs)
        #: spec_hash -> asyncio.Task simulating that cell right now.
        self._inflight: dict[str, asyncio.Task] = {}
        #: spec_hash -> set of live job ids referencing the cell task.
        self._refs: dict[str, set] = {}
        self._pool: ProcessPoolExecutor | None = None
        self._sem: asyncio.Semaphore | None = None
        self._stop: asyncio.Event | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._closing = False
        #: test seam: the blocking per-cell function (defaults to the
        #: executor's _pool_worker, so serve and batch runs share one
        #: simulation body).
        self._worker_fn = worker_fn or _pool_worker
        self._client_tasks: set = set()
        self.stats = {"submitted": 0, "simulated": 0, "hits": 0,
                      "attached": 0, "rejected": 0, "store_failures": 0}

    # ------------------------------------------------------------------
    # core API (socket-independent; the protocol layer and the tests
    # both drive the server through these)
    # ------------------------------------------------------------------
    def submit_job(self, specs: list[RunSpec], *, retries: int = 0) -> Job:
        """Register and start one job; raises on backpressure/shutdown."""
        if self._closing:
            raise BackpressureError("server is shutting down")
        if len(self.jobs.live()) >= self.max_queued:
            self.stats["rejected"] += 1
            raise BackpressureError(
                f"job queue full ({self.max_queued} live jobs);"
                " retry after one completes")
        job = Job(self.jobs.new_id(), list(specs), retries=retries)
        job.done_event = asyncio.Event()
        self.jobs.add(job)
        self.stats["submitted"] += 1
        self._publish_job(job)
        job.task = asyncio.get_running_loop().create_task(
            self._run_job(job), name=f"serve-{job.id}")
        return job

    def get_job(self, job_id: str) -> Job:
        job = self.jobs.get(job_id)
        if job is None:
            raise ProtocolError("unknown-job", f"no such job {job_id!r}"
                                " (terminal jobs are retained for a"
                                " bounded time)")
        return job

    async def cancel_job(self, job_id: str) -> Job:
        """Cancel a live job; cells shared with other jobs keep running."""
        job = self.get_job(job_id)
        if job.terminal:
            return job
        for spec in job.specs:
            self._drop_ref(spec.spec_hash(), job.id)
        if job.task is not None and not job.task.done():
            job.task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await job.task
        if not job.terminal:
            # Cancelled before the job task's first step ever ran:
            # _run_job's finally never executed, so finalise here or
            # the job would sit in "queued" forever with watchers hung.
            job.state = "cancelled"
            job.finished = time.time()
            self._publish_job(job)
            job.done_event.set()
            self.jobs.prune()
        return job

    async def drain(self) -> None:
        """Wait until every job task and cell task has finished."""
        while True:
            tasks = [j.task for j in self.jobs.all()
                     if j.task is not None and not j.task.done()]
            tasks += [t for t in self._inflight.values() if not t.done()]
            if not tasks:
                return
            await asyncio.gather(*tasks, return_exceptions=True)

    def describe(self) -> dict:
        """Server info embedded in ``ping`` responses.

        The ``vector`` block reports the replay substrate cells will
        actually dispatch on: the process-wide mode
        (:func:`~repro.sim.engine.default_vector_mode`) and whether the
        compiled kernel loads here (workers fork from, or are
        configured identically to, this process).
        """
        from ..sim.engine import default_vector_mode
        from ..sim.soatrace import vector_available
        from .protocol import PROTOCOL_VERSION
        return {
            "protocol": PROTOCOL_VERSION,
            "backend": self.backend,
            "workers": self.workers,
            "vector": {"mode": default_vector_mode(),
                       "available": vector_available()},
            "max_queued": self.max_queued,
            "live_jobs": len(self.jobs.live()),
            "jobs": len(self.jobs),
            "inflight": len(self._inflight),
            "store": str(self.store.root) if self.store else None,
            "stats": dict(self.stats),
            "pid": os.getpid(),
        }

    # ------------------------------------------------------------------
    # job execution
    # ------------------------------------------------------------------
    async def _run_job(self, job: Job) -> None:
        job.state = "running"
        self._publish_job(job)
        try:
            pending: list[tuple[RunSpec, asyncio.Task]] = []
            for spec in job.specs:
                cached = (self.store.get(spec)
                          if self.store is not None else None)
                if cached is not None:
                    job.outcomes[spec.spec_hash()] = cached
                    self.stats["hits"] += 1
                    self._progress(job, "hit", spec)
                else:
                    pending.append((spec, self._cell_task(spec, job)))
            for spec, task in pending:
                outcome = await asyncio.shield(task)
                job.outcomes[spec.spec_hash()] = outcome
                self._progress(
                    job, "fail" if isinstance(outcome, RunFailure)
                    else "run", spec,
                    error=(outcome.error
                           if isinstance(outcome, RunFailure) else None))
            job.state = "failed" if job.failures() else "done"
        except asyncio.CancelledError:
            job.state = "cancelled"
        except Exception as exc:  # noqa: BLE001 - server must survive
            # A bug in the job runner itself: fail the job, keep serving.
            job.state = "failed"
            job.outcomes.setdefault(
                "__job__", RunFailure(job.specs[0],
                                      f"{type(exc).__name__}: {exc}",
                                      traceback.format_exc()))
        finally:
            job.finished = time.time()
            for spec in job.specs:
                self._drop_ref(spec.spec_hash(), job.id)
            self._publish_job(job)
            job.done_event.set()
            self.jobs.prune()

    def _cell_task(self, spec: RunSpec, job: Job) -> asyncio.Task:
        """The (possibly shared) task simulating one unique spec."""
        key = spec.spec_hash()
        task = self._inflight.get(key)
        if task is not None and not task.done():
            self.stats["attached"] += 1
            self._progress(job, "attach", spec)
            self._refs.setdefault(key, set()).add(job.id)
            return task
        task = asyncio.get_running_loop().create_task(
            self._simulate_cell(spec, job), name=f"cell-{key}")
        self._inflight[key] = task
        self._refs[key] = {job.id}

        def _done(t: asyncio.Task, key: str = key) -> None:
            if self._inflight.get(key) is t:
                del self._inflight[key]
            self._refs.pop(key, None)
            if t.cancelled():
                return
            t.exception()  # mark retrieved; outcome flows via shield

        task.add_done_callback(_done)
        return task

    def _drop_ref(self, key: str, job_id: str) -> None:
        """Release one job's claim on a cell; cancel orphaned cells."""
        refs = self._refs.get(key)
        if refs is None:
            return
        refs.discard(job_id)
        if not refs:
            task = self._inflight.get(key)
            if task is not None and not task.done():
                task.cancel()

    async def _simulate_cell(self, spec: RunSpec, job: Job):
        """Run one unique cell off-loop; store the result in the parent.

        Returns ``RunResult | RunFailure`` — the worker function
        already isolates simulation exceptions into RunFailure, so only
        infrastructure faults (a broken pool) surface here, and they
        too are converted so one dead worker cannot poison a job with
        an unhandled exception.
        """
        payload = (spec, job.retries, False, self.obs is not None)
        if self._sem is None:
            self._sem = asyncio.Semaphore(self.workers)
        loop = asyncio.get_running_loop()
        async with self._sem:
            try:
                if self.backend == "process":
                    outcome, records = await loop.run_in_executor(
                        self._ensure_pool(), self._worker_fn, payload)
                else:
                    outcome, records = await asyncio.to_thread(
                        self._worker_fn, payload)
            except asyncio.CancelledError:
                raise
            except Exception as exc:  # noqa: BLE001 - broken pool et al.
                self._discard_pool()
                outcome, records = RunFailure(
                    spec, f"{type(exc).__name__}: {exc}",
                    traceback.format_exc()), None
        if records and self.obs is not None:
            self.obs.merge(records)
            for record in records:
                self.bus.publish(EV_OBS, -1, -1, job=job.id, record=record)
        if self.obs is not None:
            if isinstance(outcome, RunFailure):
                self.obs.event("fail", spec=spec, error=outcome.error)
            else:
                self.obs.event("run", spec=spec)
        if isinstance(outcome, RunResult):
            self.stats["simulated"] += 1
            if self.store is not None:
                try:
                    self.store.put(spec, outcome)
                except Exception as exc:  # noqa: BLE001 - keep the result
                    # Same contract as the executor: a failing
                    # write-back must not lose a simulated result.
                    detail = f"{type(exc).__name__}: {exc}"
                    self.stats["store_failures"] += 1
                    job.bump("store-fail")
                    if self.obs is not None:
                        self.obs.event("store-fail", spec=spec, error=detail)
                    self.bus.publish(EV_CELL, -1, -1, job=job.id,
                                     name="store-fail", spec=spec.label(),
                                     spec_hash=spec.spec_hash(), error=detail)
        return outcome

    # ------------------------------------------------------------------
    # worker pool lifecycle
    # ------------------------------------------------------------------
    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            trace_root = (str(self.trace_store.root)
                          if self.trace_store is not None else None)
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers, initializer=_pool_init,
                initargs=(trace_root,))
        return self._pool

    def _discard_pool(self) -> None:
        """Drop a (possibly broken) pool; the next cell rebuilds it."""
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)

    # ------------------------------------------------------------------
    # event publishing
    # ------------------------------------------------------------------
    def _publish_job(self, job: Job) -> None:
        self.bus.publish(EV_JOB, -1, -1, **job.to_dict(), job=job.id)

    def _progress(self, job: Job, name: str, spec: RunSpec,
                  error: str | None = None) -> None:
        job.bump(name)
        if not self.bus.watching(EV_CELL):
            return
        detail = {"job": job.id, "name": name, "spec": spec.label(),
                  "spec_hash": spec.spec_hash()}
        if error:
            detail["error"] = error
        self.bus.publish(EV_CELL, -1, -1, **detail)

    # ------------------------------------------------------------------
    # protocol layer
    # ------------------------------------------------------------------
    async def _handle_client(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        """One client connection: read frames, answer, stream, clean up.

        Any exit path — clean EOF, protocol garbage, a client vanishing
        mid-stream — unsubscribes every observer this connection
        registered and closes the transport; a broken client can never
        leak bus subscriptions or kill the accept loop.
        """
        write_lock = asyncio.Lock()
        subscriptions: list = []
        self._client_tasks.add(asyncio.current_task())

        async def send(frame: dict) -> None:
            async with write_lock:
                writer.write(encode_frame(frame))
                await writer.drain()

        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    await send(error_frame(
                        "bad-frame",
                        f"frame exceeds {MAX_FRAME_BYTES} bytes"))
                    break
                if not line:
                    break  # clean EOF
                if not line.strip():
                    continue
                try:
                    frame = decode_frame(line)
                except ProtocolError as exc:
                    # Undecodable bytes: answer, then drop the
                    # connection — the stream can no longer be trusted.
                    await send(error_frame(exc.code, str(exc)))
                    break
                keep_open = await self._handle_frame(frame, send,
                                                     subscriptions)
                if not keep_open:
                    break
        except (ConnectionError, OSError):
            pass  # client went away; nothing to answer
        except asyncio.CancelledError:
            # Server shutdown cancelled this connection.  Finish the
            # task *cleanly*: asyncio's client_connected_cb done-callback
            # (3.11) calls task.exception() unguarded, so a handler that
            # ends cancelled would log a spurious traceback per client.
            pass
        finally:
            self._client_tasks.discard(asyncio.current_task())
            for observer in subscriptions:
                self.bus.unsubscribe(observer)
            subscriptions.clear()
            writer.close()
            with contextlib.suppress(Exception, asyncio.CancelledError):
                await writer.wait_closed()

    async def _handle_frame(self, frame: dict, send, subscriptions) -> bool:
        """Dispatch one request frame; returns False to close."""
        echo = {"id": frame["id"]} if "id" in frame else {}
        try:
            op = parse_request(frame)
        except ProtocolError as exc:
            await send(error_frame(exc.code, str(exc), **echo))
            return True
        try:
            if op == "ping":
                await send({"ok": True, "pong": True,
                            "server": self.describe(), **echo})
            elif op == "submit":
                await self._op_submit(frame, send, echo, subscriptions)
            elif op == "status":
                job = self.get_job(frame["job"])
                await send({"ok": True, "job": job.to_dict(), **echo})
            elif op == "result":
                job = self.get_job(frame["job"])
                if not job.terminal:
                    raise ProtocolError(
                        "not-done", f"job {job.id} is {job.state};"
                        " wait or watch for completion")
                await send({"ok": True, "job": job.to_dict(),
                            "results": job.results_payload(), **echo})
            elif op == "cancel":
                job = await self.cancel_job(frame["job"])
                await send({"ok": True, "job": job.to_dict(), **echo})
            elif op == "jobs":
                await send({"ok": True,
                            "jobs": [j.to_dict()
                                     for j in self.jobs.all()], **echo})
            elif op == "watch":
                await self._op_watch(frame, send, echo, subscriptions)
            elif op == "shutdown":
                await send({"ok": True, "bye": True, **echo})
                self.request_stop()
                return False
        except ProtocolError as exc:
            await send(error_frame(exc.code, str(exc), **echo))
        except BackpressureError as exc:
            await send(error_frame("backpressure", str(exc), **echo))
        return True

    async def _op_submit(self, frame, send, echo, subscriptions) -> None:
        specs = parse_specs(frame["specs"])
        stream = frame.get("stream", False)
        wait = frame.get("wait", False) or stream
        if stream:
            # Subscribe *before* the job task first runs so the client
            # sees every cell event from the beginning.
            queue, observer = self._subscribe_stream(subscriptions)
            try:
                job = self.submit_job(specs, retries=frame.get("retries", 0))
                await self._pump_stream(job, queue, send)
            finally:
                self._unsubscribe_stream(observer, subscriptions)
            await send({"ok": True, "job": job.to_dict(), **echo})
            return
        job = self.submit_job(specs, retries=frame.get("retries", 0))
        if wait:
            await job.done_event.wait()
        await send({"ok": True, "job": job.to_dict(), **echo})

    async def _op_watch(self, frame, send, echo, subscriptions) -> None:
        job = self.get_job(frame["job"])
        if job.terminal:
            await send({"ok": True, "job": job.to_dict(), **echo})
            return
        queue, observer = self._subscribe_stream(subscriptions)
        try:
            await self._pump_stream(job, queue, send)
        finally:
            self._unsubscribe_stream(observer, subscriptions)
        await send({"ok": True, "job": job.to_dict(), **echo})

    def _subscribe_stream(self, subscriptions):
        """Kind-filtered bus subscription feeding an asyncio queue.

        The observer is synchronous (bus publishes are synchronous) and
        only enqueues; delivery happens on the connection's writer via
        :meth:`_pump_stream`.  Kind filtering keeps these per-client
        observers out of ``bus.observers`` entirely.
        """
        queue: asyncio.Queue = asyncio.Queue()

        def observer(event) -> None:
            queue.put_nowait({"ev": event.kind, **event.detail})

        self.bus.subscribe(observer, kinds=(EV_JOB, EV_CELL, EV_OBS))
        subscriptions.append(observer)
        return queue, observer

    def _unsubscribe_stream(self, observer, subscriptions) -> None:
        self.bus.unsubscribe(observer)
        if observer in subscriptions:
            subscriptions.remove(observer)

    async def _pump_stream(self, job: Job, queue: asyncio.Queue,
                           send) -> None:
        """Forward one job's events until it goes terminal."""
        while True:
            event = await queue.get()
            if event.get("job") != job.id:
                continue
            await send(event)
            if (event.get("ev") == EV_JOB
                    and event.get("state") in ("done", "failed",
                                               "cancelled")):
                return

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def request_stop(self) -> None:
        """Begin a graceful stop (idempotent, thread-safe via the loop)."""
        self._closing = True
        if self._stop is not None:
            self._stop.set()

    async def serve(self, ready: threading.Event | None = None) -> None:
        """Listen and serve until :meth:`request_stop` (or cancellation).

        Installs the server's trace store as the process ambient for
        the duration (the inline backend's worker threads and
        ``_prewarm``-style helpers resolve traces through it), restores
        the previous ambient on exit, cancels outstanding jobs and
        tears the pool down.
        """
        from ..runtime.tracecache import get_default_trace_store
        from ..sim.soatrace import vector_available
        # Build/dlopen the vector kernel once before any worker exists:
        # forked workers inherit the loaded memo, spawned ones dlopen
        # the .so this call just cached.
        vector_available()
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        self._closing = False
        prev_trace_store = get_default_trace_store()
        if self.trace_store is not None:
            set_default_trace_store(self.trace_store)
        if self.socket_path is not None:
            sock_path = str(self.socket_path)
            sock_dir = os.path.dirname(sock_path)
            if sock_dir:
                os.makedirs(sock_dir, exist_ok=True)
            if os.path.exists(sock_path):
                os.unlink(sock_path)  # stale socket from a dead server
            server = await asyncio.start_unix_server(
                self._handle_client, path=sock_path, limit=MAX_FRAME_BYTES)
        else:
            server = await asyncio.start_server(
                self._handle_client, host=self.host, port=self.port or 0,
                limit=MAX_FRAME_BYTES)
            self.port = server.sockets[0].getsockname()[1]
        try:
            async with server:
                if ready is not None:
                    ready.set()
                await self._stop.wait()
        finally:
            self._closing = True
            # Tear down client connections first (so a streaming client
            # sees EOF, not a hang), then outstanding work.
            for task in list(self._client_tasks):
                task.cancel()
            if self._client_tasks:
                await asyncio.gather(*self._client_tasks,
                                     return_exceptions=True)
            for job in self.jobs.live():
                if job.task is not None and not job.task.done():
                    job.task.cancel()
            for task in list(self._inflight.values()):
                if not task.done():
                    task.cancel()
            await self.drain()
            self._discard_pool()
            if self.trace_store is not None:
                set_default_trace_store(prev_trace_store)
            if self.socket_path is not None:
                with contextlib.suppress(OSError):
                    os.unlink(str(self.socket_path))

    @property
    def address(self) -> str:
        """Human-readable listen address (for logs and ping output)."""
        if self.socket_path is not None:
            return str(self.socket_path)
        return f"{self.host or ''}:{self.port}"


class ServerThread:
    """Run a :class:`JobServer` on a background thread (tests, embedding).

    ::

        with ServerThread(JobServer(sock, store=store)) as server:
            client = ServeClient(sock)
            ...

    The context manager waits for the listening socket before yielding
    and requests a graceful stop (thread-safe) on exit.
    """

    def __init__(self, server: JobServer, start_timeout: float = 10.0) -> None:
        self.server = server
        self.start_timeout = start_timeout
        self._thread: threading.Thread | None = None
        self._error: BaseException | None = None

    def start(self) -> JobServer:
        ready = threading.Event()

        def _run() -> None:
            try:
                asyncio.run(self.server.serve(ready=ready))
            except BaseException as exc:  # pragma: no cover - surfaced below
                self._error = exc
                ready.set()

        self._thread = threading.Thread(target=_run, name="repro-serve",
                                        daemon=True)
        self._thread.start()
        if not ready.wait(self.start_timeout):
            raise RuntimeError("server did not start listening in time")
        if self._error is not None:
            raise RuntimeError("server failed to start") from self._error
        return self.server

    def stop(self, join_timeout: float = 10.0) -> None:
        loop = self.server._loop
        if loop is not None and loop.is_running():
            loop.call_soon_threadsafe(self.server.request_stop)
        if self._thread is not None:
            self._thread.join(join_timeout)

    def __enter__(self) -> JobServer:
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
