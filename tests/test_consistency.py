"""Tests for the SC/RC consistency-model option."""

import pytest

from repro.coherence.directory import Directory
from repro.coherence.protocol import CoherenceProtocol
from repro.harness.experiment import get_workload, scaled_policy
from repro.interconnect.network import Network
from repro.interconnect.topology import SwitchTopology
from repro.mem.dram import BankedMemory
from repro.sim.config import SystemConfig
from repro.sim.engine import Engine, simulate
from tests.test_coherence_model import audit_machine


def make_protocol(stall=True):
    directory = Directory(4, 32)
    network = Network(SwitchTopology(4), port_occupancy=0)
    memories = [BankedMemory(4, 50, 20) for _ in range(4)]
    invalidated = []
    protocol = CoherenceProtocol(
        directory, network, memories,
        invalidate_chunk=lambda n, c, now=None: invalidated.append((n, c)),
        stall_on_invalidate=stall)
    return protocol, invalidated


class TestProtocolLevel:
    def test_sc_write_stalls_for_acks(self):
        protocol, _ = make_protocol(stall=True)
        protocol.remote_fetch(1, 0, 0, 0, False, 0, 0)
        base = protocol.remote_fetch(2, 1, 0, 0, True, 0, 0).latency
        stalled = protocol.remote_fetch(2, 0, 0, 0, True, 0, 100).latency
        assert stalled > base  # ack round trip added

    def test_rc_write_does_not_stall(self):
        protocol, _ = make_protocol(stall=False)
        protocol.remote_fetch(1, 0, 0, 0, False, 0, 0)
        base = protocol.remote_fetch(2, 1, 0, 0, True, 0, 0).latency
        overlapped = protocol.remote_fetch(2, 0, 0, 0, True, 0, 100).latency
        assert overlapped == base

    def test_rc_still_invalidates(self):
        """RC changes *when* the writer proceeds, never *whether* copies
        are destroyed -- coherence is unconditional."""
        protocol, invalidated = make_protocol(stall=False)
        protocol.remote_fetch(1, 0, 0, 0, False, 0, 0)
        protocol.remote_fetch(2, 0, 0, 0, True, 0, 100)
        assert (1, 0) in invalidated


class TestConfig:
    def test_validated(self):
        with pytest.raises(ValueError):
            SystemConfig(consistency="tso")

    def test_default_is_sc(self):
        assert SystemConfig().consistency == "sc"


class TestEndToEnd:
    def test_rc_never_slower(self):
        wl = get_workload("ocean", 0.25)
        totals = {}
        for cons in ("sc", "rc"):
            cfg = SystemConfig(n_nodes=wl.n_nodes, memory_pressure=0.5,
                               consistency=cons)
            totals[cons] = simulate(wl, scaled_policy("CCNUMA"),
                                    cfg).aggregate().total_cycles()
        assert totals["rc"] <= totals["sc"]

    def test_rc_same_miss_counts(self):
        wl = get_workload("ocean", 0.25)
        counts = {}
        for cons in ("sc", "rc"):
            cfg = SystemConfig(n_nodes=wl.n_nodes, memory_pressure=0.5,
                               consistency=cons)
            counts[cons] = simulate(wl, scaled_policy("CCNUMA"),
                                    cfg).aggregate().shared_misses()
        assert counts["sc"] == counts["rc"]

    def test_coherence_audit_holds_under_rc(self):
        from repro.core import make_policy
        from repro.workloads import synthetic
        wl = synthetic.generate(n_nodes=4, home_pages_per_node=6,
                                remote_pages_per_node=8, sweeps=4,
                                write_fraction=0.4, home_lines_per_sweep=32,
                                seed=21)
        cfg = SystemConfig(n_nodes=4, memory_pressure=0.5, consistency="rc")
        engine = Engine(wl, make_policy("ascoma", threshold=8, increment=4),
                        cfg)
        engine.run()
        audit_machine(engine)
