"""Unit tests for the online invariant checker (``repro.check``).

Three angles:

* each structural check fires on a deliberately corrupted machine and
  stays silent on a healthy one;
* the end-to-end seeded-bug path: ``debug_skip_invalidate_node`` drops
  invalidations and the checker pins the resulting stale copies to a
  node, page and clock;
* plumbing -- granularities, violation caps, detach, RunResult and
  runtime-layer integration (``check=True`` bypasses the result store).
"""

import pytest

from repro.check import (InvariantChecker, Violation, audit_machine,
                         check_cache_reachability, check_directory_swmr,
                         check_frame_accounting, check_page_table,
                         check_rac_exclusivity, collect_audit_violations)
from repro.core import make_policy
from repro.harness.experiment import run_app
from repro.kernel.vm import PageMode
from repro.runtime import RunSpec, RunStore, execute, execute_spec
from repro.sim.config import SystemConfig
from repro.sim.engine import Engine
from repro.workloads import synthetic

ASCOMA_KWARGS = dict(threshold=8, increment=4)


def run_engine(arch="ASCOMA", pressure=0.5, write_fraction=0.3, seed=3,
               granularity=None, **config_extra):
    wl = synthetic.generate(
        n_nodes=4, home_pages_per_node=6, remote_pages_per_node=10,
        sweeps=5, lines_per_visit=8, hot_fraction=0.8,
        write_fraction=write_fraction, home_lines_per_sweep=32, seed=seed)
    cfg = SystemConfig(n_nodes=4, memory_pressure=pressure, **config_extra)
    kwargs = {"ASCOMA": ASCOMA_KWARGS,
              "RNUMA": dict(threshold=8),
              "VCNUMA": dict(threshold=8, break_even=4, increment=4),
              "CCNUMAMIG": dict(threshold=8)}.get(arch, {})
    engine = Engine(wl, make_policy(arch, **kwargs), cfg)
    checker = (InvariantChecker.attach(engine, granularity=granularity)
               if granularity else None)
    engine.run()
    return engine, checker


class TestStructuralChecks:
    """Each sweep fires on corrupted state, stays silent on clean state."""

    @pytest.fixture(scope="class")
    def machine(self):
        engine, _ = run_engine()
        return engine.machine

    def test_clean_machine_passes_everything(self, machine):
        assert collect_audit_violations(machine) == []
        assert check_directory_swmr(machine) == []
        assert check_frame_accounting(machine) == []
        assert check_rac_exclusivity(machine) == []
        assert check_page_table(machine) == []

    def test_swmr_detects_owner_outside_copyset(self, machine):
        chunk, copyset = next(iter(machine.directory.copyset.items()))
        bad_owner = next(n for n in range(4) if copyset != 1 << n)
        machine.directory.owner[chunk] = bad_owner
        try:
            found = check_directory_swmr(machine)
            assert any(v.invariant == "directory-swmr"
                       and v.detail["chunk"] == chunk for v in found)
        finally:
            del machine.directory.owner[chunk]

    def test_reachability_detects_unreachable_scoma_bit(self, machine):
        node = next(n for n in machine.nodes if n.page_table.scoma_valid)
        page = next(iter(node.page_table.scoma_valid))
        first = machine.amap.first_chunk_of_page(page)
        saved = dict(machine.directory.copyset)
        machine.directory.copyset.pop(first, None)
        node.page_table.set_chunk_valid(page, 0)
        try:
            found = check_cache_reachability(machine)
            assert any(v.invariant == "cache-reachability"
                       and v.node == node.id and v.page == page
                       for v in found)
            with pytest.raises(AssertionError):
                audit_machine(machine)
        finally:
            node.page_table.clear_chunk_valid(page, 0)
            machine.directory.copyset.clear()
            machine.directory.copyset.update(saved)

    def test_reachability_detects_unreachable_rac_entry(self, machine):
        node = next(n for n in machine.nodes
                    if list(n.rac.resident_entries()))
        entry = next(iter(node.rac.resident_entries()))
        chunk = (entry >> machine.amap.chunk_shift if node.rac_victim
                 else entry)
        saved = machine.directory.copyset.pop(chunk, None)
        try:
            found = check_cache_reachability(machine)
            assert any(v.invariant == "cache-reachability"
                       and v.detail.get("structure") == "rac"
                       for v in found)
        finally:
            if saved is not None:
                machine.directory.copyset[chunk] = saved

    def test_frame_accounting_detects_leak(self, machine):
        pool = machine.nodes[0].pool
        pool.free -= 1
        try:
            found = check_frame_accounting(machine)
            assert any(v.invariant == "frame-accounting" and v.node == 0
                       for v in found)
        finally:
            pool.free += 1

    def test_rac_exclusivity_detects_scoma_page_in_rac(self, machine):
        node = next(n for n in machine.nodes
                    if list(n.rac.resident_entries()))
        entry = next(iter(node.rac.resident_entries()))
        page = (entry >> machine.amap.line_shift if node.rac_victim
                else machine.amap.page_of_chunk(entry))
        saved = node.page_table.mode.get(page)
        node.page_table.mode[page] = PageMode.SCOMA
        try:
            found = check_rac_exclusivity(machine)
            assert any(v.invariant == "rac-exclusivity" and v.page == page
                       for v in found)
        finally:
            if saved is None:
                del node.page_table.mode[page]
            else:
                node.page_table.mode[page] = saved

    def test_page_table_detects_valid_mode_disagreement(self, machine):
        node = machine.nodes[0]
        ccnuma_page = next(p for p, m in node.page_table.mode.items()
                           if m == PageMode.CCNUMA)
        node.page_table.scoma_valid[ccnuma_page] = 0
        try:
            found = check_page_table(machine)
            assert any(v.invariant == "page-table"
                       and "disagree" in v.message for v in found)
        finally:
            del node.page_table.scoma_valid[ccnuma_page]

    def test_page_table_detects_bogus_home_mapping(self, machine):
        node = machine.nodes[0]
        foreign = next(p for p, home in machine.allocator.home.items()
                       if home != node.id)
        saved = node.page_table.mode.get(foreign)
        node.page_table.mode[foreign] = PageMode.HOME
        try:
            found = check_page_table(machine)
            assert any(v.invariant == "page-table" and v.page == foreign
                       and "allocator home" in v.message for v in found)
        finally:
            if saved is None:
                del node.page_table.mode[foreign]
            else:
                node.page_table.mode[foreign] = saved

    def test_page_table_detects_clock_desync(self, machine):
        node = next(n for n in machine.nodes if n.page_table.scoma_clock)
        page = node.page_table.scoma_clock[0]
        node.page_table.scoma_clock.append(page)  # duplicate clock entry
        try:
            found = check_page_table(machine)
            assert any(v.invariant == "page-table" and v.node == node.id
                       for v in found)
        finally:
            node.page_table.scoma_clock.pop()


class TestSeededBug:
    """The deliberately broken protocol variant must be caught."""

    @pytest.mark.parametrize("granularity", ["event", "barrier"])
    def test_dropped_invalidations_are_caught(self, granularity):
        _, checker = run_engine(write_fraction=0.5, granularity=granularity,
                                debug_skip_invalidate_node=1)
        assert checker.violations
        first = checker.violations[0]
        assert first.invariant == "cache-reachability"
        # Full simulator context: the offending node, page and cycle.
        assert first.node == 1
        assert first.page >= 0
        assert first.clock >= 0
        assert str(first).startswith("cache-reachability [node 1, page")

    def test_event_granularity_pins_earlier_than_barrier(self):
        _, ev = run_engine(write_fraction=0.5, granularity="event",
                           debug_skip_invalidate_node=1)
        _, bar = run_engine(write_fraction=0.5, granularity="barrier",
                            debug_skip_invalidate_node=1)
        assert ev.violations[0].clock <= bar.violations[0].clock

    def test_clean_run_is_silent_everywhere(self):
        for arch in ("CCNUMA", "SCOMA", "RNUMA", "VCNUMA", "ASCOMA",
                     "CCNUMAMIG"):
            _, checker = run_engine(arch=arch, granularity="event")
            assert not checker.violations, (arch, checker.report())


def fsm_checker(arch, **kwargs):
    """Checker wired to a policy only -- event checks touch no machine."""
    return InvariantChecker(None, make_policy(arch, **kwargs),
                            granularity="barrier")


def ev(kind, node=0, page=0, clock=5, **detail):
    from repro.sim.events import SimEvent
    return SimEvent(kind, node, page, clock, detail)


class TestPageModeFsm:
    """Event-driven FSM checks, driven by fabricated events."""

    def test_fault_on_home_page_must_map_home(self):
        checker = fsm_checker("CCNUMA")
        checker(ev("fault", node=0, page=3, mode=int(PageMode.CCNUMA),
                   home=0))
        [v] = checker.violations
        assert v.invariant == "page-mode-fsm" and "expected HOME" in v.message
        assert (v.node, v.page, v.clock) == (0, 3, 5)

    def test_fault_mode_must_be_policy_initial(self):
        checker = fsm_checker("CCNUMA")
        checker(ev("fault", mode=int(PageMode.SCOMA), home=1))
        [v] = checker.violations
        assert "CCNUMA allows ['CCNUMA']" in v.message

    def test_double_fault_is_reported(self):
        checker = fsm_checker("ASCOMA", scoma_first=False)
        checker(ev("fault", mode=int(PageMode.CCNUMA), home=1))
        assert not checker.violations
        checker(ev("fault", mode=int(PageMode.CCNUMA), home=1))
        # Shadow already shows the page mapped; a second fault on the
        # same mode is tolerated (map_scoma publishes before fault),
        # but a fault from a *different* mapped mode is not.
        checker._shadow[(0, 0)] = PageMode.SCOMA
        checker(ev("fault", mode=int(PageMode.CCNUMA), home=1))
        [v] = checker.violations
        assert "already in SCOMA mode" in v.message

    def test_scoma_map_requires_relocation_support(self):
        checker = fsm_checker("SCOMA")
        checker._shadow[(0, 0)] = PageMode.CCNUMA
        checker(ev("map_scoma"))
        [v] = checker.violations
        assert "does not relocate" in v.message

    def test_scoma_map_of_unmapped_requires_scoma_start(self):
        checker = fsm_checker("RNUMA")  # starts every page CC-NUMA
        checker(ev("map_scoma"))
        [v] = checker.violations
        assert "never starts in S-COMA" in v.message

    def test_scoma_map_of_home_page_is_illegal(self):
        checker = fsm_checker("ASCOMA")
        checker._shadow[(0, 0)] = PageMode.HOME
        checker(ev("map_scoma"))
        [v] = checker.violations
        assert "S-COMA map of a page in HOME mode" in v.message

    def test_evict_requires_scoma_mode(self):
        checker = fsm_checker("SCOMA")
        checker._shadow[(0, 0)] = PageMode.CCNUMA
        checker(ev("evict", forced=False, flushed=0))
        [v] = checker.violations
        assert "eviction of a page in CCNUMA mode" in v.message

    def test_forced_eviction_needs_policy_support(self):
        checker = fsm_checker("CCNUMAMIG", threshold=8)
        checker._shadow[(0, 0)] = PageMode.SCOMA
        checker(ev("evict", forced=True, flushed=0))
        [v] = checker.violations
        assert v.invariant == "forced-eviction"

    def test_relocation_needs_policy_support(self):
        checker = fsm_checker("SCOMA")
        checker._shadow[(0, 0)] = PageMode.SCOMA
        checker(ev("relocate", flushed=0))
        [v] = checker.violations
        assert "does not relocate" in v.message

    def test_relocation_must_end_in_scoma(self):
        checker = fsm_checker("RNUMA", threshold=8)
        checker._shadow[(0, 0)] = PageMode.CCNUMA
        checker(ev("relocate", flushed=0))
        [v] = checker.violations
        assert "left page in CCNUMA mode" in v.message

    def test_migration_needs_policy_support(self):
        checker = fsm_checker("RNUMA", threshold=8)
        checker._shadow[(0, 0)] = PageMode.CCNUMA
        checker(ev("migrate", old_home=1))
        [v] = checker.violations
        assert "does not migrate" in v.message

    def test_migration_requester_must_be_ccnuma(self):
        checker = fsm_checker("CCNUMAMIG", threshold=8)
        checker._shadow[(0, 0)] = PageMode.SCOMA
        checker(ev("migrate", old_home=1))
        [v] = checker.violations
        assert "in SCOMA mode, expected CCNUMA" in v.message
        assert checker._shadow[(0, 0)] == PageMode.HOME

    def test_migration_old_home_must_have_been_home(self):
        checker = fsm_checker("CCNUMAMIG", threshold=8)
        checker._shadow[(0, 0)] = PageMode.CCNUMA
        checker._shadow[(1, 0)] = PageMode.CCNUMA
        checker(ev("migrate", old_home=1))
        [v] = checker.violations
        assert "migration away from node 1" in v.message
        assert checker._shadow[(1, 0)] == PageMode.CCNUMA


class TestThresholdBackoff:
    def daemon(self, checker, thrashing, threshold):
        checker(ev("daemon", reclaimed=0, target=0,
                   thrashing=thrashing, threshold=threshold))

    def test_thrashing_must_not_lower_threshold(self):
        checker = fsm_checker("ASCOMA", threshold=8, increment=4)
        self.daemon(checker, True, 8)
        self.daemon(checker, True, 12)   # backing off: fine
        self.daemon(checker, True, 4)    # lowered the bar: violation
        [v] = checker.violations
        assert v.invariant == "threshold-backoff"
        assert "12 -> 4" in v.message

    def test_recovery_must_not_raise_threshold(self):
        checker = fsm_checker("ASCOMA", threshold=8, increment=4)
        self.daemon(checker, True, 12)
        self.daemon(checker, False, 8)   # walking back down: fine
        self.daemon(checker, False, 16)  # raised while calm: violation
        [v] = checker.violations
        assert "8 -> 16" in v.message

    def test_disable_and_reenable_are_legal(self):
        checker = fsm_checker("ASCOMA", threshold=8, increment=4)
        self.daemon(checker, True, 8)
        self.daemon(checker, True, 0)    # relocation disabled
        self.daemon(checker, False, 8)   # re-enabled from 0
        assert not checker.violations

    def test_non_adaptive_policies_are_exempt(self):
        checker = fsm_checker("ASCOMA", threshold=8, increment=4,
                              adaptive=False)
        self.daemon(checker, True, 8)
        self.daemon(checker, True, 2)
        assert not checker.violations


class TestCheckerPlumbing:
    def test_granularity_validation(self):
        engine, _ = run_engine()
        with pytest.raises(ValueError, match="granularity"):
            InvariantChecker(engine.machine, engine.policy,
                             granularity="bogus")

    def test_barrier_sweeps_fewer_than_event(self):
        _, ev = run_engine(granularity="event")
        _, bar = run_engine(granularity="barrier")
        assert bar.sweeps_run < ev.sweeps_run
        assert ev.events_seen == bar.events_seen

    def test_max_violations_caps_accumulation(self):
        wl = synthetic.generate(
            n_nodes=4, home_pages_per_node=6, remote_pages_per_node=10,
            sweeps=5, lines_per_visit=8, hot_fraction=0.8,
            write_fraction=0.5, home_lines_per_sweep=32, seed=3)
        cfg = SystemConfig(n_nodes=4, memory_pressure=0.5,
                           debug_skip_invalidate_node=1)
        engine = Engine(wl, make_policy("ASCOMA", **ASCOMA_KWARGS), cfg)
        checker = InvariantChecker.attach(engine, granularity="event",
                                          max_violations=5)
        engine.run()
        # The cap stops checking, not the simulation; one final sweep
        # may overshoot by a batch but not by the uncapped hundreds.
        assert 5 <= checker.violation_count() < 100

    def test_detach_stops_observing(self):
        engine, _ = run_engine()
        checker = InvariantChecker.attach(engine)
        checker.detach()
        assert checker not in engine.machine.events.observers

    def test_report_and_violation_roundtrip(self):
        v = Violation("page-table", "boom", node=2, page=7, clock=99,
                      detail={"k": 1})
        assert Violation.from_dict(v.as_dict()) == v
        checker = InvariantChecker.__new__(InvariantChecker)
        checker.violations = [v]
        assert "1 invariant violation(s)" in checker.report()
        assert "page-table [node 2, page 7, clock 99]: boom" \
            in checker.report()
        checker.violations = []
        assert checker.report() == "no invariant violations"


class TestRuntimeIntegration:
    def test_run_app_check_reports_zero(self):
        result = run_app("em3d", "ascoma", 0.7, scale=0.25, check=True)
        assert result.invariant_violations == 0
        assert result.summary()["invariant_violations"] == 0

    def test_unchecked_run_reports_none(self):
        result = run_app("em3d", "ascoma", 0.7, scale=0.25)
        assert result.invariant_violations is None
        assert "invariant_violations" not in result.summary()

    def test_checked_runs_bypass_the_store(self, tmp_path):
        store = RunStore(str(tmp_path / "store"))
        spec = RunSpec.make("em3d", "ascoma", 0.7, 0.25)
        result = execute_spec(spec, store=store, check=True)
        assert result.invariant_violations == 0
        assert store.get(spec) is None  # nothing cached
        outcomes = execute([spec], store=store, parallel=False, check=True)
        assert outcomes[spec].invariant_violations == 0
        assert store.get(spec) is None
