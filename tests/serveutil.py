"""Shared helpers for the ``repro.serve`` test files.

Not a test module: ``test_serve.py``, ``test_serve_stress.py`` and
``test_serve_properties.py`` import from here so they agree on socket
placement (short /tmp paths — ``AF_UNIX`` paths are limited to ~108
bytes and pytest tmp_path can exceed that), on the canonical small
spec, and on the canned fast worker used where real simulation time
would only slow the suite down.
"""

from __future__ import annotations

import contextlib
import os
import shutil
import tempfile
import time

from repro.runtime import RunSpec, RunStore
from repro.serve import JobServer, ServeClient, ServerThread

#: One small real cell (~0.15s to simulate at this scale).
SMALL_SPEC = RunSpec("fft", "ASCOMA", 0.7, 0.05)

#: Distinct small cells for multi-spec jobs (same app/scale so the
#: trace memo makes every cell after the first cheap).
SMALL_SPECS = tuple(RunSpec("fft", "ASCOMA", p, 0.05)
                    for p in (0.1, 0.5, 0.7, 0.9))

_canned_result = None


def canned_result():
    """One real RunResult, simulated once per process and reused."""
    global _canned_result
    if _canned_result is None:
        _canned_result = SMALL_SPEC.execute()
    return _canned_result


def fast_worker(payload):
    """Drop-in for the executor's ``_pool_worker``: no real simulation.

    Sleeps a moment (so in-flight windows exist for dedupe/cancel
    tests) and returns the canned result; same ``(outcome, records)``
    contract as the real worker.
    """
    time.sleep(0.002)
    return canned_result(), None


def make_slow_worker(delay: float):
    def slow_worker(payload):
        time.sleep(delay)
        return canned_result(), None
    return slow_worker


@contextlib.contextmanager
def serve_tmp(**kwargs):
    """A running server on a short-path Unix socket, torn down after.

    Yields ``(server, socket_path)``.  Defaults: inline backend, two
    workers, a fresh RunStore under the same tmp dir (pass
    ``store=None`` to disable caching).
    """
    tmp = tempfile.mkdtemp(prefix="rserve-", dir="/tmp")
    sock = os.path.join(tmp, "s.sock")
    if "store" not in kwargs:
        kwargs["store"] = RunStore(os.path.join(tmp, "store"))
    kwargs.setdefault("backend", "inline")
    kwargs.setdefault("workers", 2)
    server = JobServer(sock, **kwargs)
    try:
        with ServerThread(server):
            yield server, sock
    finally:
        shutil.rmtree(tmp, ignore_errors=True)


def wait_terminal(client: ServeClient, job_id: str,
                  timeout: float = 30.0) -> dict:
    """Poll ``status`` until the job is terminal; returns the job dict."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        job = client.status(job_id)
        if job["state"] in ("done", "failed", "cancelled"):
            return job
        time.sleep(0.02)
    raise TimeoutError(f"job {job_id} not terminal within {timeout}s")
