"""Unit tests for kernel substrates: costs, allocation, free pool, VM."""

import pytest

from repro.kernel.allocation import HomeAllocator
from repro.kernel.costs import KernelCosts
from repro.kernel.freelist import FreePagePool
from repro.kernel.vm import PageMode, PageTable


class TestKernelCosts:
    def test_defaults_positive(self):
        costs = KernelCosts()
        assert costs.page_fault > 0
        assert costs.relocation_interrupt > 0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            KernelCosts(page_fault=-1)

    def test_daemon_run_cost_composition(self):
        costs = KernelCosts(context_switch=100, daemon_dispatch=50,
                            daemon_scan_per_page=10)
        assert costs.daemon_run_cost(pages_scanned=3) == 2 * 100 + 50 + 30

    def test_flush_cost_linear(self):
        costs = KernelCosts(flush_per_line=10)
        assert costs.flush_cost(0) == 0
        assert costs.flush_cost(7) == 70

    def test_relocation_includes_interrupt_and_remap(self):
        costs = KernelCosts()
        assert costs.relocation_cost(0) == (costs.relocation_interrupt
                                            + costs.page_remap)

    def test_eviction_excludes_interrupt(self):
        costs = KernelCosts()
        assert costs.eviction_cost(5) == (costs.page_remap
                                          + 5 * costs.flush_per_line)


class TestHomeAllocator:
    def test_first_touch_wins_under_quota(self):
        alloc = HomeAllocator(4, total_shared_pages=8)  # quota 2
        assert alloc.home_of(0, toucher=3) == 3
        assert alloc.home_of(1, toucher=3) == 3

    def test_assignment_is_sticky(self):
        alloc = HomeAllocator(4, 8)
        alloc.home_of(0, 3)
        assert alloc.home_of(0, 1) == 3

    def test_round_robin_after_quota(self):
        alloc = HomeAllocator(4, 8)  # quota 2
        for page in range(2):
            alloc.home_of(page, 0)
        third = alloc.home_of(2, 0)  # node 0 over quota: spills
        assert third != 0
        assert alloc.round_robin_spills == 1

    def test_balanced_when_one_node_touches_everything(self):
        alloc = HomeAllocator(4, 16)  # quota 4
        for page in range(16):
            alloc.home_of(page, 0)
        assert alloc.imbalance() == 0
        assert alloc.pages_homed_at(0) == 4

    def test_overflow_beyond_all_quotas_spills_to_least_loaded(self):
        alloc = HomeAllocator(2, 2)  # quota 1
        alloc.home_of(0, 0)
        alloc.home_of(1, 0)
        alloc.home_of(2, 0)  # everyone at quota: least-loaded fallback
        assert alloc.imbalance() <= 1

    def test_rejects_bad_toucher(self):
        with pytest.raises(ValueError):
            HomeAllocator(4, 8).home_of(0, toucher=9)

    def test_assigned(self):
        alloc = HomeAllocator(2, 4)
        assert not alloc.assigned(0)
        alloc.home_of(0, 0)
        assert alloc.assigned(0)


class TestFreePagePool:
    def test_allocate_until_empty(self):
        pool = FreePagePool(2, total_frames=100)
        assert pool.try_allocate()
        assert pool.try_allocate()
        assert not pool.try_allocate()
        assert pool.failed_allocations == 1

    def test_release_returns_frame(self):
        pool = FreePagePool(1, 100)
        pool.try_allocate()
        pool.release()
        assert pool.free == 1

    def test_release_overflow_raises(self):
        pool = FreePagePool(1, 100)
        with pytest.raises(RuntimeError):
            pool.release()

    def test_water_marks_scale_with_total(self):
        pool = FreePagePool(100, total_frames=1000,
                            free_min_frac=0.01, free_target_frac=0.05)
        assert pool.free_min == 10
        assert pool.free_target == 50

    def test_water_marks_clamped_to_capacity(self):
        pool = FreePagePool(3, total_frames=1000,
                            free_min_frac=0.01, free_target_frac=0.05)
        assert pool.free_min <= 3
        assert pool.free_target <= 3

    def test_below_min_and_target(self):
        pool = FreePagePool(10, 100, free_min_frac=0.02,
                            free_target_frac=0.05)
        assert not pool.below_min
        for _ in range(9):
            pool.try_allocate()
        assert pool.below_min and pool.below_target

    def test_deficit_to_target(self):
        pool = FreePagePool(10, 100, free_min_frac=0.02,
                            free_target_frac=0.05)
        for _ in range(8):
            pool.try_allocate()
        assert pool.deficit_to_target() == pool.free_target - 2

    def test_in_use(self):
        pool = FreePagePool(5, 100)
        pool.try_allocate()
        assert pool.in_use == 1

    def test_rejects_bad_fractions(self):
        with pytest.raises(ValueError):
            FreePagePool(5, 100, free_min_frac=0.5, free_target_frac=0.1)


class TestPageTable:
    def test_modes(self):
        pt = PageTable(32)
        assert pt.mode_of(0) == PageMode.UNMAPPED
        pt.map_home(0)
        assert pt.mode_of(0) == PageMode.HOME
        pt.map_ccnuma(1)
        assert pt.mode_of(1) == PageMode.CCNUMA

    def test_double_map_rejected(self):
        pt = PageTable(32)
        pt.map_home(0)
        with pytest.raises(RuntimeError):
            pt.map_ccnuma(0)

    def test_scoma_map_starts_invalid(self):
        pt = PageTable(32)
        pt.map_scoma(5)
        assert pt.mode_of(5) == PageMode.SCOMA
        assert pt.valid_chunks(5) == 0

    def test_valid_bits(self):
        pt = PageTable(32)
        pt.map_scoma(5)
        pt.set_chunk_valid(5, 3)
        assert pt.chunk_valid(5, 3)
        assert not pt.chunk_valid(5, 2)
        pt.clear_chunk_valid(5, 3)
        assert not pt.chunk_valid(5, 3)

    def test_ccnuma_to_scoma_is_counted_remap(self):
        pt = PageTable(32)
        pt.map_ccnuma(1)
        pt.map_scoma(1)
        assert pt.remaps_to_scoma == 1
        assert pt.mode_of(1) == PageMode.SCOMA

    def test_unmap_scoma_to_ccnuma(self):
        pt = PageTable(32)
        pt.map_scoma(1)
        pt.unmap_scoma(1, to_ccnuma=True)
        assert pt.mode_of(1) == PageMode.CCNUMA
        assert pt.remaps_to_ccnuma == 1
        assert 1 not in pt.scoma_valid

    def test_unmap_scoma_to_unmapped(self):
        pt = PageTable(32)
        pt.map_scoma(1)
        pt.unmap_scoma(1, to_ccnuma=False)
        assert pt.mode_of(1) == PageMode.UNMAPPED

    def test_unmap_non_scoma_rejected(self):
        pt = PageTable(32)
        pt.map_ccnuma(1)
        with pytest.raises(RuntimeError):
            pt.unmap_scoma(1)

    def test_clock_tracks_scoma_pages(self):
        pt = PageTable(32)
        pt.map_scoma(1)
        pt.map_scoma(2)
        assert list(pt.scoma_clock) == [1, 2]
        pt.unmap_scoma(1)
        assert list(pt.scoma_clock) == [2]
        assert pt.scoma_page_count() == 1

    def test_home_to_scoma_rejected(self):
        pt = PageTable(32)
        pt.map_home(1)
        with pytest.raises(RuntimeError):
            pt.map_scoma(1)

    def test_rejects_nonpositive_chunk_count(self):
        with pytest.raises(ValueError):
            PageTable(0)

    def test_wide_pages_supported(self):
        # Python's arbitrary-precision masks place no 64-chunk ceiling
        # on a page (the vector kernel mirrors this with multi-word
        # bitmaps).
        pt = PageTable(65)
        pt.map_scoma(1)
        pt.set_chunk_valid(1, 64)
        assert pt.chunk_valid(1, 64)
        assert not pt.chunk_valid(1, 63)
        assert pt.valid_chunks(1) == 1
        assert pt.full_mask == (1 << 65) - 1
