"""Tests for the hot-page report."""

import pytest

from repro.harness.experiment import scaled_policy
from repro.harness.pagereport import hot_page_report, render_hot_pages
from repro.sim.config import SystemConfig
from repro.sim.engine import Engine
from repro.workloads import generate_workload


@pytest.fixture(scope="module")
def engine():
    wl = generate_workload("em3d", scale=0.25)
    cfg = SystemConfig(n_nodes=wl.n_nodes, memory_pressure=0.9)
    eng = Engine(wl, scaled_policy("RNUMA"), cfg)
    eng.run()
    return eng


class TestReport:
    def test_shape(self, engine):
        report = hot_page_report(engine, top=5)
        assert len(report["hottest_pages"]) <= 5
        assert set(report["cached_pages_per_node"]) == set(range(8))
        assert set(report["mapping_mode_totals"]) == {"HOME", "SCOMA",
                                                      "CCNUMA"}

    def test_hottest_sorted_descending(self, engine):
        pages = hot_page_report(engine)["hottest_pages"]
        counts = [c for _, c in pages]
        assert counts == sorted(counts, reverse=True)

    def test_mode_totals_match_page_tables(self, engine):
        report = hot_page_report(engine)
        total_mappings = sum(len(n.page_table.mode)
                             for n in engine.machine.nodes)
        assert sum(report["mapping_mode_totals"].values()) == total_mappings

    def test_home_counts_balanced(self, engine):
        report = hot_page_report(engine)
        assert report["home_imbalance"] == 0  # balanced first-touch

    def test_cached_counts_match_pools(self, engine):
        report = hot_page_report(engine)
        for node in engine.machine.nodes:
            assert report["cached_pages_per_node"][node.id] == \
                node.pool.in_use

    def test_render(self, engine):
        out = render_hot_pages(engine)
        assert "Hottest pages" in out
        assert "home imbalance 0" in out

    def test_cli_command(self, capsys):
        from repro.harness.cli import main
        assert main(["--scale", "0.2", "hotpages", "fft", "ascoma",
                     "--pressure", "0.5"]) == 0
        out = capsys.readouterr().out
        assert "Per-node page-cache" in out
