"""Regenerate the regression corpus.

Each subdirectory of ``tests/corpus/`` is a failure-replay bundle
(:class:`repro.check.ReproBundle`); ``tests/test_corpus.py`` replays
every entry and requires the checker to report exactly the recorded
violations.  The corpus pins down past failure modes (and known-clean
configurations) as deterministic replay cases.

Run from the repository root after an intentional simulator change::

    PYTHONPATH=src python tests/corpus/regenerate.py

then review the diff of the regenerated ``bundle.json`` files -- a
changed violation list means simulator behaviour changed.
"""

import os

from repro.check import InvariantChecker, ReproBundle, TraceShrinker
from repro.core import make_policy
from repro.sim.config import SystemConfig
from repro.sim.engine import Engine
from repro.workloads import migratory, synthetic

CORPUS = os.path.dirname(os.path.abspath(__file__))


def capture(name, workload, arch, policy_kwargs, config,
            granularity="event"):
    """Run, attach a checker, and save the bundle under *name*."""
    engine = Engine(workload, make_policy(arch, **policy_kwargs), config)
    checker = InvariantChecker.attach(engine, granularity=granularity)
    engine.run()
    bundle = ReproBundle.capture(engine, checker, architecture=arch,
                                 policy_kwargs=policy_kwargs)
    bundle.save(os.path.join(CORPUS, name))
    print(f"{name}: {checker.violation_count()} violation(s),"
          f" {sum(len(t.kinds) for t in workload.traces)} events")
    return bundle


def main():
    base = dict(n_nodes=4, home_pages_per_node=6, remote_pages_per_node=10,
                sweeps=5, lines_per_visit=8, hot_fraction=0.8,
                home_lines_per_sweep=32, seed=3)

    # 1. The seeded protocol bug (dropped invalidations to node 1),
    #    shrunk to a minimal trace before capture so replay is instant.
    wl = synthetic.generate(write_fraction=0.5, **base)
    cfg = SystemConfig(n_nodes=4, memory_pressure=0.5,
                       debug_skip_invalidate_node=1)
    kwargs = dict(threshold=8, increment=4)
    engine = Engine(wl, make_policy("ASCOMA", **kwargs), cfg)
    checker = InvariantChecker.attach(engine, granularity="event")
    engine.run()
    assert checker.violations, "seeded bug no longer reproduces"
    full = ReproBundle.capture(engine, checker, architecture="ASCOMA",
                               policy_kwargs=kwargs)
    shrunk = TraceShrinker(full).minimise()
    capture("ascoma-skip-invalidate", shrunk, "ASCOMA", kwargs, cfg)

    # 2. Known-clean: VC-NUMA under high pressure (eviction-heavy).
    wl = synthetic.generate(write_fraction=0.3, **base)
    capture("vcnuma-highpressure-clean", wl, "VCNUMA",
            dict(threshold=8, break_even=4, increment=4),
            SystemConfig(n_nodes=4, memory_pressure=0.9))

    # 3. Known-clean: home migration under CC-NUMA-MIG.
    wl = migratory.generate(scale=0.25, sweeps=6)
    capture("ccnumamig-migratory-clean", wl, "CCNUMAMIG",
            dict(threshold=8),
            SystemConfig(n_nodes=wl.n_nodes, memory_pressure=0.5))


if __name__ == "__main__":
    main()
