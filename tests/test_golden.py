"""Golden regression pins.

The engine is fully deterministic (fixed generator seeds, no wall-clock
anywhere), so a handful of exact end-to-end counter pins catch any
unintended behavioural change -- a policy edit, a latency tweak, an
accounting slip -- that the shape-level benches might absorb.

If a pin fails because of an *intended* model change: rerun the
generator snippet in the module docstring of this file's git history,
review the deltas against EXPERIMENTS.md, and update the table.
"""

import pytest

from repro.harness.experiment import run_app

# (app, arch, pressure) -> (total_cycles, shared_misses, HOME, SCOMA,
#                           RAC, COLD, CONF_CAPC, relocations, evictions,
#                           K_OVERHD), all at workload scale 0.25.
GOLDEN = {
    ("fft", "CCNUMA", 0.5):
        (3554202, 42690, 38233, 0, 2435, 1315, 707, 0, 0, 0),
    ("em3d", "ASCOMA", 0.9):
        (7401597, 59797, 41023, 1942, 815, 4589, 11428, 0, 0, 20160),
    ("radix", "RNUMA", 0.3):
        (19587756, 64146, 17057, 2319, 739, 31284, 12747, 744, 597, 6205130),
    ("lu", "SCOMA", 0.7):
        (2575162, 24938, 17481, 5660, 0, 1797, 0, 0, 36, 149520),
}

FIELDS = ("total_cycles", "shared_misses", "HOME", "SCOMA", "RAC", "COLD",
          "CONF_CAPC", "relocations", "evictions", "K_OVERHD")


def _check_golden(key):
    app, arch, pressure = key
    agg = run_app(app, arch, pressure, scale=0.25).aggregate()
    measured = (agg.total_cycles(), agg.shared_misses(), agg.HOME, agg.SCOMA,
                agg.RAC, agg.COLD, agg.CONF_CAPC, agg.relocations,
                agg.evictions, agg.K_OVERHD)
    expected = GOLDEN[key]
    diffs = {field: (m, e) for field, m, e in
             zip(FIELDS, measured, expected) if m != e}
    assert not diffs, f"golden drift for {key}: {diffs}"


@pytest.mark.parametrize("key", sorted(GOLDEN))
def test_golden_counters(key):
    """The pins, replayed through the default (fast-path) engine."""
    _check_golden(key)


@pytest.mark.parametrize("key", sorted(GOLDEN))
def test_golden_counters_reference_path(key, monkeypatch):
    """The same pins through the pre-optimization reference loop.

    Together with ``test_golden_counters`` this nails both replay loops
    to the *same* seed-era numbers -- the goldens predate the fast
    path, so neither loop may have drifted from the original model
    (tests/test_perf_parity.py checks the loops against each other;
    this checks them against history).
    """
    monkeypatch.delenv("REPRO_VECTOR_PATH", raising=False)
    monkeypatch.setenv("REPRO_SLOW_PATH", "1")
    _check_golden(key)


@pytest.mark.parametrize("key", sorted(GOLDEN))
def test_golden_counters_vector_path(key, monkeypatch):
    """The same pins through the vectorized SoA loop.

    With all three loop variants pinned to the identical table, the
    engine's mutual-checking triangle is anchored to history: the
    vector path (repro.sim.soatrace) may never drift from the numbers
    the scalar loops have carried since the seed.  When the compiled
    kernel is unavailable the engine silently degrades to the fast
    path, which this test then re-pins -- still a valid assertion.
    """
    monkeypatch.delenv("REPRO_SLOW_PATH", raising=False)
    monkeypatch.setenv("REPRO_VECTOR_PATH", "1")
    _check_golden(key)
