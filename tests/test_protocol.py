"""Unit tests for the coherence protocol's latency composition."""


from repro.coherence.directory import Directory
from repro.coherence.protocol import CoherenceProtocol
from repro.interconnect.network import Network
from repro.interconnect.topology import SwitchTopology
from repro.mem.dram import BankedMemory


def make_protocol(n_nodes=4, contention=False):
    directory = Directory(n_nodes, 32)
    network = Network(SwitchTopology(n_nodes), propagation=2, fall_through=4,
                      port_occupancy=8 if contention else 0)
    memories = [BankedMemory(4, 50, 20) for _ in range(n_nodes)]
    invalidated = []
    demoted = []
    protocol = CoherenceProtocol(
        directory, network, memories,
        invalidate_chunk=lambda n, c, now=None: invalidated.append((n, c)),
        demote_chunk=lambda n, c, now=None: demoted.append((n, c)))
    return protocol, invalidated, demoted


class TestRemoteFetch:
    def test_two_hop_latency(self):
        protocol, _, _ = make_protocol()
        res = protocol.remote_fetch(node=1, chunk=0, page=0, home=0,
                                    is_write=False, threshold=0, now=0)
        # request (6) + memory (50) + response (6)
        assert res.latency == 62

    def test_three_hop_costs_more(self):
        protocol, _, _ = make_protocol()
        protocol.remote_fetch(2, 0, 0, 0, True, 0, 0)  # node 2 dirties chunk
        res = protocol.remote_fetch(1, 0, 0, 0, False, 0, 100)
        assert res.outcome.forwarded
        assert res.latency > 62
        assert protocol.three_hop_fetches == 1

    def test_forwarded_read_demotes_owner(self):
        protocol, _, demoted = make_protocol()
        protocol.remote_fetch(2, 0, 0, 0, True, 0, 0)
        protocol.remote_fetch(1, 0, 0, 0, False, 0, 100)
        assert (2, 0) in demoted

    def test_write_invalidates_and_stalls(self):
        protocol, invalidated, _ = make_protocol()
        protocol.remote_fetch(1, 0, 0, 0, False, 0, 0)
        protocol.remote_fetch(2, 0, 0, 0, False, 0, 0)
        res = protocol.remote_fetch(3, 0, 0, 0, True, 0, 100)
        assert set(invalidated) == {(1, 0), (2, 0)}
        assert res.latency > 62  # invalidation round trip added
        assert protocol.write_stalls == 1

    def test_refetch_flag_passed_through(self):
        protocol, _, _ = make_protocol()
        protocol.remote_fetch(1, 0, 0, 0, False, 0, 0)
        res = protocol.remote_fetch(1, 0, 0, 0, False, 0, 0)
        assert res.outcome.refetch

    def test_counts_fetches(self):
        protocol, _, _ = make_protocol()
        protocol.remote_fetch(1, 0, 0, 0, False, 0, 0)
        protocol.remote_fetch(1, 1, 0, 0, False, 0, 0)
        assert protocol.remote_fetches == 2


class TestLocalFetch:
    def test_local_latency_is_memory_only(self):
        protocol, _, _ = make_protocol()
        res = protocol.local_fetch(0, 0, 0, False, 0)
        assert res.latency == 50

    def test_local_fetch_of_remotely_dirty_chunk(self):
        protocol, _, _ = make_protocol()
        protocol.remote_fetch(1, 0, 0, 0, True, 0, 0)
        res = protocol.local_fetch(0, 0, 0, False, 100)
        assert res.outcome.forwarded
        assert res.latency > 50

    def test_local_write_invalidates_sharers(self):
        protocol, invalidated, _ = make_protocol()
        protocol.remote_fetch(1, 0, 0, 0, False, 0, 0)
        protocol.local_fetch(0, 0, 0, True, 100)
        assert (1, 0) in invalidated


class TestUpgrade:
    def test_upgrade_round_trip(self):
        protocol, _, _ = make_protocol()
        protocol.remote_fetch(1, 0, 0, 0, False, 0, 0)
        lat = protocol.upgrade(1, 0, 0, 0, 100)
        assert lat >= 12  # request/response network legs

    def test_upgrade_at_home_is_free_without_sharers(self):
        protocol, _, _ = make_protocol()
        protocol.local_fetch(0, 0, 0, False, 0)
        assert protocol.upgrade(0, 0, 0, 0, 100) == 0

    def test_upgrade_invalidates_other_sharers(self):
        protocol, invalidated, _ = make_protocol()
        protocol.remote_fetch(1, 0, 0, 0, False, 0, 0)
        protocol.remote_fetch(2, 0, 0, 0, False, 0, 0)
        protocol.upgrade(1, 0, 0, 0, 100)
        assert (2, 0) in invalidated
        assert (1, 0) not in invalidated


class TestContention:
    def test_port_contention_raises_latency(self):
        quiet, _, _ = make_protocol(contention=False)
        busy, _, _ = make_protocol(contention=True)
        base = quiet.remote_fetch(1, 0, 0, 0, False, 0, 0).latency
        # Hammer the same home at the same instant.
        lats = [busy.remote_fetch(n, c, 0, 0, False, 0, 0).latency
                for n, c in ((1, 0), (2, 1), (3, 2))]
        assert max(lats) > base
