"""Unit tests for the direct-mapped L1 model."""

import pytest

from repro.mem.address import AddressMap
from repro.mem.cache import DirectMappedCache


@pytest.fixture
def cache():
    return DirectMappedCache(8192, 32)  # 256 sets, the paper's L1


class TestBasics:
    def test_sizes(self, cache):
        assert cache.n_sets == 256

    def test_rejects_bad_sizes(self):
        with pytest.raises(ValueError):
            DirectMappedCache(1000, 32)
        with pytest.raises(ValueError):
            DirectMappedCache(96, 32)  # 3 sets: not a power of two

    def test_miss_then_hit(self, cache):
        assert not cache.lookup(42)
        cache.fill(42)
        assert cache.lookup(42)
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_conflict_eviction(self, cache):
        cache.fill(1)
        victim = cache.fill(1 + 256)  # same set
        assert victim == 1
        assert not cache.contains(1)
        assert cache.contains(257)

    def test_fill_same_line_is_noop(self, cache):
        cache.fill(5)
        assert cache.fill(5) == -1

    def test_fill_empty_set_returns_minus_one(self, cache):
        assert cache.fill(9) == -1

    def test_contains_does_not_touch_stats(self, cache):
        cache.fill(3)
        h, m = cache.stats.hits, cache.stats.misses
        cache.contains(3)
        cache.contains(999)
        assert (cache.stats.hits, cache.stats.misses) == (h, m)


class TestDirtyAndWritebacks:
    def test_dirty_eviction_counts_writeback(self, cache):
        cache.fill(1, dirty=True)
        cache.fill(257)
        assert cache.stats.writebacks == 1

    def test_clean_eviction_no_writeback(self, cache):
        cache.fill(1, dirty=False)
        cache.fill(257)
        assert cache.stats.writebacks == 0

    def test_mark_dirty(self, cache):
        cache.fill(1)
        cache.mark_dirty(1)
        cache.fill(257)
        assert cache.stats.writebacks == 1

    def test_mark_dirty_misses_silently(self, cache):
        cache.mark_dirty(1)  # not resident: no crash, no effect
        cache.fill(257)
        assert cache.stats.writebacks == 0

    def test_refill_with_dirty_updates_state(self, cache):
        cache.fill(5, dirty=False)
        cache.fill(5, dirty=True)
        cache.fill(5 + 256)
        assert cache.stats.writebacks == 1


class TestInvalidation:
    def test_invalidate_resident_line(self, cache):
        cache.fill(7)
        assert cache.invalidate_line(7)
        assert not cache.contains(7)
        assert cache.stats.invalidations == 1

    def test_invalidate_absent_line(self, cache):
        assert not cache.invalidate_line(7)

    def test_invalidate_wrong_tag_same_set(self, cache):
        cache.fill(7)
        assert not cache.invalidate_line(7 + 256)
        assert cache.contains(7)


class TestFlushPage:
    def test_flush_removes_all_page_lines(self, cache):
        amap = AddressMap()
        page = 3
        lines = [amap.line_id(page, i) for i in range(0, 128, 8)]
        for line in lines:
            cache.fill(line)
        flushed = cache.flush_page(page)
        assert flushed == len(lines)
        for line in lines:
            assert not cache.contains(line)

    def test_flush_leaves_other_pages(self, cache):
        amap = AddressMap()
        mine = amap.line_id(1, 5)
        # Same set as `mine` requires a line id differing by a multiple
        # of 256; page 3 line 5 = 389, page 1 line 5 = 133: both map to
        # set 133.  Use page 0 and page 2 lines instead (disjoint sets).
        other = amap.line_id(2, 6)
        cache.fill(mine)
        cache.fill(other)
        cache.flush_page(1)
        assert not cache.contains(mine)
        assert cache.contains(other)

    def test_flush_empty_page_returns_zero(self, cache):
        assert cache.flush_page(9) == 0

    def test_flush_counts_stat(self, cache):
        amap = AddressMap()
        cache.fill(amap.line_id(2, 0))
        cache.flush_page(2)
        assert cache.stats.flushed_lines == 1

    def test_flush_with_cache_smaller_than_page(self):
        # 2 KiB cache = 64 sets < 128 lines/page: sets wrap.
        small = DirectMappedCache(2048, 32)
        amap = AddressMap()
        for i in range(128):
            small.fill(amap.line_id(4, i))
        flushed = small.flush_page(4)
        assert flushed == 64  # one resident line per set
        assert all(t == -1 for t in small.tags)

    def test_resident_lines_of_page(self, cache):
        amap = AddressMap()
        cache.fill(amap.line_id(5, 0))
        cache.fill(amap.line_id(5, 1))
        assert sorted(cache.resident_lines_of_page(5)) == [
            amap.line_id(5, 0), amap.line_id(5, 1)]

    def test_clear(self, cache):
        cache.fill(1)
        cache.clear()
        assert not cache.contains(1)
