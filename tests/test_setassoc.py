"""Unit tests for the set-associative L1 (conflict-miss sensitivity study)."""

import pytest

from repro.mem.address import AddressMap
from repro.mem.cache import DirectMappedCache
from repro.mem.setassoc import SetAssociativeCache


@pytest.fixture
def cache():
    return SetAssociativeCache(8192, 32, ways=2)  # 128 sets x 2 ways


class TestBasics:
    def test_geometry(self, cache):
        assert cache.n_sets == 128
        assert cache.ways == 2

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            SetAssociativeCache(8192, 32, ways=0)
        with pytest.raises(ValueError):
            SetAssociativeCache(8192, 32, ways=3)  # 85.33 sets
        with pytest.raises(ValueError):
            SetAssociativeCache(96 * 32, 32, ways=1)  # 96 sets: not pow2

    def test_miss_then_hit(self, cache):
        assert not cache.lookup(5)
        cache.fill(5)
        assert cache.lookup(5)

    def test_two_conflicting_lines_coexist(self, cache):
        a, b = 5, 5 + 128
        cache.fill(a)
        cache.fill(b)
        assert cache.contains(a) and cache.contains(b)

    def test_third_conflicting_line_evicts_lru(self, cache):
        a, b, c = 5, 5 + 128, 5 + 256
        cache.fill(a)
        cache.fill(b)
        victim = cache.fill(c)
        assert victim == a
        assert not cache.contains(a)
        assert cache.contains(b) and cache.contains(c)

    def test_lookup_refreshes_lru(self, cache):
        a, b, c = 5, 5 + 128, 5 + 256
        cache.fill(a)
        cache.fill(b)
        cache.lookup(a)           # a becomes MRU
        victim = cache.fill(c)
        assert victim == b

    def test_refill_same_line_is_noop(self, cache):
        cache.fill(5)
        assert cache.fill(5) == -1


class TestDirty:
    def test_dirty_eviction_writes_back(self, cache):
        cache.fill(5, dirty=True)
        cache.fill(5 + 128)
        cache.fill(5 + 256)
        assert cache.stats.writebacks == 1

    def test_mark_dirty_then_evict(self, cache):
        cache.fill(5)
        cache.mark_dirty(5)
        cache.fill(5 + 128)
        cache.fill(5 + 256)
        assert cache.stats.writebacks == 1

    def test_invalidate_clears_dirty(self, cache):
        cache.fill(5, dirty=True)
        assert cache.invalidate_line(5)
        cache.fill(5 + 128)
        cache.fill(5 + 256)
        assert cache.stats.writebacks == 0


class TestFlushPage:
    def test_flush_page(self, cache):
        amap = AddressMap()
        lines = [amap.line_id(3, i) for i in range(0, 64, 4)]
        for line in lines:
            cache.fill(line)
        flushed = cache.flush_page(3)
        assert flushed == len(lines)
        assert not any(cache.contains(line) for line in lines)

    def test_flush_keeps_other_pages(self, cache):
        amap = AddressMap()
        mine = amap.line_id(1, 0)
        other = amap.line_id(2, 1)
        cache.fill(mine)
        cache.fill(other)
        cache.flush_page(1)
        assert cache.contains(other)

    def test_resident_lines_of_page(self, cache):
        amap = AddressMap()
        cache.fill(amap.line_id(7, 0))
        cache.fill(amap.line_id(7, 1))
        assert len(cache.resident_lines_of_page(7)) == 2

    def test_clear(self, cache):
        cache.fill(1)
        cache.clear()
        assert not cache.contains(1)


class TestAgainstDirectMapped:
    def test_one_way_matches_direct_mapped_hits(self):
        """A 1-way associative cache must behave like the direct-mapped one."""
        assoc = SetAssociativeCache(2048, 32, ways=1)
        direct = DirectMappedCache(2048, 32)
        import random
        rng = random.Random(7)
        refs = [rng.randrange(0, 4096) for _ in range(2000)]
        for line in refs:
            ha = assoc.lookup(line)
            hd = direct.lookup(line)
            assert ha == hd
            if not ha:
                assoc.fill(line)
                direct.fill(line)

    def test_higher_associativity_never_fewer_hits_on_loop(self):
        """Associativity removes conflict misses on a cyclic working set
        that fits the cache (the textbook LRU caveat applies only when
        the set is larger than the cache)."""
        refs = [0, 256] * 50  # conflict in 256-set direct, coexist in 2-way
        direct = DirectMappedCache(8192, 32)
        assoc = SetAssociativeCache(8192, 32, ways=2)
        for line in refs:
            if not direct.lookup(line):
                direct.fill(line)
            if not assoc.lookup(line):
                assoc.fill(line)
        assert assoc.stats.hits > direct.stats.hits


class TestEngineIntegration:
    def test_engine_runs_with_associative_l1(self):
        from repro.core import CCNUMAPolicy
        from repro.sim.config import SystemConfig
        from repro.sim.engine import simulate
        from tests.conftest import make_micro_workload

        wl = make_micro_workload()
        cfg = SystemConfig(n_nodes=2, l1_ways=2, memory_pressure=0.5,
                           model_contention=False)
        result = simulate(wl, CCNUMAPolicy(), cfg)
        assert result.aggregate().shared_misses() > 0

    def test_associativity_reduces_conflict_refetches(self):
        """More ways -> fewer L1 conflict misses -> fewer remote refetches
        -- the mechanism the whole hybrid story depends on."""
        from repro.core import CCNUMAPolicy
        from repro.sim.config import SystemConfig
        from repro.sim.engine import simulate
        from repro.workloads import synthetic

        wl = synthetic.generate(n_nodes=2, home_pages_per_node=8,
                                remote_pages_per_node=8, sweeps=6,
                                lines_per_visit=8, hot_fraction=1.0,
                                home_lines_per_sweep=16, line_repeats=1,
                                write_fraction=0.0, seed=5)
        results = {}
        for ways in (1, 8):
            cfg = SystemConfig(n_nodes=2, l1_ways=ways, memory_pressure=0.5,
                               model_contention=False)
            results[ways] = simulate(wl, CCNUMAPolicy(), cfg).aggregate()
        assert results[8].l1_hits >= results[1].l1_hits
        assert results[8].CONF_CAPC <= results[1].CONF_CAPC
