"""Unit tests for SystemConfig and its derived quantities."""

import pytest

from repro.sim.config import SystemConfig


class TestDefaults:
    def test_paper_table3_values(self):
        cfg = SystemConfig()
        assert cfg.l1_size_bytes == 8192
        assert cfg.line_bytes == 32
        assert cfg.chunk_bytes == 128
        assert cfg.page_bytes == 4096
        assert cfg.clock_mhz == 120

    def test_table4_latencies(self):
        cfg = SystemConfig()
        assert cfg.l1_hit_cycles == 1
        assert cfg.local_memory_cycles == 50
        assert cfg.rac_hit_cycles == 36
        assert cfg.remote_min_cycles() == 180

    def test_remote_to_local_ratio_is_paper_value(self):
        assert SystemConfig().remote_to_local_ratio() == pytest.approx(3.6)

    def test_address_map_geometry(self):
        amap = SystemConfig().address_map()
        assert amap.lines_per_page == 128
        assert amap.chunks_per_page == 32


class TestCacheFrames:
    @pytest.mark.parametrize("pressure,home,expected", [
        (0.1, 100, 900),   # 10% pressure: 9x home pages free
        (0.5, 100, 100),
        (0.9, 100, 11),
        (1.0, 100, 0),     # no free memory at all
    ])
    def test_cache_frames(self, pressure, home, expected):
        cfg = SystemConfig(memory_pressure=pressure)
        assert cfg.cache_frames(home) == expected

    def test_total_frames(self):
        cfg = SystemConfig(memory_pressure=0.5)
        assert cfg.total_frames(100) == 200

    def test_negative_home_rejected(self):
        with pytest.raises(ValueError):
            SystemConfig().cache_frames(-1)

    def test_ideal_pressure_boundary(self):
        """At p = H/(H+R) the cache holds exactly R pages."""
        h, r = 60, 40
        p = h / (h + r)
        cfg = SystemConfig(memory_pressure=p)
        assert cfg.cache_frames(h) == r


class TestValidation:
    def test_pressure_bounds(self):
        with pytest.raises(ValueError):
            SystemConfig(memory_pressure=0.0)
        with pytest.raises(ValueError):
            SystemConfig(memory_pressure=1.5)

    def test_nodes_positive(self):
        with pytest.raises(ValueError):
            SystemConfig(n_nodes=0)

    def test_rac_must_beat_remote(self):
        with pytest.raises(ValueError):
            SystemConfig(rac_hit_cycles=500)


class TestCopies:
    def test_at_pressure(self):
        cfg = SystemConfig(memory_pressure=0.5)
        other = cfg.at_pressure(0.9)
        assert other.memory_pressure == 0.9
        assert cfg.memory_pressure == 0.5  # original untouched
        assert other.n_nodes == cfg.n_nodes

    def test_with_nodes(self):
        assert SystemConfig().with_nodes(4).n_nodes == 4

    def test_describe_contains_key_rows(self):
        desc = SystemConfig().describe()
        assert "L1 Cache" in desc and "RAC" in desc and "Network" in desc
        assert "3.60" in desc["Remote:local ratio"]
