"""Property-based tests (hypothesis) for core data-structure invariants."""

from collections import Counter

from hypothesis import given, strategies as st

from repro.coherence.directory import Directory
from repro.kernel.allocation import HomeAllocator
from repro.kernel.freelist import FreePagePool
from repro.mem.address import AddressMap
from repro.mem.cache import DirectMappedCache
from repro.mem.rac import RemoteAccessCache

lines = st.integers(min_value=0, max_value=1 << 20)
nodes4 = st.integers(min_value=0, max_value=3)


class TestCacheProperties:
    @given(st.lists(lines, max_size=200))
    def test_cache_never_holds_duplicate_sets(self, refs):
        cache = DirectMappedCache(2048, 32)
        for line in refs:
            if not cache.lookup(line):
                cache.fill(line)
        resident = [t for t in cache.tags if t != -1]
        sets = [t & cache.set_mask for t in resident]
        assert len(sets) == len(set(sets))
        # Every resident line sits in its own set.
        for s, t in enumerate(cache.tags):
            if t != -1:
                assert t & cache.set_mask == s

    @given(st.lists(lines, max_size=200))
    def test_hits_plus_misses_equals_lookups(self, refs):
        cache = DirectMappedCache(1024, 32)
        for line in refs:
            if not cache.lookup(line):
                cache.fill(line)
        assert cache.stats.hits + cache.stats.misses == len(refs)

    @given(st.lists(lines, max_size=100),
           st.integers(min_value=0, max_value=50))
    def test_flush_page_removes_exactly_that_page(self, refs, page):
        amap = AddressMap()
        cache = DirectMappedCache(8192, 32, amap)
        for line in refs:
            cache.fill(line)
        before = {t for t in cache.tags if t != -1}
        flushed = cache.flush_page(page)
        after = {t for t in cache.tags if t != -1}
        gone = before - after
        assert all(amap.page_of_line(t) == page for t in gone)
        assert len(gone) == flushed
        assert not any(amap.page_of_line(t) == page for t in after)

    @given(st.lists(st.tuples(lines, st.booleans()), max_size=200))
    def test_lookup_after_fill_always_hits(self, ops):
        cache = DirectMappedCache(1024, 32)
        for line, dirty in ops:
            cache.fill(line, dirty)
            assert cache.contains(line)


class TestRACProperties:
    @given(st.lists(st.integers(min_value=0, max_value=10_000), max_size=200),
           st.sampled_from([1, 2, 4, 8]))
    def test_rac_membership_consistent(self, chunks, entries):
        rac = RemoteAccessCache(entries)
        resident: dict[int, int] = {}
        for chunk in chunks:
            rac.fill(chunk)
            resident[chunk & rac.entry_mask] = chunk
        for slot, chunk in resident.items():
            assert rac.contains(chunk)


class TestDirectoryProperties:
    @given(st.lists(st.tuples(nodes4,
                              st.integers(min_value=0, max_value=63),
                              st.booleans()),
                    max_size=300))
    def test_writer_is_sole_sharer_after_write(self, ops):
        d = Directory(4, 32)
        last_writer: dict[int, int] = {}
        for node, chunk, is_write in ops:
            d.fetch(node, chunk, chunk // 32, is_write, threshold=0)
            if is_write:
                last_writer[chunk] = node
                assert d.sharers(chunk) == [node]
                assert d.owner[chunk] == node

    @given(st.lists(st.tuples(nodes4, st.integers(0, 63)), max_size=300))
    def test_reader_always_in_copyset_after_fetch(self, ops):
        d = Directory(4, 32)
        for node, chunk in ops:
            d.fetch(node, chunk, chunk // 32, False, 0)
            assert d.is_cached_by(chunk, node)

    @given(st.lists(st.tuples(nodes4, st.integers(0, 63)), max_size=200),
           nodes4, st.integers(0, 1))
    def test_drop_node_is_idempotent(self, ops, victim, page):
        d = Directory(4, 32)
        for node, chunk in ops:
            d.fetch(node, chunk, chunk // 32, False, 0)
        d.drop_node_from_page(victim, page)
        assert d.drop_node_from_page(victim, page) == 0

    @given(st.integers(min_value=1, max_value=30))
    def test_hint_cadence_matches_threshold(self, threshold):
        d = Directory(4, 32)
        d.fetch(0, 0, 0, False, threshold)  # join copyset
        hints = 0
        n = threshold * 3
        for _ in range(n):
            if d.fetch(0, 0, 0, False, threshold).relocation_hint:
                hints += 1
        assert hints == n // threshold


class TestAllocatorProperties:
    @given(st.lists(st.tuples(st.integers(0, 127), nodes4), min_size=1,
                    max_size=300))
    def test_homes_sticky_and_balanced(self, touches):
        total_pages = 128
        alloc = HomeAllocator(4, total_pages)
        first_seen: dict[int, int] = {}
        for page, toucher in touches:
            home = alloc.home_of(page, toucher)
            first_seen.setdefault(page, home)
            assert home == first_seen[page]
        counts = Counter(alloc.home.values())
        assert all(c <= alloc.quota for c in counts.values())

    @given(st.integers(min_value=1, max_value=8),
           st.integers(min_value=0, max_value=200))
    def test_quota_covers_all_pages(self, n_nodes, total):
        alloc = HomeAllocator(n_nodes, total)
        assert alloc.quota * n_nodes >= total


class TestFreePoolProperties:
    @given(st.lists(st.booleans(), max_size=300),
           st.integers(min_value=1, max_value=50))
    def test_free_count_bounded(self, ops, capacity):
        pool = FreePagePool(capacity, capacity * 10)
        held = 0
        for allocate in ops:
            if allocate:
                if pool.try_allocate():
                    held += 1
            elif held:
                pool.release()
                held -= 1
        assert 0 <= pool.free <= pool.capacity
        assert pool.free + held == pool.capacity
        assert pool.in_use == held


class TestAddressMapProperties:
    @given(st.integers(min_value=0, max_value=1 << 30))
    def test_line_decomposition_consistent(self, line):
        amap = AddressMap()
        page = amap.page_of_line(line)
        chunk = amap.chunk_of_line(line)
        assert amap.page_of_chunk(chunk) == page
        assert amap.line_id(page, amap.line_in_page(line)) == line
        assert line in amap.lines_of_chunk(chunk)
        assert chunk in amap.chunks_of_page(page)

    @given(st.integers(min_value=0, max_value=1 << 20))
    def test_chunk_in_page_bounds(self, line):
        amap = AddressMap()
        assert 0 <= amap.chunk_in_page(line) < amap.chunks_per_page
