"""Regression corpus replay.

Every subdirectory of ``tests/corpus/`` is a deterministic replay
bundle (see ``tests/corpus/regenerate.py``).  Replaying one must
reproduce *exactly* the violations recorded at capture time -- a
mismatch means either a regression (a clean case now violates) or a
silent behaviour change (a captured failure shifted or vanished), and
both deserve a deliberate corpus regeneration, not a green build.
"""

import os

import pytest

from repro.check import ReproBundle

CORPUS = os.path.join(os.path.dirname(__file__), "corpus")
# Only directories that actually hold a bundle: tooling byproducts like
# __pycache__ (regenerate.py gets imported/compiled) are not entries.
ENTRIES = sorted(
    name for name in os.listdir(CORPUS)
    if os.path.isfile(os.path.join(CORPUS, name, "bundle.json")))


# Replay every bundle under each replay-loop selection.  The checker
# that replay() attaches subscribes an unfiltered observer, which makes
# vector-path engines degrade to the scalar fast path -- so the vector
# leg proves the degradation is loss-free under REPRO_VECTOR_PATH=1,
# exactly like the REPRO_SLOW_PATH leg proves the reference loop
# reproduces the recorded violations.
_PATH_ENVS = [
    pytest.param({}, id="fast"),
    pytest.param({"REPRO_SLOW_PATH": "1"}, id="reference"),
    pytest.param({"REPRO_VECTOR_PATH": "1"}, id="vector"),
]


@pytest.mark.parametrize("path_env", _PATH_ENVS)
@pytest.mark.parametrize("entry", ENTRIES)
def test_replay_reproduces_recorded_violations(entry, path_env, monkeypatch):
    for var in ("REPRO_SLOW_PATH", "REPRO_VECTOR_PATH"):
        monkeypatch.delenv(var, raising=False)
    for var, value in path_env.items():
        monkeypatch.setenv(var, value)
    bundle = ReproBundle.load(os.path.join(CORPUS, entry))
    result, checker = bundle.replay()
    assert ([v.as_dict() for v in checker.violations]
            == [v.as_dict() for v in bundle.violations])
    assert result.invariant_violations == len(bundle.violations)


def test_corpus_has_entries():
    # Guard against the parametrised test silently collecting nothing.
    assert len(ENTRIES) >= 3
    assert "ascoma-skip-invalidate" in ENTRIES


def test_seeded_entry_is_minimal_and_contextualised():
    bundle = ReproBundle.load(os.path.join(CORPUS, "ascoma-skip-invalidate"))
    assert sum(len(t.kinds) for t in bundle.workload.traces) < 50
    assert bundle.violations
    first = bundle.violations[0]
    assert first.invariant == "cache-reachability"
    assert first.node >= 0 and first.page >= 0 and first.clock >= 0
