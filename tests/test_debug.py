"""Tests for the bounded page-management event trace."""

import pytest

from repro.harness.experiment import scaled_policy
from repro.sim.config import SystemConfig
from repro.sim.debug import Event, EventTrace
from repro.sim.engine import Engine
from repro.workloads import generate_workload


def run_traced(arch, pressure, scale=0.25, node_id=0, **kwargs):
    wl = generate_workload("em3d", scale=scale)
    cfg = SystemConfig(n_nodes=wl.n_nodes, memory_pressure=pressure)
    engine = Engine(wl, scaled_policy(arch, **kwargs), cfg)
    trace = EventTrace.attach(engine.machine.nodes[node_id])
    engine.run()
    return trace, engine


class TestEventTrace:
    def test_records_scoma_mappings(self):
        trace, engine = run_traced("ASCOMA", 0.1)
        maps = trace.of_kind("map_scoma")
        assert len(maps) == engine.machine.nodes[0].page_table.scoma_page_count()

    def test_records_relocations_and_flushes(self):
        trace, engine = run_traced("RNUMA", 0.1)
        assert len(trace.of_kind("relocate")) == \
            engine.machine.nodes[0].stats.relocations
        # Every relocation flushes the page first.
        assert len(trace.of_kind("flush")) >= len(trace.of_kind("relocate"))

    def test_evictions_tagged_forced_or_daemon(self):
        trace, engine = run_traced("SCOMA", 0.9)
        evictions = trace.of_kind("evict")
        assert evictions
        assert {e.detail for e in evictions} <= {"forced", "daemon"}
        forced = sum(1 for e in evictions if e.detail == "forced")
        assert forced == engine.machine.nodes[0].stats.forced_evictions

    def test_bounded(self):
        trace = EventTrace(limit=2)
        for page in range(5):
            trace.record("map_scoma", 0, page)
        assert len(trace) == 2
        assert trace.dropped == 3

    def test_ping_pong_detection(self):
        trace = EventTrace()
        for _ in range(3):
            trace.record("map_scoma", 0, 7)
            trace.record("evict", 0, 7)
        trace.record("map_scoma", 0, 9)
        hot = trace.ping_pong_pages(min_cycles=2)
        assert 7 in hot and 9 not in hot
        assert hot[7] == 3

    def test_thrashing_run_shows_ping_pong(self):
        trace, _ = run_traced("RNUMA", 0.9)
        # Under thrashing, some pages cycle through the cache repeatedly.
        assert trace.ping_pong_pages(min_cycles=2)

    def test_pages_accessor(self):
        trace = EventTrace()
        trace.record("flush", 1, 3)
        trace.record("evict", 1, 4)
        assert trace.pages() == [3, 4]
        assert trace.pages("evict") == [4]

    def test_event_is_frozen(self):
        ev = Event("flush", 0, 1)
        with pytest.raises(AttributeError):
            ev.page = 2

    def test_attach_does_not_change_results(self):
        wl = generate_workload("em3d", scale=0.25)
        cfg = SystemConfig(n_nodes=wl.n_nodes, memory_pressure=0.7)
        plain = Engine(wl, scaled_policy("ASCOMA"), cfg).run()
        engine = Engine(wl, scaled_policy("ASCOMA"), cfg)
        EventTrace.attach(engine.machine.nodes[0])
        traced = engine.run()
        assert plain.aggregate().as_dict() == traced.aggregate().as_dict()
