"""Unit tests for the Remote Access Cache."""

import pytest

from repro.mem.rac import RemoteAccessCache


class TestSingleEntry:
    """The paper's RAC: a single 128-byte chunk buffer."""

    def test_holds_last_chunk_only(self):
        rac = RemoteAccessCache(1)
        rac.fill(10)
        assert rac.contains(10)
        rac.fill(11)
        assert not rac.contains(10)
        assert rac.contains(11)

    def test_miss_then_hit(self):
        rac = RemoteAccessCache(1)
        assert not rac.lookup(4)
        rac.fill(4)
        assert rac.lookup(4)
        assert rac.hits == 1 and rac.misses == 1

    def test_invalidate(self):
        rac = RemoteAccessCache(1)
        rac.fill(4)
        assert rac.invalidate_chunk(4)
        assert not rac.contains(4)

    def test_invalidate_absent(self):
        rac = RemoteAccessCache(1)
        assert not rac.invalidate_chunk(4)

    def test_invalidate_wrong_chunk_same_slot(self):
        rac = RemoteAccessCache(1)
        rac.fill(4)
        assert not rac.invalidate_chunk(5)
        assert rac.contains(4)


class TestMultiEntry:
    def test_direct_mapping(self):
        rac = RemoteAccessCache(4)
        rac.fill(0)
        rac.fill(1)
        rac.fill(4)  # conflicts with 0
        assert not rac.contains(0)
        assert rac.contains(1)
        assert rac.contains(4)

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            RemoteAccessCache(3)
        with pytest.raises(ValueError):
            RemoteAccessCache(0)

    def test_flush_page_drops_only_that_page(self):
        rac = RemoteAccessCache(64)
        chunks_per_page = 32
        rac.fill(5)            # page 0
        rac.fill(33)           # page 1
        flushed = rac.flush_page(0, chunks_per_page)
        assert flushed == 1
        assert not rac.contains(5)
        assert rac.contains(33)

    def test_flush_page_multiple_resident(self):
        rac = RemoteAccessCache(64)
        rac.fill(0)
        rac.fill(1)
        rac.fill(2)
        assert rac.flush_page(0, 32) == 3

    def test_clear(self):
        rac = RemoteAccessCache(2)
        rac.fill(0)
        rac.fill(1)
        rac.clear()
        assert not rac.contains(0) and not rac.contains(1)

    def test_fill_counts(self):
        rac = RemoteAccessCache(1)
        rac.fill(1)
        rac.fill(2)
        assert rac.fills == 2
