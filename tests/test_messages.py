"""Unit tests for coherence message records and the bounded log."""

import pytest

from repro.coherence.messages import Message, MessageLog, MsgKind


class TestMessage:
    def test_construction(self):
        m = Message(MsgKind.GET, src=1, dst=2, chunk=5)
        assert m.kind is MsgKind.GET
        assert not m.relocation_hint

    def test_rejects_negative_nodes(self):
        with pytest.raises(ValueError):
            Message(MsgKind.GET, src=-1, dst=0, chunk=0)
        with pytest.raises(ValueError):
            Message(MsgKind.GET, src=0, dst=-2, chunk=0)

    def test_rejects_negative_chunk(self):
        with pytest.raises(ValueError):
            Message(MsgKind.GET, src=0, dst=0, chunk=-1)

    def test_frozen(self):
        m = Message(MsgKind.ACK, 0, 1, 2)
        with pytest.raises(AttributeError):
            m.chunk = 3

    def test_all_kinds_distinct(self):
        values = [k.value for k in MsgKind]
        assert len(values) == len(set(values)) == 8


class TestMessageLog:
    def test_record_and_filter(self):
        log = MessageLog()
        log.record(Message(MsgKind.GET, 0, 1, 2))
        log.record(Message(MsgKind.DATA, 1, 0, 2))
        assert len(log) == 2
        assert len(log.of_kind(MsgKind.GET)) == 1

    def test_bounded(self):
        log = MessageLog(limit=2)
        for i in range(5):
            log.record(Message(MsgKind.ACK, 0, 1, i))
        assert len(log) == 2
        assert log.dropped == 3

    def test_clear(self):
        log = MessageLog(limit=1)
        log.record(Message(MsgKind.ACK, 0, 1, 0))
        log.record(Message(MsgKind.ACK, 0, 1, 1))
        log.clear()
        assert len(log) == 0 and log.dropped == 0
