"""Tests for the dependency-free SVG chart renderer."""

import xml.etree.ElementTree as ET

import pytest

from repro.harness.svg import figure_svg, render_stacked_svg

SVG_NS = "{http://www.w3.org/2000/svg}"


class TestRenderStackedSvg:
    def series(self):
        return {
            "CCNUMA": {"A": 0.6, "B": 0.4},
            "ASCOMA(90%)": {"A": 0.3, "B": 0.2},
        }

    def test_well_formed_xml(self):
        svg = render_stacked_svg(self.series(), ["A", "B"], "t")
        root = ET.fromstring(svg)
        assert root.tag == f"{SVG_NS}svg"

    def test_one_rect_per_nonzero_segment_plus_legend(self):
        svg = render_stacked_svg(self.series(), ["A", "B"], "t")
        root = ET.fromstring(svg)
        rects = root.findall(f".//{SVG_NS}rect")
        # 2 bars x 2 segments + 2 legend swatches.
        assert len(rects) == 6

    def test_zero_segments_omitted(self):
        svg = render_stacked_svg({"X": {"A": 1.0, "B": 0.0}}, ["A", "B"], "t")
        root = ET.fromstring(svg)
        bar_rects = [r for r in root.findall(f".//{SVG_NS}rect")
                     if float(r.get("height")) > 12]
        assert len(bar_rects) == 1

    def test_widths_proportional(self):
        svg = render_stacked_svg({"big": {"A": 2.0}, "small": {"A": 1.0}},
                                 ["A"], "t")
        root = ET.fromstring(svg)
        widths = sorted(float(r.get("width"))
                        for r in root.findall(f".//{SVG_NS}rect")
                        if float(r.get("height")) > 12)
        assert widths[1] == pytest.approx(2 * widths[0], rel=1e-3)

    def test_labels_escaped(self):
        svg = render_stacked_svg({"<evil>": {"A": 1.0}}, ["A"], "a & b")
        ET.fromstring(svg)  # would raise if unescaped
        assert "&lt;evil&gt;" in svg


class TestFigureSvg:
    def test_time_chart_written(self, tmp_path):
        path = tmp_path / "fig.svg"
        figure_svg("fft", str(path), scale=0.2)
        root = ET.fromstring(path.read_text())
        text = ET.tostring(root, encoding="unicode")
        assert "CCNUMA" in text and "U_SH_MEM" in text

    def test_miss_chart_written(self, tmp_path):
        path = tmp_path / "fig.svg"
        figure_svg("fft", str(path), scale=0.2, chart="misses")
        assert "CONF_CAPC" in path.read_text()

    def test_bad_chart_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            figure_svg("fft", str(tmp_path / "x.svg"), scale=0.2,
                       chart="pie")
