"""Unit tests for stats buckets and RunResult aggregation."""

from repro.sim.stats import MISS_CLASSES, NodeStats, RunResult, TIME_BUCKETS


def stats_with(**kwargs):
    s = NodeStats()
    for k, v in kwargs.items():
        setattr(s, k, v)
    return s


class TestNodeStats:
    def test_starts_zeroed(self):
        s = NodeStats()
        assert s.total_cycles() == 0
        assert s.shared_misses() == 0

    def test_total_cycles_sums_buckets(self):
        s = stats_with(U_SH_MEM=10, K_BASE=1, K_OVERHD=2, U_INSTR=3,
                       U_LC_MEM=4, SYNC=5)
        assert s.total_cycles() == 25
        assert s.busy_cycles() == 20

    def test_miss_classes(self):
        s = stats_with(HOME=1, SCOMA=2, RAC=3, COLD=4, CONF_CAPC=5)
        assert s.shared_misses() == 15
        assert s.remote_misses() == 9

    def test_breakdown_keys(self):
        s = NodeStats()
        assert set(s.time_breakdown()) == set(TIME_BUCKETS)
        assert set(s.miss_breakdown()) == set(MISS_CLASSES)

    def test_merge(self):
        a = stats_with(U_SH_MEM=10, HOME=1)
        b = stats_with(U_SH_MEM=5, HOME=2)
        a.merge(b)
        assert a.U_SH_MEM == 15 and a.HOME == 3

    def test_as_dict_roundtrip(self):
        s = stats_with(relocations=7)
        assert s.as_dict()["relocations"] == 7


class TestRunResult:
    def make(self, per_node_cycles):
        nodes = []
        for c in per_node_cycles:
            nodes.append(stats_with(U_SH_MEM=c, HOME=1))
        return RunResult("ASCOMA", "em3d", 0.7, nodes)

    def test_execution_time_is_slowest_node(self):
        assert self.make([10, 30, 20]).execution_time() == 30

    def test_aggregate_sums_nodes(self):
        r = self.make([10, 30])
        assert r.aggregate().U_SH_MEM == 40
        assert r.aggregate().HOME == 2

    def test_relative_time(self):
        a = self.make([10, 10])
        b = self.make([20, 20])
        assert b.relative_time(a) == 2.0

    def test_time_breakdown_normalised(self):
        r = self.make([10, 10])
        breakdown = r.time_breakdown(normalise_by=40)
        assert breakdown["U_SH_MEM"] == 0.5

    def test_kernel_overhead_fraction(self):
        nodes = [stats_with(U_SH_MEM=90, K_OVERHD=10)]
        r = RunResult("RNUMA", "radix", 0.9, nodes)
        assert r.kernel_overhead_fraction() == 0.1

    def test_summary_fields(self):
        summary = self.make([5]).summary()
        for key in ("architecture", "workload", "pressure", "execution_time",
                    "time", "misses"):
            assert key in summary

    def test_n_nodes(self):
        assert self.make([1, 2, 3]).n_nodes == 3
