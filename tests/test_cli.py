"""Tests for the CLI and the claims scorecard machinery."""

import pytest

from repro.harness.claims import Claim, render_scorecard
from repro.harness.cli import build_parser, main


class TestParser:
    def test_table_command(self):
        args = build_parser().parse_args(["table", "3"])
        assert args.command == "table" and args.number == 3

    def test_table_rejects_bad_number(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table", "9"])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "em3d", "ascoma"])
        assert args.pressure == 0.7
        assert args.scale == 0.5

    def test_global_scale_flag(self):
        args = build_parser().parse_args(["--scale", "0.25", "sweep", "fft"])
        assert args.scale == 0.25

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_table_1_static(self, capsys):
        assert main(["table", "1"]) == 0
        out = capsys.readouterr().out
        assert "Remote Memory Overhead" in out

    def test_table_4_measured(self, capsys):
        assert main(["table", "4"]) == 0
        out = capsys.readouterr().out
        assert "remote:local ratio" in out

    def test_run_command(self, capsys):
        assert main(["--scale", "0.2", "run", "fft", "ascoma",
                     "--pressure", "0.5"]) == 0
        out = capsys.readouterr().out
        assert "execution time" in out
        assert "ASCOMA" in out

    def test_run_unknown_arch_fails_cleanly(self, capsys):
        assert main(["--scale", "0.2", "run", "fft", "numa-plus"]) == 2
        assert "error" in capsys.readouterr().err

    def test_run_unknown_app_fails_cleanly(self, capsys):
        assert main(["--scale", "0.2", "run", "linpack", "ascoma"]) == 2

    def test_figure_command(self, capsys):
        assert main(["--scale", "0.2", "figure", "fft"]) == 0
        out = capsys.readouterr().out
        assert "legend" in out

    def test_analyze_command(self, capsys):
        assert main(["--scale", "0.2", "analyze", "em3d"]) == 0
        out = capsys.readouterr().out
        assert "ideal pressure" in out
        assert "sharing profile" in out

    def test_sweep_command(self, capsys):
        assert main(["--scale", "0.2", "sweep", "fft"]) == 0
        out = capsys.readouterr().out
        assert "ASCOMA" in out and "SCOMA" in out


class TestScorecard:
    def test_render(self):
        claims = [
            Claim("thing holds", "Section 5", "x < 1", "x = 0.5", True),
            Claim("other thing", "Section 3", "y > 2", "y = 1", False),
        ]
        out = render_scorecard(claims)
        assert "PASS" in out and "FAIL" in out
        assert "1/2 claims reproduced" in out

    def test_empty_scorecard(self):
        out = render_scorecard([])
        assert "0/0" in out
