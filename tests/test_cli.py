"""Tests for the CLI and the claims scorecard machinery.

The default result store is pointed at a per-test tmp directory by the
autouse ``isolated_store_dir`` fixture (see conftest), so these tests
never touch the repo-level ``results/store`` cache.
"""

import pytest

from repro.harness.claims import Claim, render_scorecard
from repro.harness.cli import build_parser, main


class TestParser:
    def test_table_command(self):
        args = build_parser().parse_args(["table", "3"])
        assert args.command == "table" and args.number == 3

    def test_table_rejects_bad_number(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table", "9"])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "em3d", "ascoma"])
        assert args.pressure == 0.7
        assert args.scale == 0.5

    def test_global_scale_flag(self):
        args = build_parser().parse_args(["--scale", "0.25", "sweep", "fft"])
        assert args.scale == 0.25

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_quantum_flag(self):
        args = build_parser().parse_args(["run", "fft", "ascoma"])
        assert args.quantum is None  # engine default, hashes like the seed
        args = build_parser().parse_args(
            ["run", "fft", "ascoma", "--quantum", "500"])
        assert args.quantum == 500
        args = build_parser().parse_args(["matrix", "--quantum", "500"])
        assert args.quantum == 500

    def test_bench_defaults(self):
        args = build_parser().parse_args(["bench"])
        assert args.repeats == 3
        assert args.only is None and args.out is None and args.baseline is None

    def test_obs_flags_on_run_and_matrix(self):
        args = build_parser().parse_args(["run", "fft", "ascoma", "--obs"])
        assert args.obs and not args.no_obs
        args = build_parser().parse_args(["matrix", "--no-obs"])
        assert args.no_obs and not args.obs
        # commands without a telemetry surface have no obs attribute
        args = build_parser().parse_args(["table", "1"])
        assert not hasattr(args, "obs")

    def test_obs_subcommand_defaults(self):
        args = build_parser().parse_args(["obs", "summary"])
        assert args.action == "summary"
        assert args.run is None and args.format == "json"
        args = build_parser().parse_args(
            ["obs", "export", "--format", "csv", "--out", "x.csv"])
        assert args.format == "csv" and args.out == "x.csv"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["obs", "prune"])


class TestCommands:
    def test_table_1_static(self, capsys):
        assert main(["table", "1"]) == 0
        out = capsys.readouterr().out
        assert "Remote Memory Overhead" in out

    def test_table_4_measured(self, capsys):
        assert main(["table", "4"]) == 0
        out = capsys.readouterr().out
        assert "remote:local ratio" in out

    def test_run_command(self, capsys):
        assert main(["--scale", "0.2", "run", "fft", "ascoma",
                     "--pressure", "0.5"]) == 0
        out = capsys.readouterr().out
        assert "execution time" in out
        assert "ASCOMA" in out

    def test_run_unknown_arch_fails_cleanly(self, capsys):
        assert main(["--scale", "0.2", "run", "fft", "numa-plus"]) == 2
        assert "error" in capsys.readouterr().err

    def test_run_unknown_app_fails_cleanly(self, capsys):
        assert main(["--scale", "0.2", "run", "linpack", "ascoma"]) == 2

    def test_figure_command(self, capsys):
        assert main(["--scale", "0.2", "figure", "fft"]) == 0
        out = capsys.readouterr().out
        assert "legend" in out

    def test_analyze_command(self, capsys):
        assert main(["--scale", "0.2", "analyze", "em3d"]) == 0
        out = capsys.readouterr().out
        assert "ideal pressure" in out
        assert "sharing profile" in out

    def test_sweep_command(self, capsys):
        assert main(["--scale", "0.2", "sweep", "fft"]) == 0
        out = capsys.readouterr().out
        assert "ASCOMA" in out and "SCOMA" in out

    def test_sweep_unknown_app_fails_cleanly(self, capsys):
        assert main(["--scale", "0.2", "sweep", "linpack"]) == 2
        assert "error" in capsys.readouterr().err

    def test_figure_unknown_app_fails_cleanly(self, capsys):
        assert main(["--scale", "0.2", "figure", "linpack"]) == 2
        assert "error" in capsys.readouterr().err

    def test_hotpages_command(self, capsys):
        assert main(["--scale", "0.1", "hotpages", "fft", "ascoma",
                     "--pressure", "0.5"]) == 0
        out = capsys.readouterr().out
        assert "page" in out.lower()

    def test_claims_command(self, capsys, monkeypatch):
        # The real matrix takes ~30s even at tiny scale; the scorecard
        # pipeline is what the CLI owns, so stub the matrix run.
        import repro.harness.claims as claims_mod
        canned = [Claim("stub claim", "Section 5", "x", "x", True)]
        monkeypatch.setattr(claims_mod, "validate_all",
                            lambda scale: canned)
        assert main(["claims"]) == 0
        out = capsys.readouterr().out
        assert "1/1 claims reproduced" in out


class TestBenchCommand:
    def test_bench_writes_json(self, capsys, tmp_path):
        out_path = tmp_path / "bench.json"
        assert main(["bench", "--only", "tracegen:em3d", "--repeats", "1",
                     "--out", str(out_path)]) == 0
        out = capsys.readouterr().out
        assert "tracegen:em3d" in out and "ev/s" in out
        import json
        payload = json.loads(out_path.read_text())
        assert payload["schema"] == 1
        (entry,) = payload["results"]
        assert entry["name"] == "tracegen:em3d"
        assert entry["events_per_sec"] > 0

    def test_bench_with_baseline_reports_speedup(self, capsys, tmp_path):
        base = tmp_path / "base.json"
        out_path = tmp_path / "bench.json"
        assert main(["bench", "--only", "tracegen:em3d", "--repeats", "1",
                     "--out", str(base)]) == 0
        capsys.readouterr()
        assert main(["bench", "--only", "tracegen:em3d", "--repeats", "1",
                     "--baseline", str(base), "--out", str(out_path)]) == 0
        assert "x vs baseline" in capsys.readouterr().out
        import json
        payload = json.loads(out_path.read_text())
        assert "tracegen:em3d" in payload["speedup_vs_baseline"]
        assert payload["baseline"] == json.loads(base.read_text())

    def test_bench_unknown_filter_fails_cleanly(self, capsys):
        assert main(["bench", "--only", "no-such-bench"]) == 2
        assert "error" in capsys.readouterr().err

    def test_quantum_changes_the_run(self, capsys):
        base = ["--scale", "0.1", "--no-cache", "run", "radix", "ascoma",
                "--pressure", "0.7"]
        assert main(base) == 0
        default = capsys.readouterr().out
        assert main(base + ["--quantum", "50"]) == 0
        tight = capsys.readouterr().out
        # A 40x tighter quantum reorders cross-node events enough to
        # move the counters; identical output would mean the flag is
        # not reaching the engine.
        assert tight != default


class TestMatrixCommand:
    def test_matrix_serial_subset(self, capsys, isolated_store_dir):
        assert main(["--scale", "0.1", "matrix", "--apps", "fft",
                     "--serial"]) == 0
        captured = capsys.readouterr()
        assert "13/13 cells completed" in captured.out
        # every cell was simulated and stored
        assert len(list(isolated_store_dir.glob("*.json"))) == 13
        assert captured.err.count("[   ran]") == 13

    def test_matrix_resumes_from_store(self, capsys):
        assert main(["--scale", "0.1", "matrix", "--apps", "fft",
                     "--serial"]) == 0
        capsys.readouterr()
        assert main(["--scale", "0.1", "matrix", "--apps", "fft",
                     "--serial"]) == 0
        captured = capsys.readouterr()
        assert captured.err.count("[cached]") == 13
        assert "[   ran]" not in captured.err

    def test_matrix_unknown_app_fails_cleanly(self, capsys):
        assert main(["matrix", "--apps", "linpack"]) == 2
        assert "unknown app" in capsys.readouterr().err

    def test_matrix_reports_failing_cell(self, capsys, monkeypatch):
        from repro.runtime import RunSpec
        real = RunSpec.execute

        def sabotaged(spec, check=False):
            if spec.arch == "SCOMA":
                raise RuntimeError("injected failure")
            return real(spec, check=check)

        monkeypatch.setattr(RunSpec, "execute", sabotaged)
        assert main(["--scale", "0.1", "matrix", "--apps", "fft",
                     "--serial"]) == 1
        captured = capsys.readouterr()
        assert "10/13 cells completed" in captured.out
        assert "fft/SCOMA" in captured.out and "injected failure" in captured.out

    def test_no_cache_leaves_store_empty(self, capsys, isolated_store_dir):
        assert main(["--scale", "0.2", "--no-cache", "run", "fft",
                     "ascoma", "--pressure", "0.5"]) == 0
        assert not isolated_store_dir.exists()


class TestStoreCommand:
    def test_info_empty(self, capsys, isolated_store_dir):
        assert main(["store", "info"]) == 0
        out = capsys.readouterr().out
        assert "entries: 0" in out
        assert str(isolated_store_dir) in out

    def test_list_and_clear_after_runs(self, capsys):
        assert main(["--scale", "0.2", "run", "fft", "ascoma",
                     "--pressure", "0.5"]) == 0
        capsys.readouterr()
        assert main(["store", "list"]) == 0
        assert "fft/ASCOMA@0.5" in capsys.readouterr().out
        assert main(["store", "clear"]) == 0
        assert "removed 1 artifact(s)" in capsys.readouterr().out
        assert main(["store", "list"]) == 0
        assert "is empty" in capsys.readouterr().out

    def test_cached_rerun_hits_store(self, capsys):
        args = ["--scale", "0.2", "run", "fft", "ascoma",
                "--pressure", "0.5"]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert main(args) == 0
        second = capsys.readouterr().out
        assert second == first  # identical output, served from the store


class TestObsCommand:
    RUN_ARGS = ["--scale", "0.1", "run", "em3d", "ascoma",
                "--pressure", "0.9", "--obs"]

    def test_run_with_obs_writes_telemetry(self, capsys, isolated_obs_dir):
        assert main(self.RUN_ARGS) == 0
        captured = capsys.readouterr()
        assert "telemetry:" in captured.err
        runs = list(isolated_obs_dir.glob("*.jsonl"))
        assert len(runs) == 1

    def test_obs_summary_renders_latest_run(self, capsys):
        assert main(self.RUN_ARGS) == 0
        capsys.readouterr()
        assert main(["obs", "summary"]) == 0
        out = capsys.readouterr().out
        assert "telemetry run" in out
        assert "simulate" in out and "backoff" in out

    def test_obs_timeline_shows_backoff_trajectory(self, capsys):
        assert main(self.RUN_ARGS) == 0
        capsys.readouterr()
        assert main(["obs", "timeline", "--cell", "em3d"]) == 0
        out = capsys.readouterr().out
        assert "em3d/ASCOMA@90%" in out
        assert "thr-raise" in out and "int-stretch" in out

    def test_obs_export_smoke(self, capsys, tmp_path):
        """CI satellite: export both formats, --out and stdout paths."""
        import csv
        import json
        assert main(self.RUN_ARGS) == 0
        capsys.readouterr()
        assert main(["obs", "export"]) == 0
        records = json.loads(capsys.readouterr().out)
        assert any(r.get("rec") == "backoff" for r in records)
        out_path = tmp_path / "backoff.csv"
        assert main(["obs", "export", "--format", "csv",
                     "--out", str(out_path)]) == 0
        assert "exported" in capsys.readouterr().out
        rows = list(csv.DictReader(out_path.open()))
        assert rows and rows[0]["spec"].startswith("em3d/ASCOMA")
        assert any(r["threshold_delta"] == "raise" for r in rows)

    def test_obs_without_runs_fails_cleanly(self, capsys):
        assert main(["obs", "summary"]) == 2
        assert "--obs" in capsys.readouterr().err

    def test_env_var_enables_and_no_obs_wins(self, capsys, monkeypatch,
                                             isolated_obs_dir):
        monkeypatch.setenv("REPRO_OBS", "1")
        args = ["--scale", "0.1", "run", "fft", "ascoma", "--pressure", "0.5"]
        assert main(args + ["--no-obs"]) == 0
        assert not list(isolated_obs_dir.glob("*.jsonl"))
        assert main(args) == 0
        assert len(list(isolated_obs_dir.glob("*.jsonl"))) == 1

    def test_obs_off_is_the_default(self, capsys, isolated_obs_dir):
        assert main(["--scale", "0.1", "run", "fft", "ascoma",
                     "--pressure", "0.5"]) == 0
        assert "telemetry" not in capsys.readouterr().err
        assert not isolated_obs_dir.exists()


class TestScorecard:
    def test_render(self):
        claims = [
            Claim("thing holds", "Section 5", "x < 1", "x = 0.5", True),
            Claim("other thing", "Section 3", "y > 2", "y = 1", False),
        ]
        out = render_scorecard(claims)
        assert "PASS" in out and "FAIL" in out
        assert "1/2 claims reproduced" in out

    def test_empty_scorecard(self):
        out = render_scorecard([])
        assert "0/0" in out


class TestSamplingCli:
    """Sampling flags and the ingest / sample-report commands."""

    def test_sample_flags_parse(self):
        args = build_parser().parse_args(
            ["run", "fft", "ascoma", "--sample-rate", "4",
             "--sample-pages", "0.5", "--sample-seed", "7",
             "--sample-unit", "visit"])
        assert (args.sample_rate, args.sample_pages,
                args.sample_seed, args.sample_unit) == (4, 0.5, 7, "visit")
        args = build_parser().parse_args(["matrix", "--sample-rate", "10"])
        assert args.sample_rate == 10 and args.sample_unit == "sweep"

    def test_ingest_defaults(self):
        args = build_parser().parse_args(["ingest", "trace.csv"])
        assert args.format == "csv" and args.barriers == 1
        with pytest.raises(SystemExit):
            build_parser().parse_args(["ingest", "t.csv", "--format", "bin"])

    def test_sampled_run_prints_estimates(self, capsys):
        assert main(["--scale", "0.2", "run", "fft", "scoma",
                     "--pressure", "0.9", "--sample-rate", "4"]) == 0
        out = capsys.readouterr().out
        assert "sampled" in out and "estimated full trace" in out

    def test_full_run_has_no_sampling_line(self, capsys):
        assert main(["--scale", "0.2", "run", "fft", "scoma",
                     "--pressure", "0.9"]) == 0
        assert "sampled" not in capsys.readouterr().out

    def test_ingest_then_run_roundtrip(self, capsys):
        import os
        fixture = os.path.join(os.path.dirname(__file__), "fixtures",
                               "external_small.csv")
        assert main(["ingest", fixture, "--barriers", "2"]) == 0
        out = capsys.readouterr().out
        assert "registered as: ext/external_small@" in out
        app_id = [line.split(": ", 1)[1] for line in out.splitlines()
                  if line.startswith("registered as")][0]
        assert main(["run", app_id, "ascoma", "--pressure", "0.9"]) == 0
        assert "execution time" in capsys.readouterr().out

    def test_unregistered_external_app_fails_cleanly(self, capsys):
        assert main(["run", "ext/ghost@" + "0" * 16, "ascoma"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:") and "repro ingest" in err

    def test_ingest_without_trace_store_fails_cleanly(self, capsys):
        import os
        fixture = os.path.join(os.path.dirname(__file__), "fixtures",
                               "external_small.csv")
        assert main(["--no-trace-cache", "ingest", fixture]) == 2
        assert "trace store" in capsys.readouterr().err
