"""Unit tests for the backoff controllers."""

import pytest

from repro.core.thrashing import AdaptiveBackoff, BreakEvenDetector


class TestAdaptiveBackoff:
    def test_thrash_raises_threshold(self):
        b = AdaptiveBackoff(base_threshold=16, increment=8)
        b.on_thrash()
        assert b.threshold == 24
        assert b.backoffs == 1

    def test_disable_after_consecutive_thrash(self):
        b = AdaptiveBackoff(16, 8, disable_after=2)
        b.on_thrash()
        assert b.enabled
        b.on_thrash()
        assert not b.enabled
        assert b.effective_threshold() == 0

    def test_recovery_resets_consecutive_count(self):
        b = AdaptiveBackoff(16, 8, disable_after=2)
        b.on_thrash()
        b.on_recovered()
        b.on_thrash()
        assert b.enabled  # consecutive count restarted

    def test_recovery_walks_threshold_down(self):
        b = AdaptiveBackoff(16, 8)
        b.on_thrash()
        b.on_thrash()
        assert b.threshold == 32
        b.on_recovered()
        assert b.threshold == 24
        b.on_recovered()
        assert b.threshold == 16
        b.on_recovered()
        assert b.threshold == 16  # floor at base

    def test_re_enable_on_recovery(self):
        b = AdaptiveBackoff(16, 8, disable_after=1)
        b.on_thrash()
        assert not b.enabled
        b.on_recovered()
        assert b.enabled
        assert b.re_enables == 1

    def test_effective_threshold_tracks_state(self):
        b = AdaptiveBackoff(16, 8, disable_after=1)
        assert b.effective_threshold() == 16
        b.on_thrash()
        assert b.effective_threshold() == 0

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            AdaptiveBackoff(base_threshold=0)
        with pytest.raises(ValueError):
            AdaptiveBackoff(16, increment=0)
        with pytest.raises(ValueError):
            AdaptiveBackoff(16, 8, disable_after=0)


class TestBreakEvenDetector:
    def test_no_evaluation_before_cadence(self):
        d = BreakEvenDetector(break_even=8, base_threshold=16, increment=8,
                              min_evictions_per_eval=4)
        for _ in range(3):
            d.record_eviction(0, cached_pages=1)
        assert d.evaluations == 0
        assert d.threshold == 16

    def test_losers_raise_threshold(self):
        d = BreakEvenDetector(8, 16, 8, min_evictions_per_eval=4)
        for _ in range(4):
            d.record_eviction(pagecache_hits=2, cached_pages=1)
        assert d.evaluations == 1
        assert d.threshold == 24
        assert d.backoffs == 1

    def test_winners_keep_threshold(self):
        d = BreakEvenDetector(8, 16, 8, min_evictions_per_eval=4)
        for _ in range(4):
            d.record_eviction(pagecache_hits=50, cached_pages=1)
        assert d.threshold == 16

    def test_winners_recover_raised_threshold(self):
        d = BreakEvenDetector(8, 16, 8, min_evictions_per_eval=4)
        for _ in range(4):
            d.record_eviction(0, 1)
        for _ in range(4):
            d.record_eviction(50, 1)
        assert d.threshold == 16
        assert d.recoveries == 1

    def test_cadence_scales_with_cached_pages(self):
        d = BreakEvenDetector(8, 16, 8, min_evictions_per_eval=1)
        # 10 cached pages -> evaluate after 20 evictions.
        for i in range(19):
            d.record_eviction(0, cached_pages=10)
        assert d.evaluations == 0
        d.record_eviction(0, cached_pages=10)
        assert d.evaluations == 1

    def test_counters_reset_after_evaluation(self):
        d = BreakEvenDetector(8, 16, 8, min_evictions_per_eval=2)
        d.record_eviction(0, 1)
        d.record_eviction(0, 1)
        assert d.evictions_since_eval == 0
        assert d.losers_since_eval == 0

    def test_break_even_boundary_counts_as_winner(self):
        d = BreakEvenDetector(break_even=8, base_threshold=16, increment=8,
                              min_evictions_per_eval=2)
        d.record_eviction(8, 1)   # exactly break-even: repaid
        d.record_eviction(8, 1)
        assert d.threshold == 16

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            BreakEvenDetector(break_even=0)
        with pytest.raises(ValueError):
            BreakEvenDetector(8, 16, 8, min_evictions_per_eval=0)
