"""Delta-debugging trace shrinker tests.

The acceptance bar: starting from the seeded protocol bug's multi-
thousand-event trace, the shrinker must produce a trace of fewer than
50 events that still triggers the same invariant, while preserving the
engine's structural requirements (equal barrier counts per node).
"""

import pytest

from repro.check import InvariantChecker, TraceShrinker, shrink_bundle
from repro.check.shrink import _to_lists, _to_workload
from repro.sim.config import SystemConfig
from repro.sim.engine import Engine
from repro.sim.trace import EV_BARRIER

from tests.test_check_bundle import seeded_bundle


@pytest.fixture(scope="module")
def bundle():
    return seeded_bundle()


@pytest.fixture(scope="module")
def shrunk(bundle):
    return shrink_bundle(bundle)


class TestShrinker:
    def test_shrunk_trace_is_small(self, bundle, shrunk):
        original = sum(len(t.kinds) for t in bundle.workload.traces)
        minimal = sum(len(t.kinds) for t in shrunk.traces)
        assert original > 1000
        assert minimal < 50

    def test_shrunk_trace_still_violates_same_invariant(self, bundle,
                                                        shrunk):
        target = bundle.violations[0].invariant
        engine = Engine(shrunk, bundle.make_policy(), config=bundle.config,
                        quantum=bundle.quantum)
        checker = InvariantChecker.attach(engine, granularity="event")
        engine.run()
        assert any(v.invariant == target for v in checker.violations)

    def test_shrunk_trace_keeps_barrier_structure(self, bundle, shrunk):
        def barrier_counts(workload):
            return [int((t.kinds == EV_BARRIER).sum())
                    for t in workload.traces]
        counts = barrier_counts(shrunk)
        assert len(set(counts)) == 1  # engine requirement
        assert counts[0] <= barrier_counts(bundle.workload)[0]

    def test_non_reproducing_bundle_is_rejected(self, bundle):
        clean = type(bundle)(bundle.workload,
                             SystemConfig(n_nodes=4, memory_pressure=0.5),
                             bundle.architecture, bundle.policy_kwargs,
                             violations=bundle.violations,
                             quantum=bundle.quantum)
        with pytest.raises(ValueError, match="does not reproduce"):
            TraceShrinker(clean).minimise()

    def test_run_budget_is_respected(self, bundle):
        shrinker = TraceShrinker(bundle, max_runs=10)
        shrinker.minimise()
        assert shrinker.runs <= 10

    def test_list_workload_round_trip(self, bundle):
        lists = _to_lists(bundle.workload)
        rebuilt = _to_workload(lists, bundle.workload)
        assert rebuilt.name.endswith("-shrunk")
        assert _to_lists(rebuilt) == lists


class TestTargetSelection:
    def test_default_target_is_first_violation(self, bundle):
        shrinker = TraceShrinker(bundle)
        assert shrinker.target_invariant == bundle.violations[0].invariant

    def test_unmatched_target_does_not_reproduce(self, bundle):
        with pytest.raises(ValueError, match="does not reproduce"):
            TraceShrinker(bundle,
                          target_invariant="threshold-backoff").minimise()

    def test_crashing_candidate_counts_as_not_failing(self, bundle):
        shrinker = TraceShrinker(bundle)
        lists = _to_lists(bundle.workload)
        # An all-barrier skeleton with no warm-up reads still replays
        # without crashing, but reports no violation.
        skeleton = [[ev for ev in events if ev[0] == EV_BARRIER]
                    for events in lists]
        assert shrinker._fails(skeleton) is False
