"""Vector-kernel degradation corners.

The vector path's environment contract: whatever is wrong with the
host -- cffi present but no C compiler, a corrupted cached ``.so``, an
unwritable ``$REPRO_VECTOR_CACHE`` -- a run asked to use the kernel
must degrade *loss-free* to the scalar fast path (bit-identical
result), flag the problem with exactly one ``RuntimeWarning`` per
process, and never raise.  A pre-built ``.so`` must keep loading with
no compiler at all: that is the contract CI's kernel-cache step leans
on.
"""

from __future__ import annotations

import warnings

import pytest

import repro.sim.soatrace as soatrace
from repro.harness.experiment import get_workload, scaled_policy
from repro.sim.config import SystemConfig
from repro.sim.engine import Engine

SCALE = 0.1


def _run(**engine_kwargs):
    wl = get_workload("fft", SCALE)
    cfg = SystemConfig(n_nodes=wl.n_nodes, memory_pressure=0.7)
    engine = Engine(wl, scaled_policy("ASCOMA"), config=cfg,
                    **engine_kwargs)
    return engine.run().to_dict()


@pytest.fixture
def kernel_sandbox(tmp_path, monkeypatch):
    """Fresh kernel state: un-memoize the loader and point the ``.so``
    cache at a per-test directory, restoring the real kernel after."""
    saved = soatrace._KERNEL
    soatrace._KERNEL = None
    monkeypatch.setenv("REPRO_VECTOR_CACHE", str(tmp_path / "vcache"))
    yield tmp_path / "vcache"
    soatrace._KERNEL = saved


def _vector_warnings(caught):
    return [w for w in caught
            if issubclass(w.category, RuntimeWarning)
            and "vector kernel unavailable" in str(w.message)]


class TestMissingCompiler:
    def test_falls_back_with_one_warning(self, kernel_sandbox, monkeypatch):
        """cffi importable, no cc/gcc anywhere: scalar results, one
        warning for the first run, silence (and no crash) after."""
        monkeypatch.setattr(soatrace.shutil, "which", lambda name: None)
        reference = _run(slow_path=True)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            first = _run(vector_path=True)
            second = _run(vector_path=True)
        assert first == reference
        assert second == reference
        assert len(_vector_warnings(caught)) == 1
        assert soatrace.vector_available() is False

    def test_auto_mode_degrades_identically(self, kernel_sandbox,
                                            monkeypatch):
        """The default ``auto`` dispatch hits the same fallback."""
        monkeypatch.setattr(soatrace.shutil, "which", lambda name: None)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            auto = _run()
        assert auto == _run(slow_path=True)
        assert len(_vector_warnings(caught)) == 1


class TestCorruptCachedKernel:
    """Both corners seed the cache with ``_build_library()`` alone
    (compile, no dlopen): a genuinely corrupt cache artifact is one a
    fresh process finds *before* ever mapping it.  Overwriting a
    library this process already dlopened would instead poison the
    loader's existing mapping -- a different failure (and one the
    source-hash keying prevents: a changed kernel gets a new name)."""

    def _corrupt_fresh_so(self):
        so = soatrace._build_library()
        assert so is not None
        with open(so, "wb") as fh:
            fh.write(b"\x7fNOT-AN-ELF garbage")
        return so

    def test_corrupt_so_rebuilds_silently(self, kernel_sandbox):
        """A truncated/garbage cached ``.so`` with a compiler present:
        discarded and rebuilt from source, no warning, kernel stays
        available."""
        self._corrupt_fresh_so()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            assert soatrace.vector_available() is True
            vector = _run(vector_path=True)
        assert not _vector_warnings(caught)
        assert vector == _run(slow_path=True)

    def test_corrupt_so_without_compiler_warns_once(self, kernel_sandbox,
                                                    monkeypatch):
        """Corrupt ``.so`` *and* no compiler to rebuild with: one
        warning, loss-free scalar fallback."""
        self._corrupt_fresh_so()
        monkeypatch.setattr(soatrace.shutil, "which", lambda name: None)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            vector = _run(vector_path=True)
            _run(vector_path=True)
        assert len(_vector_warnings(caught)) == 1
        assert "corrupt" in str(_vector_warnings(caught)[0].message)
        assert vector == _run(slow_path=True)
        assert soatrace.vector_available() is False


class TestUnwritableCache:
    def test_unwritable_cache_dir_falls_back(self, tmp_path, monkeypatch):
        """$REPRO_VECTOR_CACHE that cannot be created (a path *under a
        regular file* -- robust even when the suite runs as root, for
        whom chmod 0o500 is not a barrier): one warning, scalar
        results, no partial files, no crash."""
        blocker = tmp_path / "blocker"
        blocker.write_text("not a directory")
        saved = soatrace._KERNEL
        soatrace._KERNEL = None
        monkeypatch.setenv("REPRO_VECTOR_CACHE",
                           str(blocker / "vcache"))
        try:
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                vector = _run(vector_path=True)
            assert len(_vector_warnings(caught)) == 1
            assert vector == _run(slow_path=True)
            assert soatrace.vector_available() is False
        finally:
            soatrace._KERNEL = saved


class TestPrebuiltKernelCache:
    def test_prebuilt_so_loads_without_compiler(self, kernel_sandbox,
                                                monkeypatch):
        """A cached ``.so`` must keep working when the compiler
        disappears -- the contract CI's cross-run kernel cache (keyed
        by the embedded source hash) relies on."""
        assert soatrace._build_library() is not None  # populate sandbox
        monkeypatch.setattr(soatrace.shutil, "which", lambda name: None)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            assert soatrace.vector_available() is True
        assert not _vector_warnings(caught)
        assert _run(vector_path=True) == _run(slow_path=True)
