"""Smoke tests: the example scripts must run end to end.

Each example is executed as a subprocess with small arguments where the
script accepts them, so these tests track the real user experience
(imports, argument parsing, output) without burning bench-scale time.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"

CASES = [
    ("memory_pressure_sweep.py", ["fft", "0.2"], "legend"),
    ("custom_workload.py", [], "AS-COMA rel"),
    ("workload_analysis.py", ["fft", "0.2"], "ideal pressure"),
    ("design_space.py", ["fft", "0.5", "0.2"], "Rel. time"),
]


def run_example(name, args):
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True, text=True, timeout=300)


@pytest.mark.parametrize("name,args,marker", CASES,
                         ids=[c[0] for c in CASES])
def test_example_runs(name, args, marker):
    proc = run_example(name, args)
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert marker in proc.stdout


def test_all_examples_present_and_documented():
    scripts = sorted(p.name for p in EXAMPLES.glob("*.py"))
    assert len(scripts) >= 7
    for script in scripts:
        text = (EXAMPLES / script).read_text()
        assert text.lstrip().startswith(('#!/usr/bin/env python3\n"""',
                                         '"""')), script
        assert "def main" in text, script


def test_examples_reject_unknown_app():
    proc = run_example("memory_pressure_sweep.py", ["linpack"])
    assert proc.returncode != 0
