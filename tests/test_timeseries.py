"""Tests for time-series sampling and backoff trajectory regressions."""


from repro.harness.experiment import scaled_policy
from repro.sim.config import SystemConfig
from repro.sim.engine import Engine
from repro.sim.timeseries import TimeSeriesSampler
from repro.workloads import generate_workload, lu


def run_sampled(app, arch, pressure, scale=0.25, **overrides):
    wl = generate_workload(app, scale=scale)
    cfg = SystemConfig(n_nodes=wl.n_nodes, memory_pressure=pressure)
    sampler = TimeSeriesSampler()
    engine = Engine(wl, scaled_policy(arch, **overrides), cfg,
                    sampler=sampler)
    result = engine.run()
    return sampler, result, wl


class TestSampler:
    def test_one_sample_per_node_per_barrier(self):
        sampler, result, wl = run_sampled("fft", "ASCOMA", 0.5)
        barriers = wl.traces[0].barriers()
        assert len(sampler) == barriers * wl.n_nodes
        assert len(sampler.of_node(0)) == barriers

    def test_times_monotone(self):
        sampler, _, _ = run_sampled("fft", "ASCOMA", 0.5)
        times = sampler.times(0)
        assert all(a <= b for a, b in zip(times, times[1:]))

    def test_all_nodes_sampled_at_same_times(self):
        sampler, _, wl = run_sampled("fft", "ASCOMA", 0.5)
        reference = sampler.times(0)
        for node in range(1, wl.n_nodes):
            assert sampler.times(node) == reference

    def test_relocations_series_monotone(self):
        sampler, _, _ = run_sampled("em3d", "RNUMA", 0.7)
        series = sampler.series(0, "relocations")
        assert all(a <= b for a, b in zip(series, series[1:]))

    def test_sample_as_dict(self):
        sampler, _, _ = run_sampled("fft", "ASCOMA", 0.5)
        d = sampler.samples[0].as_dict()
        assert {"time", "node", "free_frames", "threshold"} <= set(d)

    def test_sparkline_render(self):
        sampler, _, _ = run_sampled("em3d", "ASCOMA", 0.9)
        line = sampler.sparkline(0, "threshold")
        assert isinstance(line, str) and len(line) > 0

    def test_sparkline_constant_series(self):
        sampler, _, _ = run_sampled("fft", "CCNUMA", 0.5)
        line = sampler.sparkline(0, "threshold")
        assert set(line) <= {" "}

    def test_no_sampler_is_default(self):
        wl = generate_workload("fft", scale=0.25)
        engine = Engine(wl, scaled_policy("CCNUMA"),
                        SystemConfig(n_nodes=wl.n_nodes))
        assert engine.sampler is None


class TestBackoffTrajectory:
    def test_threshold_climbs_under_sustained_thrash(self):
        sampler, _, _ = run_sampled("em3d", "ASCOMA", 0.9, scale=0.35)
        series = sampler.series(0, "threshold")
        # Effective threshold starts at the base and ends higher (or at 0
        # if relocation was disabled outright).
        assert series[0] <= 16
        assert max(series) > 16 or 0 in series

    def test_daemon_interval_stretches_under_thrash(self):
        sampler, _, _ = run_sampled("em3d", "ASCOMA", 0.9, scale=0.35)
        series = sampler.series(0, "daemon_interval")
        assert max(series) > min(series)

    def test_no_backoff_at_low_pressure(self):
        sampler, _, _ = run_sampled("em3d", "ASCOMA", 0.1, scale=0.35)
        assert set(sampler.series(0, "threshold")) == {16}

    def test_lu_phase_change_triggers_threshold_recovery(self):
        """Section 3: 'Should the number of hot pages drop, e.g. because
        of a phase change ... the pageout daemon will detect it ... at
        this point it can reduce the refetch threshold.'  lu's phased
        active set must produce a visible climb *and later descent* of
        the effective threshold."""
        wl = lu.generate(scale=0.5)
        cfg = SystemConfig(n_nodes=wl.n_nodes, memory_pressure=0.9)
        sampler = TimeSeriesSampler()
        Engine(wl, scaled_policy("ASCOMA"), cfg, sampler=sampler).run()
        series = sampler.series(0, "threshold")
        peak = max(series)
        assert peak > 16, "backoff never engaged"
        after_peak = series[series.index(peak):]
        assert min(after_peak) < peak, "threshold never recovered"
