"""Replay parity: all three loops must be bit-identical to each other.

The engine carries three replay loops (see the module docstring of
``repro.sim.engine``): the optimized scalar fast path that ships by
default, the straightforward reference loop it was derived from
(``Engine(slow_path=True)`` / ``REPRO_SLOW_PATH=1``), and the
vectorized SoA loop (``Engine(vector_path=True)`` /
``REPRO_VECTOR_PATH=1``, see ``repro.sim.soatrace``).  Every
optimization is required to be a *bit-identical* transformation, so
these tests compare complete ``RunResult.to_dict()`` payloads -- every
node's every stats bucket, miss-class counter and clock -- across
every architecture, two workloads with different locality profiles,
and two memory-pressure regimes, and additionally pin the serialized
store bytes (what ``RunStore.put`` persists and hashes by spec) to be
identical regardless of which loop produced the result.

If one of these fails after an engine change, an optimized path has
diverged from the model: fix the fast/vector path (or fold the change
into ``_shared_ref``, which all loops share), never the reference
loop.
"""

import hashlib
import json

import pytest

from repro.harness.experiment import ARCHITECTURES, get_workload, scaled_policy
from repro.sim.config import SystemConfig
from repro.sim.engine import Engine
from repro.sim.soatrace import vector_available

SCALE = 0.1
#: fft is RAC/home-friendly, radix is eviction- and relocation-heavy;
#: 0.3 vs 0.9 pressure flips the page cache between roomy and thrashing.
APPS = ("fft", "radix")
PRESSURES = (0.3, 0.9)

CELLS = [(app, arch, pressure)
         for app in APPS for arch in ARCHITECTURES for pressure in PRESSURES]


def run_cell(app, arch, pressure, *, config_kwargs=None, **engine_kwargs):
    wl = get_workload(app, SCALE)
    cfg = SystemConfig(n_nodes=wl.n_nodes, memory_pressure=pressure,
                       **(config_kwargs or {}))
    engine = Engine(wl, scaled_policy(arch), config=cfg, **engine_kwargs)
    return engine.run().to_dict()


class TestFastPathParity:
    """Scalar fast path vs reference.  ``vector_path=False`` pins the
    scalar loop explicitly: with vector dispatch defaulting to
    ``auto``, a bare Engine would otherwise replay through the kernel
    and these cells would stop covering the scalar fast path."""

    @pytest.mark.parametrize("app,arch,pressure", CELLS)
    def test_fast_matches_reference(self, app, arch, pressure):
        fast = run_cell(app, arch, pressure, vector_path=False)
        reference = run_cell(app, arch, pressure, slow_path=True)
        assert fast == reference

    @pytest.mark.parametrize("arch", ARCHITECTURES)
    def test_page_memo_matches_reference(self, arch):
        """The opt-in page memo must also be invisible in the results.

        radix at high pressure exercises every memo invalidator:
        faults, S-COMA (un)mappings, evictions, relocations, migration.
        """
        memo = run_cell("radix", arch, 0.9, page_memo=True,
                        vector_path=False)
        reference = run_cell("radix", arch, 0.9, slow_path=True)
        assert memo == reference

    @pytest.mark.parametrize("arch", ("CCNUMA", "ASCOMA"))
    def test_associative_l1_parity(self, arch):
        """l1_ways=2 disables the inlined direct-mapped tag compare, so
        this covers the lookup()-based branch of both loops."""
        cfg = {"l1_ways": 2}
        fast = run_cell("fft", arch, 0.7, config_kwargs=cfg,
                        vector_path=False)
        reference = run_cell("fft", arch, 0.7, config_kwargs=cfg,
                             slow_path=True)
        assert fast == reference


def _content_hash(payload: dict) -> str:
    """Hash of the canonical store serialization of a result payload."""
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode()).hexdigest()


class TestThreeWayParity:
    """The differential matrix: reference x fast x vector, every arch.

    When the compiled kernel is unavailable the vector engine degrades
    to the fast path, which keeps the assertions valid but vacuous for
    the third loop -- so the availability probe is asserted separately
    (and the CI vector leg runs where a compiler is guaranteed).
    """

    @pytest.mark.parametrize("app,arch,pressure", CELLS)
    def test_three_way_matrix(self, app, arch, pressure):
        reference = run_cell(app, arch, pressure, slow_path=True)
        fast = run_cell(app, arch, pressure, vector_path=False)
        vector = run_cell(app, arch, pressure, vector_path=True)
        assert fast == reference
        assert vector == reference
        # Byte-level, not just structural: the store persists JSON, so
        # the hash of the canonical serialization is what a spec-keyed
        # store entry would carry.  One hash means any loop's result
        # can service any other loop's cache hit.
        hashes = {_content_hash(r) for r in (reference, fast, vector)}
        assert len(hashes) == 1

    def test_vector_env_selection_matches(self, monkeypatch):
        """REPRO_VECTOR_PATH=1 must take the same code path as the
        ctor argument and produce the same bytes."""
        explicit = run_cell("fft", "ASCOMA", 0.9, vector_path=True)
        monkeypatch.setenv("REPRO_VECTOR_PATH", "1")
        via_env = run_cell("fft", "ASCOMA", 0.9)
        assert _content_hash(explicit) == _content_hash(via_env)

    def test_store_bytes_identical_across_paths(self, tmp_path, monkeypatch):
        """End-to-end store check: the exact bytes RunStore writes must
        not depend on the loop that produced the result."""
        from repro.runtime.spec import RunSpec
        from repro.runtime.store import RunStore

        spec = RunSpec(app="fft", arch="ASCOMA", pressure=0.9, scale=SCALE)
        blobs = []
        # auto (the default), reference, vector-on, vector-off: four
        # process-wide selections, one byte stream.
        for i, env in enumerate(({}, {"REPRO_SLOW_PATH": "1"},
                                 {"REPRO_VECTOR_PATH": "1"},
                                 {"REPRO_VECTOR_PATH": "0"})):
            for var in ("REPRO_SLOW_PATH", "REPRO_VECTOR_PATH"):
                monkeypatch.delenv(var, raising=False)
            for var, value in env.items():
                monkeypatch.setenv(var, value)
            store = RunStore(tmp_path / f"store-{i}")
            path = store.put(spec, spec.execute())
            blobs.append(path.read_bytes())
        assert len(set(blobs)) == 1

    def test_kernel_availability_probe(self):
        """vector_available() must answer without raising; on CI's
        vector leg a compiler is present, so the probe must succeed
        there (asserted via the env contract below)."""
        import os
        available = vector_available()
        assert isinstance(available, bool)
        if os.environ.get("REPRO_EXPECT_VECTOR", "") == "1":
            assert available


class TestWidenedEligibility:
    """Shapes the kernel used to refuse and now replays natively:
    >62 nodes (multi-word copysets), >62 chunks per page (multi-word
    S-COMA valid bitmaps), kind-filtered event-bus observers (served
    by the in-kernel event ring) and the page memo (carried through,
    its invalidators all publish at Python exits).  Each gets the same
    three-way bit-identity check as the core matrix."""

    def _wide_workload(self):
        from repro.workloads import synthetic
        return synthetic.generate(
            n_nodes=96, home_pages_per_node=3, remote_pages_per_node=5,
            sweeps=3, lines_per_visit=6, hot_fraction=0.7,
            write_fraction=0.3, home_lines_per_sweep=16, seed=11)

    def _wide_cell(self, arch, **engine_kwargs):
        from repro.core import make_policy
        kwargs = {"ascoma": dict(threshold=8, increment=4)}.get(arch, {})
        wl = self._wide_workload()
        cfg = SystemConfig(n_nodes=96, memory_pressure=0.6)
        engine = Engine(wl, make_policy(arch, **kwargs), cfg,
                        **engine_kwargs)
        return engine.run().to_dict()

    @pytest.mark.parametrize("arch", ("ascoma", "ccnuma", "scoma"))
    def test_96_node_three_way(self, arch):
        reference = self._wide_cell(arch, slow_path=True)
        fast = self._wide_cell(arch, vector_path=False)
        vector = self._wide_cell(arch, vector_path=True)
        assert fast == reference
        assert vector == reference
        assert len({_content_hash(r)
                    for r in (reference, fast, vector)}) == 1

    @pytest.mark.parametrize("arch", ("ASCOMA", "SCOMA"))
    def test_wide_pages_three_way(self, arch):
        """page_bytes=16384 -> 128 chunks per page: the S-COMA valid
        bitmap no longer fits one word."""
        cfg = {"page_bytes": 16384}
        reference = run_cell("radix", arch, 0.9, config_kwargs=cfg,
                             slow_path=True)
        fast = run_cell("radix", arch, 0.9, config_kwargs=cfg,
                        vector_path=False)
        vector = run_cell("radix", arch, 0.9, config_kwargs=cfg,
                          vector_path=True)
        assert fast == reference
        assert vector == reference

    def test_page_memo_rides_the_kernel(self):
        """The memo's unfiltered observer no longer disqualifies: all
        of its invalidator events publish at scalar exits, so memo +
        vector must equal the plain reference run."""
        memo_vec = run_cell("radix", "ASCOMA", 0.9, page_memo=True,
                            vector_path=True)
        reference = run_cell("radix", "ASCOMA", 0.9, slow_path=True)
        assert memo_vec == reference

    def test_widened_shapes_pass_preflight(self):
        """_eligible itself (no kernel needed): 96 nodes, a
        kind-filtered observer and the page memo must all pass."""
        from repro.obs.backoff import BackoffTelemetry
        from repro.sim.soatrace import _eligible
        wl = self._wide_workload()
        cfg = SystemConfig(n_nodes=96, memory_pressure=0.6)
        from repro.core import make_policy
        engine = Engine(wl, make_policy("ascoma", threshold=8, increment=4),
                        cfg, page_memo=True)
        BackoffTelemetry().attach(engine)
        assert _eligible(engine)

    def test_sampler_still_falls_back(self):
        """A time-series sampler needs every intermediate transition;
        it must keep disqualifying the kernel."""
        from repro.sim.soatrace import _eligible
        wl = get_workload("fft", SCALE)
        cfg = SystemConfig(n_nodes=wl.n_nodes, memory_pressure=0.5)
        engine = Engine(wl, scaled_policy("ASCOMA"), config=cfg)
        engine.sampler = object()
        assert not _eligible(engine)


class TestObsTimelineParity:
    """--obs must observe the *same simulation* whichever loop runs it:
    the BackoffTelemetry row stream (every daemon decision with its
    clock, every phase row) and its counters must be byte-equal across
    scalar, vector and reference replays."""

    def _run_with_obs(self, **engine_kwargs):
        from repro.obs.backoff import BackoffTelemetry
        wl = get_workload("radix", SCALE)
        cfg = SystemConfig(n_nodes=wl.n_nodes, memory_pressure=0.9)
        engine = Engine(wl, scaled_policy("ASCOMA"), config=cfg,
                        **engine_kwargs)
        telemetry = BackoffTelemetry().attach(engine)
        result = engine.run().to_dict()
        return result, telemetry

    def test_backoff_timeline_identical_across_loops(self):
        r_ref, t_ref = self._run_with_obs(slow_path=True)
        r_fast, t_fast = self._run_with_obs(vector_path=False)
        r_vec, t_vec = self._run_with_obs(vector_path=True)
        assert r_fast == r_ref and r_vec == r_ref
        assert t_ref.rows, "radix@0.9 must produce daemon activity"
        assert t_fast.rows == t_ref.rows
        assert t_vec.rows == t_ref.rows
        assert t_fast.counters() == t_ref.counters()
        assert t_vec.counters() == t_ref.counters()


class TestSlowPathSelection:
    def _engine(self, **kwargs):
        wl = get_workload("fft", SCALE)
        cfg = SystemConfig(n_nodes=wl.n_nodes, memory_pressure=0.5)
        return Engine(wl, scaled_policy("ASCOMA"), config=cfg, **kwargs)

    def test_default_is_fast_path(self, monkeypatch):
        monkeypatch.delenv("REPRO_SLOW_PATH", raising=False)
        assert self._engine().slow_path is False

    @pytest.mark.parametrize("value,expected", [
        ("1", True), ("yes", True), ("0", False), ("", False),
    ])
    def test_env_var_selects_reference(self, monkeypatch, value, expected):
        monkeypatch.delenv("REPRO_VECTOR_PATH", raising=False)
        monkeypatch.setenv("REPRO_SLOW_PATH", value)
        assert self._engine().slow_path is expected

    def test_explicit_argument_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SLOW_PATH", "1")
        assert self._engine(slow_path=False).slow_path is False


class TestVectorPathSelection:
    """REPRO_VECTOR_PATH / vector_path selection + conflict handling,
    mirroring TestSlowPathSelection for the third loop."""

    def _engine(self, **kwargs):
        wl = get_workload("fft", SCALE)
        cfg = SystemConfig(n_nodes=wl.n_nodes, memory_pressure=0.5)
        return Engine(wl, scaled_policy("ASCOMA"), config=cfg, **kwargs)

    def test_default_is_fast_path(self, monkeypatch):
        monkeypatch.delenv("REPRO_VECTOR_PATH", raising=False)
        assert self._engine().vector_path is False

    @pytest.mark.parametrize("value,expected", [
        ("1", True), ("yes", True), ("0", False), ("", False),
    ])
    def test_env_var_selects_vector(self, monkeypatch, value, expected):
        monkeypatch.delenv("REPRO_SLOW_PATH", raising=False)
        monkeypatch.setenv("REPRO_VECTOR_PATH", value)
        assert self._engine().vector_path is expected

    def test_explicit_argument_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_VECTOR_PATH", "1")
        assert self._engine(vector_path=False).vector_path is False

    def test_explicit_ctor_conflict_raises(self):
        with pytest.raises(ValueError, match="conflicting path selections"):
            self._engine(slow_path=True, vector_path=True)

    def test_env_conflict_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_SLOW_PATH", "1")
        monkeypatch.setenv("REPRO_VECTOR_PATH", "1")
        with pytest.raises(ValueError, match="conflicting path selections"):
            self._engine()

    def test_explicit_vector_beats_slow_env(self, monkeypatch):
        """ctor > env: an explicit vector_path=True silences an
        environment-selected reference loop instead of raising."""
        monkeypatch.setenv("REPRO_SLOW_PATH", "1")
        engine = self._engine(vector_path=True)
        assert engine.vector_path is True
        assert engine.slow_path is False

    def test_explicit_slow_beats_vector_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_VECTOR_PATH", "1")
        engine = self._engine(slow_path=True)
        assert engine.slow_path is True
        assert engine.vector_path is False


class TestVectorModeSelection:
    """The three-state dispatch behind the booleans: ``auto`` (default)
    replays through the kernel whenever eligible, ``on`` is the
    explicit opt-in, ``off`` pins the scalar loops.  ``vector_path``
    stays the explicit-opt-in boolean for backwards compatibility."""

    def _engine(self, **kwargs):
        wl = get_workload("fft", SCALE)
        cfg = SystemConfig(n_nodes=wl.n_nodes, memory_pressure=0.5)
        return Engine(wl, scaled_policy("ASCOMA"), config=cfg, **kwargs)

    def test_default_mode_is_auto(self, monkeypatch):
        monkeypatch.delenv("REPRO_VECTOR_PATH", raising=False)
        engine = self._engine()
        assert engine.vector_mode == "auto"
        assert engine.vector_path is False  # auto is not the opt-in

    @pytest.mark.parametrize("value,expected", [
        ("", "auto"), ("auto", "auto"), ("AUTO", "auto"),
        ("0", "off"), ("off", "off"), ("no", "off"), ("false", "off"),
        ("1", "on"), ("yes", "on"), ("on", "on"),
    ])
    def test_env_mode_table(self, monkeypatch, value, expected):
        monkeypatch.delenv("REPRO_SLOW_PATH", raising=False)
        monkeypatch.setenv("REPRO_VECTOR_PATH", value)
        from repro.sim.engine import default_vector_mode
        assert default_vector_mode() == expected
        assert self._engine().vector_mode == expected

    def test_ctor_booleans_map_to_modes(self):
        assert self._engine(vector_path=True).vector_mode == "on"
        assert self._engine(vector_path=False).vector_mode == "off"

    @pytest.mark.parametrize("value", [" 1 ", "ON", " yes", "True",
                                       "\toff\t", " FALSE "])
    def test_env_values_are_stripped_and_case_folded(self, monkeypatch,
                                                     value):
        monkeypatch.setenv("REPRO_VECTOR_PATH", value)
        from repro.sim.engine import default_vector_mode
        expected = "on" if value.strip().lower() in ("1", "on", "yes",
                                                     "true") else "off"
        assert default_vector_mode() == expected

    @pytest.mark.parametrize("garbage", ["2", "of", "fasle", "vector",
                                         "-1", "y", "enable", "onoff"])
    def test_garbage_env_warns_and_falls_back_to_auto(self, monkeypatch,
                                                      garbage):
        """An unrecognized value must neither force the kernel on (the
        old behaviour resolved anything != off to 'on') nor pin it off:
        it warns and defers to auto dispatch."""
        monkeypatch.setenv("REPRO_VECTOR_PATH", garbage)
        from repro.sim.engine import default_vector_mode
        with pytest.warns(RuntimeWarning, match="REPRO_VECTOR_PATH"):
            assert default_vector_mode() == "auto"
        with pytest.warns(RuntimeWarning):
            assert self._engine().vector_mode == "auto"

    def test_whitespace_only_env_is_auto_without_warning(self, monkeypatch):
        monkeypatch.setenv("REPRO_VECTOR_PATH", "   ")
        from repro.sim.engine import default_vector_mode
        import warnings
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert default_vector_mode() == "auto"

    def test_ctor_beats_garbage_env(self, monkeypatch):
        """An explicit ctor choice wins over whatever the environment
        says, garbage included (the env is not even consulted, so no
        warning fires)."""
        import warnings
        monkeypatch.setenv("REPRO_VECTOR_PATH", "fasle")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert self._engine(vector_path=True).vector_mode == "on"
            assert self._engine(vector_path=False).vector_mode == "off"

    def test_cost_model_substrate_honours_strict_parsing(self, monkeypatch):
        """The LPT cost model reads the env through the same parser: a
        typo'd 'off' must not silently flip its weight table."""
        from repro.runtime.costs import _vector_substrate
        from repro.sim.soatrace import vector_available
        monkeypatch.setenv("REPRO_VECTOR_PATH", "off")
        assert _vector_substrate() is False
        monkeypatch.setenv("REPRO_VECTOR_PATH", "of")  # typo != off
        with pytest.warns(RuntimeWarning):
            assert _vector_substrate() is vector_available()

    def test_auto_never_conflicts_with_slow(self, monkeypatch):
        """auto + slow_path must not raise: the reference loop simply
        wins (only an *explicit* 'on' can conflict)."""
        monkeypatch.delenv("REPRO_VECTOR_PATH", raising=False)
        engine = self._engine(slow_path=True)
        assert engine.slow_path is True
        monkeypatch.setenv("REPRO_SLOW_PATH", "1")
        monkeypatch.setenv("REPRO_VECTOR_PATH", "auto")
        assert self._engine().slow_path is True

    @pytest.mark.parametrize("kwargs,env,expect_kernel", [
        ({}, {}, True),                                # auto
        ({"vector_path": True}, {}, True),             # explicit on
        ({"vector_path": False}, {}, False),           # explicit off
        ({}, {"REPRO_VECTOR_PATH": "off"}, False),     # env off
        ({"slow_path": True}, {}, False),              # reference loop
    ])
    def test_dispatch_reaches_kernel(self, monkeypatch, kwargs, env,
                                     expect_kernel):
        """run() must actually route through run_vector exactly when
        the mode says so (auto included), falling back losslessly."""
        import repro.sim.soatrace as soatrace
        for var in ("REPRO_SLOW_PATH", "REPRO_VECTOR_PATH"):
            monkeypatch.delenv(var, raising=False)
        for var, value in env.items():
            monkeypatch.setenv(var, value)
        calls = []

        def probe(engine):
            calls.append(engine)
            return None  # degrade: the engine must finish on the fast path

        monkeypatch.setattr(soatrace, "run_vector", probe)
        result = self._engine(**kwargs).run().to_dict()
        assert bool(calls) is expect_kernel
        assert result == self._engine(slow_path=True).run().to_dict()
